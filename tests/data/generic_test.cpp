#include "data/generic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ohd::data {
namespace {

TEST(GenericStreams, UniformCoversAlphabet) {
  const auto s = uniform_stream(100000, 64, 1);
  std::vector<int> seen(64, 0);
  for (auto v : s) {
    ASSERT_LT(v, 64);
    ++seen[v];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(GenericStreams, GeometricIsSkewed) {
  const auto s = geometric_stream(100000, 256, 0.5, 2);
  std::size_t zeros = std::count(s.begin(), s.end(), 0);
  EXPECT_NEAR(static_cast<double>(zeros) / s.size(), 0.5, 0.02);
}

TEST(GenericStreams, ZipfHeadDominates) {
  const auto s = zipf_stream(100000, 1024, 1.5, 3);
  std::size_t head = 0;
  for (auto v : s) head += (v < 8);
  EXPECT_GT(static_cast<double>(head) / s.size(), 0.7);
}

TEST(GenericStreams, MarkovHasCalmAndBurstRegions) {
  const auto s = markov_stream(200000, 1024, 0.001, 4);
  // Count distinct symbols in sliding windows: calm windows have few,
  // burst windows many.
  std::size_t calm_windows = 0, burst_windows = 0;
  for (std::size_t w = 0; w + 1000 <= s.size(); w += 1000) {
    std::vector<std::uint16_t> window(s.begin() + w, s.begin() + w + 1000);
    std::sort(window.begin(), window.end());
    const std::size_t distinct =
        std::unique(window.begin(), window.end()) - window.begin();
    if (distinct <= 8) ++calm_windows;
    if (distinct >= 200) ++burst_windows;
  }
  EXPECT_GT(calm_windows, 0u);
  EXPECT_GT(burst_windows, 0u);
}

TEST(GenericStreams, QuantCodesAvoidOutlierCode) {
  const auto s = quant_code_stream(50000, 1024, 200.0, 5);
  for (auto v : s) {
    ASSERT_GE(v, 1);
    ASSERT_LT(v, 1024);
  }
}

TEST(GenericStreams, Deterministic) {
  EXPECT_EQ(zipf_stream(1000, 64, 1.1, 9), zipf_stream(1000, 64, 1.1, 9));
  EXPECT_NE(zipf_stream(1000, 64, 1.1, 9), zipf_stream(1000, 64, 1.1, 10));
}

}  // namespace
}  // namespace ohd::data
