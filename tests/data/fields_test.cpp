#include "data/fields.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/huffman_codec.hpp"
#include "sz/compressor.hpp"

namespace ohd::data {
namespace {

TEST(Fields, SuiteHasEightDatasetsInPaperOrder) {
  const auto suite = evaluation_suite(0.02);
  ASSERT_EQ(suite.size(), 8u);
  const auto& names = dataset_names();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, names[i]);
  }
}

TEST(Fields, GeneratorsAreDeterministic) {
  const auto a = make_hacc(0.01);
  const auto b = make_hacc(0.01);
  EXPECT_EQ(a.data, b.data);
}

TEST(Fields, SeedsChangeContent) {
  const auto a = make_hacc(0.01, 1);
  const auto b = make_hacc(0.01, 2);
  EXPECT_NE(a.data, b.data);
}

TEST(Fields, DimsMatchDataSize) {
  for (const auto& f : evaluation_suite(0.02)) {
    EXPECT_EQ(f.dims.count(), f.data.size()) << f.name;
    EXPECT_GE(f.dims.rank, 1u);
    EXPECT_LE(f.dims.rank, 3u);
  }
}

TEST(Fields, ScaleGrowsElementCount) {
  EXPECT_GT(make_nyx(0.5).data.size(), make_nyx(0.05).data.size());
}

TEST(Fields, MakeByNameMatchesSuite) {
  for (const auto& name : dataset_names()) {
    const auto f = make_by_name(name, 0.01);
    EXPECT_EQ(f.name, name);
    EXPECT_FALSE(f.data.empty());
  }
  EXPECT_THROW(make_by_name("nope"), std::invalid_argument);
}

TEST(Fields, ValuesAreFinite) {
  for (const auto& f : evaluation_suite(0.02)) {
    for (float v : f.data) ASSERT_TRUE(std::isfinite(v)) << f.name;
  }
}

// Compression-regime checks: each dataset's QUANTIZATION-CODE compression
// ratio (the quantity the paper's Table IV / Fig. 3 track — e.g. "the
// compression ratio is 3.86" for HACC in §IV-C) must land in the band of its
// real counterpart. Bands are generous — the point is the ORDERING
// (EXAALT < QMCPack < HACC << RTM < CESM ~ Hurricane < GAMESS < Nyx) and the
// regime, not the third digit.
struct Band {
  const char* name;
  double lo, hi;
};

class FieldRegime : public ::testing::TestWithParam<Band> {};

TEST_P(FieldRegime, QuantCodeRatioFallsInBand) {
  const Band band = GetParam();
  const auto f = make_by_name(band.name, 0.15);
  float lo = f.data[0], hi = f.data[0];
  for (float v : f.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const auto q = sz::lorenzo_quantize(f.data, f.dims, 1e-3 * (hi - lo), 512);
  const auto enc =
      core::encode_for_method(core::Method::CuszNaive, q.codes,
                              q.alphabet_size());
  const double ratio = static_cast<double>(q.codes.size() * 2) /
                       static_cast<double>(enc.compressed_bytes());
  EXPECT_GE(ratio, band.lo) << band.name;
  EXPECT_LE(ratio, band.hi) << band.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRegimes, FieldRegime,
    ::testing::Values(Band{"HACC", 2.4, 4.3}, Band{"EXAALT", 1.6, 3.0},
                      Band{"CESM", 6.0, 11.0}, Band{"Nyx", 10.0, 20.0},
                      Band{"Hurricane", 5.5, 12.0},
                      Band{"QMCPack", 1.7, 3.2}, Band{"RTM", 5.0, 10.5},
                      Band{"GAMESS", 9.0, 15.0}),
    [](const ::testing::TestParamInfo<Band>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace ohd::data
