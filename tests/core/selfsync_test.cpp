#include "core/selfsync_decoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bitio/bit_reader.hpp"
#include "huffman/decode_step.hpp"
#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> skewed(std::size_t n, std::uint32_t alphabet,
                                  std::uint64_t seed, double cont = 0.7) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    if (cont <= 0.0) {
      s = static_cast<std::uint16_t>(rng.bounded(alphabet));
      continue;
    }
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < cont) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

/// Ground-truth codeword boundaries and per-subsequence symbol counts.
struct GroundTruth {
  std::vector<std::uint64_t> start_bit;  // + sentinel
  std::vector<std::uint32_t> sym_count;
};

GroundTruth ground_truth(const huffman::StreamEncoding& enc,
                         const huffman::Codebook& cb) {
  GroundTruth gt;
  const std::uint64_t subseq_bits = enc.geometry.subseq_bits();
  const std::uint32_t num_subseqs = enc.num_subseqs();
  gt.sym_count.assign(num_subseqs, 0);
  gt.start_bit.assign(num_subseqs + 1, enc.total_bits);

  bitio::BitReader r(enc.units, enc.total_bits);
  std::uint32_t next_boundary = 0;
  while (r.position() < enc.total_bits) {
    const std::uint64_t pos = r.position();
    while (next_boundary < num_subseqs &&
           static_cast<std::uint64_t>(next_boundary) * subseq_bits <= pos) {
      gt.start_bit[next_boundary++] = pos;
    }
    huffman::decode_one(r, cb);
    if (next_boundary > 0) ++gt.sym_count[next_boundary - 1];
  }
  gt.start_bit[num_subseqs] = enc.total_bits;
  return gt;
}

TEST(SelfSyncSynchronize, MatchesGroundTruthOnSkewedStream) {
  cudasim::SimContext ctx;
  const auto data = skewed(60000, 256, 1);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_plain(data, cb);
  const SyncInfo sync = selfsync_synchronize(ctx, enc, cb, {}, true);
  const GroundTruth gt = ground_truth(enc, cb);
  EXPECT_EQ(sync.start_bit, gt.start_bit);
  EXPECT_EQ(sync.sym_count, gt.sym_count);
}

TEST(SelfSyncSynchronize, OriginalAndOptimizedAgree) {
  const auto data = skewed(30000, 128, 2);
  const auto cb = huffman::Codebook::from_data(data, 128);
  const auto enc = huffman::encode_plain(data, cb);
  cudasim::SimContext c1, c2;
  const SyncInfo a = selfsync_synchronize(c1, enc, cb, {}, false);
  const SyncInfo b = selfsync_synchronize(c2, enc, cb, {}, true);
  EXPECT_EQ(a.start_bit, b.start_bit);
  EXPECT_EQ(a.sym_count, b.sym_count);
}

TEST(SelfSyncSynchronize, EarlyExitIsFasterOnLargeStreams) {
  // Needs a stream large enough that kernel work dominates the fixed launch
  // overhead; uniform symbols keep codewords long (low compression ratio),
  // the regime where the paper reports the biggest early-exit wins.
  const auto data = skewed(600000, 1024, 3, 0.0);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  cudasim::SimContext c1, c2;
  const SyncInfo original = selfsync_synchronize(c1, enc, cb, {}, false);
  const SyncInfo optimized = selfsync_synchronize(c2, enc, cb, {}, true);
  EXPECT_LT(optimized.intra_seconds, original.intra_seconds);
}

TEST(SelfSyncSynchronize, CountsSumToStreamTotal) {
  cudasim::SimContext ctx;
  const auto data = skewed(77777, 1024, 4, 0.9);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  const SyncInfo sync = selfsync_synchronize(ctx, enc, cb, {}, true);
  std::uint64_t total = 0;
  for (auto c : sync.sym_count) total += c;
  EXPECT_EQ(total, data.size());
}

TEST(SelfSyncSynchronize, InterSequenceConvergesQuickly) {
  cudasim::SimContext ctx;
  const auto data = skewed(300000, 256, 5);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_plain(data, cb);
  ASSERT_GT(enc.num_seqs(), 3u);
  const SyncInfo sync = selfsync_synchronize(ctx, enc, cb, {}, true);
  EXPECT_LE(sync.inter_iterations, 4u);
}

TEST(SelfSyncDecoder, RoundtripOriginal) {
  cudasim::SimContext ctx;
  const auto data = skewed(50000, 256, 6);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_plain(data, cb);
  const auto result =
      decode_selfsync(ctx, enc, cb, {}, SelfSyncOptions::original());
  EXPECT_EQ(result.symbols, data);
  EXPECT_GT(result.phases.intra_sync_s, 0.0);
  EXPECT_GT(result.phases.decode_write_s, 0.0);
  EXPECT_EQ(result.phases.tune_s, 0.0);
}

TEST(SelfSyncDecoder, RoundtripOptimized) {
  cudasim::SimContext ctx;
  const auto data = skewed(50000, 256, 7);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_plain(data, cb);
  const auto result =
      decode_selfsync(ctx, enc, cb, {}, SelfSyncOptions::optimized());
  EXPECT_EQ(result.symbols, data);
  EXPECT_GT(result.phases.tune_s, 0.0);
}

TEST(SelfSyncDecoder, RoundtripHighCompressibility) {
  // Mostly a single symbol: 1-bit codewords, the regime where the original
  // decoders collapse (Figure 2).
  cudasim::SimContext ctx;
  auto data = skewed(80000, 512, 8, 0.02);
  const auto cb = huffman::Codebook::from_data(data, 512);
  const auto enc = huffman::encode_plain(data, cb);
  const auto result = decode_selfsync(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(SelfSyncDecoder, RoundtripWithFixedBuffer) {
  cudasim::SimContext ctx;
  const auto data = skewed(40000, 128, 9);
  const auto cb = huffman::Codebook::from_data(data, 128);
  const auto enc = huffman::encode_plain(data, cb);
  SelfSyncOptions opts = SelfSyncOptions::optimized();
  opts.tune_shared_memory = false;
  opts.fixed_buffer_symbols = 2048;
  const auto result = decode_selfsync(ctx, enc, cb, {}, opts);
  EXPECT_EQ(result.symbols, data);
}

TEST(SelfSyncDecoder, EmptyInput) {
  cudasim::SimContext ctx;
  const std::vector<std::uint16_t> train = {0, 1};
  const auto cb = huffman::Codebook::from_data(train, 4);
  const auto enc = huffman::encode_plain(std::vector<std::uint16_t>{}, cb);
  const auto result = decode_selfsync(ctx, enc, cb);
  EXPECT_TRUE(result.symbols.empty());
}

TEST(SelfSyncDecoder, SingleSubsequenceStream) {
  cudasim::SimContext ctx;
  const auto data = skewed(20, 16, 10);
  const auto cb = huffman::Codebook::from_data(data, 16);
  const auto enc = huffman::encode_plain(data, cb);
  ASSERT_EQ(enc.num_seqs(), 1u);
  const auto result = decode_selfsync(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

}  // namespace
}  // namespace ohd::core
