// Tests of the T_high derivation and the Algorithm 2 classification policy.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/decode_write.hpp"
#include "cudasim/device_spec.hpp"

namespace ohd::core {
namespace {

TEST(THigh, V100MatchesPaperValue) {
  // Paper §IV-C: "on the Nvidia Tesla V100 ... the corresponding value of
  // T_high is 8".
  EXPECT_EQ(compute_t_high(cudasim::DeviceSpec::v100(), 128), 8u);
}

TEST(THigh, ScalesWithSharedMemory) {
  cudasim::DeviceSpec big = cudasim::DeviceSpec::v100();
  big.shmem_per_sm_bytes *= 2;
  EXPECT_GT(compute_t_high(big, 128),
            compute_t_high(cudasim::DeviceSpec::v100(), 128));
}

TEST(THigh, NeverZero) {
  cudasim::DeviceSpec tiny = cudasim::DeviceSpec::v100();
  tiny.shmem_per_sm_bytes = 1024;
  EXPECT_GE(compute_t_high(tiny, 128), 1u);
}

TEST(THigh, LargerBlocksAllowMoreSharedMemoryPerBlock) {
  // 25% occupancy needs fewer blocks when blocks are bigger, so the per-block
  // shared budget (and hence T_high) grows.
  EXPECT_GE(compute_t_high(cudasim::DeviceSpec::v100(), 256),
            compute_t_high(cudasim::DeviceSpec::v100(), 128));
}

TEST(TunerPolicy, BufferIsProportionalToRatioClass) {
  // Class k (ratio in (k-1, k]) gets a 1024*k-symbol buffer; the paper's
  // example: ratio group (3,4] -> buffer length 4096.
  const DecoderConfig config;
  const std::uint32_t t_high = 8;
  for (std::uint32_t k = 1; k <= t_high; ++k) {
    EXPECT_EQ(1024 * k, k * 1024u);  // policy documented in decode_write.cpp
  }
  EXPECT_EQ(config.overflow_buffer_symbols, 3584u);
}

}  // namespace
}  // namespace ohd::core
