#include "core/reference.hpp"

#include <gtest/gtest.h>

#include "core/selfsync_decoder.hpp"
#include "data/generic.hpp"

namespace ohd::core {
namespace {

TEST(Reference, SymbolsMatchInput) {
  const auto data = data::geometric_stream(20000, 256, 0.7, 1);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_plain(data, cb);
  const ReferenceSync ref = reference_sync(enc, cb);
  EXPECT_EQ(ref.symbols, data);
}

TEST(Reference, CountsSumToTotal) {
  const auto data = data::zipf_stream(30000, 512, 1.2, 2);
  const auto cb = huffman::Codebook::from_data(data, 512);
  const auto enc = huffman::encode_plain(data, cb);
  const ReferenceSync ref = reference_sync(enc, cb);
  std::uint64_t total = 0;
  for (auto c : ref.sym_count) total += c;
  EXPECT_EQ(total, data.size());
}

TEST(Reference, SelfSyncAgreesWithReference) {
  const auto data = data::markov_stream(50000, 1024, 0.002, 3);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  cudasim::SimContext ctx;
  const SyncInfo sync = selfsync_synchronize(ctx, enc, cb, {}, true);
  const ReferenceSync ref = reference_sync(enc, cb);
  EXPECT_EQ(check_sync_against_reference(ref, sync.start_bit, sync.sym_count),
            "");
}

TEST(Reference, CheckerReportsStartBitMismatch) {
  const auto data = data::geometric_stream(5000, 64, 0.6, 4);
  const auto cb = huffman::Codebook::from_data(data, 64);
  const auto enc = huffman::encode_plain(data, cb);
  const ReferenceSync ref = reference_sync(enc, cb);
  auto bad_starts = ref.start_bit;
  bad_starts[1] += 1;
  const std::string msg =
      check_sync_against_reference(ref, bad_starts, ref.sym_count);
  EXPECT_NE(msg.find("start_bit[1]"), std::string::npos);
}

TEST(Reference, CheckerReportsCountMismatch) {
  const auto data = data::geometric_stream(5000, 64, 0.6, 5);
  const auto cb = huffman::Codebook::from_data(data, 64);
  const auto enc = huffman::encode_plain(data, cb);
  const ReferenceSync ref = reference_sync(enc, cb);
  auto bad_counts = ref.sym_count;
  bad_counts.back() += 1;
  EXPECT_NE(check_sync_against_reference(ref, ref.start_bit, bad_counts), "");
}

TEST(Reference, GapArrayValidatesCleanEncoding) {
  const auto data = data::quant_code_stream(40000, 1024, 30.0, 6);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);
  EXPECT_EQ(check_gap_array(enc, cb), "");
}

TEST(Reference, GapArrayCheckerCatchesCorruption) {
  const auto data = data::quant_code_stream(40000, 1024, 30.0, 7);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  auto enc = huffman::encode_gap(data, cb);
  // Find a gap whose perturbation stays in byte range.
  for (auto& g : enc.gaps) {
    if (g < 250) {
      g += 1;
      break;
    }
  }
  EXPECT_NE(check_gap_array(enc, cb), "");
}

}  // namespace
}  // namespace ohd::core
