// Unit tests of the decode+write phase (Algorithm 1) in isolation, built on
// the gap-array plan so start bits are exact by construction.
#include "core/decode_write.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bitio/bit_reader.hpp"
#include "cudasim/algorithms.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"
#include "util/rng.hpp"

namespace ohd::core {
namespace {

struct Fixture {
  std::vector<std::uint16_t> data;
  huffman::Codebook cb;
  huffman::GapEncoding enc;
  std::vector<std::uint64_t> start_bit;
  std::vector<std::uint32_t> sym_count;
  std::vector<std::uint64_t> out_index;

  WritePlan plan(cudasim::SimContext& ctx) {
    WritePlan p;
    p.stream = &enc.stream;
    p.codebook = &cb;
    p.start_bit = start_bit;
    p.out_index = out_index;
    p.units_addr = ctx.reserve_address(enc.stream.units.size() * 4);
    p.start_bit_addr = ctx.reserve_address(start_bit.size() * 8);
    p.out_index_addr = ctx.reserve_address(out_index.size() * 8);
    p.out_addr = ctx.reserve_address(data.size() * 2);
    p.table_addr = ctx.reserve_address(1 << 18);
    return p;
  }
};

Fixture make_fixture(std::size_t n, std::uint32_t alphabet, double cont,
                     std::uint64_t seed) {
  Fixture f;
  util::Xoshiro256 rng(seed);
  f.data.resize(n);
  for (auto& s : f.data) {
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < cont) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  f.cb = huffman::Codebook::from_data(f.data, alphabet);
  f.enc = huffman::encode_gap(f.data, f.cb);

  const std::uint32_t num_subseqs = f.enc.stream.num_subseqs();
  const std::uint64_t subseq_bits = f.enc.stream.geometry.subseq_bits();
  f.start_bit.resize(num_subseqs + 1);
  for (std::uint32_t g = 0; g < num_subseqs; ++g) {
    f.start_bit[g] = std::min<std::uint64_t>(
        g * subseq_bits + f.enc.gaps[g], f.enc.stream.total_bits);
  }
  f.start_bit[num_subseqs] = f.enc.stream.total_bits;

  // Exact counts from the boundaries.
  f.sym_count.assign(num_subseqs, 0);
  {
    bitio::BitReader r(f.enc.stream.units, f.enc.stream.total_bits);
    std::uint32_t g = 0;
    std::size_t decoded = 0;
    while (decoded < f.data.size()) {
      while (g + 1 < num_subseqs && r.position() >= f.start_bit[g + 1]) ++g;
      huffman::decode_one(r, f.cb);
      ++f.sym_count[g];
      ++decoded;
    }
  }
  cudasim::SimContext scratch;
  f.out_index = cudasim::device_exclusive_prefix_sum(scratch, f.sym_count);
  return f;
}

TEST(DecodeWriteDirect, ReproducesStream) {
  cudasim::SimContext ctx;
  Fixture f = make_fixture(30000, 256, 0.7, 1);
  std::vector<std::uint16_t> out(f.data.size());
  decode_write_direct(ctx, f.plan(ctx), out, {}, true);
  EXPECT_EQ(out, f.data);
}

TEST(DecodeWriteStaged, ReproducesStreamAtVariousBufferSizes) {
  for (std::uint32_t buffer : {1024u, 1536u, 4096u, 8192u}) {
    cudasim::SimContext ctx;
    Fixture f = make_fixture(30000, 256, 0.7, 2);
    std::vector<std::uint16_t> out(f.data.size());
    decode_write_staged(ctx, f.plan(ctx), out, {}, buffer);
    EXPECT_EQ(out, f.data) << "buffer=" << buffer;
  }
}

TEST(DecodeWriteStaged, RejectsBufferSmallerThanSubsequence) {
  cudasim::SimContext ctx;
  Fixture f = make_fixture(5000, 16, 0.5, 3);
  std::vector<std::uint16_t> out(f.data.size());
  EXPECT_THROW(decode_write_staged(ctx, f.plan(ctx), out, {}, 64),
               std::invalid_argument);
}

TEST(DecodeWriteStaged, HighCompressibilityNeedsManyIterations) {
  // Nearly constant stream: ~128 symbols per subsequence => a sequence emits
  // ~16K symbols, far more than a small buffer; the iteration logic must
  // still produce the exact stream.
  cudasim::SimContext ctx;
  Fixture f = make_fixture(120000, 512, 0.02, 4);
  std::vector<std::uint16_t> out(f.data.size());
  decode_write_staged(ctx, f.plan(ctx), out, {}, 1024);
  EXPECT_EQ(out, f.data);
}

TEST(DecodeWriteStaged, CoalescedWritesBeatDirectScatter) {
  Fixture f = make_fixture(200000, 512, 0.1, 5);
  cudasim::SimContext c1, c2;
  std::vector<std::uint16_t> out1(f.data.size()), out2(f.data.size());
  const double direct_s = decode_write_direct(c1, f.plan(c1), out1, {}, true);
  const double staged_s = decode_write_staged(c2, f.plan(c2), out2, {}, 4096);
  EXPECT_EQ(out1, out2);
  EXPECT_LT(staged_s, direct_s);
}

TEST(DecodeWriteStaged, SequenceSubsetDecodesOnlyThoseSequences) {
  cudasim::SimContext ctx;
  Fixture f = make_fixture(100000, 256, 0.7, 6);
  const std::uint32_t block = DecoderConfig{}.threads_per_block;
  const std::uint32_t num_seqs =
      (f.enc.stream.num_subseqs() + block - 1) / block;
  ASSERT_GT(num_seqs, 2u);
  std::vector<std::uint32_t> ids = {1};  // decode only sequence 1
  std::vector<std::uint16_t> out(f.data.size(), 0xFFFF);
  decode_write_staged(ctx, f.plan(ctx), out, {}, 4096, ids);
  const std::uint64_t lo = f.out_index[block];
  const std::uint64_t hi = f.out_index[std::min<std::uint64_t>(
      2 * block, f.enc.stream.num_subseqs())];
  for (std::uint64_t i = lo; i < hi; ++i) {
    EXPECT_EQ(out[i], f.data[i]) << i;
  }
  EXPECT_EQ(out[0], 0xFFFF);  // sequence 0 untouched
}

TEST(DecodeWriteTuned, ReproducesStream) {
  cudasim::SimContext ctx;
  Fixture f = make_fixture(150000, 512, 0.3, 7);
  std::vector<std::uint16_t> out(f.data.size());
  const auto tuned = decode_write_tuned(ctx, f.plan(ctx), out, {});
  EXPECT_EQ(out, f.data);
  EXPECT_GT(tuned.tune_seconds, 0.0);
  EXPECT_GT(tuned.decode_write_seconds, 0.0);
}

TEST(DecodeWriteTuned, ClassFrequenciesCoverAllSequences) {
  cudasim::SimContext ctx;
  Fixture f = make_fixture(150000, 512, 0.3, 8);
  std::vector<std::uint16_t> out(f.data.size());
  const auto tuned = decode_write_tuned(ctx, f.plan(ctx), out, {});
  std::uint64_t total = 0;
  for (auto c : tuned.class_freq) total += c;
  const std::uint32_t block = DecoderConfig{}.threads_per_block;
  EXPECT_EQ(total, (f.enc.stream.num_subseqs() + block - 1) / block);
}

// ---------------------------------------------------------------------------
// Host-side decode-write sink.

TEST(HostDecodeSymbols, EveryPayloadLayoutStreamsInOrder) {
  Fixture f = make_fixture(30000, 700, 0.5, 3);
  for (const Method method :
       {Method::SelfSyncOptimized, Method::GapArrayOptimized,
        Method::CuszNaive}) {
    const EncodedStream enc = encode_for_method(method, f.data, 1024);
    std::vector<std::uint16_t> sunk;
    sunk.reserve(f.data.size());
    host_decode_symbols(enc, [&](std::uint16_t s) { sunk.push_back(s); });
    EXPECT_EQ(sunk, f.data) << method_name(method);
  }
}

TEST(HostDecodeSymbols, TailShorterThanABatchDecodes) {
  // Stream lengths around the multi-symbol batch width exercise the
  // single-symbol tail loop (n mod kMaxMultiSymbols in {0, 1, 2}).
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 64u}) {
    Fixture f = make_fixture(n, 16, 0.5, static_cast<std::uint64_t>(n));
    const EncodedStream enc =
        encode_for_method(Method::SelfSyncOptimized, f.data, 1024);
    std::vector<std::uint16_t> sunk;
    host_decode_symbols(enc, [&](std::uint16_t s) { sunk.push_back(s); });
    EXPECT_EQ(sunk, f.data) << "n=" << n;
  }
}

TEST(HostDecodeSymbols, ThrowsOnDesynchronizedStream) {
  // A stream claiming more symbols than its bits hold walks into the zero
  // padding; with an incomplete code the unassigned prefix must surface as
  // an exception, not garbage symbols.
  const std::vector<std::uint16_t> data(10, 0);
  const huffman::Codebook cb = huffman::Codebook::from_data(data, 1);
  EncodedStream enc;
  enc.method = Method::SelfSyncOptimized;
  enc.codebook = cb;
  huffman::StreamEncoding stream = huffman::encode_plain(data, cb);
  // Symbol 0 has code '1' or '0'; flip a unit so decoding hits the
  // unassigned branch of the incomplete single-symbol code.
  stream.units[0] = ~stream.units[0];
  enc.payload = stream;
  enc.num_symbols = data.size();
  std::vector<std::uint16_t> sunk;
  EXPECT_THROW(
      host_decode_symbols(enc, [&](std::uint16_t s) { sunk.push_back(s); }),
      std::runtime_error);
}

}  // namespace
}  // namespace ohd::core
