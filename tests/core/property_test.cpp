// Cross-decoder property sweep: for any (alphabet, skew, size) combination,
// every decoder must reproduce the exact symbol stream, and the fine-grained
// decoders must agree with each other bit for bit.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/gap_decoder.hpp"
#include "core/huffman_codec.hpp"
#include "core/naive_decoder.hpp"
#include "core/selfsync_decoder.hpp"
#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> make_stream(std::uint32_t alphabet, double cont,
                                       std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    if (cont <= 0.0) {
      s = static_cast<std::uint16_t>(rng.bounded(alphabet));
    } else {
      std::uint32_t v = 0;
      while (v + 1 < alphabet && rng.uniform() < cont) ++v;
      s = static_cast<std::uint16_t>(v);
    }
  }
  return out;
}

class DecoderProperty
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(DecoderProperty, AllDecodersReproduceTheStream) {
  const auto [alphabet, cont, n] = GetParam();
  const auto data = make_stream(static_cast<std::uint32_t>(alphabet), cont,
                                static_cast<std::size_t>(n), 31u);
  const auto cb =
      huffman::Codebook::from_data(data, static_cast<std::uint32_t>(alphabet));

  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_chunked(data, cb, 1024);
    EXPECT_EQ(decode_naive_chunked(ctx, enc, cb).symbols, data) << "naive";
  }
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_plain(data, cb);
    EXPECT_EQ(
        decode_selfsync(ctx, enc, cb, {}, SelfSyncOptions::original()).symbols,
        data)
        << "self-sync original";
  }
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_plain(data, cb);
    EXPECT_EQ(decode_selfsync(ctx, enc, cb).symbols, data)
        << "self-sync optimized";
  }
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_gap(data, cb);
    EXPECT_EQ(decode_gap_array(ctx, enc, cb).symbols, data) << "gap array";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecoderProperty,
    ::testing::Combine(::testing::Values(2, 16, 256, 1024),
                       ::testing::Values(0.0, 0.3, 0.7, 0.98),
                       ::testing::Values(200, 17000, 90000)));

class GeometryProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeometryProperty, NonDefaultStreamGeometriesRoundtrip) {
  const auto [units_per_subseq, threads_per_block] = GetParam();
  DecoderConfig config;
  config.units_per_subseq = static_cast<std::uint32_t>(units_per_subseq);
  config.threads_per_block = static_cast<std::uint32_t>(threads_per_block);
  huffman::StreamGeometry g;
  g.units_per_subseq = config.units_per_subseq;
  g.subseqs_per_seq = config.threads_per_block;

  const auto data = make_stream(256, 0.6, 40000, 37u);
  const auto cb = huffman::Codebook::from_data(data, 256);
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_plain(data, cb, g);
    EXPECT_EQ(decode_selfsync(ctx, enc, cb, config).symbols, data);
  }
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_gap(data, cb, g);
    EXPECT_EQ(decode_gap_array(ctx, enc, cb, config).symbols, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometryProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(32, 128, 256)));

}  // namespace
}  // namespace ohd::core
