// Serialization round-trips for every encoding layout, plus corruption and
// truncation rejection (failure injection).
#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> quant_like(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    const long v = 512 + std::lround(rng.normal() * 25.0);
    s = static_cast<std::uint16_t>(std::clamp(v, 1l, 1023l));
  }
  return out;
}

class StreamSerialization : public ::testing::TestWithParam<Method> {};

TEST_P(StreamSerialization, RoundtripPreservesDecodedSymbols) {
  const auto codes = quant_like(30000, 3);
  const auto enc = encode_for_method(GetParam(), codes, 1024);
  const auto bytes = serialize_stream(enc);
  const auto parsed = deserialize_stream(bytes);
  EXPECT_EQ(parsed.method, enc.method);
  EXPECT_EQ(parsed.num_symbols, enc.num_symbols);

  cudasim::SimContext c1, c2;
  const auto a = decode(c1, enc);
  const auto b = decode(c2, parsed);
  EXPECT_EQ(a.symbols, b.symbols);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, StreamSerialization,
                         ::testing::Values(Method::CuszNaive,
                                           Method::SelfSyncOriginal,
                                           Method::SelfSyncOptimized,
                                           Method::GapArrayOriginal8Bit,
                                           Method::GapArrayOptimized));

TEST(StreamSerializationFailure, TruncationAtEveryPrefixThrows) {
  const auto codes = quant_like(2000, 5);
  const auto enc = encode_for_method(Method::GapArrayOptimized, codes, 1024);
  const auto bytes = serialize_stream(enc);
  // Any strict prefix must be rejected, never crash or mis-parse.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{5},
                          bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(deserialize_stream(prefix), std::invalid_argument)
        << "cut=" << cut;
  }
}

/// Exhaustive truncation fuzzing: EVERY strict byte prefix of a serialized
/// stream — so every field boundary of every method's layout — must throw,
/// for all five methods.
TEST_P(StreamSerialization, TruncationAtEveryByteThrows) {
  const auto codes = quant_like(600, 17);
  const auto bytes = serialize_stream(encode_for_method(GetParam(), codes, 1024));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(deserialize_stream(prefix), std::invalid_argument)
        << method_name(GetParam()) << " cut=" << cut;
  }
}

/// Inconsistent lengths: the header's num_symbols (u64 at byte 6) no longer
/// matches the payload's symbol count.
TEST_P(StreamSerialization, TamperedSymbolCountThrows) {
  const auto codes = quant_like(600, 19);
  auto bytes = serialize_stream(encode_for_method(GetParam(), codes, 1024));
  bytes[6] ^= 0x01;
  EXPECT_THROW(deserialize_stream(bytes), std::invalid_argument)
      << method_name(GetParam());
}

TEST(StreamSerializationFailure, BadMagicThrows) {
  const auto codes = quant_like(100, 7);
  auto bytes =
      serialize_stream(encode_for_method(Method::SelfSyncOptimized, codes, 1024));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_stream(bytes), std::invalid_argument);
}

TEST(StreamSerializationFailure, BadVersionThrows) {
  const auto codes = quant_like(100, 9);
  auto bytes =
      serialize_stream(encode_for_method(Method::SelfSyncOptimized, codes, 1024));
  bytes[4] = 99;
  EXPECT_THROW(deserialize_stream(bytes), std::invalid_argument);
}

TEST(StreamSerializationFailure, BadMethodTagThrows) {
  const auto codes = quant_like(100, 11);
  auto bytes =
      serialize_stream(encode_for_method(Method::SelfSyncOptimized, codes, 1024));
  bytes[5] = 42;
  EXPECT_THROW(deserialize_stream(bytes), std::invalid_argument);
}

TEST(StreamSerialization, CodebookOmittedResolvesAgainstSharedBook) {
  const auto codes = quant_like(20000, 17);
  const auto enc = encode_for_method(Method::GapArrayOptimized, codes, 1024);

  const auto slim = serialize_stream(enc, /*include_codebook=*/false);
  const auto full = serialize_stream(enc);
  EXPECT_LT(slim.size(), full.size());

  // Without the shared book the stream is undecodable...
  EXPECT_THROW(deserialize_stream(slim), std::invalid_argument);
  // ... with it, the parse reproduces the self-contained stream exactly.
  const auto parsed = deserialize_stream(slim, &enc.codebook);
  EXPECT_EQ(serialize_stream(parsed), full);

  // A self-contained stream ignores any shared book offered alongside.
  const auto parsed_full = deserialize_stream(full, &enc.codebook);
  EXPECT_EQ(serialize_stream(parsed_full), full);
}

TEST(StreamSerializationFailure, RandomCorruptionNeverCrashes) {
  const auto codes = quant_like(5000, 13);
  const auto original =
      serialize_stream(encode_for_method(Method::GapArrayOptimized, codes, 1024));
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    // Either parses (corruption hit the payload bits, not the metadata) or
    // throws invalid_argument; anything else is a bug.
    try {
      const auto parsed = deserialize_stream(bytes);
      (void)parsed;
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ohd::core
