#include "core/gap_decoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/selfsync_decoder.hpp"
#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> skewed(std::size_t n, std::uint32_t alphabet,
                                  std::uint64_t seed, double cont = 0.7) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < cont) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

TEST(GapDecoder, RoundtripOptimized) {
  cudasim::SimContext ctx;
  const auto data = skewed(60000, 256, 1);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_gap(data, cb);
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(GapDecoder, RoundtripDirectWrites) {
  cudasim::SimContext ctx;
  const auto data = skewed(60000, 256, 2);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_gap(data, cb);
  GapArrayOptions opts;
  opts.staged_writes = false;
  opts.tune_shared_memory = false;
  const auto result = decode_gap_array(ctx, enc, cb, {}, opts);
  EXPECT_EQ(result.symbols, data);
}

TEST(GapDecoder, RoundtripFixedBuffer) {
  cudasim::SimContext ctx;
  const auto data = skewed(60000, 256, 3);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_gap(data, cb);
  GapArrayOptions opts;
  opts.tune_shared_memory = false;
  opts.fixed_buffer_symbols = 1024;
  const auto result = decode_gap_array(ctx, enc, cb, {}, opts);
  EXPECT_EQ(result.symbols, data);
}

TEST(GapDecoder, NoSynchronizationPhases) {
  cudasim::SimContext ctx;
  const auto data = skewed(30000, 128, 4);
  const auto cb = huffman::Codebook::from_data(data, 128);
  const auto enc = huffman::encode_gap(data, cb);
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_EQ(result.phases.intra_sync_s, 0.0);
  EXPECT_EQ(result.phases.inter_sync_s, 0.0);
  EXPECT_GT(result.phases.output_index_s, 0.0);
  EXPECT_GT(result.phases.decode_write_s, 0.0);
}

TEST(GapDecoder, EightBitVariantRoundtripsTrimmedCodes) {
  cudasim::SimContext ctx;
  auto data = skewed(40000, 256, 5);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_gap(data, cb);
  const auto result =
      decode_gap_array(ctx, enc, cb, {}, GapArrayOptions::original_8bit());
  EXPECT_EQ(result.symbols, data);
}

TEST(GapDecoder, HighCompressibilityRoundtrip) {
  cudasim::SimContext ctx;
  const auto data = skewed(100000, 1024, 6, 0.02);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(GapDecoder, RejectsMismatchedGapArray) {
  cudasim::SimContext ctx;
  const auto data = skewed(10000, 64, 7);
  const auto cb = huffman::Codebook::from_data(data, 64);
  auto enc = huffman::encode_gap(data, cb);
  enc.gaps.pop_back();
  EXPECT_THROW(decode_gap_array(ctx, enc, cb), std::invalid_argument);
}

TEST(GapDecoder, EmptyInput) {
  cudasim::SimContext ctx;
  const std::vector<std::uint16_t> train = {0, 1};
  const auto cb = huffman::Codebook::from_data(train, 4);
  const auto enc = huffman::encode_gap(std::vector<std::uint16_t>{}, cb);
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_TRUE(result.symbols.empty());
}

TEST(GapDecoder, FasterThanSelfSyncOverall) {
  // The gap array removes the synchronization phases entirely, so with the
  // same optimizations it must decode faster end to end (paper §V-C).
  const auto data = skewed(200000, 512, 8);
  const auto cb = huffman::Codebook::from_data(data, 512);
  cudasim::SimContext c_gap;
  const auto gap_enc = huffman::encode_gap(data, cb);
  const double gap_s =
      decode_gap_array(c_gap, gap_enc, cb).phases.total();

  cudasim::SimContext c_ss;
  const auto plain_enc = huffman::encode_plain(data, cb);
  const double ss_s = decode_selfsync(c_ss, plain_enc, cb).phases.total();
  EXPECT_LT(gap_s, ss_s);
}

}  // namespace
}  // namespace ohd::core
