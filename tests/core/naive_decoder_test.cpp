#include "core/naive_decoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> skewed(std::size_t n, std::uint32_t alphabet,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < 0.7) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

TEST(NaiveDecoder, RoundtripsRandomStream) {
  cudasim::SimContext ctx;
  const auto data = skewed(50000, 256, 1);
  const auto cb = huffman::Codebook::from_data(data, 256);
  const auto enc = huffman::encode_chunked(data, cb, 1024);
  const auto result = decode_naive_chunked(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(NaiveDecoder, RoundtripsPartialFinalChunk) {
  cudasim::SimContext ctx;
  const auto data = skewed(1025, 64, 2);  // 1 full + 1 single-symbol chunk
  const auto cb = huffman::Codebook::from_data(data, 64);
  const auto enc = huffman::encode_chunked(data, cb, 1024);
  const auto result = decode_naive_chunked(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(NaiveDecoder, EmptyStream) {
  cudasim::SimContext ctx;
  huffman::ChunkedEncoding enc;
  enc.chunk_symbols = 1024;
  const auto cb = huffman::Codebook::from_lengths(std::vector<std::uint8_t>{1, 1});
  const auto result = decode_naive_chunked(ctx, enc, cb);
  EXPECT_TRUE(result.symbols.empty());
  EXPECT_EQ(result.phases.total(), 0.0);
}

TEST(NaiveDecoder, ReportsDecodeWritePhaseOnly) {
  cudasim::SimContext ctx;
  const auto data = skewed(5000, 64, 3);
  const auto cb = huffman::Codebook::from_data(data, 64);
  const auto enc = huffman::encode_chunked(data, cb, 512);
  const auto result = decode_naive_chunked(ctx, enc, cb);
  EXPECT_GT(result.phases.decode_write_s, 0.0);
  EXPECT_EQ(result.phases.intra_sync_s, 0.0);
  EXPECT_EQ(result.phases.tune_s, 0.0);
}

TEST(NaiveDecoder, SmallerChunksDecodeFasterOnSimulatedGpu) {
  // Smaller chunks = more threads = more parallelism (§III-A's argument for
  // finer granularity), at a compression-ratio cost tested elsewhere.
  const auto data = skewed(200000, 256, 4);
  const auto cb = huffman::Codebook::from_data(data, 256);
  cudasim::SimContext coarse_ctx, fine_ctx;
  const auto coarse = huffman::encode_chunked(data, cb, 8192);
  const auto fine = huffman::encode_chunked(data, cb, 512);
  const double coarse_s =
      decode_naive_chunked(coarse_ctx, coarse, cb).phases.total();
  const double fine_s = decode_naive_chunked(fine_ctx, fine, cb).phases.total();
  EXPECT_LT(fine_s, coarse_s);
}

}  // namespace
}  // namespace ohd::core
