// Adversarial and stress scenarios for the parallel decoders: distributions
// chosen to make synchronization slow, buffers iterate, counts skew, and
// boundaries land awkwardly.
#include <gtest/gtest.h>

#include "core/gap_decoder.hpp"
#include "core/reference.hpp"
#include "core/selfsync_decoder.hpp"
#include "data/generic.hpp"

namespace ohd::core {
namespace {

void roundtrip_all(const std::vector<std::uint16_t>& data,
                   std::uint32_t alphabet) {
  const auto cb = huffman::Codebook::from_data(data, alphabet);
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_plain(data, cb);
    EXPECT_EQ(decode_selfsync(ctx, enc, cb).symbols, data) << "selfsync";
  }
  {
    cudasim::SimContext ctx;
    const auto enc = huffman::encode_gap(data, cb);
    EXPECT_EQ(decode_gap_array(ctx, enc, cb).symbols, data) << "gap";
  }
}

TEST(DecoderStress, TwoBitCodesDelaySelfSynchronization) {
  // A near-balanced 4-symbol alphabet yields ~2-bit codewords: two decode
  // chains offset by one bit can stay misaligned for many subsequences, the
  // worst case for the synchronization phase (paper: up to 125 subsequences).
  const auto data = data::uniform_stream(300000, 4, 11);
  roundtrip_all(data, 4);
}

TEST(DecoderStress, OneBitDominatedStream) {
  // 97% one symbol: codewords of length 1 dominate; output counts per
  // subsequence approach subseq_bits, the maximum.
  const auto data = data::geometric_stream(200000, 1024, 0.03, 12);
  roundtrip_all(data, 1024);
}

TEST(DecoderStress, MaxLengthCodewordsCrossBoundaries) {
  // Zipf with a deep tail: codewords reach kMaxCodeLen, maximizing boundary
  // straddling and gap values.
  const auto data = data::zipf_stream(150000, 16384, 1.05, 13);
  const auto cb = huffman::Codebook::from_data(data, 16384);
  EXPECT_GE(cb.max_len(), 14u);
  roundtrip_all(data, 16384);
}

TEST(DecoderStress, BurstyStreamsExerciseTunerClasses) {
  const auto data = data::markov_stream(400000, 1024, 0.0005, 14);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);
  cudasim::SimContext ctx;
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
}

TEST(DecoderStress, StreamLengthsAroundBoundaries) {
  // Lengths that land exactly on / one off subsequence, sequence, and unit
  // boundaries.
  const huffman::StreamGeometry g;
  const std::uint64_t seq_syms = g.seq_bits();  // 1-bit codes => bits==syms
  for (std::uint64_t n :
       {seq_syms - 1, seq_syms, seq_syms + 1, 2 * seq_syms - 127,
        g.subseq_bits(), g.subseq_bits() + 1, std::uint64_t{1},
        std::uint64_t{2}}) {
    // Half-and-half two-symbol data => exactly 1-bit codewords.
    std::vector<std::uint16_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = i % 2;
    roundtrip_all(data, 2);
  }
}

TEST(DecoderStress, SyncMatchesReferenceOnAdversarialData) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const auto data = data::uniform_stream(120000, 3, seed);
    const auto cb = huffman::Codebook::from_data(data, 3);
    const auto enc = huffman::encode_plain(data, cb);
    cudasim::SimContext ctx;
    const SyncInfo sync = selfsync_synchronize(ctx, enc, cb, {}, true);
    const ReferenceSync ref = reference_sync(enc, cb);
    ASSERT_EQ(
        check_sync_against_reference(ref, sync.start_bit, sync.sym_count), "")
        << "seed " << seed;
  }
}

TEST(DecoderStress, RepeatedDecodesAreDeterministic) {
  const auto data = data::quant_code_stream(100000, 1024, 40.0, 15);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);
  cudasim::SimContext c1, c2;
  const auto a = decode_gap_array(c1, enc, cb);
  const auto b = decode_gap_array(c2, enc, cb);
  EXPECT_EQ(a.symbols, b.symbols);
  EXPECT_DOUBLE_EQ(a.phases.total(), b.phases.total());
}

}  // namespace
}  // namespace ohd::core
