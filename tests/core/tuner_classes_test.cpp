// Behavior of Algorithm 2's classification on heterogeneous data: bursty
// streams must populate multiple compression-ratio classes, and the
// per-class buffers must follow the proportional policy.
#include <gtest/gtest.h>

#include "core/decode_write.hpp"
#include "core/gap_decoder.hpp"
#include "data/generic.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {
namespace {

TEST(TunerClasses, BurstyDataPopulatesMultipleClasses) {
  const auto data = data::markov_stream(600000, 1024, 0.0004, 41);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);

  // Run the tuned decode through the gap decoder and inspect the class
  // histogram via a direct decode_write_tuned call.
  cudasim::SimContext ctx;
  const auto result = decode_gap_array(ctx, enc, cb);
  ASSERT_EQ(result.symbols, data);

  // Re-derive the tuner's view: per-sequence ratios must span classes.
  const std::uint32_t block = DecoderConfig{}.threads_per_block;
  const std::uint32_t num_subseqs = enc.stream.num_subseqs();
  const std::uint32_t num_seqs = (num_subseqs + block - 1) / block;
  ASSERT_GT(num_seqs, 4u);
}

TEST(TunerClasses, UniformDataLandsInOneClass) {
  const auto data = data::uniform_stream(300000, 1024, 43);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);
  cudasim::SimContext ctx;

  // Build a write plan through the decoder internals by running the tuned
  // path and checking it found a single dominant class.
  const auto result = decode_gap_array(ctx, enc, cb);
  EXPECT_EQ(result.symbols, data);
  // Uniform 1024-symbol data compresses to ~10/16 of its size: ratio < 2, so
  // all sequences classify as class 1 or 2 and tuning cannot hurt: tuned
  // decode+write must be within a whisker of a fixed 2048-buffer run.
  cudasim::SimContext ctx2;
  GapArrayOptions fixed;
  fixed.tune_shared_memory = false;
  fixed.fixed_buffer_symbols = 2048;
  const auto fixed_result = decode_gap_array(ctx2, enc, cb, {}, fixed);
  EXPECT_LT(result.phases.decode_write_s,
            fixed_result.phases.decode_write_s * 1.10);
}

TEST(TunerClasses, TunedBeatsWorstFixedBufferOnBurstyData) {
  const auto data = data::markov_stream(500000, 1024, 0.0005, 47);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_gap(data, cb);

  double worst = 0.0;
  for (std::uint32_t buffer : {1024u, 4096u, 8192u}) {
    cudasim::SimContext ctx;
    GapArrayOptions opts;
    opts.tune_shared_memory = false;
    opts.fixed_buffer_symbols = buffer;
    worst = std::max(worst, decode_gap_array(ctx, enc, cb, {}, opts)
                                .phases.decode_write_s);
  }
  cudasim::SimContext ctx;
  const auto tuned = decode_gap_array(ctx, enc, cb);
  EXPECT_LT(tuned.phases.decode_write_s, worst);
}

}  // namespace
}  // namespace ohd::core
