#include "core/huffman_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::core {
namespace {

std::vector<std::uint16_t> quant_like(std::size_t n, std::uint64_t seed) {
  // Quantization-code-like stream: concentrated around the radius.
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    const long v = 512 + std::lround(rng.normal() * 20.0);
    s = static_cast<std::uint16_t>(std::clamp(v, 1l, 1023l));
  }
  return out;
}

TEST(Codec, MethodNamesAreDistinct) {
  EXPECT_NE(method_name(Method::CuszNaive),
            method_name(Method::GapArrayOptimized));
  EXPECT_EQ(method_name(Method::SelfSyncOptimized), "opt. self-sync");
}

class CodecRoundtrip : public ::testing::TestWithParam<Method> {};

TEST_P(CodecRoundtrip, EncodeThenDecodeReproducesCodes) {
  cudasim::SimContext ctx;
  const auto codes = quant_like(60000, 17);
  const auto enc = encode_for_method(GetParam(), codes, 1024);
  const auto result = decode(ctx, enc);
  if (GetParam() == Method::GapArrayOriginal8Bit) {
    // The 8-bit baseline decodes the trimmed codes.
    ASSERT_EQ(result.symbols.size(), codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(result.symbols[i], codes[i] & 0xFF);
    }
  } else {
    EXPECT_EQ(result.symbols, codes);
  }
  EXPECT_GT(result.seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CodecRoundtrip,
                         ::testing::Values(Method::CuszNaive,
                                           Method::SelfSyncOriginal,
                                           Method::SelfSyncOptimized,
                                           Method::GapArrayOriginal8Bit,
                                           Method::GapArrayOptimized));

class CodecDecodePath : public ::testing::TestWithParam<Method> {};

TEST_P(CodecDecodePath, LutAndLegacyPathsDecodeIdentically) {
  // Every decoder family must produce the same output through the flat-LUT
  // fast path (default) and the legacy bit-by-bit path.
  const auto codes = quant_like(60000, 31);
  DecoderConfig lut_config;
  ASSERT_TRUE(lut_config.use_lut_decode);  // LUT is the documented default
  DecoderConfig legacy_config;
  legacy_config.use_lut_decode = false;

  const auto enc = encode_for_method(GetParam(), codes, 1024, lut_config);
  cudasim::SimContext lut_ctx, legacy_ctx;
  const auto lut = decode(lut_ctx, enc, lut_config);
  const auto legacy = decode(legacy_ctx, enc, legacy_config);
  EXPECT_EQ(lut.symbols, legacy.symbols);

  // Simulated-time expectations split by family: the naive baseline and the
  // OPTIMIZED decoders (cache/shared-resident tables) get strictly faster
  // through the LUT; the ORIGINAL decoders fetch the table from global
  // memory per codeword, where the probe's scatter across the 16 KiB LUT
  // costs about as many transactions as the legacy pair of concentrated
  // reads — a wash (allow 10% either way), which is precisely why the paper
  // pairs table optimizations with the shared-memory staging.
  const bool table_from_global = GetParam() == Method::SelfSyncOriginal ||
                                 GetParam() == Method::GapArrayOriginal8Bit;
  if (table_from_global) {
    EXPECT_LT(lut.seconds(), legacy.seconds() * 1.10);
    EXPECT_GT(lut.seconds(), legacy.seconds() * 0.90);
  } else {
    EXPECT_LT(lut.seconds(), legacy.seconds());
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CodecDecodePath,
                         ::testing::Values(Method::CuszNaive,
                                           Method::SelfSyncOriginal,
                                           Method::SelfSyncOptimized,
                                           Method::GapArrayOriginal8Bit,
                                           Method::GapArrayOptimized));

class CodecMultiSymPath : public ::testing::TestWithParam<Method> {};

TEST_P(CodecMultiSymPath, MultiSymbolPathDecodesIdentically) {
  // Every decoder family must produce the same output through the
  // multi-symbol LUT batch (default), the single-symbol LUT, and the legacy
  // bit-by-bit walk.
  const auto codes = quant_like(60000, 37);
  DecoderConfig multi_config;
  ASSERT_TRUE(multi_config.use_multisym_lut);  // documented default
  DecoderConfig single_config;
  single_config.use_multisym_lut = false;
  DecoderConfig legacy_config;
  legacy_config.use_lut_decode = false;

  const auto enc = encode_for_method(GetParam(), codes, 1024, multi_config);
  cudasim::SimContext multi_ctx, single_ctx, legacy_ctx;
  const auto multi = decode(multi_ctx, enc, multi_config);
  const auto single = decode(single_ctx, enc, single_config);
  const auto legacy = decode(legacy_ctx, enc, legacy_config);
  EXPECT_EQ(multi.symbols, single.symbols);
  EXPECT_EQ(multi.symbols, legacy.symbols);

  // Simulated time: the batch amortizes the probe everywhere the decode
  // table is cache/shared-resident — every phase of the naive and optimized
  // decoders, and the Original decoders' synchronization/count phases. Only
  // the Original decode+write phase (per-codeword global-memory table
  // fetches) keeps the single-symbol probe, so even the Originals get
  // strictly faster overall.
  EXPECT_LT(multi.seconds(), single.seconds());
}

TEST_P(CodecMultiSymPath, MultiSymbolTimingsAreDeterministic) {
  // Same stream + config => identical PhaseTimings, run to run.
  const auto codes = quant_like(20000, 41);
  const DecoderConfig config;
  const auto enc = encode_for_method(GetParam(), codes, 1024, config);
  cudasim::SimContext ctx_a, ctx_b;
  const auto a = decode(ctx_a, enc, config);
  const auto b = decode(ctx_b, enc, config);
  EXPECT_EQ(a.symbols, b.symbols);
  EXPECT_DOUBLE_EQ(a.phases.intra_sync_s, b.phases.intra_sync_s);
  EXPECT_DOUBLE_EQ(a.phases.inter_sync_s, b.phases.inter_sync_s);
  EXPECT_DOUBLE_EQ(a.phases.output_index_s, b.phases.output_index_s);
  EXPECT_DOUBLE_EQ(a.phases.tune_s, b.phases.tune_s);
  EXPECT_DOUBLE_EQ(a.phases.decode_write_s, b.phases.decode_write_s);
  EXPECT_DOUBLE_EQ(a.phases.other_s, b.phases.other_s);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CodecMultiSymPath,
                         ::testing::Values(Method::CuszNaive,
                                           Method::SelfSyncOriginal,
                                           Method::SelfSyncOptimized,
                                           Method::GapArrayOriginal8Bit,
                                           Method::GapArrayOptimized));

TEST(Codec, CompressedBytesIncludeSidecars) {
  const auto codes = quant_like(50000, 19);
  const auto plain = encode_for_method(Method::SelfSyncOptimized, codes, 1024);
  const auto gap = encode_for_method(Method::GapArrayOptimized, codes, 1024);
  // The gap array adds one byte per subsequence.
  EXPECT_GT(gap.compressed_bytes(), plain.compressed_bytes());
}

TEST(Codec, QuantCodeBytesAccountFor8BitTrim) {
  const auto codes = quant_like(1000, 21);
  const auto multi = encode_for_method(Method::GapArrayOptimized, codes, 1024);
  const auto trimmed =
      encode_for_method(Method::GapArrayOriginal8Bit, codes, 1024);
  EXPECT_EQ(multi.quant_code_bytes(), 2000u);
  EXPECT_EQ(trimmed.quant_code_bytes(), 1000u);
}

TEST(Codec, CompressionRatiosOfMethodsAreClose) {
  // Paper Table IV: the methods' ratios differ by at most ~10%.
  const auto codes = quant_like(100000, 23);
  const auto naive = encode_for_method(Method::CuszNaive, codes, 1024);
  const auto ss = encode_for_method(Method::SelfSyncOptimized, codes, 1024);
  const auto gap = encode_for_method(Method::GapArrayOptimized, codes, 1024);
  const double naive_cr = 2.0 * codes.size() / naive.compressed_bytes();
  const double ss_cr = 2.0 * codes.size() / ss.compressed_bytes();
  const double gap_cr = 2.0 * codes.size() / gap.compressed_bytes();
  EXPECT_NEAR(ss_cr / naive_cr, 1.0, 0.12);
  EXPECT_NEAR(gap_cr / naive_cr, 1.0, 0.12);
}

}  // namespace
}  // namespace ohd::core
