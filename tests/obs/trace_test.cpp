// obs/trace.hpp: span nesting via the thread-local stack (parent paths),
// worker-thread spans as thread roots, the deterministic sorted-text export,
// the Chrome trace_event export's structural invariants (monotone
// timestamps, balanced JSON, complete events), and disabled-mode no-ops.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace ohd::obs {
namespace {

TEST(TraceRecorder, NestedOpsBuildParentPaths) {
  TraceRecorder rec;
  const ScopedTelemetry scope(&rec);
  {
    const ScopedOp outer("compress");
    { const ScopedOp inner("quantize"); }
    { const ScopedOp inner("encode"); }
    { const ScopedOp inner("encode"); }
  }
  EXPECT_EQ(rec.sorted_text(),
            "compress x1\n"
            "compress/encode x2\n"
            "compress/quantize x1\n");
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: children close before their parent.
  EXPECT_EQ(spans[3].name, "compress");
  EXPECT_EQ(spans[3].parent_id, -1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(spans[i].parent_id, spans[3].id);
  }
}

TEST(TraceRecorder, SortedTextIsDeterministicAcrossRuns) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    TraceRecorder rec;
    const ScopedTelemetry scope(&rec);
    {
      const ScopedOp a("a");
      { const ScopedOp b("b"); }
    }
    { const ScopedOp c("c"); }
    if (run == 0) {
      first = rec.sorted_text();
    } else {
      EXPECT_EQ(rec.sorted_text(), first);
    }
  }
}

TEST(TraceRecorder, WorkerThreadSpansAreThreadRoots) {
  TraceRecorder rec;
  const ScopedTelemetry scope(&rec);
  {
    const ScopedOp main_op("main_op");
    std::thread worker([] { const ScopedOp op("worker_op"); });
    worker.join();
  }
  const std::vector<Span> spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  int roots = 0;
  int thread_indices = 0;
  for (const Span& s : spans) {
    if (s.parent_id == -1) ++roots;
    thread_indices = std::max(thread_indices, s.thread_index);
  }
  EXPECT_EQ(roots, 2);  // nesting is per-thread, never across threads
  EXPECT_EQ(thread_indices, 1);  // two distinct dense thread indices
  // Both roots appear as distinct top-level paths.
  EXPECT_EQ(rec.sorted_text(), "main_op x1\nworker_op x1\n");
}

TEST(TraceRecorder, ChromeExportIsStructurallySound) {
  TraceRecorder rec;
  const ScopedTelemetry scope(&rec);
  {
    const ScopedOp outer("outer \"quoted\"");
    { const ScopedOp inner("inner"); }
  }
  const std::string json = rec.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Events are sorted by ts; the parent (earlier start) precedes the child.
  const auto outer_pos = json.find("outer");
  const auto inner_pos = json.find("inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  // The earliest event starts at ts 0 (timestamps are relative).
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
}

TEST(TraceRecorder, ClearEmptiesTheTrace) {
  TraceRecorder rec;
  const ScopedTelemetry scope(&rec);
  { const ScopedOp op("op"); }
  EXPECT_EQ(rec.spans().size(), 1u);
  rec.clear();
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_EQ(rec.sorted_text(), "");
  EXPECT_EQ(rec.chrome_trace_json(), "{\"traceEvents\": []}");
}

TEST(TraceRecorder, NothingRecordsWhileDisabled) {
  TraceRecorder rec;
  const bool was = enabled();
  TraceRecorder* prev = tracer();
  set_tracer(&rec);
  set_enabled(false);
  { const ScopedOp op("invisible"); }
  EXPECT_TRUE(rec.spans().empty());
  set_enabled(was);
  set_tracer(prev);
}

TEST(TraceRecorder, NothingRecordsWithoutAnInstalledRecorder) {
  TraceRecorder rec;
  const ScopedTelemetry scope(nullptr);  // enabled, but no tracer
  { const ScopedOp op("unrecorded"); }
  EXPECT_TRUE(rec.spans().empty());
}

TEST(TraceRecorder, ConcurrentSpansFromManyThreads) {
  TraceRecorder rec;
  const ScopedTelemetry scope(&rec);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ScopedOp outer("outer");
        const ScopedOp inner("inner");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.spans().size(), 2u * kThreads * kOpsPerThread);
  EXPECT_EQ(rec.sorted_text(),
            "outer x" + std::to_string(kThreads * kOpsPerThread) +
                "\nouter/inner x" + std::to_string(kThreads * kOpsPerThread) +
                "\n");
}

TEST(ScopedTelemetry, RestoresFlagTracerAndResetsRegistry) {
  set_enabled(false);
  set_tracer(nullptr);
  registry().counter("leftover").add(5);
  TraceRecorder rec;
  {
    const ScopedTelemetry scope(&rec);
    EXPECT_TRUE(enabled());
    EXPECT_EQ(tracer(), &rec);
    // Entry reset the registry: earlier counts are gone.
    EXPECT_EQ(registry().snapshot().counter("leftover")->value, 0u);
    registry().counter("leftover").add(7);
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(tracer(), nullptr);
  // Exit reset it again, so the next run starts clean.
  EXPECT_EQ(registry().snapshot().counter("leftover")->value, 0u);
}

}  // namespace
}  // namespace ohd::obs
