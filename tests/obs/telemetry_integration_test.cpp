// End-to-end telemetry: one streamed compress -> decompress round trip over
// a file-backed archive must populate pool, batch, reader, and sink metrics
// in a single obs::Snapshot (including frame-fetch latency quantiles and
// queue depth), produce a nested trace, keep the migrated per-object
// accessors (ArchiveReader::peak_frame_bytes, FileSink::flush_retries) in
// agreement with the registry, and record NOTHING into the registry when
// telemetry is disabled.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              0.02 * rng.normal());
  }
  return v;
}

struct Corpus {
  std::vector<std::vector<float>> storage;
  std::vector<FieldSpec> specs;
};

Corpus small_corpus() {
  Corpus c;
  c.storage.push_back(wavy_field(20000, 21));
  c.storage.push_back(wavy_field(96 * 70, 22));
  const sz::Dims dims[] = {sz::Dims::d1(20000), sz::Dims::d2(96, 70)};
  for (std::size_t i = 0; i < 2; ++i) {
    FieldSpec spec;
    spec.name = "field" + std::to_string(i);
    spec.data = c.storage[i];
    spec.dims = dims[i];
    spec.config.method = core::Method::GapArrayOptimized;
    spec.config.rel_error_bound = 1e-3;
    spec.chunk_elems = 4096;
    spec.plan.auto_method = i == 1;  // exercise both fan-out shapes
    c.specs.push_back(spec);
  }
  return c;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Streamed compress to a FileSink, footer-first reopen, batch decompress.
/// Returns the reader's peak_frame_bytes() accessor value.
std::uint64_t round_trip(const Corpus& corpus, const std::string& path) {
  ThreadPool pool(4);
  const BatchScheduler scheduler(pool);
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    scheduler.compress_to(writer, corpus.specs);
    writer.finish();
  }
  const FileSource source(path);
  const ArchiveReader reader(source);
  const BatchDecompressResult result = scheduler.decompress(reader);
  EXPECT_EQ(result.fields.size(), corpus.specs.size());
  return reader.peak_frame_bytes();
}

TEST(TelemetryIntegration, RoundTripSnapshotCoversEveryLayer) {
  const Corpus corpus = small_corpus();
  obs::TraceRecorder rec;
  const obs::ScopedTelemetry scope(&rec);
  const std::string path = temp_path("obs_roundtrip.bin");
  const std::uint64_t reader_peak = round_trip(corpus, path);
  std::remove(path.c_str());

  const obs::Snapshot snap = obs::registry().snapshot();

  // Pool: depth gauge balanced back to zero, wait/run latency recorded for
  // every submitted task.
  const obs::GaugeSnap* depth = snap.gauge("pool.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0);
  EXPECT_GE(depth->peak, 1);
  const obs::HistogramSnap* wait = snap.histogram("pool.task_wait_ns");
  const obs::HistogramSnap* run = snap.histogram("pool.task_run_ns");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_GT(wait->count, 0u);
  EXPECT_EQ(wait->count, run->count);

  // Batch: encode and decode chunk totals line up across directions, with
  // per-field chunk counters registered under the field names.
  const obs::CounterSnap* encoded = snap.counter("batch.chunks_encoded");
  const obs::CounterSnap* decoded = snap.counter("batch.chunks_decoded");
  ASSERT_NE(encoded, nullptr);
  ASSERT_NE(decoded, nullptr);
  EXPECT_GT(encoded->value, 0u);
  EXPECT_EQ(encoded->value, decoded->value);
  std::uint64_t per_field = 0;
  for (const FieldSpec& spec : corpus.specs) {
    const obs::CounterSnap* c =
        snap.counter("batch.field." + spec.name + ".chunks");
    ASSERT_NE(c, nullptr) << spec.name;
    per_field += c->value;
  }
  EXPECT_EQ(per_field, encoded->value);
  EXPECT_GT(snap.histogram("batch.encode_ns")->count, 0u);
  EXPECT_EQ(snap.histogram("batch.decode_ns")->count, decoded->value);

  // Reader: frame-fetch latency quantiles are populated and ordered; the
  // residency gauge drained to zero and its peak matches the migrated
  // per-reader accessor (one reader in this run).
  const obs::HistogramSnap* fetch = snap.histogram("reader.frame_fetch_ns");
  ASSERT_NE(fetch, nullptr);
  EXPECT_GE(fetch->count, decoded->value);
  EXPECT_LE(fetch->p50_ns, fetch->p95_ns);
  EXPECT_LE(fetch->p95_ns, fetch->p99_ns);
  EXPECT_LE(fetch->p99_ns, 2 * fetch->max_ns);
  const obs::GaugeSnap* frames = snap.gauge("reader.frame_bytes");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, 0);
  EXPECT_GT(frames->peak, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(frames->peak), reader_peak);
  EXPECT_GT(snap.counter("reader.bytes_read")->value, 0u);
  EXPECT_GE(snap.counter("reader.crc_checks")->value, decoded->value);
  EXPECT_EQ(snap.counter("reader.io_retries")->value, 0u);

  // Writer + sink: the archive's bytes were counted out and the FileSink
  // flush (via finish()'s commit) recorded its latency.
  EXPECT_GT(snap.counter("writer.bytes_written")->value, 0u);
  EXPECT_EQ(snap.counter("writer.chunks")->value, encoded->value);
  ASSERT_NE(snap.histogram("sink.flush_ns"), nullptr);
  EXPECT_GE(snap.histogram("sink.flush_ns")->count, 1u);
  EXPECT_EQ(snap.counter("sink.flush_retries")->value, 0u);

  // PhaseTimings bridge: the decompress absorbed its aggregated simulated
  // phase rows into decode.phase.* counters.
  bool has_phase = false;
  for (const obs::CounterSnap& c : snap.counters) {
    if (c.name.rfind("decode.phase.", 0) == 0 && c.value > 0) {
      has_phase = true;
    }
  }
  EXPECT_TRUE(has_phase);

  // The exportable report serializes all of the above.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("reader.frame_fetch_ns"), std::string::npos);
  EXPECT_NE(json.find("pool.queue_depth"), std::string::npos);

  // Trace: the batch phases nest deterministically on the calling thread and
  // worker-side ops were captured.
  const std::string text = rec.sorted_text();
  EXPECT_NE(text.find("batch.compress x1"), std::string::npos) << text;
  EXPECT_NE(text.find("batch.compress/batch.plan"), std::string::npos);
  EXPECT_NE(text.find("batch.compress/batch.write"), std::string::npos);
  EXPECT_NE(text.find("batch.decompress"), std::string::npos);
  EXPECT_NE(text.find("batch.decode/reader.frame_fetch"), std::string::npos);
  const std::string chrome = rec.chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(std::count(chrome.begin(), chrome.end(), '{'),
            std::count(chrome.begin(), chrome.end(), '}'));
}

TEST(TelemetryIntegration, DisabledRunRecordsNothingIntoTheRegistry) {
  const Corpus corpus = small_corpus();
  // Make sure the instruments exist (a prior enabled run registered them),
  // then verify a disabled run leaves every one untouched.
  obs::registry().reset();
  obs::set_enabled(false);
  obs::set_tracer(nullptr);
  const std::string path = temp_path("obs_disabled.bin");
  const std::uint64_t reader_peak = round_trip(corpus, path);
  std::remove(path.c_str());
  // The migrated per-object instruments stay always-on...
  EXPECT_GT(reader_peak, 0u);
  // ...but the process registry saw nothing.
  const obs::Snapshot snap = obs::registry().snapshot();
  for (const obs::CounterSnap& c : snap.counters) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::GaugeSnap& g : snap.gauges) {
    EXPECT_EQ(g.value, 0) << g.name;
    EXPECT_EQ(g.peak, 0) << g.name;
  }
  for (const obs::HistogramSnap& h : snap.histograms) {
    EXPECT_EQ(h.count, 0u) << h.name;
  }
  obs::registry().reset();
}

TEST(TelemetryIntegration, FaultCountersAggregateIntoRegistry) {
  const obs::ScopedTelemetry scope;
  std::vector<std::uint8_t> backing(4096, 0xab);
  const MemorySource inner(backing);
  FaultSpec spec;
  spec.seed = 5;
  spec.transient_read_rate = 1.0;
  spec.max_faults = 3;
  const FaultInjectingSource faulty(inner, spec);
  ReaderOptions options;
  options.retry.max_attempts = 8;
  // Raw reads through the wrapper: 3 injected faults, then clean.
  std::vector<std::uint8_t> buf(16);
  for (int i = 0; i < 4; ++i) {
    try {
      faulty.read_at(0, buf);
    } catch (const TransientIoError&) {
    }
  }
  const FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.transient_read_errors, 3u);
  EXPECT_EQ(stats.reads, 4u);
  const obs::Snapshot snap = obs::registry().snapshot();
  ASSERT_NE(snap.counter("fault.transient_read_errors"), nullptr);
  EXPECT_EQ(snap.counter("fault.transient_read_errors")->value, 3u);
}

}  // namespace
}  // namespace ohd::pipeline
