// obs/metrics.hpp: instrument exactness under concurrency (counter totals,
// gauge balance and peak monotonicity, histogram totals), histogram quantile
// correctness against a sorted reference, registry get-or-create / snapshot /
// reset semantics, snapshot JSON shape, the PhaseTimings bridge, and the
// disabled-mode no-op guarantees of ScopedOp.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ohd::obs {
namespace {

TEST(Counter, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndPeak) {
  Gauge g;
  g.add(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.peak(), 5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 13);
  EXPECT_EQ(g.peak(), 13);
  g.set(4);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.peak(), 13);
  g.set(40);
  EXPECT_EQ(g.peak(), 40);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST(Gauge, ConcurrentAddSubBalancesAndPeakIsMonotone) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kReps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kReps; ++i) {
        g.add(3);
        g.sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 0);
  // At least one thread was inside its add; never more than all of them.
  EXPECT_GE(g.peak(), 3);
  EXPECT_LE(g.peak(), 3 * kThreads);
}

TEST(LatencyHistogram, CountSumMaxAreExactUnderConcurrency) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expect_sum += (static_cast<std::uint64_t>(t) + 1) * kPerThread;
  }
  EXPECT_EQ(h.sum(), expect_sum);
  EXPECT_EQ(h.max(), 8u);
}

TEST(LatencyHistogram, QuantileBracketsSortedReference) {
  // Power-of-two buckets promise: ref <= quantile(q) < 2 * ref for any
  // nonzero reference sample (and exactly 0 when the reference is 0).
  util::Xoshiro256 rng(7);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    // Mix of magnitudes across many buckets, including zeros.
    const std::uint64_t ns =
        i % 50 == 0 ? 0 : rng.bounded(std::uint64_t{1} << (1 + i % 30));
    samples.push_back(ns);
    h.record(ns);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size()));
    if (rank < 1) rank = 1;
    if (rank > samples.size()) rank = samples.size();
    const std::uint64_t ref = samples[rank - 1];
    const std::uint64_t got = h.quantile(q);
    if (ref == 0) {
      EXPECT_EQ(got, 0u) << "q=" << q;
    } else {
      EXPECT_GE(got, ref) << "q=" << q;
      EXPECT_LT(got, 2 * ref) << "q=" << q;
    }
  }
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  util::Xoshiro256 rng(11);
  LatencyHistogram h;
  for (int i = 0; i < 2000; ++i) h.record(rng.bounded(1u << 20));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MetricsRegistry, GetOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("alpha");
  Counter& b = reg.counter("alpha");
  EXPECT_EQ(&a, &b);
  a.add(3);
  reg.counter("beta").add(1);
  reg.gauge("depth").add(7);
  reg.histogram("lat").record(100);
  // A later registration must not move earlier instruments.
  for (int i = 0; i < 100; ++i) {
    reg.counter("extra." + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("alpha"));
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndLookupsWork) {
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("mid").set(9);
  reg.histogram("h1").record(7);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_NE(snap.counter("a.first"), nullptr);
  EXPECT_EQ(snap.counter("a.first")->value, 2u);
  EXPECT_EQ(snap.counter("missing"), nullptr);
  ASSERT_NE(snap.gauge("mid"), nullptr);
  EXPECT_EQ(snap.gauge("mid")->value, 9);
  EXPECT_EQ(snap.gauge("mid")->peak, 9);
  ASSERT_NE(snap.histogram("h1"), nullptr);
  EXPECT_EQ(snap.histogram("h1")->count, 1u);
  EXPECT_GE(snap.histogram("h1")->p50_ns, 7u);
  EXPECT_LT(snap.histogram("h1")->p50_ns, 14u);
}

TEST(MetricsRegistry, ResetZeroesButHandlesStayValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  LatencyHistogram& h = reg.histogram("h");
  c.add(5);
  g.add(5);
  h.record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.add(2);  // the handle still feeds the same registered instrument
  EXPECT_EQ(reg.snapshot().counter("c")->value, 2u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        reg.counter("shared").add(1);
        reg.counter("name." + std::to_string(i % 7)).add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("shared")->value, kThreads * 500u);
  std::uint64_t spread = 0;
  for (int i = 0; i < 7; ++i) {
    spread += snap.counter("name." + std::to_string(i))->value;
  }
  EXPECT_EQ(spread, kThreads * 500u);
}

TEST(Snapshot, JsonHasDocumentedSchema) {
  MetricsRegistry reg;
  reg.counter("reader.bytes_read").add(42);
  reg.gauge("pool.queue_depth").add(3);
  reg.histogram("reader.frame_fetch_ns").record(1000);
  const std::string json = reg.snapshot().to_json(2);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"reader.bytes_read\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"pool.queue_depth\": {\"value\": 3, \"peak\": 3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // Deterministic: a second snapshot of unchanged instruments is identical.
  EXPECT_EQ(json, reg.snapshot().to_json(2));
}

TEST(Snapshot, EmptyRegistryJsonIsWellFormed) {
  MetricsRegistry reg;
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(AbsorbPhaseTimings, BridgesRowsToCounters) {
  MetricsRegistry reg;
  core::PhaseTimings t;
  t.decode_write_s = 0.25;
  t.tune_s = 0.5;
  absorb_phase_timings(reg, t);
  const Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("decode.phase.decode_write_ns"), nullptr);
  EXPECT_EQ(snap.counter("decode.phase.decode_write_ns")->value, 250000000u);
  EXPECT_EQ(snap.counter("decode.phase.tune_ns")->value, 500000000u);
  // Zero phases are skipped, not registered as zero counters.
  EXPECT_EQ(snap.counter("decode.phase.other_ns"), nullptr);
  // Absorbing again accumulates (counter semantics).
  absorb_phase_timings(reg, t);
  EXPECT_EQ(reg.snapshot().counter("decode.phase.tune_ns")->value,
            1000000000u);
}

TEST(EnableFlag, ScopedOpIsNoOpWhileDisabled) {
  const bool was = enabled();
  set_enabled(false);
  LatencyHistogram h;
  { const ScopedOp op("noop", &h); }
  EXPECT_EQ(h.count(), 0u);
  set_enabled(true);
  { const ScopedOp op("measured", &h); }
  EXPECT_EQ(h.count(), 1u);
  set_enabled(was);
}

TEST(EnableFlag, InstrumentsStayAlwaysOn) {
  // Components that embed instruments (ArchiveReader, FileSink) keep exact
  // per-object counts regardless of the process-wide flag.
  const bool was = enabled();
  set_enabled(false);
  Counter c;
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
  set_enabled(was);
}

}  // namespace
}  // namespace ohd::obs
