// Loopback wire-protocol coverage: ServiceServer + ServiceClient against a
// real CompressionService over TCP loopback and Unix domain sockets —
// bit-identity of every submit_* entry point against the in-process path,
// the full error-taxonomy round trip (Busy, DeadlineExceeded, Cancelled,
// ClientError, Stopped), connection-survives-malformed-body vs
// closes-on-malformed-header, the deterministic retry-after loop against a
// scripted server, reconnect after a server restart, and the exactly-once
// net_error_frames harvest into ServiceStats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"

namespace ohd::net {
namespace {

using namespace std::chrono_literals;

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.02) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

service::CompressJob two_field_job(std::uint64_t seed) {
  service::CompressJob job;
  job.fields.push_back({"alpha", wavy_field(6000, seed), sz::Dims::d1(6000)});
  job.fields.push_back(
      {"beta", wavy_field(40 * 50, seed + 1, 0.005), sz::Dims::d2(40, 50)});
  return job;
}

bool identical_floats(const std::vector<float>& a,
                      const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

constexpr std::size_t kChunkElems = 2048;

service::ServiceConfig small_service_config() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 2;
  return cfg;
}

/// ClientOptions matching what the wire session negotiates, for the
/// in-process halves of the bit-identity checks.
service::ClientOptions session_options() {
  service::ClientOptions opts;
  opts.chunk_elems = kChunkElems;
  return opts;
}

ClientConfig client_config(const Endpoint& ep) {
  ClientConfig cfg;
  cfg.endpoint = ep;
  cfg.chunk_elems = kChunkElems;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_delay = std::chrono::microseconds(100);
  return cfg;
}

// ---- bit identity ---------------------------------------------------------

TEST(ServiceWire, CompressRoundTripBitIdenticalToInProcess) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  ASSERT_EQ(server.endpoints().size(), 1u);
  ASSERT_NE(server.endpoints()[0].tcp_port, 0);  // ephemeral port resolved

  ServiceClient client(client_config(server.endpoints()[0]));
  const auto wire = client.submit_compress(two_field_job(7)).get().archive;

  const service::ClientId local = svc.open_client(session_options());
  const auto direct =
      svc.submit_compress(local, two_field_job(7)).get().archive;
  EXPECT_EQ(wire, direct);  // byte-identical archive image
}

TEST(ServiceWire, DecompressChunkRangeBitIdenticalToInProcess) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  ServiceClient client(client_config(server.endpoints()[0]));

  const service::ClientId local = svc.open_client(session_options());
  const auto archive =
      svc.submit_compress(local, two_field_job(21)).get().archive;
  const auto local_handle = svc.open_archive(
      local, std::make_shared<pipeline::OwningMemorySource>(archive));

  const auto wire_handle = client.open_archive(archive);

  const auto direct = svc.submit_decompress(local, local_handle).get();
  const DecompressBody wire = client.submit_decompress(wire_handle).get();
  ASSERT_EQ(wire.fields.size(), direct.fields.size());
  for (std::size_t i = 0; i < wire.fields.size(); ++i) {
    EXPECT_EQ(wire.fields[i].name, direct.fields[i].name);
    EXPECT_TRUE(identical_floats(wire.fields[i].data,
                                 direct.fields[i].decode.data));
  }

  EXPECT_TRUE(identical_floats(
      client.submit_chunk(wire_handle, 0, 1).get(),
      svc.submit_chunk(local, local_handle, 0, 1).get()));
  EXPECT_TRUE(identical_floats(
      client.submit_range(wire_handle, 0, 1000, 3000).get(),
      svc.submit_range(local, local_handle, 0, 1000, 3000).get()));

  client.close_archive(wire_handle);
  // A second close round-trips the ClientError the in-process path throws.
  EXPECT_THROW(client.close_archive(wire_handle), service::ClientError);
}

TEST(ServiceWire, UnixSocketRoundTrip) {
  const std::string path =
      "/tmp/ohd_net_ux_" + std::to_string(::getpid()) + ".sock";
  service::CompressionService svc(small_service_config());
  ServerConfig cfg;
  cfg.listen.push_back(Endpoint::unix_socket(path));
  ServiceServer server(svc, cfg);
  ServiceClient client(client_config(Endpoint::unix_socket(path)));
  client.ping();
  const auto wire = client.submit_compress(two_field_job(3)).get().archive;
  const service::ClientId local = svc.open_client(session_options());
  EXPECT_EQ(wire, svc.submit_compress(local, two_field_job(3)).get().archive);
}

TEST(ServiceWire, ServiceConfigDrivenListeners) {
  service::ServiceConfig cfg = small_service_config();
  cfg.listen_tcp = true;
  cfg.listen_tcp_port = 0;
  service::CompressionService svc(cfg);
  ServiceServer server(svc);  // reads the listen options off the service
  ASSERT_EQ(server.endpoints().size(), 1u);
  ServiceClient client(client_config(server.endpoints()[0]));
  client.ping();
}

// ---- error taxonomy over the wire -----------------------------------------

TEST(ServiceWire, DeadlineCancelBusyAndStoppedRoundTrip) {
  service::ServiceConfig cfg = small_service_config();
  cfg.max_queue_depth = 1;
  service::CompressionService svc(cfg);
  ServiceServer server(svc, {});
  ServiceClient client(client_config(server.endpoints()[0]));

  // DeadlineExceeded: paused service, 5ms budget — the sweeper (which keeps
  // running while paused) expires it on the server and the verdict crosses
  // back typed.
  svc.pause();
  {
    service::RequestOptions opts;
    opts.deadline = service::Deadline::after(5ms);
    auto sub = client.submit_compress(two_field_job(1), opts);
    EXPECT_THROW(sub.future.get(), service::DeadlineExceeded);
  }

  // RequestCancelled: still paused, so the request is deterministically
  // queued when the cancel frame arrives.
  {
    auto sub = client.submit_compress(two_field_job(2));
    client.cancel(sub.id);
    EXPECT_THROW(sub.future.get(), service::RequestCancelled);
  }

  // ServiceBusy: depth-1 queue, one occupant — the second submit's
  // admission reject crosses back through the submission's future.
  {
    auto occupant = client.submit_compress(two_field_job(4));
    auto rejected = client.submit_compress(two_field_job(5));
    EXPECT_THROW(rejected.future.get(), service::ServiceBusy);
    svc.resume();
    EXPECT_FALSE(occupant.get().archive.empty());
  }

  // ServiceStopped: service drained underneath a live server.
  svc.shutdown();
  auto sub = client.submit_compress(two_field_job(6));
  EXPECT_THROW(sub.future.get(), service::ServiceStopped);
}

TEST(ServiceWire, OpsBeforeOpenArchiveAndUnknownHandleAreClientErrors) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  ServiceClient client(client_config(server.endpoints()[0]));
  EXPECT_THROW(client.close_archive(999), service::ClientError);
  auto sub = client.submit_decompress(999);
  EXPECT_THROW(sub.future.get(), service::ClientError);
}

TEST(ServiceWire, CorruptArchiveUploadMapsToArchiveCode) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  ServiceClient client(client_config(server.endpoints()[0]));
  const std::vector<std::uint8_t> junk(64, 0xAB);
  try {
    client.open_archive(junk);
    FAIL() << "opened a junk archive";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), static_cast<std::uint16_t>(WireErrorCode::Archive));
  }
  // The connection survives an Archive-level reject.
  client.ping();
}

// ---- raw-socket protocol behaviour ----------------------------------------

Frame read_frame_fd(int fd) {
  std::uint8_t head[kFrameHeaderBytes];
  if (!recv_exact(fd, head)) throw ConnectionLost("eof at frame boundary");
  Frame f;
  f.header = parse_frame_header(head);
  f.payload.resize(f.header.payload_len);
  if (f.header.payload_len != 0 && !recv_exact(fd, f.payload)) {
    throw ConnectionLost("eof mid-frame");
  }
  verify_payload(f.header, f.payload);
  return f;
}

void send_open_client(int fd, std::uint64_t id) {
  util::ByteWriter w;
  write_open_client(w, OpenClientBody{});
  FrameHeader h;
  h.type = FrameType::Request;
  h.op = RequestOp::OpenClient;
  h.priority = service::Priority::Interactive;
  h.request_id = id;
  send_all(fd, encode_frame(h, w.bytes()));
}

TEST(ServiceWire, MalformedBodyKeepsConnectionMalformedHeaderCloses) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  Socket sock = connect_to(server.endpoints()[0]);

  send_open_client(sock.fd(), 1);
  EXPECT_EQ(read_frame_fd(sock.fd()).header.type, FrameType::Response);

  // Well-framed garbage BODY: typed BadRequest error on that id, and the
  // connection must survive.
  {
    FrameHeader h;
    h.type = FrameType::Request;
    h.op = RequestOp::Compress;
    h.priority = service::Priority::Batch;
    h.request_id = 2;
    const std::vector<std::uint8_t> garbage(16, 0xEE);
    send_all(sock.fd(), encode_frame(h, garbage));
    const Frame err = read_frame_fd(sock.fd());
    EXPECT_EQ(err.header.type, FrameType::Error);
    EXPECT_EQ(err.header.request_id, 2u);
    util::ByteReader r(err.payload);
    EXPECT_EQ(read_error(r).code, WireErrorCode::BadRequest);
  }
  {
    FrameHeader ping;
    ping.type = FrameType::Ping;
    ping.request_id = 3;
    send_all(sock.fd(), encode_frame(ping, {}));
    const Frame pong = read_frame_fd(sock.fd());
    EXPECT_EQ(pong.header.type, FrameType::Pong);
    EXPECT_EQ(pong.header.request_id, 3u);  // the id echoes
  }

  // Malformed HEADER: one id-0 BadRequest error frame, then the server
  // closes (the stream is desynchronized).
  std::vector<std::uint8_t> junk(kFrameHeaderBytes, 0x5A);
  send_all(sock.fd(), junk);
  const Frame reject = read_frame_fd(sock.fd());
  EXPECT_EQ(reject.header.type, FrameType::Error);
  EXPECT_EQ(reject.header.request_id, 0u);
  std::uint8_t byte = 0;
  EXPECT_FALSE(recv_exact(sock.fd(), std::span(&byte, 1)));  // clean EOF

  // The two error frames are harvested into ServiceStats exactly once,
  // whether the connection is live or already retired.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (svc.stats().net_error_frames != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(svc.stats().net_error_frames, 2u);
  EXPECT_EQ(server.stats().error_frames, 2u);
  EXPECT_GE(server.stats().decode_rejects, 2u);
}

TEST(ServiceWire, ResponsesStreamInCompletionOrder) {
  // Two dispatchers: the big compress (submitted FIRST) and a tiny chunk
  // read (submitted second) execute concurrently; the chunk finishes orders
  // of magnitude earlier and its response must come back while the compress
  // is still running. Completion order, not submission order.
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  ServiceClient client(client_config(server.endpoints()[0]));

  const auto archive = client.submit_compress(two_field_job(9)).get().archive;
  const auto handle = client.open_archive(archive);

  svc.pause();
  service::CompressJob big;
  big.fields.push_back({"big", wavy_field(500000, 5), sz::Dims::d1(500000)});
  auto slow = client.submit_compress(std::move(big));
  auto fast = client.submit_chunk(handle, 0, 0);
  svc.resume();

  // Wait on the FAST one first; if responses were forced into submission
  // order it could not land before the big compress's.
  ASSERT_EQ(fast.future.wait_for(30s), std::future_status::ready);
  EXPECT_EQ(slow.future.wait_for(0s), std::future_status::timeout)
      << "the big compress finished before the chunk read — the ordering "
         "premise did not hold on this machine";
  EXPECT_FALSE(fast.get().empty());
  EXPECT_FALSE(slow.get().archive.empty());
}

// ---- retry-after, reconnect ----------------------------------------------

TEST(ServiceWire, RetryLoopHonorsServerRetryAfterHint) {
  // A scripted server, not a real one: reply Overloaded with a 7ms hint to
  // the first compress, succeed the second — the waited interval is then a
  // deterministic assertion, not a timing accident.
  Listener listener(Endpoint::tcp(0));
  constexpr std::uint64_t kHintNs = 7'000'000;
  const std::vector<std::uint8_t> canned_archive{1, 2, 3};

  std::thread script([&] {
    Socket peer = listener.accept();
    ASSERT_TRUE(peer.valid());
    const Frame open = read_frame_fd(peer.fd());
    ASSERT_EQ(open.header.op, RequestOp::OpenClient);
    util::ByteWriter ack;
    ack.u64(1);
    FrameHeader rh;
    rh.type = FrameType::Response;
    rh.op = RequestOp::OpenClient;
    rh.request_id = open.header.request_id;
    send_all(peer.fd(), encode_frame(rh, ack.bytes()));

    const Frame first = read_frame_fd(peer.fd());
    ASSERT_EQ(first.header.op, RequestOp::Compress);
    util::ByteWriter err;
    write_error(err, {WireErrorCode::Overloaded, kHintNs, "shed"});
    FrameHeader eh;
    eh.type = FrameType::Error;
    eh.request_id = first.header.request_id;
    send_all(peer.fd(), encode_frame(eh, err.bytes()));

    const Frame second = read_frame_fd(peer.fd());
    ASSERT_EQ(second.header.op, RequestOp::Compress);
    util::ByteWriter ok;
    ok.bytes(canned_archive);
    FrameHeader sh;
    sh.type = FrameType::Response;
    sh.op = RequestOp::Compress;
    sh.request_id = second.header.request_id;
    send_all(peer.fd(), encode_frame(sh, ok.bytes()));
  });

  std::vector<std::chrono::nanoseconds> sleeps;
  ClientConfig cfg = client_config(listener.endpoint());
  cfg.retry.base_delay = std::chrono::microseconds(1);  // hint must dominate
  cfg.sleep_fn = [&sleeps](std::chrono::nanoseconds d) {
    sleeps.push_back(d);  // record instead of sleeping: deterministic
  };
  ServiceClient client(cfg);

  service::CompressJob job;
  job.fields.push_back({"f", {1.f, 2.f, 3.f, 4.f}, sz::Dims::d1(4)});
  const auto result = client.compress_retrying(job);
  EXPECT_EQ(result.archive, canned_archive);

  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_GE(sleeps[0].count(), static_cast<std::int64_t>(kHintNs));
  EXPECT_EQ(client.stats().retry_after_waits, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  script.join();
}

TEST(ServiceWire, ReconnectAfterServerRestartConverges) {
  const std::string path =
      "/tmp/ohd_net_rc_" + std::to_string(::getpid()) + ".sock";
  ServerConfig scfg;
  scfg.listen.push_back(Endpoint::unix_socket(path));

  service::CompressionService svc(small_service_config());
  auto server = std::make_unique<ServiceServer>(svc, scfg);
  ServiceClient client(client_config(Endpoint::unix_socket(path)));
  EXPECT_FALSE(client.submit_compress(two_field_job(8)).get().archive.empty());

  server->shutdown();
  server.reset();
  // The demux reader observes the close and fails fast from then on.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (client.connected() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_FALSE(client.connected());
  EXPECT_THROW(client.submit_compress(two_field_job(8)), ConnectionLost);

  server = std::make_unique<ServiceServer>(svc, scfg);
  // compress_retrying reconnects on its own; no manual reconnect() needed.
  EXPECT_FALSE(client.compress_retrying(two_field_job(8)).archive.empty());
  EXPECT_EQ(client.stats().reconnects, 1u);
}

TEST(ServiceWire, ServerShutdownDrainsInFlightResponses) {
  service::CompressionService svc(small_service_config());
  auto server = std::make_unique<ServiceServer>(svc, ServerConfig{});
  ServiceClient client(client_config(server->endpoints()[0]));

  auto sub = client.submit_compress(two_field_job(11));
  // Wait until the request is admitted server-side, then drain: the future
  // must settle with the RESULT (drained, not cancelled) — shutdown flushes
  // in-flight responses before closing.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (svc.stats().accepted < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(svc.stats().accepted, 1u);
  server->shutdown();
  EXPECT_FALSE(sub.get().archive.empty());
  server.reset();
}

TEST(ServiceWire, ClientDisconnectCancelsItsInFlightRequests) {
  service::CompressionService svc(small_service_config());
  ServiceServer server(svc, {});
  svc.pause();  // keep the request deterministically queued
  {
    ServiceClient client(client_config(server.endpoints()[0]));
    auto sub = client.submit_compress(two_field_job(12));
    client.disconnect();  // the future settles with ConnectionLost
    EXPECT_THROW(sub.future.get(), ConnectionLost);
  }
  // Server side: the orphaned request was cancelled, releasing its slot.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (svc.stats().cancelled != 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(svc.stats().cancelled, 1u);
  svc.resume();
}

}  // namespace
}  // namespace ohd::net
