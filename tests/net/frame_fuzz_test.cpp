// Frame-parser fuzz suite (runs sanitizer-clean under ASan/UBSan in CI):
//
//  * every-byte TRUNCATION sweep — for a corpus of valid frames, every
//    proper prefix must be rejected with a typed FrameError, never accepted,
//    never crash;
//  * random BIT-FLIP trials — seeded, reproducible; every single-bit flip
//    anywhere in a frame must be rejected (CRC-32 over both the header and
//    the payload detects all single-bit errors, so the acceptance count is
//    exactly zero, not merely "almost always"), and seeded multi-bit flips
//    plus pure-garbage buffers must reject without crashing;
//  * body-level fuzz — random bytes through every body reader: typed
//    std::invalid_argument rejects only.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace ohd::net {
namespace {

/// A corpus spanning every frame type and a mix of payload sizes.
std::vector<std::vector<std::uint8_t>> frame_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;

  FrameHeader req;
  req.type = FrameType::Request;
  req.op = RequestOp::Compress;
  req.priority = service::Priority::Batch;
  req.request_id = 11;
  req.deadline_ns = 2'000'000;
  util::ByteWriter job;
  service::CompressJob j;
  j.fields.push_back({"f", {1.f, 2.f, 3.f, 4.f}, sz::Dims::d1(4)});
  write_compress_job(job, j);
  corpus.push_back(encode_frame(req, job.bytes()));

  FrameHeader resp;
  resp.type = FrameType::Response;
  resp.op = RequestOp::Chunk;
  resp.request_id = 12;
  util::ByteWriter floats;
  write_floats(floats, std::vector<float>{9.f, 8.f, 7.f});
  corpus.push_back(encode_frame(resp, floats.bytes()));

  FrameHeader err;
  err.type = FrameType::Error;
  err.request_id = 13;
  util::ByteWriter body;
  write_error(body, {WireErrorCode::Overloaded, 5'000'000, "busy"});
  corpus.push_back(encode_frame(err, body.bytes()));

  FrameHeader cancel;
  cancel.type = FrameType::Cancel;
  cancel.request_id = 14;
  corpus.push_back(encode_frame(cancel, {}));

  FrameHeader ping;
  ping.type = FrameType::Ping;
  corpus.push_back(encode_frame(ping, {}));

  // An empty-payload request too: header-only frames are the truncation
  // sweep's hardest case (every cut is inside the header).
  FrameHeader tiny;
  tiny.type = FrameType::Request;
  tiny.op = RequestOp::CloseClient;
  tiny.request_id = 15;
  corpus.push_back(encode_frame(tiny, {}));

  return corpus;
}

TEST(FrameFuzz, EveryByteTruncationSweepRejectsCleanly) {
  for (const auto& frame : frame_corpus()) {
    ASSERT_NO_THROW(parse_frame(frame));  // the intact frame is sound
    for (std::size_t n = 0; n < frame.size(); ++n) {
      const std::span<const std::uint8_t> prefix(frame.data(), n);
      bool rejected = false;
      try {
        parse_frame(prefix);
      } catch (const std::invalid_argument&) {
        rejected = true;  // FrameError or a body-level reject: both typed
      }
      EXPECT_TRUE(rejected) << "accepted a " << n << "-byte prefix of a "
                            << frame.size() << "-byte frame";
    }
  }
}

TEST(FrameFuzz, EverySingleBitFlipIsRejected) {
  std::uint64_t accepted = 0;
  for (const auto& frame : frame_corpus()) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = frame;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          parse_frame(mutated);
          ++accepted;
          ADD_FAILURE() << "accepted a corrupt frame (byte " << byte
                        << ", bit " << bit << ")";
        } catch (const std::invalid_argument&) {
          // typed reject: the only acceptable outcome
        }
      }
    }
  }
  EXPECT_EQ(accepted, 0u);
}

TEST(FrameFuzz, SeededMultiBitFlipTrialsNeverCrash) {
  util::Xoshiro256 rng(0xfade'0001);
  const auto corpus = frame_corpus();
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = corpus[rng.bounded(corpus.size())];
    const std::size_t flips = 2 + rng.bounded(6);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte = rng.bounded(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    try {
      const Frame parsed = parse_frame(mutated);
      // A multi-bit flip CAN cancel itself out (flip the same bit twice);
      // then the frame must decode identically to some corpus member —
      // verify by re-encoding. Anything else is a miss.
      const auto reencoded = encode_frame(parsed.header, parsed.payload);
      EXPECT_EQ(reencoded, mutated)
          << "accepted a frame that does not re-encode to itself";
    } catch (const std::invalid_argument&) {
      // typed reject
    }
  }
}

TEST(FrameFuzz, GarbageBuffersRejectWithoutCrashing) {
  util::Xoshiro256 rng(0xfade'0002);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.bounded(4 * kFrameHeaderBytes));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    EXPECT_THROW(parse_frame(junk), std::invalid_argument);
  }
}

TEST(FrameFuzz, BodyReadersRejectRandomBytesTyped) {
  util::Xoshiro256 rng(0xfade'0003);
  for (int trial = 0; trial < 1500; ++trial) {
    std::vector<std::uint8_t> junk(rng.bounded(96));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    const int which = static_cast<int>(rng.bounded(5));
    try {
      util::ByteReader r(junk);
      switch (which) {
        case 0: read_open_client(r); break;
        case 1: read_error(r); break;
        case 2: read_compress_job(r); break;
        case 3: read_decompress_result(r); break;
        default: read_floats(r); break;
      }
      // Random bytes occasionally form a structurally valid tiny body
      // (e.g. a zero-length float array) — acceptable; the reader just must
      // not crash or over-read.
    } catch (const std::invalid_argument&) {
      // typed reject
    }
  }
}

}  // namespace
}  // namespace ohd::net
