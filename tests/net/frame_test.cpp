// Frame codec coverage: header round trips for every frame type, the strict
// parser's per-field reject matrix, body serializers (open-client, error,
// compress job, decompress result, floats, dims), and the pinned two-way
// error taxonomy mapping — every ServiceError subclass survives the wire
// with its payload (ServiceOverloaded keeps retry_after_ns) and every wire
// code lands on the documented numeric value.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/container.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace ohd::net {
namespace {

std::vector<std::uint8_t> some_payload(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7);
  return v;
}

FrameHeader request_header(std::uint64_t id = 42) {
  FrameHeader h;
  h.type = FrameType::Request;
  h.op = RequestOp::Compress;
  h.priority = service::Priority::Interactive;
  h.request_id = id;
  h.deadline_ns = 5'000'000;
  return h;
}

// ---- header round trips ---------------------------------------------------

TEST(Frame, RequestRoundTrip) {
  const auto payload = some_payload(100);
  const auto bytes = encode_frame(request_header(), payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
  const Frame f = parse_frame(bytes);
  EXPECT_EQ(f.header.type, FrameType::Request);
  EXPECT_EQ(f.header.op, RequestOp::Compress);
  EXPECT_EQ(f.header.priority, service::Priority::Interactive);
  EXPECT_EQ(f.header.request_id, 42u);
  EXPECT_EQ(f.header.deadline_ns, 5'000'000u);
  EXPECT_EQ(f.payload, payload);
}

TEST(Frame, ResponseEchoesOpAndPinsRequestFields) {
  FrameHeader h;
  h.type = FrameType::Response;
  h.op = RequestOp::Chunk;
  h.request_id = 7;
  // Leftover request-only fields must be pinned to zero by encode_frame, so
  // a default-constructed header never produces an unparseable frame.
  h.priority = service::Priority::Batch;
  h.deadline_ns = 123;
  const Frame f = parse_frame(encode_frame(h, some_payload(4)));
  EXPECT_EQ(f.header.type, FrameType::Response);
  EXPECT_EQ(f.header.op, RequestOp::Chunk);
  EXPECT_EQ(f.header.deadline_ns, 0u);
  EXPECT_EQ(static_cast<std::uint8_t>(f.header.priority), 0);
}

TEST(Frame, BodylessTypesRoundTrip) {
  for (FrameType t : {FrameType::Cancel, FrameType::Ping, FrameType::Pong}) {
    FrameHeader h;
    h.type = t;
    h.request_id = t == FrameType::Cancel ? 9u : 0u;
    const Frame f = parse_frame(encode_frame(h, {}));
    EXPECT_EQ(f.header.type, t);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(Frame, ErrorFrameAllowsIdZero) {
  FrameHeader h;
  h.type = FrameType::Error;
  h.request_id = 0;
  util::ByteWriter w;
  write_error(w, {WireErrorCode::BadRequest, 0, "nope"});
  const Frame f = parse_frame(encode_frame(h, w.bytes()));
  EXPECT_EQ(f.header.type, FrameType::Error);
  util::ByteReader r(f.payload);
  EXPECT_EQ(read_error(r).message, "nope");
}

// ---- strict parser reject matrix ------------------------------------------

TEST(Frame, RejectsTruncatedHeader) {
  const auto bytes = encode_frame(request_header(), {});
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_THROW(parse_frame_header(std::span(bytes).first(n)), FrameError);
  }
}

TEST(Frame, RejectsBadMagic) {
  auto bytes = encode_frame(request_header(), {});
  bytes[0] = 'X';
  EXPECT_THROW(parse_frame_header(bytes), FrameError);
}

/// Re-seals the header CRC after a deliberate field patch, so the parser is
/// forced to judge the FIELD (not the checksum).
void reseal_header(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t crc =
      util::crc32(std::span<const std::uint8_t>(bytes).first(
          kFrameHeaderBytes - 4));
  std::memcpy(bytes.data() + kFrameHeaderBytes - 4, &crc, 4);
}

TEST(Frame, RejectsBadVersion) {
  auto bytes = encode_frame(request_header(), {});
  bytes[4] = kWireVersion + 1;
  reseal_header(bytes);
  try {
    parse_frame_header(bytes);
    FAIL() << "accepted a bad version";
  } catch (const FrameError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Frame, RejectsUnknownTypeOpPriority) {
  auto patch = [](std::size_t at, std::uint8_t value) {
    auto bytes = encode_frame(request_header(), {});
    bytes[at] = value;
    reseal_header(bytes);
    return bytes;
  };
  EXPECT_THROW(parse_frame_header(patch(5, kMaxFrameType + 1)), FrameError);
  EXPECT_THROW(parse_frame_header(patch(6, kMaxRequestOp + 1)), FrameError);
  EXPECT_THROW(parse_frame_header(patch(7, 3)), FrameError);  // priority
}

TEST(Frame, RejectsRequestIdZeroWhereRequired) {
  for (FrameType t :
       {FrameType::Request, FrameType::Response, FrameType::Cancel}) {
    FrameHeader h;
    h.type = t;
    h.request_id = 0;
    const auto bytes = encode_frame(h, {});
    EXPECT_THROW(parse_frame_header(bytes), FrameError);
  }
}

TEST(Frame, RejectsPayloadOnBodylessTypes) {
  FrameHeader h;
  h.type = FrameType::Ping;
  const auto bytes = encode_frame(h, some_payload(3));
  EXPECT_THROW(parse_frame_header(bytes), FrameError);
}

TEST(Frame, RejectsOversizedPayloadBeforeAllocation) {
  const auto payload = some_payload(64);
  const auto bytes = encode_frame(request_header(), payload);
  EXPECT_THROW(parse_frame_header(bytes, /*max_payload=*/63), FrameError);
  EXPECT_NO_THROW(parse_frame_header(bytes, 64));
}

TEST(Frame, RejectsHeaderAndPayloadCorruption) {
  const auto payload = some_payload(32);
  const auto bytes = encode_frame(request_header(), payload);
  {
    auto bad = bytes;
    bad[10] ^= 1;  // inside the header CRC span
    EXPECT_THROW(parse_frame(bad), FrameError);
  }
  {
    auto bad = bytes;
    bad[kFrameHeaderBytes + 5] ^= 0x80;  // payload bit
    EXPECT_THROW(parse_frame(bad), FrameError);
  }
}

TEST(Frame, RejectsTrailingBytesAndShortPayload) {
  const auto payload = some_payload(16);
  const auto bytes = encode_frame(request_header(), payload);
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_THROW(parse_frame(longer), FrameError);
  auto shorter = bytes;
  shorter.pop_back();
  EXPECT_THROW(parse_frame(shorter), FrameError);
}

// ---- bodies ---------------------------------------------------------------

TEST(FrameBody, OpenClientRoundTrip) {
  OpenClientBody body;
  body.rel_error_bound = 5e-4;
  body.radius = 128;
  body.chunk_elems = 4096;
  util::ByteWriter w;
  write_open_client(w, body);
  util::ByteReader r(w.bytes());
  const OpenClientBody back = read_open_client(r);
  expect_exhausted(r);
  EXPECT_EQ(back.rel_error_bound, 5e-4);
  EXPECT_EQ(back.radius, 128u);
  EXPECT_EQ(back.chunk_elems, 4096u);
}

TEST(FrameBody, CompressJobRoundTrip) {
  service::CompressJob job;
  job.fields.push_back(
      {"a", {1.f, 2.f, 3.f, 4.f, 5.f, 6.f}, sz::Dims::d2(2, 3)});
  job.fields.push_back({"b", {0.5f, -0.5f}, sz::Dims::d1(2)});
  util::ByteWriter w;
  write_compress_job(w, job);
  util::ByteReader r(w.bytes());
  const service::CompressJob back = read_compress_job(r);
  expect_exhausted(r);
  ASSERT_EQ(back.fields.size(), 2u);
  EXPECT_EQ(back.fields[0].name, "a");
  EXPECT_EQ(back.fields[0].data, job.fields[0].data);
  EXPECT_EQ(back.fields[0].dims.rank, 2u);
  EXPECT_EQ(back.fields[1].dims.count(), 2u);
}

TEST(FrameBody, CompressJobRejectsDimsMismatchAndBadRank) {
  service::CompressJob job;
  job.fields.push_back({"a", {1.f, 2.f, 3.f}, sz::Dims::d2(2, 3)});  // 3 != 6
  util::ByteWriter w;
  write_compress_job(w, job);
  util::ByteReader r(w.bytes());
  EXPECT_THROW(read_compress_job(r), std::invalid_argument);

  util::ByteWriter w2;
  w2.u8(0);  // dims with rank 0: rejected up front
  for (int i = 0; i < 3; ++i) w2.u64(0);
  util::ByteReader r2(w2.bytes());
  EXPECT_THROW(read_dims(r2), std::invalid_argument);
}

TEST(FrameBody, DecompressResultRoundTrip) {
  DecompressBody body;
  body.fields.push_back({"alpha", {1.f, 2.f}});
  body.fields.push_back({"beta", {}});
  util::ByteWriter w;
  write_decompress_result(w, body);
  util::ByteReader r(w.bytes());
  const DecompressBody back = read_decompress_result(r);
  expect_exhausted(r);
  ASSERT_EQ(back.fields.size(), 2u);
  EXPECT_EQ(back.fields[0].name, "alpha");
  EXPECT_EQ(back.fields[0].data, (std::vector<float>{1.f, 2.f}));
  EXPECT_TRUE(back.fields[1].data.empty());
}

TEST(FrameBody, TruncatedBodyThrows) {
  util::ByteWriter w;
  const std::vector<float> values{1.f, 2.f, 3.f};
  write_floats(w, values);
  const auto bytes = w.take();
  util::ByteReader r(std::span<const std::uint8_t>(bytes).first(
      bytes.size() - 1));
  EXPECT_THROW(read_floats(r), std::invalid_argument);
}

// ---- error taxonomy <-> wire codes ----------------------------------------

template <typename Fn>
ErrorBody map_exception(Fn&& make) {
  try {
    make();
  } catch (...) {
    return wire_error_from_exception(std::current_exception());
  }
  throw std::logic_error("make() did not throw");
}

TEST(FrameErrors, CodesArePinned) {
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Busy), 1);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Overloaded), 2);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Stopped), 3);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Cancelled), 4);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::DeadlineExceeded), 5);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Client), 6);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::BadRequest), 7);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Archive), 8);
  EXPECT_EQ(static_cast<std::uint16_t>(WireErrorCode::Internal), 9);
}

TEST(FrameErrors, ServiceTaxonomyMapsOntoWireCodes) {
  EXPECT_EQ(map_exception([] { throw service::ServiceBusy("full"); }).code,
            WireErrorCode::Busy);
  const ErrorBody over =
      map_exception([] { throw service::ServiceOverloaded("shed", 12345); });
  EXPECT_EQ(over.code, WireErrorCode::Overloaded);
  EXPECT_EQ(over.retry_after_ns, 12345u);  // the hint survives the mapping
  EXPECT_EQ(map_exception([] { throw service::ServiceStopped("bye"); }).code,
            WireErrorCode::Stopped);
  EXPECT_EQ(map_exception([] { throw service::RequestCancelled("c"); }).code,
            WireErrorCode::Cancelled);
  EXPECT_EQ(map_exception([] { throw service::DeadlineExceeded("d"); }).code,
            WireErrorCode::DeadlineExceeded);
  EXPECT_EQ(map_exception([] { throw service::ClientError("who"); }).code,
            WireErrorCode::Client);
  EXPECT_EQ(map_exception([] { throw FrameError("junk"); }).code,
            WireErrorCode::BadRequest);
  EXPECT_EQ(
      map_exception([] { throw pipeline::ContainerError("bad archive"); })
          .code,
      WireErrorCode::Archive);
  EXPECT_EQ(map_exception([] { throw std::runtime_error("boom"); }).code,
            WireErrorCode::Internal);
}

template <typename E>
void expect_round_trips_as(const ErrorBody& body, const std::string& message) {
  util::ByteWriter w;
  write_error(w, body);
  util::ByteReader r(w.bytes());
  const ErrorBody back = read_error(r);
  expect_exhausted(r);
  EXPECT_EQ(back.code, body.code);
  EXPECT_EQ(back.retry_after_ns, body.retry_after_ns);
  try {
    throw_wire_error(back);
    FAIL() << "throw_wire_error returned";
  } catch (const E& e) {
    EXPECT_NE(std::string(e.what()).find(message), std::string::npos);
  }
}

TEST(FrameErrors, EverySubclassRoundTripsTheWire) {
  expect_round_trips_as<service::ServiceBusy>(
      {WireErrorCode::Busy, 0, "queue full"}, "queue full");
  expect_round_trips_as<service::ServiceStopped>(
      {WireErrorCode::Stopped, 0, "drained"}, "drained");
  expect_round_trips_as<service::RequestCancelled>(
      {WireErrorCode::Cancelled, 0, "gone"}, "gone");
  expect_round_trips_as<service::DeadlineExceeded>(
      {WireErrorCode::DeadlineExceeded, 0, "late"}, "late");
  expect_round_trips_as<service::ClientError>(
      {WireErrorCode::Client, 0, "unknown client"}, "unknown client");
  expect_round_trips_as<RemoteError>({WireErrorCode::BadRequest, 0, "junk"},
                                     "junk");
  expect_round_trips_as<RemoteError>({WireErrorCode::Archive, 0, "corrupt"},
                                     "corrupt");
  expect_round_trips_as<RemoteError>({WireErrorCode::Internal, 0, "boom"},
                                     "boom");

  // Overloaded: the retry-after hint must arrive intact in the REBUILT
  // exception, not just in the decoded body.
  util::ByteWriter w;
  write_error(w, {WireErrorCode::Overloaded, 777, "shed"});
  util::ByteReader r(w.bytes());
  try {
    throw_wire_error(read_error(r));
    FAIL() << "throw_wire_error returned";
  } catch (const service::ServiceOverloaded& e) {
    EXPECT_EQ(e.retry_after_ns(), 777u);
  }
}

TEST(FrameErrors, RemoteErrorKeepsTheCode) {
  try {
    throw_wire_error({WireErrorCode::Archive, 0, "bad footer"});
    FAIL() << "throw_wire_error returned";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), static_cast<std::uint16_t>(WireErrorCode::Archive));
  }
}

}  // namespace
}  // namespace ohd::net
