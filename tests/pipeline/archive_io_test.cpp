// Streaming archive sessions: v3 round-trip properties (writer output
// reopened by the reader decodes bit-identical to the whole-buffer
// Container path, for any worker count), bounded-memory guarantees on both
// sides (BoundedRingSink on the write path, the reader's frame-residency
// gauge on the read path), reader laziness, and robustness of a
// FILE-backed v3 archive under every-byte truncation and single-bit
// corruption — mirroring the in-memory container fuzz suite.
#include "pipeline/archive_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/recovery.hpp"
#include "pipeline/thread_pool.hpp"
#include "pipeline/wire_format.hpp"
#include "sz/metrics.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.02) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

/// Three fields with different dims, methods, and error bounds; the first
/// two plan adaptively so shared-codebook frames flow through the sessions.
struct Corpus {
  std::vector<std::vector<float>> storage;
  std::vector<FieldSpec> specs;
};

Corpus mixed_corpus() {
  Corpus c;
  c.storage.push_back(wavy_field(20000, 41));
  c.storage.push_back(wavy_field(96 * 70, 42, 0.005));
  c.storage.push_back(wavy_field(24 * 20 * 12, 43, 0.1));

  const core::Method methods[] = {core::Method::SelfSyncOptimized,
                                  core::Method::GapArrayOptimized,
                                  core::Method::CuszNaive};
  const sz::Dims dims[] = {sz::Dims::d1(20000), sz::Dims::d2(96, 70),
                           sz::Dims::d3(24, 20, 12)};
  const double ebs[] = {1e-3, 1e-4, 5e-3};
  const std::size_t chunk_elems[] = {4096, 2000, 1500};
  for (std::size_t i = 0; i < 3; ++i) {
    FieldSpec spec;
    spec.name = "field" + std::to_string(i);
    spec.data = c.storage[i];
    spec.dims = dims[i];
    spec.config.method = methods[i];
    spec.config.rel_error_bound = ebs[i];
    spec.chunk_elems = chunk_elems[i];
    spec.plan.auto_method = i < 2;
    spec.plan.shared_codebook = i < 2;
    c.specs.push_back(spec);
  }
  return c;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path,
                std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

// ---- Round-trip properties ------------------------------------------------

TEST(ArchiveIO, WriterOutputMatchesContainerSerializeForAnyWorkerCount) {
  // The v3 round-trip property: the streamed session must be byte-identical
  // to Container::serialize() of the whole-buffer build, for every worker
  // count, through both a memory sink and a file sink.
  const Corpus corpus = mixed_corpus();
  ThreadPool p1(1);
  const Container whole = BatchScheduler(p1).compress(corpus.specs);
  const auto whole_bytes = whole.serialize();

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(workers);
    MemorySink sink;
    ArchiveWriter writer(sink);
    BatchScheduler(pool).compress_to(writer, corpus.specs);
    const std::uint64_t total = writer.finish();
    EXPECT_TRUE(writer.finished());
    EXPECT_EQ(total, sink.bytes().size());
    EXPECT_EQ(sink.bytes(), whole_bytes) << "workers=" << workers;
  }

  const std::string path = temp_path("ohd_archive_rt.bin");
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    BatchScheduler(p1).compress_to(writer, corpus.specs);
    writer.finish();
  }
  std::vector<std::uint8_t> from_disk(whole_bytes.size());
  {
    const FileSource source(path);
    ASSERT_EQ(source.size(), whole_bytes.size());
    source.read_at(0, from_disk);
  }
  EXPECT_EQ(from_disk, whole_bytes);
  std::remove(path.c_str());
}

TEST(ArchiveIO, ReaderDecodesBitIdenticalToContainerRoundTrip) {
  // ArchiveWriter output reopened by ArchiveReader must decode bit-identical
  // floats to Container::deserialize(Container::serialize()) — per chunk,
  // per field, per range, and through the batch scheduler — and stay within
  // the fields' error bounds.
  const Corpus corpus = mixed_corpus();
  ThreadPool pool(3);
  const BatchScheduler sched(pool);
  const Container whole = sched.compress(corpus.specs);
  const Container reparsed = Container::deserialize(whole.serialize());

  const std::string path = temp_path("ohd_archive_decode.bin");
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    sched.compress_to(writer, corpus.specs);
    writer.finish();
  }
  const FileSource source(path);
  const ArchiveReader reader(source);
  EXPECT_NO_THROW(reader.verify());
  ASSERT_EQ(reader.fields().size(), reparsed.fields().size());

  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    EXPECT_EQ(reader.field_index(reader.fields()[fi].name), fi);
    cudasim::SimContext c1, c2;
    const FieldDecode a = reader.decode_field(c1, fi);
    const FieldDecode b = reparsed.decode_field(c2, fi);
    EXPECT_EQ(a.data, b.data) << "field " << fi;
    EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
    const auto stats = sz::compute_error_stats(corpus.storage[fi], a.data);
    EXPECT_LE(stats.max_abs_error,
              reader.fields()[fi].abs_error_bound * (1 + 1e-6));

    // Per-chunk random access and the fused write agree too.
    cudasim::SimContext c3, c4;
    const auto one = reader.decode_chunk(c3, fi, 0);
    const auto two = reparsed.decode_chunk(c4, fi, 0);
    EXPECT_EQ(one.data, two.data);
  }

  // Batch decompress over the reader: identical to the container batch for
  // every worker count.
  const BatchDecompressResult from_container = sched.decompress(reparsed);
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool wpool(workers);
    const BatchDecompressResult streamed =
        BatchScheduler(wpool).decompress(reader);
    ASSERT_EQ(streamed.fields.size(), from_container.fields.size());
    for (std::size_t fi = 0; fi < streamed.fields.size(); ++fi) {
      EXPECT_EQ(streamed.fields[fi].decode.data,
                from_container.fields[fi].decode.data)
          << "workers=" << workers << " field=" << fi;
    }
    EXPECT_EQ(streamed.chunk_seconds, from_container.chunk_seconds);
  }

  // Range decode: the reader's sequential walk and the scheduler's
  // prefetching pipeline both match the container, across chunk boundaries
  // and partial edges.
  const std::size_t field = 0;
  const std::uint64_t lo = 3000, hi = 9500;
  cudasim::SimContext c5, c6;
  const auto expect = reparsed.decode_range(c5, field, lo, hi);
  EXPECT_EQ(reader.decode_range(c6, field, lo, hi), expect);
  EXPECT_EQ(sched.decode_range(reader, field, lo, hi), expect);
  EXPECT_TRUE(sched.decode_range(reader, field, 500, 500).empty());
  EXPECT_THROW(sched.decode_range(reader, field, 10, 1u << 30),
               ContainerError);
  std::remove(path.c_str());
}

TEST(ArchiveIO, SerializedSizeIsExact) {
  const Corpus corpus = mixed_corpus();
  ThreadPool pool(2);
  const Container archive = BatchScheduler(pool).compress(corpus.specs);
  EXPECT_EQ(archive.serialized_size(), archive.serialize().size());

  const Container empty;
  EXPECT_EQ(empty.serialized_size(), empty.serialize().size());

  // Shared-codebook fields exercise the codebook-record arithmetic.
  bool any_shared = false;
  for (const FieldEntry& f : archive.fields()) {
    any_shared = any_shared || f.shared_codebook != nullptr;
  }
  EXPECT_TRUE(any_shared);
}

// ---- Bounded-memory guarantees -------------------------------------------

TEST(ArchiveIO, WriterStreamsThroughABoundedRing) {
  // Drive the full parallel compression through a ring whose capacity is
  // far below the archive size: header + index + footer + the largest
  // single frame (the acceptance budget). Draining after every write keeps
  // the producer alive; the ring throws the moment any single write — or an
  // undrained accumulation — exceeds the budget, so a pass proves the
  // writer emits frame-sized pieces and never buffers the archive.
  const Corpus corpus = mixed_corpus();
  ThreadPool pool(4);
  const BatchScheduler sched(pool);
  const Container whole = sched.compress(corpus.specs);
  const auto whole_bytes = whole.serialize();

  std::uint64_t max_frame = 0;
  for (const FieldEntry& f : whole.fields()) {
    for (const ChunkRecord& rec : f.chunks) {
      max_frame = std::max(max_frame, rec.payload_bytes);
    }
  }
  const std::uint64_t metadata_bytes =
      whole.serialized_size() - whole.payload().size();
  const std::size_t capacity =
      static_cast<std::size_t>(metadata_bytes + max_frame);
  ASSERT_LT(capacity, whole_bytes.size() / 2)
      << "corpus too small to make the bound interesting";

  BoundedRingSink ring(capacity);
  ArchiveWriter writer(ring);
  std::vector<std::uint8_t> shipped = ring.drain();  // the 8-byte head

  // Stream field-by-field, draining after every chunk write exactly like a
  // consumer forwarding to a socket would.
  for (const FieldSpec& spec : corpus.specs) {
    MemorySink staging;  // compress each field once, replay frame-by-frame
    ArchiveWriter staging_writer(staging);
    sched.compress_to(staging_writer,
                      std::span<const FieldSpec>(&spec, 1));
    const auto& staged_fields = staging_writer.fields();
    ASSERT_EQ(staged_fields.size(), 1u);

    ArchiveFieldSpec fs;
    fs.name = staged_fields[0].name;
    fs.dims = staged_fields[0].dims;
    fs.abs_error_bound = staged_fields[0].abs_error_bound;
    fs.radius = staged_fields[0].radius;
    fs.method = staged_fields[0].method;
    fs.shared_codebook = staged_fields[0].shared_codebook;
    writer.begin_field(fs);
    for (const ChunkRecord& rec : staged_fields[0].chunks) {
      const std::span<const std::uint8_t> frame(
          staging.bytes().data() + wire::kHeaderBytes + rec.payload_offset,
          rec.payload_bytes);
      writer.write_chunk(ChunkExtent{rec.elem_offset, rec.dims}, frame,
                         ChunkMeta{rec.method, rec.codebook_ref});
      const auto piece = ring.drain();
      shipped.insert(shipped.end(), piece.begin(), piece.end());
    }
    writer.end_field();
  }
  writer.finish();
  const auto tail = ring.drain();
  shipped.insert(shipped.end(), tail.begin(), tail.end());

  EXPECT_EQ(shipped, whole_bytes);
  EXPECT_LE(ring.peak_buffered(), capacity);
  EXPECT_EQ(ring.position(), whole_bytes.size());
}

TEST(ArchiveIO, StreamingDecompressNeverMaterializesTheArchive) {
  // The read-side acceptance bound: peak buffered archive bytes during a
  // batch decompress stay within head+index+footer plus one in-flight frame
  // per worker — asserted from the reader's residency gauge, with the frame
  // fetches counted against a tracking source.
  const Corpus corpus = mixed_corpus();
  const std::string path = temp_path("ohd_archive_stream.bin");
  ThreadPool build_pool(4);
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    BatchScheduler(build_pool).compress_to(writer, corpus.specs);
    writer.finish();
  }

  const FileSource file(path);
  const TrackingSource source(file);
  const ArchiveReader reader(source);
  const std::uint64_t open_bytes = source.bytes_read();
  EXPECT_EQ(open_bytes, reader.resident_bytes());
  EXPECT_LT(reader.resident_bytes() + reader.max_frame_bytes(),
            file.size() / 2)
      << "corpus too small to make the bound interesting";

  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    const BatchDecompressResult r = BatchScheduler(pool).decompress(reader);
    EXPECT_EQ(r.fields.size(), corpus.specs.size());
    // peak <= workers * largest frame: nothing ever held more than one
    // frame per in-flight decode task.
    EXPECT_GT(reader.peak_frame_bytes(), 0u);
    EXPECT_LE(reader.peak_frame_bytes(), workers * reader.max_frame_bytes())
        << "workers=" << workers;
  }

  // The decode traffic re-read frames, never the index again, and no single
  // read exceeded one frame (the index read dominates only the open).
  EXPECT_LE(source.max_read_bytes(),
            std::max<std::uint64_t>(reader.max_frame_bytes(),
                                    reader.resident_bytes()));

  // The prefetching range decode is gauge-accounted and backpressured too:
  // decoding a WHOLE field through it stays within the bounded prefetch
  // window (2x the pool size), never O(range) frames in flight.
  const FileSource file2(path);
  const ArchiveReader reader2(file2);
  ThreadPool range_pool(2);
  const BatchScheduler range_sched(range_pool);
  const std::uint64_t count = reader2.fields()[0].dims.count();
  const std::vector<float> ranged =
      range_sched.decode_range(reader2, 0, 0, count);
  const std::size_t window = std::max<std::size_t>(2, 2 * range_pool.size());
  EXPECT_GT(reader2.peak_frame_bytes(), 0u);
  EXPECT_LE(reader2.peak_frame_bytes(), window * reader2.max_frame_bytes());
  cudasim::SimContext range_ctx;
  EXPECT_EQ(ranged, reader2.decode_field(range_ctx, 0).data);
  std::remove(path.c_str());
}

TEST(ArchiveIO, OpenReadsOnlyFooterAndIndexAndDecodeFetchesOneFrame) {
  const Corpus corpus = mixed_corpus();
  ThreadPool pool(2);
  MemorySink sink;
  ArchiveWriter writer(sink);
  BatchScheduler(pool).compress_to(writer, corpus.specs);
  writer.finish();

  const MemorySource memory(sink.bytes());
  const TrackingSource source(memory);
  const ArchiveReader reader(source);
  // Open = head + footer + index, nothing else.
  EXPECT_EQ(source.bytes_read(), reader.resident_bytes());
  EXPECT_EQ(source.reads(), 3u);

  // Decoding one chunk adds exactly that chunk's frame bytes.
  const std::uint64_t before = source.bytes_read();
  cudasim::SimContext ctx;
  (void)reader.decode_chunk(ctx, 1, 2);
  EXPECT_EQ(source.bytes_read() - before,
            reader.fields()[1].chunks[2].payload_bytes);
}

// ---- Writer session misuse ------------------------------------------------

TEST(ArchiveIO, WriterRejectsSessionMisuse) {
  const auto data = wavy_field(1000, 7);
  MemorySink sink;
  ArchiveWriter writer(sink);

  ArchiveFieldSpec spec;
  spec.name = "f";
  spec.dims = sz::Dims::d1(1000);
  spec.abs_error_bound = 1e-3;

  EXPECT_THROW(writer.write_chunk(ChunkExtent{0, sz::Dims::d1(10)},
                                  std::vector<std::uint8_t>{1, 2, 3}),
               ContainerError);
  EXPECT_THROW(writer.end_field(), ContainerError);

  writer.begin_field(spec);
  EXPECT_THROW(writer.begin_field(spec), ContainerError);  // nested field
  EXPECT_THROW(writer.finish(), ContainerError);           // unclosed field
  // Empty frames and non-contiguous extents are rejected.
  EXPECT_THROW(writer.write_chunk(ChunkExtent{0, sz::Dims::d1(10)},
                                  std::span<const std::uint8_t>{}),
               ContainerError);
  EXPECT_THROW(writer.write_chunk(ChunkExtent{5, sz::Dims::d1(10)},
                                  std::vector<std::uint8_t>{1}),
               ContainerError);
  // Shared-codebook refs without a field codebook are rejected.
  EXPECT_THROW(
      writer.write_chunk(ChunkExtent{0, sz::Dims::d1(10)},
                         std::vector<std::uint8_t>{1},
                         ChunkMeta{core::Method::GapArrayOptimized,
                                   CodebookRef::SharedField}),
      ContainerError);
  // A field whose chunks do not cover the dims cannot close.
  writer.write_chunk(ChunkExtent{0, sz::Dims::d1(10)},
                     std::vector<std::uint8_t>{1, 2});
  EXPECT_THROW(writer.end_field(), ContainerError);

  // A valid session still completes after all those rejections.
  writer.write_chunk(ChunkExtent{10, sz::Dims::d1(990)},
                     std::vector<std::uint8_t>{3, 4});
  writer.end_field();

  ArchiveFieldSpec dup = spec;
  EXPECT_THROW(writer.begin_field(dup), ContainerError);  // duplicate name
  ArchiveFieldSpec bad_eb = spec;
  bad_eb.name = "g";
  bad_eb.abs_error_bound = 0.0;
  EXPECT_THROW(writer.begin_field(bad_eb), ContainerError);

  writer.finish();
  EXPECT_THROW(writer.finish(), ContainerError);  // double finish
  ArchiveFieldSpec late = spec;
  late.name = "late";
  EXPECT_THROW(writer.begin_field(late), ContainerError);  // after finish
}

TEST(ArchiveIO, CompressToValidatesWriterSessionUpFront) {
  // A finished or mid-field writer must be rejected in phase 1, BEFORE any
  // compression fans out — not after the whole corpus has been encoded.
  const Corpus corpus = mixed_corpus();
  ThreadPool pool(2);
  const BatchScheduler sched(pool);
  MemorySink sink;
  ArchiveWriter writer(sink);

  ArchiveFieldSpec open;
  open.name = "open";
  open.dims = sz::Dims::d1(10);
  open.abs_error_bound = 1e-3;
  writer.begin_field(open);
  EXPECT_TRUE(writer.field_open());
  EXPECT_THROW(sched.compress_to(writer, corpus.specs), ContainerError);

  writer.write_chunk(ChunkExtent{0, sz::Dims::d1(10)},
                     std::vector<std::uint8_t>{1, 2});
  writer.end_field();
  EXPECT_NO_THROW(sched.compress_to(writer, corpus.specs));  // mid-session ok

  writer.finish();
  EXPECT_THROW(sched.compress_to(writer, corpus.specs), ContainerError);
}

TEST(ArchiveIO, SequentialAddFieldMatchesContainerAddField) {
  // ArchiveWriter::add_field (streaming, O(chunk) memory) must emit the
  // exact bytes of the Container::add_field build, planned and unplanned.
  const auto data = wavy_field(30000, 15);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::GapArrayOptimized;
  PlanOptions planned;
  planned.auto_method = true;
  planned.shared_codebook = true;

  Container container;
  container.add_field("plain", data, sz::Dims::d1(30000), cfg, 1500);
  container.add_field("planned", data, sz::Dims::d1(30000), cfg, 1500,
                      planned);

  MemorySink sink;
  ArchiveWriter writer(sink);
  EXPECT_EQ(writer.add_field("plain", data, sz::Dims::d1(30000), cfg, 1500),
            0u);
  EXPECT_EQ(writer.add_field("planned", data, sz::Dims::d1(30000), cfg, 1500,
                             planned),
            1u);
  writer.finish();
  EXPECT_EQ(sink.bytes(), container.serialize());
}

// ---- File-archive robustness fuzz ----------------------------------------

/// Tiny two-field v3 file archive (one field on a shared codebook) for the
/// truncation and corruption sweeps.
std::vector<std::uint8_t> tiny_archive_bytes() {
  Container c;
  const auto data = wavy_field(600, 21);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  cfg.radius = 64;
  c.add_field("a", data, sz::Dims::d1(600), cfg, 256);
  PlanOptions plan;
  plan.shared_codebook = true;
  c.add_field("b", data, sz::Dims::d1(600), cfg, 256, plan);
  return c.serialize();
}

TEST(ArchiveReaderFuzz, TruncationAtEveryPrefixThrows) {
  // Mirror of ContainerParserFuzz.TruncationAtEveryPrefixThrows over a
  // FILE-backed v3 archive: any truncation destroys the footer's
  // size-consistency (or the footer itself), so every prefix must be
  // rejected at open — a streaming reader can never trust a torn tail.
  const auto bytes = tiny_archive_bytes();
  const std::string path = temp_path("ohd_truncation_fuzz.bin");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_file(path, std::span<const std::uint8_t>(bytes.data(), cut));
    try {
      const FileSource source(path);
      const ArchiveReader reader(source);
      FAIL() << "cut=" << cut << " was accepted";
    } catch (const std::invalid_argument&) {
      // ContainerError (format) or ArchiveError (short read) — both fine.
    }
  }
  // The intact file opens and verifies.
  write_file(path, bytes);
  const FileSource source(path);
  EXPECT_NO_THROW(ArchiveReader(source).verify());
  std::remove(path.c_str());
}

TEST(ArchiveReaderFuzz, SingleBitCrcCorruptionIsContainedPerChunk) {
  // Flip one bit inside a known frame of the file: decoding THAT chunk (and
  // verify()) must fail with a CRC error naming it, while every other chunk
  // stays decodable — corruption is contained to its frame.
  const auto original = tiny_archive_bytes();
  const std::string path = temp_path("ohd_crc_fuzz.bin");
  {
    const Container parsed = Container::deserialize(original);
    const ChunkRecord& rec = parsed.fields()[1].chunks[2];
    auto bytes = original;
    bytes[wire::kHeaderBytes + rec.payload_offset + rec.payload_bytes / 2] ^=
        0x04;
    write_file(path, bytes);
  }
  const FileSource source(path);
  const ArchiveReader reader(source);  // the index is intact: open succeeds
  cudasim::SimContext ctx;
  try {
    (void)reader.decode_chunk(ctx, 1, 2);
    FAIL() << "corrupted frame was accepted";
  } catch (const ContainerError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC-32"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
  EXPECT_THROW(reader.verify(), ContainerError);
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    for (std::size_t ci = 0; ci < reader.fields()[fi].chunks.size(); ++ci) {
      if (fi == 1 && ci == 2) continue;
      cudasim::SimContext c2;
      EXPECT_NO_THROW(reader.decode_chunk(c2, fi, ci))
          << "field " << fi << " chunk " << ci;
    }
  }
  std::remove(path.c_str());
}

TEST(ArchiveReaderFuzz, RandomSingleBitCorruptionNeverCrashes) {
  // Every single-bit flip anywhere in the file must end in a clean parse
  // failure at open, a CRC/frame rejection at decode, or a successful
  // decode (non-load-bearing metadata) — no crashes, no UB.
  const auto original = tiny_archive_bytes();
  const std::string path = temp_path("ohd_bitflip_fuzz.bin");
  util::Xoshiro256 rng(79);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    write_file(path, bytes);
    try {
      const FileSource source(path);
      const ArchiveReader reader(source);
      cudasim::SimContext ctx;
      (void)reader.decode_chunk(ctx, 0, 0);
      (void)reader.decode_chunk(ctx, 1, 0);
    } catch (const std::invalid_argument&) {
    }
  }
  std::remove(path.c_str());
  SUCCEED();
}

TEST(ArchiveReaderFuzz, WrappingFooterArithmeticRejected) {
  // A crafted footer whose u64 fields wrap the consistency sums back onto
  // plausible values must still be rejected — otherwise the in-memory parse
  // path would take an out-of-bounds subspan from untrusted input.
  auto bytes = tiny_archive_bytes();
  const std::size_t fo = bytes.size() - wire::kFooterBytes;
  const auto put_u64 = [&](std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  const std::uint64_t payload = ~std::uint64_t{99};        // 2^64 - 100
  put_u64(fo + 24, payload);                               // payload bytes
  put_u64(fo + 0, wire::kHeaderBytes + payload);           // wraps to match
  put_u64(fo + 8, bytes.size() + 52);                      // wraps size check
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
  const MemorySource source(bytes);
  EXPECT_THROW(ArchiveReader{source}, ContainerError);
}

TEST(ArchiveReaderFuzz, TrailingGarbageAndLegacyVersionsRejected) {
  const auto bytes = tiny_archive_bytes();
  // Trailing garbage shifts the footer window onto non-footer bytes.
  {
    auto padded = bytes;
    padded.push_back(0);
    const MemorySource source(padded);
    EXPECT_THROW(ArchiveReader{source}, ContainerError);
    EXPECT_THROW(Container::deserialize(padded), ContainerError);
  }
  // The reader refuses head-indexed legacy images with a pointer to
  // Container::deserialize (which still reads them).
  Container legacy;
  const auto data = wavy_field(600, 22);
  sz::CompressorConfig cfg;
  legacy.add_field("f", data, sz::Dims::d1(600), cfg, 256);
  for (const auto& image : {legacy.serialize_v1(), legacy.serialize_v2()}) {
    const MemorySource source(image);
    try {
      const ArchiveReader reader(source);
      FAIL() << "legacy image was accepted";
    } catch (const ContainerError& e) {
      EXPECT_NE(std::string(e.what()).find("Container::deserialize"),
                std::string::npos);
    }
    EXPECT_NO_THROW(Container::deserialize(image).verify());
  }
}

// ---- Salvage & repair ------------------------------------------------------

/// Two-field archive written WITH recovery preambles (the second field on a
/// shared codebook), plus its as-written index records and reference floats.
struct PreambledArchive {
  std::vector<std::uint8_t> bytes;
  std::vector<FieldEntry> fields;
  std::vector<std::vector<float>> reference;
};

PreambledArchive preambled_archive() {
  PreambledArchive a;
  const auto d0 = wavy_field(600, 31);
  const auto d1 = wavy_field(500, 32, 0.05);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  cfg.radius = 64;
  MemorySink sink;
  ArchiveWriter writer(sink, {.recovery_preambles = true});
  writer.add_field("a", d0, sz::Dims::d1(600), cfg, 256);
  PlanOptions plan;
  plan.shared_codebook = true;
  writer.add_field("b", d1, sz::Dims::d1(500), cfg, 200, plan);
  writer.finish();
  a.fields = writer.fields();
  a.bytes = sink.take();
  const MemorySource source(a.bytes);
  const ArchiveReader reader(source);
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    cudasim::SimContext ctx;
    a.reference.push_back(reader.decode_field(ctx, fi).data);
  }
  return a;
}

TEST(Salvage, PreamblesFlagTheHeaderAndCostNoStrictReadTraffic) {
  // Same corpus written plain and with preambles: the flag byte is the only
  // header difference, the preambled archive still opens and decodes
  // strictly, and a strict decode reads EXACTLY as many bytes as the plain
  // archive holds — the index addresses frames past the preambles, so the
  // strict path never touches them (read amplification 1.0). The storage
  // cost is exactly the preamble records themselves (one field preamble per
  // field, kChunkPreambleBytes per chunk), nothing hidden; the happy-path
  // <2% budget on realistic frames is guarded in BENCH_stream.json.
  const PreambledArchive a = preambled_archive();
  std::vector<std::uint8_t> plain;
  {
    const auto d0 = wavy_field(600, 31);
    const auto d1 = wavy_field(500, 32, 0.05);
    sz::CompressorConfig cfg;
    cfg.method = core::Method::SelfSyncOptimized;
    cfg.radius = 64;
    MemorySink sink;
    ArchiveWriter writer(sink);
    writer.add_field("a", d0, sz::Dims::d1(600), cfg, 256);
    PlanOptions plan;
    plan.shared_codebook = true;
    writer.add_field("b", d1, sz::Dims::d1(500), cfg, 200, plan);
    writer.finish();
    plain = sink.take();
  }
  EXPECT_EQ(plain[5], 0);
  EXPECT_EQ(a.bytes[5], wire::kFlagRecoveryPreambles);
  EXPECT_GT(a.bytes.size(), plain.size());
  std::uint64_t expected_extra = 0;
  for (const FieldEntry& f : a.fields) {
    expected_extra +=
        wire::field_preamble_bytes(f) + f.chunks.size() * wire::kChunkPreambleBytes;
  }
  EXPECT_EQ(a.bytes.size() - plain.size(), expected_extra);

  const MemorySource memory(a.bytes);
  const TrackingSource tracked(memory);
  const ArchiveReader reader(tracked);
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    cudasim::SimContext ctx;
    EXPECT_EQ(reader.decode_field(ctx, fi).data, a.reference[fi]);
  }
  EXPECT_EQ(tracked.bytes_read(), plain.size());

  // An INTACT archive never needs the scan: salvage uses the strict index.
  SalvageReport report;
  const ArchiveReader salvaged = ArchiveReader::open_salvage(memory, &report);
  EXPECT_TRUE(report.used_index);
  EXPECT_TRUE(report.preambles_present);
  EXPECT_FALSE(salvaged.salvaged() && !salvaged.field_complete(0));
  EXPECT_NO_THROW(salvaged.verify());
}

TEST(SalvageFuzz, TruncationAtEveryByteRecoversExactlyTheChunksBeforeTheCut) {
  // The salvage acceptance property: for EVERY truncation point, open_salvage
  // recovers 100% of the chunks whose frames lie strictly before the cut and
  // nothing else — no CRC-invalid chunk is ever admitted. Deep-checks
  // (degraded decode bit-identical on Ok ranges, zero-filled elsewhere) run
  // on sampled cuts; the chunk-set equality runs on all of them.
  const PreambledArchive a = preambled_archive();
  // Field fi becomes visible once its field preamble (which ends where the
  // first chunk preamble starts) survives the cut.
  std::vector<std::uint64_t> field_ready(a.fields.size());
  for (std::size_t fi = 0; fi < a.fields.size(); ++fi) {
    field_ready[fi] = wire::kHeaderBytes + a.fields[fi].chunks[0].payload_offset -
                      wire::kChunkPreambleBytes;
  }
  for (std::size_t cut = 0; cut <= a.bytes.size(); ++cut) {
    const MemorySource source(
        std::span<const std::uint8_t>(a.bytes.data(), cut));
    SalvageReport report;
    const ArchiveReader reader = ArchiveReader::open_salvage(source, &report);
    if (cut == a.bytes.size()) {
      EXPECT_TRUE(report.used_index);
    }

    std::vector<std::vector<std::size_t>> expect;
    for (std::size_t fi = 0; fi < a.fields.size(); ++fi) {
      if (cut < field_ready[fi]) break;
      expect.emplace_back();
      for (std::size_t ci = 0; ci < a.fields[fi].chunks.size(); ++ci) {
        const ChunkRecord& rec = a.fields[fi].chunks[ci];
        if (wire::kHeaderBytes + rec.payload_offset + rec.payload_bytes <=
            cut) {
          expect.back().push_back(ci);
        }
      }
    }
    ASSERT_EQ(reader.fields().size(), expect.size()) << "cut=" << cut;
    for (std::size_t fi = 0; fi < expect.size(); ++fi) {
      ASSERT_EQ(reader.fields()[fi].chunks.size(), expect[fi].size())
          << "cut=" << cut << " field=" << fi;
      for (std::size_t ci = 0; ci < expect[fi].size(); ++ci) {
        EXPECT_EQ(reader.chunk_ordinal(fi, ci), expect[fi][ci]);
      }
      EXPECT_EQ(reader.field_complete(fi),
                expect[fi].size() == a.fields[fi].chunks.size())
          << "cut=" << cut << " field=" << fi;
    }

    if (cut % 97 != 0 && cut != a.bytes.size()) continue;
    for (std::size_t fi = 0; fi < expect.size(); ++fi) {
      cudasim::SimContext ctx;
      const PartialFieldDecode pd = reader.decode_field_partial(ctx, fi);
      std::uint64_t expect_ok = 0;
      for (std::size_t ci : expect[fi]) {
        expect_ok += a.fields[fi].chunks[ci].dims.count();
      }
      EXPECT_EQ(pd.report.elems_ok, expect_ok) << "cut=" << cut;
      ASSERT_EQ(pd.values.size(), a.reference[fi].size());
      for (const ChunkReport& cr : pd.report.chunks) {
        const std::uint64_t count = cr.elem_count > 0
                                        ? cr.elem_count
                                        : pd.values.size() - cr.elem_offset;
        for (std::uint64_t i = 0; i < count; ++i) {
          const float got = pd.values[cr.elem_offset + i];
          if (cr.status == ChunkStatus::Ok) {
            ASSERT_EQ(got, a.reference[fi][cr.elem_offset + i])
                << "cut=" << cut << " field=" << fi;
          } else {
            ASSERT_EQ(got, 0.0f) << "cut=" << cut << " field=" << fi;
          }
        }
      }
    }
  }
}

TEST(SalvageFuzz, RandomBitFlipsNeverSurfaceUnverifiedBytes) {
  // Every single-bit flip anywhere in the archive: open_salvage must never
  // crash, and a degraded decode must only label a range Ok when its bytes
  // are bit-identical to the clean reference — whatever the flip hit
  // (header, preamble, frame, index, or footer).
  const PreambledArchive a = preambled_archive();
  util::Xoshiro256 rng(83);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = a.bytes;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    const MemorySource source(bytes);
    SalvageReport report;
    const ArchiveReader reader = ArchiveReader::open_salvage(source, &report);
    for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
      const std::vector<float>* ref = nullptr;
      for (std::size_t i = 0; i < a.fields.size(); ++i) {
        if (a.fields[i].name == reader.fields()[fi].name) {
          ref = &a.reference[i];
        }
      }
      if (ref == nullptr) continue;  // the flip landed in a header name
      if (reader.fields()[fi].dims.count() != ref->size()) continue;
      cudasim::SimContext ctx;
      const PartialFieldDecode pd = reader.decode_field_partial(ctx, fi);
      for (const ChunkReport& cr : pd.report.chunks) {
        const std::uint64_t count = cr.elem_count > 0
                                        ? cr.elem_count
                                        : pd.values.size() - cr.elem_offset;
        for (std::uint64_t i = 0; i < count; ++i) {
          const float got = pd.values[cr.elem_offset + i];
          if (cr.status == ChunkStatus::Ok) {
            ASSERT_EQ(got, (*ref)[cr.elem_offset + i])
                << "trial=" << trial << " pos=" << pos;
          } else {
            ASSERT_EQ(got, 0.0f) << "trial=" << trial << " pos=" << pos;
          }
        }
      }
    }
  }
}

TEST(Salvage, StrictEntryPointsRejectIncompleteSalvagedFields) {
  // A cut through the LAST frame of field "b": field "a" salvages complete
  // and keeps full strict access; "b" is incomplete, so every strict entry
  // point refuses it and only the partial paths (which report the hole)
  // reach its surviving chunks.
  const PreambledArchive a = preambled_archive();
  const ChunkRecord& last = a.fields[1].chunks.back();
  const std::size_t cut = static_cast<std::size_t>(
      wire::kHeaderBytes + last.payload_offset + last.payload_bytes / 2);
  const MemorySource source(std::span<const std::uint8_t>(a.bytes.data(), cut));
  SalvageReport report;
  const ArchiveReader reader = ArchiveReader::open_salvage(source, &report);
  EXPECT_TRUE(reader.salvaged());
  EXPECT_FALSE(report.used_index);
  EXPECT_TRUE(report.preambles_present);
  ASSERT_EQ(reader.fields().size(), 2u);
  EXPECT_TRUE(reader.field_complete(0));
  EXPECT_FALSE(reader.field_complete(1));

  cudasim::SimContext ctx;
  EXPECT_EQ(reader.decode_field(ctx, 0).data, a.reference[0]);
  EXPECT_THROW(reader.decode_field(ctx, 1), ContainerError);
  EXPECT_THROW(reader.decode_range(ctx, 1, 0, 10), ContainerError);
  EXPECT_THROW(reader.verify(), ContainerError);

  ThreadPool pool(2);
  const BatchScheduler sched(pool);
  EXPECT_THROW(sched.decompress(reader), ContainerError);
  const PartialBatchDecompress partial = sched.decompress_partial(reader);
  EXPECT_FALSE(partial.report.complete());
  ASSERT_EQ(partial.report.fields.size(), 2u);
  EXPECT_TRUE(partial.report.fields[0].complete());
  const FieldReport& fb = partial.report.fields[1];
  EXPECT_EQ(fb.ok_count(), a.fields[1].chunks.size() - 1);
  EXPECT_EQ(fb.chunks.back().status, ChunkStatus::Missing);
  const std::vector<float>& vb = partial.result.fields[1].decode.data;
  const std::uint64_t covered = last.elem_offset;
  for (std::uint64_t i = 0; i < vb.size(); ++i) {
    if (i < covered) {
      ASSERT_EQ(vb[i], a.reference[1][i]);
    } else {
      ASSERT_EQ(vb[i], 0.0f);
    }
  }
}

TEST(Salvage, RepairTruncatedRefinalizesTheIntactPrefix) {
  // Tear the archive one byte before the end of field "b"'s last frame and
  // repair: the output must be a STRICTLY valid archive keeping field "a"
  // whole and "b" re-declared over the covered prefix, decoding
  // bit-identical to the reference on everything kept.
  const PreambledArchive a = preambled_archive();
  const ChunkRecord& last = a.fields[1].chunks.back();
  const std::size_t cut = static_cast<std::size_t>(
      wire::kHeaderBytes + last.payload_offset + last.payload_bytes - 1);
  const MemorySource damaged(
      std::span<const std::uint8_t>(a.bytes.data(), cut));
  MemorySink repaired_sink;
  const RepairReport rr = repair_truncated(damaged, repaired_sink);
  const std::size_t total_chunks =
      a.fields[0].chunks.size() + a.fields[1].chunks.size();
  EXPECT_EQ(rr.fields_kept, 2u);
  EXPECT_EQ(rr.fields_dropped, 0u);
  EXPECT_EQ(rr.chunks_kept, total_chunks - 1);
  EXPECT_EQ(rr.chunks_dropped, 0u);  // the torn frame was never recovered
  EXPECT_EQ(rr.output_bytes, repaired_sink.bytes().size());

  const MemorySource source(repaired_sink.bytes());
  const ArchiveReader reader(source);  // strict open: the repair is valid
  EXPECT_NO_THROW(reader.verify());
  ASSERT_EQ(reader.fields().size(), 2u);
  cudasim::SimContext ctx;
  EXPECT_EQ(reader.decode_field(ctx, 0).data, a.reference[0]);
  const std::uint64_t covered = last.elem_offset;
  EXPECT_EQ(reader.fields()[1].dims.count(), covered);
  const FieldDecode b = reader.decode_field(ctx, 1);
  ASSERT_EQ(b.data.size(), covered);
  for (std::uint64_t i = 0; i < covered; ++i) {
    ASSERT_EQ(b.data[i], a.reference[1][i]);
  }
  // The repaired archive carries preambles itself, so it can be salvaged
  // again after further damage.
  EXPECT_EQ(repaired_sink.bytes()[5], wire::kFlagRecoveryPreambles);
}

TEST(Salvage, PlainArchivesWithoutPreamblesCannotBeScanned) {
  // A default-written (no preambles) archive with a torn tail has no
  // self-delimiting records to re-synchronize on: salvage reports the
  // situation instead of guessing at frame boundaries.
  const auto bytes = tiny_archive_bytes();
  const MemorySource source(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() * 3 / 4));
  SalvageReport report;
  const ArchiveReader reader = ArchiveReader::open_salvage(source, &report);
  EXPECT_TRUE(report.header_valid);
  EXPECT_FALSE(report.preambles_present);
  EXPECT_FALSE(report.used_index);
  EXPECT_TRUE(reader.fields().empty());
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.back().find("no recovery preambles"),
            std::string::npos);
}

TEST(Salvage, PayloadCorruptionKeepsTheStrictIndexAndQuarantinesAtDecode) {
  // A bit flip inside one frame leaves the footer+index intact: salvage
  // takes the strict-index path (works even WITHOUT preambles), the strict
  // batch decompress refuses the archive, and the degraded decompress
  // quarantines exactly the flipped chunk.
  const auto original = tiny_archive_bytes();
  const Container parsed = Container::deserialize(original);
  const ChunkRecord& rec = parsed.fields()[1].chunks[2];
  auto bytes = original;
  bytes[wire::kHeaderBytes + rec.payload_offset + rec.payload_bytes / 2] ^=
      0x10;
  const MemorySource source(bytes);
  SalvageReport report;
  const ArchiveReader reader = ArchiveReader::open_salvage(source, &report);
  EXPECT_TRUE(report.used_index);
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    EXPECT_TRUE(reader.field_complete(fi));
  }

  ThreadPool pool(2);
  const BatchScheduler sched(pool);
  EXPECT_THROW(sched.decompress(reader), ContainerError);
  const PartialBatchDecompress partial = sched.decompress_partial(reader);
  std::size_t corrupt = 0;
  for (std::size_t fi = 0; fi < partial.report.fields.size(); ++fi) {
    for (const ChunkReport& cr : partial.report.fields[fi].chunks) {
      if (cr.status == ChunkStatus::Corrupt) {
        ++corrupt;
        EXPECT_EQ(fi, 1u);
        EXPECT_EQ(cr.chunk, 2u);
        EXPECT_NE(cr.detail.find("CRC-32"), std::string::npos);
      }
    }
  }
  EXPECT_EQ(corrupt, 1u);
  cudasim::SimContext ctx;
  const std::vector<float> ref = parsed.decode_field(ctx, 1).data;
  const std::vector<float>& got = partial.result.fields[1].decode.data;
  ASSERT_EQ(got.size(), ref.size());
  for (std::uint64_t i = 0; i < got.size(); ++i) {
    const bool in_flipped = i >= rec.elem_offset &&
                            i < rec.elem_offset + rec.dims.count();
    ASSERT_EQ(got[i], in_flipped ? 0.0f : ref[i]) << i;
  }
}

// ---- Byte-stream primitives ----------------------------------------------

TEST(ByteStream, BoundedRingEnforcesCapacityAndKeepsFifoOrder) {
  BoundedRingSink ring(8);
  const std::vector<std::uint8_t> a{1, 2, 3, 4, 5};
  ring.write(a);
  EXPECT_EQ(ring.buffered(), 5u);
  EXPECT_THROW(ring.write(a), ArchiveError);  // 10 > 8
  EXPECT_EQ(ring.drain(), a);
  EXPECT_EQ(ring.buffered(), 0u);
  // Wrap-around: the ring reuses its storage across drains.
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> piece{static_cast<std::uint8_t>(i),
                                    static_cast<std::uint8_t>(i + 100)};
    ring.write(piece);
    EXPECT_EQ(ring.drain(), piece) << i;
  }
  EXPECT_EQ(ring.peak_buffered(), 5u);
  EXPECT_EQ(ring.position(), 25u);
  EXPECT_THROW(BoundedRingSink(0), ArchiveError);
}

TEST(ByteStream, MemoryAndFileSourcesRejectOutOfRangeReads) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  const MemorySource memory(bytes);
  std::vector<std::uint8_t> out(3);
  memory.read_at(1, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{2, 3, 4}));
  EXPECT_THROW(memory.read_at(2, out), ArchiveError);
  EXPECT_THROW(memory.read_at(5, std::span<std::uint8_t>(out.data(), 1)),
               ArchiveError);

  const std::string path = temp_path("ohd_bytestream.bin");
  {
    FileSink sink(path);
    sink.write(bytes);
    EXPECT_EQ(sink.position(), 4u);
    sink.flush();
  }
  const FileSource file(path);
  EXPECT_EQ(file.size(), 4u);
  file.read_at(1, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{2, 3, 4}));
  EXPECT_THROW(file.read_at(2, out), ArchiveError);
  std::remove(path.c_str());
  EXPECT_THROW(FileSource{"/nonexistent/ohd/path.bin"}, ArchiveError);
}

}  // namespace
}  // namespace ohd::pipeline
