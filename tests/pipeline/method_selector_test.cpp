// MethodSelector: chunk probing, the analytic per-method cost estimates, and
// field planning (auto method selection + shared-codebook references).
#include "pipeline/method_selector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

sz::QuantizedField quantized_from_codes(std::vector<std::uint16_t> codes,
                                        std::uint32_t radius = 512,
                                        std::size_t num_outliers = 0) {
  sz::QuantizedField q;
  q.dims = sz::Dims::d1(codes.size());
  q.error_bound = 1e-3;
  q.radius = radius;
  q.codes = std::move(codes);
  for (std::size_t i = 0; i < num_outliers; ++i) {
    q.outliers.push_back({i, 1.0f});
  }
  return q;
}

std::vector<std::uint16_t> skewed_codes(std::size_t n, std::uint16_t center,
                                        double spread, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = center + spread * rng.normal();
    codes[i] = static_cast<std::uint16_t>(
        std::min(1023.0, std::max(1.0, std::round(v))));
  }
  return codes;
}

TEST(ChunkProbeTest, ComputesEntropyRunsAndOutliers) {
  // Constant stream: zero entropy, one run spanning the chunk, 1-bit code.
  const auto constant = probe_chunk(
      quantized_from_codes(std::vector<std::uint16_t>(1000, 512)));
  EXPECT_EQ(constant.num_symbols, 1000u);
  EXPECT_DOUBLE_EQ(constant.entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(constant.mean_run_length, 1000.0);
  EXPECT_DOUBLE_EQ(constant.avg_code_bits, 1.0);
  EXPECT_DOUBLE_EQ(constant.outlier_fraction, 0.0);

  // Four equiprobable symbols in round-robin: entropy 2 bits, runs of 1.
  std::vector<std::uint16_t> four(4096);
  for (std::size_t i = 0; i < four.size(); ++i) {
    four[i] = static_cast<std::uint16_t>(500 + i % 4);
  }
  const auto uniform4 = probe_chunk(quantized_from_codes(std::move(four)));
  EXPECT_NEAR(uniform4.entropy_bits, 2.0, 1e-9);
  EXPECT_NEAR(uniform4.avg_code_bits, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(uniform4.mean_run_length, 1.0);

  const auto with_outliers =
      probe_chunk(quantized_from_codes(std::vector<std::uint16_t>(200, 7),
                                       512, 20));
  EXPECT_DOUBLE_EQ(with_outliers.outlier_fraction, 0.1);

  EXPECT_THROW(probe_chunk(quantized_from_codes({})), std::invalid_argument);
}

TEST(MethodSelectorTest, SelectIsTheCheapestRankedCandidate) {
  const MethodSelector selector;
  const auto probe =
      probe_chunk(quantized_from_codes(skewed_codes(20000, 512, 12.0, 1)));
  const auto ranked = selector.rank(probe);
  ASSERT_EQ(ranked.size(), selector.candidates().size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].total_seconds(), ranked[i].total_seconds());
  }
  EXPECT_EQ(selector.select(probe), ranked.front().method);
  // Deterministic: same probe, same answer.
  EXPECT_EQ(selector.select(probe), selector.select(probe));
}

TEST(MethodSelectorTest, EstimatesReflectTheFamilies) {
  const MethodSelector selector;
  // A chunk small enough that the fine-grained families' sequence padding
  // (16 KiB of bits per sequence) is visible against the naive layout's
  // per-coarse-chunk unit padding.
  const auto probe =
      probe_chunk(quantized_from_codes(skewed_codes(3000, 512, 30.0, 2)));

  const auto naive = selector.estimate(core::Method::CuszNaive, probe);
  const auto selfsync =
      selector.estimate(core::Method::SelfSyncOptimized, probe);
  const auto gap = selector.estimate(core::Method::GapArrayOptimized, probe);

  // The naive decoder is critical-path bound (one thread per coarse chunk);
  // the fine-grained families beat it by orders of magnitude on decode.
  EXPECT_GT(naive.decode_seconds, 5.0 * gap.decode_seconds);
  // Self-sync pays speculative re-decoding the gap array avoids.
  EXPECT_GT(selfsync.decode_seconds, gap.decode_seconds);
  // The gap sidecar is exactly one byte per subsequence on top of the same
  // sequence-padded stream.
  EXPECT_GT(gap.stored_bytes, selfsync.stored_bytes);
  EXPECT_LT(gap.stored_bytes - selfsync.stored_bytes,
            selfsync.stored_bytes / 8);
  // The naive layout pads per coarse chunk, not per 16-KiB sequence, so its
  // stored bytes are the smallest of the three.
  EXPECT_LT(naive.stored_bytes, selfsync.stored_bytes);
}

TEST(MethodSelectorTest, ObjectiveChangesTheTradeoff) {
  // Device-resident data (DecodeOnly) must always prefer the optimized
  // gap array, the paper's fastest decoder.
  const MethodSelector decode_only({}, cudasim::DeviceSpec::v100(),
                                   SelectionObjective::DecodeOnly);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto probe = probe_chunk(quantized_from_codes(
        skewed_codes(4000 * seed, 512, 5.0 * static_cast<double>(seed), seed)));
    EXPECT_EQ(decode_only.select(probe), core::Method::GapArrayOptimized);
  }
}

TEST(MethodSelectorTest, MultiSymbolPricingCheapensShortCodeChunks) {
  // A heavily skewed chunk (short codewords) amortizes probes across
  // batches; a near-incompressible chunk (codewords about as wide as the
  // window) gains nothing.
  core::DecoderConfig multi;
  ASSERT_TRUE(multi.use_multisym_lut);
  core::DecoderConfig single = multi;
  single.use_multisym_lut = false;
  const MethodSelector with_multi(multi);
  const MethodSelector without_multi(single);

  const auto skewed =
      probe_chunk(quantized_from_codes(skewed_codes(50000, 512, 2.0, 3)));
  ASSERT_LT(skewed.avg_code_bits, 6.0);
  for (const core::Method m : with_multi.candidates()) {
    EXPECT_LT(with_multi.estimate(m, skewed).decode_seconds,
              without_multi.estimate(m, skewed).decode_seconds)
        << core::method_name(m);
  }

  util::Xoshiro256 rng(17);
  std::vector<std::uint16_t> wide(50000);
  for (auto& c : wide) {
    c = static_cast<std::uint16_t>(1 + rng.bounded(1023));
  }
  const auto flat = probe_chunk(quantized_from_codes(std::move(wide)));
  ASSERT_GT(flat.avg_code_bits, 9.0);
  // Near-uniform codes: about one codeword per window, so the batch cannot
  // be more than marginally cheaper.
  for (const core::Method m : with_multi.candidates()) {
    EXPECT_GT(with_multi.estimate(m, flat).decode_seconds,
              without_multi.estimate(m, flat).decode_seconds * 0.80)
        << core::method_name(m);
  }
}

TEST(MethodSelectorTest, OriginalVariantsPriceTheirSingleSymbolWritePass) {
  // The Original decoders' decode+write pass keeps the single-symbol probe
  // (decode_span disables the batch under record_table_reads), so their
  // estimate must sit strictly between the all-multi and all-single prices.
  core::DecoderConfig multi;
  core::DecoderConfig single = multi;
  single.use_multisym_lut = false;
  const MethodSelector with_multi(multi);
  const MethodSelector without_multi(single);
  const auto probe =
      probe_chunk(quantized_from_codes(skewed_codes(50000, 512, 2.0, 9)));
  for (const core::Method m :
       {core::Method::SelfSyncOriginal, core::Method::GapArrayOriginal8Bit}) {
    const double mixed = with_multi.estimate(m, probe).decode_seconds;
    const double all_single = without_multi.estimate(m, probe).decode_seconds;
    EXPECT_LT(mixed, all_single) << core::method_name(m);
    // Strictly dearer than its family's fully-batched Optimized pricing of
    // the same passes: force the comparison by rebuilding the mixed rate.
    MethodSelector fully_multi(multi);
    const double optimized_rate =
        fully_multi
            .estimate(m == core::Method::SelfSyncOriginal
                          ? core::Method::SelfSyncOptimized
                          : core::Method::GapArrayOptimized,
                      probe)
            .decode_seconds;
    EXPECT_GT(mixed, optimized_rate * 0.99) << core::method_name(m);
  }
}

TEST(MethodSelectorTest, CalibrationRescalesEstimates) {
  MethodSelector selector;
  const auto probe =
      probe_chunk(quantized_from_codes(skewed_codes(20000, 512, 12.0, 5)));
  const double raw =
      selector.estimate(core::Method::GapArrayOptimized, probe).decode_seconds;
  const double other =
      selector.estimate(core::Method::CuszNaive, probe).decode_seconds;

  const MethodCalibration fit[] = {
      {core::Method::GapArrayOptimized, 2.0, 1e-6}};
  selector.calibrate(fit);
  EXPECT_DOUBLE_EQ(
      selector.estimate(core::Method::GapArrayOptimized, probe).decode_seconds,
      2.0 * raw + 1e-6);
  // Methods without an entry keep the identity correction.
  EXPECT_DOUBLE_EQ(
      selector.estimate(core::Method::CuszNaive, probe).decode_seconds, other);
  // stored_bytes / transfer model are untouched by calibration.
  MethodSelector fresh;
  EXPECT_EQ(selector.estimate(core::Method::GapArrayOptimized, probe).stored_bytes,
            fresh.estimate(core::Method::GapArrayOptimized, probe).stored_bytes);

  const MethodCalibration bad[] = {{core::Method::CuszNaive, -1.0, 0.0}};
  EXPECT_THROW(selector.calibrate(bad), std::invalid_argument);
}

TEST(MethodSelectorTest, DefaultCalibrationIsLoadable) {
  // The committed fit must name only known methods with positive finite
  // scales, and applying it must keep estimates positive and ordered enough
  // to rank.
  const auto fit = default_calibration();
  ASSERT_FALSE(fit.empty());
  MethodSelector selector;
  selector.calibrate(fit);  // throws on a malformed committed fit
  const auto probe =
      probe_chunk(quantized_from_codes(skewed_codes(20000, 512, 12.0, 7)));
  for (const core::Method m : selector.candidates()) {
    const auto e = selector.estimate(m, probe);
    EXPECT_GT(e.decode_seconds, 0.0) << core::method_name(m);
    EXPECT_TRUE(std::isfinite(e.decode_seconds)) << core::method_name(m);
  }
  EXPECT_EQ(selector.rank(probe).size(), selector.candidates().size());
}

TEST(PlanFieldTest, FixedPlanKeepsMethodAndPrivateBooks) {
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 4; ++i) {
    chunks.push_back(quantized_from_codes(skewed_codes(5000, 512, 9.0, i)));
  }
  const MethodSelector selector;
  const FieldPlan plan =
      plan_field(chunks, core::Method::SelfSyncOptimized, {}, selector);
  ASSERT_EQ(plan.chunks.size(), 4u);
  EXPECT_FALSE(plan.has_shared_codebook);
  for (const ChunkPlan& cp : plan.chunks) {
    EXPECT_EQ(cp.method, core::Method::SelfSyncOptimized);
    EXPECT_FALSE(cp.use_shared_codebook);
  }
}

TEST(PlanFieldTest, AutoMethodMatchesSelector) {
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 3; ++i) {
    chunks.push_back(quantized_from_codes(skewed_codes(8000, 512, 20.0, i)));
  }
  const MethodSelector selector;
  PlanOptions options;
  options.auto_method = true;
  const FieldPlan plan =
      plan_field(chunks, core::Method::CuszNaive, options, selector);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(plan.chunks[i].method,
              selector.select(probe_chunk(chunks[i])));
  }
}

TEST(PlanFieldTest, UseCalibrationPricesThroughTheCommittedFit) {
  // With PlanOptions::use_calibration the plan must pick exactly what a
  // default_calibration()-calibrated copy of the selector picks, while the
  // caller's selector object stays untouched (identity-calibrated) — and
  // with the flag off (the default), the uncalibrated rankings stay pinned.
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 4; ++i) {
    chunks.push_back(
        quantized_from_codes(skewed_codes(8000, 512, 4.0 + 12.0 * i, 50 + i)));
  }
  const MethodSelector selector;
  MethodSelector calibrated = selector;
  calibrated.calibrate(default_calibration());

  PlanOptions options;
  options.auto_method = true;
  options.use_calibration = true;
  const FieldPlan plan =
      plan_field(chunks, core::Method::CuszNaive, options, selector);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const ChunkProbe probe = probe_chunk(chunks[i]);
    EXPECT_EQ(plan.chunks[i].method, calibrated.select(probe)) << i;
    // The caller's selector was not calibrated in place.
    EXPECT_EQ(selector.estimate(core::Method::GapArrayOptimized, probe)
                  .decode_seconds,
              MethodSelector().estimate(core::Method::GapArrayOptimized, probe)
                  .decode_seconds);
  }

  options.use_calibration = false;
  const FieldPlan uncalibrated =
      plan_field(chunks, core::Method::CuszNaive, options, selector);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(uncalibrated.chunks[i].method,
              selector.select(probe_chunk(chunks[i])));
  }
}

TEST(PlanFieldTest, SimilarChunksShareTheFieldCodebook) {
  // Chunks drawn from the same distribution: the pooled book codes each of
  // them almost as well as its private book, so dropping ~1 KiB of codebook
  // per chunk wins.
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 6; ++i) {
    chunks.push_back(quantized_from_codes(skewed_codes(4000, 512, 10.0, i)));
  }
  PlanOptions options;
  options.shared_codebook = true;
  const FieldPlan plan =
      plan_field(chunks, core::Method::GapArrayOptimized, options,
                 MethodSelector());
  EXPECT_TRUE(plan.has_shared_codebook);
  for (const ChunkPlan& cp : plan.chunks) {
    EXPECT_TRUE(cp.use_shared_codebook);
    EXPECT_LT(cp.est_shared_bytes, cp.est_private_bytes);
  }
}

TEST(PlanFieldTest, DivergentChunkKeepsItsPrivateBook) {
  // Five large chunks around one center plus one SMALL chunk around a
  // disjoint center: the pooled book is dominated by the majority, so the
  // divergent chunk's symbols get codes ~log2(pool/chunk) bits longer than
  // its private ones — more than a private book costs — while the majority
  // chunks lose almost nothing to pooling. The divergent chunk must stay
  // private while the rest share.
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 5; ++i) {
    chunks.push_back(quantized_from_codes(skewed_codes(30000, 100, 3.0, i)));
  }
  chunks.push_back(quantized_from_codes(skewed_codes(4000, 900, 80.0, 99)));
  PlanOptions options;
  options.shared_codebook = true;
  const FieldPlan plan =
      plan_field(chunks, core::Method::GapArrayOptimized, options,
                 MethodSelector());
  ASSERT_TRUE(plan.has_shared_codebook);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(plan.chunks[i].use_shared_codebook) << "chunk " << i;
  }
  EXPECT_FALSE(plan.chunks[5].use_shared_codebook);
}

TEST(PlanFieldTest, EightBitChunksNeverShare) {
  // The 8-bit baseline re-trims its codes to a private alphabet, so it can
  // never reference a field book; plan_field must keep such chunks private
  // even when sharing is requested (encode_with_codebook would throw).
  std::vector<sz::QuantizedField> chunks;
  for (int i = 0; i < 4; ++i) {
    chunks.push_back(quantized_from_codes(skewed_codes(4000, 512, 10.0, i)));
  }
  PlanOptions options;
  options.shared_codebook = true;
  const FieldPlan plan =
      plan_field(chunks, core::Method::GapArrayOriginal8Bit, options,
                 MethodSelector());
  EXPECT_FALSE(plan.has_shared_codebook);
  for (const ChunkPlan& cp : plan.chunks) {
    EXPECT_FALSE(cp.use_shared_codebook);
  }
}

TEST(PlanFieldTest, SingleChunkFieldNeverShares) {
  std::vector<sz::QuantizedField> one;
  one.push_back(quantized_from_codes(skewed_codes(4000, 512, 10.0, 3)));
  PlanOptions options;
  options.shared_codebook = true;
  const FieldPlan plan = plan_field(one, core::Method::GapArrayOptimized,
                                    options, MethodSelector());
  EXPECT_FALSE(plan.has_shared_codebook);
  EXPECT_FALSE(plan.chunks[0].use_shared_codebook);
}

}  // namespace
}  // namespace ohd::pipeline
