// Container format: mixed-corpus round-trips (memory and disk), random
// access, range decode, and malformed-input rejection pinned to the byte
// layouts documented in pipeline/container.hpp (v1/v2 head-indexed images)
// and pipeline/wire_format.hpp (the current v3 footer-indexed framing, whose
// streaming round-trip and fuzz coverage live in archive_io_test.cpp).
#include "pipeline/container.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "sz/metrics.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

/// Payload-section offset of a v3 archive: magic + version + flags +
/// reserved, then the concatenated frames (the index and footer follow the
/// payload; see wire_format.hpp).
constexpr std::size_t kV3PayloadOffset = 8;

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.02) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

struct Corpus {
  std::vector<std::vector<float>> data;
  Container container;
};

/// Three fields with different dims, methods, and error bounds — the mixed
/// corpus of the acceptance criteria.
Corpus mixed_corpus() {
  Corpus c;
  c.data.push_back(wavy_field(20000, 1));
  c.data.push_back(wavy_field(96 * 70, 2, 0.005));
  c.data.push_back(wavy_field(24 * 20 * 12, 3, 0.1));

  sz::CompressorConfig selfsync;
  selfsync.method = core::Method::SelfSyncOptimized;
  selfsync.rel_error_bound = 1e-3;
  c.container.add_field("hacc1d", c.data[0], sz::Dims::d1(20000), selfsync,
                        4096);

  sz::CompressorConfig gap;
  gap.method = core::Method::GapArrayOptimized;
  gap.rel_error_bound = 1e-4;
  gap.radius = 256;
  c.container.add_field("plane2d", c.data[1], sz::Dims::d2(96, 70), gap, 2000);

  sz::CompressorConfig naive;
  naive.method = core::Method::CuszNaive;
  naive.rel_error_bound = 5e-3;
  c.container.add_field("vol3d", c.data[2], sz::Dims::d3(24, 20, 12), naive,
                        1500);
  return c;
}

TEST(ChunkLayout, TilesFieldsContiguouslyAndKeepsRank) {
  const auto l1 = chunk_layout(sz::Dims::d1(10000), 4096);
  ASSERT_EQ(l1.size(), 3u);
  EXPECT_EQ(l1[0].dims.count(), 4096u);
  EXPECT_EQ(l1[2].dims.count(), 10000u - 2 * 4096u);

  const auto l2 = chunk_layout(sz::Dims::d2(96, 70), 2000);
  std::uint64_t next = 0;
  for (const auto& e : l2) {
    EXPECT_EQ(e.elem_offset, next);
    EXPECT_EQ(e.dims.rank, 2u);
    EXPECT_EQ(e.dims.extent[0], 96u);  // whole slabs only
    next += e.dims.count();
  }
  EXPECT_EQ(next, 96u * 70u);

  // A chunk target smaller than one slab still takes one whole slab.
  const auto l3 = chunk_layout(sz::Dims::d3(24, 20, 12), 10);
  EXPECT_EQ(l3.size(), 12u);
  EXPECT_EQ(l3[0].dims.count(), 24u * 20u);

  EXPECT_THROW(chunk_layout(sz::Dims::d1(100), 0), ContainerError);
}

TEST(Container, MixedCorpusRoundTripsThroughDisk) {
  const Corpus c = mixed_corpus();
  ASSERT_EQ(c.container.fields().size(), 3u);
  for (const auto& f : c.container.fields()) {
    EXPECT_GE(f.chunks.size(), 4u) << f.name;
  }

  const auto bytes = c.container.serialize();
  const std::string path = ::testing::TempDir() + "/ohd_container_rt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  std::vector<std::uint8_t> readback;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    readback.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(readback.data()),
            static_cast<std::streamsize>(readback.size()));
    ASSERT_TRUE(in.good());
  }
  std::remove(path.c_str());

  const Container parsed = Container::deserialize(readback);
  parsed.verify();
  ASSERT_EQ(parsed.fields().size(), 3u);
  for (std::size_t fi = 0; fi < 3; ++fi) {
    cudasim::SimContext c1, c2;
    const FieldDecode a = c.container.decode_field(c1, fi);
    const FieldDecode b = parsed.decode_field(c2, fi);
    EXPECT_EQ(a.data, b.data) << "field " << fi;
    const auto stats = sz::compute_error_stats(c.data[fi], b.data);
    EXPECT_LE(stats.max_abs_error,
              parsed.fields()[fi].abs_error_bound * (1 + 1e-6))
        << "field " << fi;
  }
}

TEST(Container, SingleChunkDecodeNeverTouchesOtherFrames) {
  const Corpus c = mixed_corpus();
  auto bytes = c.container.serialize();
  const std::size_t field = c.container.field_index("plane2d");
  const std::size_t chunk = 1;

  // Corrupt EVERY payload byte outside the target frame. If decoding the
  // target chunk still succeeds bit-identically, it provably read nothing
  // but its own frame (and the index).
  const std::size_t payload_base = kV3PayloadOffset;
  ASSERT_EQ(bytes[4], 3);  // current version: payload right after the head
  const auto& rec = c.container.fields()[field].chunks[chunk];
  const std::size_t frame_lo = payload_base + rec.payload_offset;
  const std::size_t frame_hi = frame_lo + rec.payload_bytes;
  const std::size_t payload_end =
      payload_base + c.container.payload().size();
  for (std::size_t i = payload_base; i < payload_end; ++i) {
    if (i < frame_lo || i >= frame_hi) bytes[i] ^= 0xA5;
  }

  const Container vandalized = Container::deserialize(bytes);
  cudasim::SimContext c1, c2;
  const auto got = vandalized.decode_chunk(c1, field, chunk);
  const FieldDecode full = c.container.decode_field(c2, field);
  const std::vector<float> expect(
      full.data.begin() + rec.elem_offset,
      full.data.begin() + rec.elem_offset + rec.dims.count());
  EXPECT_EQ(got.data, expect);

  // ... while every other frame now fails its checksum.
  cudasim::SimContext c3;
  EXPECT_THROW(vandalized.decode_chunk(c3, field, 0), ContainerError);
}

TEST(Container, DecodeChunkIntoWritesInPlaceIdentically) {
  // The fused chunk-decode entry point must land the same floats (and the
  // same timings) in a caller buffer slice as decode_chunk returns, for 1-D
  // (fused sink) and higher-rank (staged copy) fields alike.
  const Corpus c = mixed_corpus();
  for (const char* name : {"hacc1d", "plane2d", "vol3d"}) {
    const std::size_t field = c.container.field_index(name);
    const auto& entry = c.container.fields()[field];
    std::vector<float> buffer(entry.dims.count(),
                              -12345.0f);  // poison: every slot must be hit
    FieldDecode merged;
    for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
      cudasim::SimContext c1, c2;
      const auto& rec = entry.chunks[ci];
      const std::span<float> dest(buffer.data() + rec.elem_offset,
                                  rec.dims.count());
      const auto into = c.container.decode_chunk_into(c1, field, ci, dest);
      const auto whole = c.container.decode_chunk(c2, field, ci);
      EXPECT_TRUE(into.data.empty());
      EXPECT_DOUBLE_EQ(into.total_seconds(), whole.total_seconds()) << name;
      ASSERT_EQ(std::vector<float>(dest.begin(), dest.end()), whole.data)
          << name << " chunk " << ci;
    }
    cudasim::SimContext c3;
    const FieldDecode full = c.container.decode_field(c3, field);
    EXPECT_EQ(buffer, full.data) << name;

    // A destination sized to the FIELD instead of the chunk is rejected.
    cudasim::SimContext c4;
    if (entry.chunks.size() > 1) {
      EXPECT_THROW(c.container.decode_chunk_into(c4, field, 0, buffer),
                   std::invalid_argument);
    }
  }
}

TEST(Container, RangeDecodeMatchesFullDecode) {
  const Corpus c = mixed_corpus();
  const std::size_t field = c.container.field_index("hacc1d");
  cudasim::SimContext c1, c2;
  const FieldDecode full = c.container.decode_field(c1, field);

  // A range crossing two chunk boundaries (chunks are 4096 elements).
  const std::uint64_t lo = 3000, hi = 9500;
  const auto range = c.container.decode_range(c2, field, lo, hi);
  ASSERT_EQ(range.size(), hi - lo);
  for (std::uint64_t i = 0; i < hi - lo; ++i) {
    ASSERT_EQ(range[i], full.data[lo + i]) << "elem " << lo + i;
  }

  cudasim::SimContext c3;
  EXPECT_TRUE(c.container.decode_range(c3, field, 500, 500).empty());
  cudasim::SimContext c4;
  EXPECT_THROW(c.container.decode_range(c4, field, 10, 30000), ContainerError);
}

TEST(Container, CorruptedFrameRejectedWithClearError) {
  const Corpus c = mixed_corpus();
  auto bytes = c.container.serialize();
  bytes[kV3PayloadOffset + 17] ^= 0x01;  // one bit inside field 0, chunk 0

  const Container parsed = Container::deserialize(bytes);
  cudasim::SimContext ctx;
  try {
    parsed.decode_chunk(ctx, 0, 0);
    FAIL() << "corrupted frame was accepted";
  } catch (const ContainerError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC-32"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hacc1d"), std::string::npos);
  }
  EXPECT_THROW(parsed.verify(), ContainerError);

  // Untouched chunks remain decodable.
  cudasim::SimContext c2;
  EXPECT_NO_THROW(parsed.decode_chunk(c2, 0, 1));
}

TEST(Container, SharedCodebookArchiveShrinksAndDecodesIdentically) {
  const auto data = wavy_field(30000, 5);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::GapArrayOptimized;

  Container private_books;
  private_books.add_field("f", data, sz::Dims::d1(30000), cfg, 1500);
  Container shared_books;
  PlanOptions plan;
  plan.auto_method = true;
  plan.shared_codebook = true;
  shared_books.add_field("f", data, sz::Dims::d1(30000), cfg, 1500, plan);

  ASSERT_NE(shared_books.fields()[0].shared_codebook, nullptr);
  std::size_t shared_refs = 0;
  for (const ChunkRecord& rec : shared_books.fields()[0].chunks) {
    shared_refs += rec.codebook_ref == CodebookRef::SharedField;
  }
  EXPECT_GE(shared_refs, 2u);

  // Amortizing the per-chunk codebooks must shrink the archive...
  const auto private_bytes = private_books.serialize();
  const auto shared_bytes = shared_books.serialize();
  EXPECT_LT(shared_bytes.size(), private_bytes.size());

  // ... while the decoded floats stay bit-identical through a round trip.
  const Container parsed = Container::deserialize(shared_bytes);
  parsed.verify();
  cudasim::SimContext c1, c2;
  const FieldDecode a = private_books.decode_field(c1, 0);
  const FieldDecode b = parsed.decode_field(c2, 0);
  EXPECT_EQ(a.data, b.data);
  const auto stats = sz::compute_error_stats(data, b.data);
  EXPECT_LE(stats.max_abs_error,
            parsed.fields()[0].abs_error_bound * (1 + 1e-6));
}

TEST(Container, V1ArchiveDecodesBitIdentically) {
  // An archive using no v2 feature must still serialize in the PR 2 byte
  // layout and decode bit-identically from it.
  const Corpus c = mixed_corpus();
  const auto v1_bytes = c.container.serialize_v1();
  const auto v2_bytes = c.container.serialize_v2();
  ASSERT_EQ(v1_bytes[4], 1);  // version byte
  ASSERT_EQ(v2_bytes[4], 2);
  ASSERT_EQ(c.container.serialize()[4], 3);  // the current default is v3
  EXPECT_LT(v1_bytes.size(), v2_bytes.size());

  const Container from_v1 = Container::deserialize(v1_bytes);
  from_v1.verify();
  const Container from_v2 = Container::deserialize(v2_bytes);
  ASSERT_EQ(from_v1.fields().size(), from_v2.fields().size());
  for (std::size_t fi = 0; fi < from_v1.fields().size(); ++fi) {
    EXPECT_EQ(from_v1.fields()[fi].shared_codebook, nullptr);
    cudasim::SimContext c1, c2;
    EXPECT_EQ(from_v1.decode_field(c1, fi).data,
              from_v2.decode_field(c2, fi).data)
        << "field " << fi;
  }
  // Round-tripping either legacy parse back through its writer is stable:
  // v1/v2 archives read back byte-identically.
  EXPECT_EQ(from_v1.serialize_v1(), v1_bytes);
  EXPECT_EQ(from_v2.serialize_v2(), v2_bytes);
}

TEST(Container, V1WriterRejectsSharedCodebookArchives) {
  Container c;
  const auto data = wavy_field(20000, 6);
  sz::CompressorConfig cfg;
  PlanOptions plan;
  plan.shared_codebook = true;
  c.add_field("f", data, sz::Dims::d1(20000), cfg, 1024, plan);
  ASSERT_NE(c.fields()[0].shared_codebook, nullptr);
  EXPECT_THROW(c.serialize_v1(), ContainerError);
}

TEST(Container, V1TruncationAtEveryPrefixThrows) {
  Container c;
  const auto data = wavy_field(600, 21);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  c.add_field("", data, sz::Dims::d1(600), cfg, 256);
  const auto bytes = c.serialize_v1();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(Container::deserialize(prefix), std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(Container, EmptyContainerRoundTrips) {
  const Container empty;
  const auto bytes = empty.serialize();
  const Container parsed = Container::deserialize(bytes);
  EXPECT_TRUE(parsed.fields().empty());
  EXPECT_NO_THROW(parsed.verify());
}

TEST(Container, BuilderRejectsBadInput) {
  Container c;
  const auto data = wavy_field(1000, 9);
  sz::CompressorConfig cfg;
  EXPECT_THROW(c.add_field("x", data, sz::Dims::d1(999), cfg, 256),
               ContainerError);
  cfg.method = core::Method::GapArrayOriginal8Bit;
  EXPECT_THROW(c.add_field("x", data, sz::Dims::d1(1000), cfg, 256),
               ContainerError);
  cfg.method = core::Method::GapArrayOptimized;
  c.add_field("x", data, sz::Dims::d1(1000), cfg, 256);
  EXPECT_THROW(c.add_field("x", data, sz::Dims::d1(1000), cfg, 256),
               ContainerError);
  EXPECT_THROW(c.field_index("unknown"), ContainerError);
}

// ---- Malformed-input fuzzing of the parser -------------------------------

/// Small single-field container with an EMPTY name, serialized as a V2
/// image so the byte offsets of the v2 layout table in container.hpp are
/// fixed: method tag of the field at byte 60, the (empty) shared-codebook
/// length at 61, chunk records from byte 77, 58 bytes each (the
/// codebook-ref byte at record offset 53). The v3 framing has its own fuzz
/// suite in archive_io_test.cpp.
std::vector<std::uint8_t> tiny_serialized() {
  Container c;
  const auto data = wavy_field(600, 21);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  c.add_field("", data, sz::Dims::d1(600), cfg, 256);
  return c.serialize_v2();
}

constexpr std::size_t kFieldMethodOffset = 60;
constexpr std::size_t kSharedCodebookLenOffset = 61;
constexpr std::size_t kFirstChunkOffset = 77;
constexpr std::size_t kChunkRecordBytes = 58;
constexpr std::size_t kCodebookRefOffsetInRecord = 53;

/// Same shape but with a SHARED codebook (small radius keeps the codebook
/// section short): the field's codebook record spans
/// [kSharedCodebookLenOffset + 8, ...codebook bytes..., 4-byte CRC].
std::vector<std::uint8_t> tiny_shared_serialized() {
  Container c;
  const auto data = wavy_field(600, 21);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  cfg.radius = 64;
  PlanOptions plan;
  plan.shared_codebook = true;
  c.add_field("", data, sz::Dims::d1(600), cfg, 256, plan);
  return c.serialize_v2();
}

TEST(ContainerParserFuzz, TruncationAtEveryPrefixThrows) {
  const auto bytes = tiny_serialized();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(Container::deserialize(prefix), std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(ContainerParserFuzz, BadMagicThrows) {
  auto bytes = tiny_serialized();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, BadVersionThrows) {
  auto bytes = tiny_serialized();
  bytes[4] = 99;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, UnknownMethodTagThrows) {
  auto bytes = tiny_serialized();
  bytes[kFieldMethodOffset] = 0xEE;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, NonContiguousChunkOffsetsThrow) {
  auto bytes = tiny_serialized();
  // elem_offset of the SECOND chunk record (u64 at record offset +16).
  const std::size_t off = kFirstChunkOffset + kChunkRecordBytes + 16;
  ASSERT_LT(off, bytes.size());
  bytes[off] ^= 0x01;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, BadCodebookRefTagThrows) {
  auto bytes = tiny_serialized();
  const std::size_t off = kFirstChunkOffset + kCodebookRefOffsetInRecord;
  ASSERT_EQ(bytes[off], 0);  // Private, pinning the layout offset
  bytes[off] = 0xEE;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, SharedRefWithoutFieldCodebookThrows) {
  auto bytes = tiny_serialized();
  // The field carries no shared codebook (length 0 at its offset)...
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(bytes[kSharedCodebookLenOffset + i], 0);
  }
  // ... so a chunk claiming SharedField is inconsistent index data.
  bytes[kFirstChunkOffset + kCodebookRefOffsetInRecord] =
      static_cast<std::uint8_t>(CodebookRef::SharedField);
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, SharedCodebookCrcMismatchThrows) {
  const auto original = tiny_shared_serialized();
  std::uint64_t cb_len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    cb_len |= static_cast<std::uint64_t>(original[kSharedCodebookLenOffset + i])
              << (8 * i);
  }
  ASSERT_GT(cb_len, 0u);
  // Flip a byte in the middle of the codebook's length table.
  auto bytes = original;
  bytes[kSharedCodebookLenOffset + 8 + cb_len / 2] ^= 0x01;
  try {
    Container::deserialize(bytes);
    FAIL() << "corrupted shared codebook was accepted";
  } catch (const ContainerError& e) {
    EXPECT_NE(std::string(e.what()).find("shared codebook"),
              std::string::npos);
  }
  // The intact bytes parse, and the codebook is attached to the field.
  const Container parsed = Container::deserialize(original);
  ASSERT_EQ(parsed.fields().size(), 1u);
  EXPECT_NE(parsed.fields()[0].shared_codebook, nullptr);
}

TEST(ContainerParserFuzz, SharedTruncationAtEveryPrefixThrows) {
  // Covers the v2 field-record section (shared-codebook length, bytes, CRC,
  // and the codebook-ref byte of every chunk record).
  const auto bytes = tiny_shared_serialized();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(Container::deserialize(prefix), std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(ContainerParserFuzz, SharedRandomSingleByteCorruptionNeverCrashes) {
  const auto original = tiny_shared_serialized();
  util::Xoshiro256 rng(79);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    try {
      const Container parsed = Container::deserialize(bytes);
      cudasim::SimContext ctx;
      (void)parsed.decode_chunk(ctx, 0, 0);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(ContainerParserFuzz, OverflowingExtentRejected) {
  auto bytes = tiny_serialized();
  // extent[1] of the rank-1 field (u64 at byte 32): setting its top byte
  // makes it 2^63, which both violates the trailing-1 rule for rank 1 and
  // would wrap count(). Either way the parser must reject it before any
  // buffer is sized from the product.
  bytes[39] = 0x80;
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, DuplicateFieldNamesRejected) {
  Container c;
  const auto data = wavy_field(800, 31);
  sz::CompressorConfig cfg;
  c.add_field("a", data, sz::Dims::d1(800), cfg, 400);
  c.add_field("b", data, sz::Dims::d1(800), cfg, 400);
  auto bytes = c.serialize();
  // Rename field "b" to "a" in the serialized index: its name is stored as
  // u64 length 1 followed by 'b' — a 9-byte pattern unique in the index.
  const std::uint8_t pattern[9] = {1, 0, 0, 0, 0, 0, 0, 0, 'b'};
  const auto it = std::search(bytes.begin(), bytes.end(), std::begin(pattern),
                              std::end(pattern));
  ASSERT_NE(it, bytes.end());
  *(it + 8) = 'a';
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, TrailingBytesRejected) {
  auto bytes = tiny_serialized();
  bytes.push_back(0);
  EXPECT_THROW(Container::deserialize(bytes), ContainerError);
}

TEST(ContainerParserFuzz, RandomSingleByteCorruptionNeverCrashes) {
  const auto original = tiny_serialized();
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    // Every outcome must be: clean parse failure, checksum/frame rejection
    // at decode time, or a successful decode (the flip hit the name or other
    // non-load-bearing metadata). Nothing else — no crashes, no UB.
    try {
      const Container parsed = Container::deserialize(bytes);
      cudasim::SimContext ctx;
      (void)parsed.decode_chunk(ctx, 0, 0);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ohd::pipeline
