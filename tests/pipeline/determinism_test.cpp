// Pipeline determinism: a batch run on N workers must be bit-identical to
// the sequential run — container bytes, decoded floats, aggregated
// PhaseTimings, and the simulated makespan — because all merges are ordered
// by chunk id and every chunk task owns a fresh SimContext.
#include "pipeline/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/generic.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

std::vector<float> bumpy_field(std::size_t n, std::uint64_t seed,
                               double noise) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::cos(0.002 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

void expect_phases_identical(const core::PhaseTimings& a,
                             const core::PhaseTimings& b) {
  EXPECT_EQ(a.intra_sync_s, b.intra_sync_s);
  EXPECT_EQ(a.inter_sync_s, b.inter_sync_s);
  EXPECT_EQ(a.output_index_s, b.output_index_s);
  EXPECT_EQ(a.tune_s, b.tune_s);
  EXPECT_EQ(a.decode_write_s, b.decode_write_s);
  EXPECT_EQ(a.other_s, b.other_s);
}

/// Mixed corpus over the four float-capable methods, several chunks each.
struct Corpus {
  std::vector<std::vector<float>> storage;
  std::vector<FieldSpec> specs;
};

Corpus make_corpus() {
  Corpus c;
  c.storage.push_back(bumpy_field(24000, 1, 0.02));
  c.storage.push_back(bumpy_field(64 * 90, 2, 0.01));
  c.storage.push_back(bumpy_field(20 * 16 * 18, 3, 0.05));
  c.storage.push_back(bumpy_field(18000, 4, 0.2));

  const core::Method methods[] = {
      core::Method::CuszNaive, core::Method::SelfSyncOriginal,
      core::Method::SelfSyncOptimized, core::Method::GapArrayOptimized};
  const sz::Dims dims[] = {sz::Dims::d1(24000), sz::Dims::d2(64, 90),
                           sz::Dims::d3(20, 16, 18), sz::Dims::d1(18000)};
  const double ebs[] = {1e-3, 1e-4, 5e-3, 1e-3};
  for (std::size_t i = 0; i < 4; ++i) {
    FieldSpec spec;
    spec.name = "field" + std::to_string(i);
    spec.data = c.storage[i];
    spec.dims = dims[i];
    spec.config.method = methods[i];
    spec.config.rel_error_bound = ebs[i];
    spec.chunk_elems = 3000;
    c.specs.push_back(spec);
  }
  return c;
}

TEST(BatchDeterminism, CompressedContainerIsWorkerCountInvariant) {
  const Corpus corpus = make_corpus();
  ThreadPool p1(1), p4(4);
  const Container a = BatchScheduler(p1).compress(corpus.specs);
  const Container b = BatchScheduler(p4).compress(corpus.specs);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(BatchDeterminism, DecompressIsBitIdenticalAcrossWorkerCounts) {
  const Corpus corpus = make_corpus();
  ThreadPool p4(4);
  const Container container = BatchScheduler(p4).compress(corpus.specs);

  ThreadPool p1(1), p3(3);
  const BatchDecompressResult seq = BatchScheduler(p1).decompress(container);
  for (std::size_t workers : {std::size_t{3}, std::size_t{4}}) {
    ThreadPool& pool = workers == 3 ? p3 : p4;
    const BatchDecompressResult par = BatchScheduler(pool).decompress(container);
    ASSERT_EQ(par.fields.size(), seq.fields.size());
    for (std::size_t fi = 0; fi < seq.fields.size(); ++fi) {
      EXPECT_EQ(par.fields[fi].decode.data, seq.fields[fi].decode.data)
          << "workers=" << workers << " field=" << fi;
      expect_phases_identical(par.fields[fi].decode.huffman_phases,
                              seq.fields[fi].decode.huffman_phases);
      EXPECT_EQ(par.fields[fi].decode.simulated_seconds,
                seq.fields[fi].decode.simulated_seconds);
    }
    expect_phases_identical(par.phases, seq.phases);
    EXPECT_EQ(par.simulated_seconds, seq.simulated_seconds);
    EXPECT_EQ(par.chunk_seconds, seq.chunk_seconds);
    EXPECT_EQ(par.makespan(4), seq.makespan(4));
  }
}

TEST(BatchDeterminism, DecodeCoversAllFiveMethods) {
  const core::Method methods[] = {
      core::Method::CuszNaive, core::Method::SelfSyncOriginal,
      core::Method::SelfSyncOptimized, core::Method::GapArrayOriginal8Bit,
      core::Method::GapArrayOptimized};
  std::vector<core::EncodedStream> streams;
  std::uint64_t seed = 11;
  for (core::Method m : methods) {
    const auto codes = data::quant_code_stream(12000, 1024, 30.0, seed++);
    streams.push_back(core::encode_for_method(m, codes, 1024));
  }

  ThreadPool p1(1), p4(4);
  const auto seq = BatchScheduler(p1).decode(streams);
  const auto par = BatchScheduler(p4).decode(streams);
  ASSERT_EQ(seq.size(), streams.size());
  ASSERT_EQ(par.size(), streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_EQ(par[i].symbols, seq[i].symbols) << method_name(methods[i]);
    expect_phases_identical(par[i].phases, seq[i].phases);
  }
}

/// The planned (two-fan-out) compress path: adaptive method selection plus
/// shared codebooks must stay worker-count invariant AND byte-identical to
/// the sequential Container::add_field build.
TEST(BatchDeterminism, PlannedCompressIsWorkerCountInvariant) {
  Corpus corpus = make_corpus();
  for (FieldSpec& spec : corpus.specs) {
    spec.plan.auto_method = true;
    spec.plan.shared_codebook = true;
  }
  // The 8-bit-incapable methods only: auto selection re-picks per chunk, so
  // the spec method is just the fallback.
  ThreadPool p1(1), p4(4);
  const Container a = BatchScheduler(p1).compress(corpus.specs);
  const Container b = BatchScheduler(p4).compress(corpus.specs);
  EXPECT_EQ(a.serialize(), b.serialize());

  Container sequential;
  for (const FieldSpec& spec : corpus.specs) {
    sequential.add_field(spec.name, spec.data, spec.dims, spec.config,
                         spec.chunk_elems, spec.plan);
  }
  EXPECT_EQ(sequential.serialize(), a.serialize());

  // The planned corpus actually exercises shared codebooks somewhere.
  std::size_t shared_fields = 0;
  for (const FieldEntry& f : a.fields()) {
    shared_fields += f.shared_codebook != nullptr;
  }
  EXPECT_GE(shared_fields, 1u);
}

TEST(BatchDeterminism, PlannedDecompressIsBitIdenticalAcrossWorkerCounts) {
  Corpus corpus = make_corpus();
  for (FieldSpec& spec : corpus.specs) {
    spec.plan.auto_method = true;
    spec.plan.shared_codebook = true;
  }
  ThreadPool p4(4);
  const Container container = BatchScheduler(p4).compress(corpus.specs);

  ThreadPool p1(1), p3(3);
  const BatchDecompressResult seq = BatchScheduler(p1).decompress(container);
  for (std::size_t workers : {std::size_t{3}, std::size_t{4}}) {
    ThreadPool& pool = workers == 3 ? p3 : p4;
    const BatchDecompressResult par =
        BatchScheduler(pool).decompress(container);
    ASSERT_EQ(par.fields.size(), seq.fields.size());
    for (std::size_t fi = 0; fi < seq.fields.size(); ++fi) {
      EXPECT_EQ(par.fields[fi].decode.data, seq.fields[fi].decode.data)
          << "workers=" << workers << " field=" << fi;
    }
    expect_phases_identical(par.phases, seq.phases);
    EXPECT_EQ(par.chunk_seconds, seq.chunk_seconds);
  }

  // And the archive itself survives a serialize/deserialize round trip with
  // decoding bit-identical to the in-memory container.
  const Container parsed = Container::deserialize(container.serialize());
  const BatchDecompressResult reparsed = BatchScheduler(p4).decompress(parsed);
  for (std::size_t fi = 0; fi < seq.fields.size(); ++fi) {
    EXPECT_EQ(reparsed.fields[fi].decode.data, seq.fields[fi].decode.data);
  }
}

TEST(BatchScheduler, CompressRejectsInvalidSpecsBeforeFanOut) {
  const Corpus corpus = make_corpus();
  ThreadPool pool(2);
  BatchScheduler sched(pool);

  // An invalid LAST spec must fail cleanly even though valid fields precede
  // it (validation happens before any task is submitted).
  auto specs = corpus.specs;
  FieldSpec bad = specs[0];
  bad.name = "bad";
  bad.dims = sz::Dims::d1(bad.data.size() + 1);
  specs.push_back(bad);
  EXPECT_THROW(sched.compress(specs), ContainerError);

  auto dupes = corpus.specs;
  dupes.push_back(corpus.specs[0]);
  EXPECT_THROW(sched.compress(dupes), ContainerError);

  // The pool is still usable afterwards.
  EXPECT_EQ(sched.compress(corpus.specs).fields().size(), 4u);
}

TEST(BatchScheduler, DecompressSurfacesCorruptionWithPendingTasks) {
  const Corpus corpus = make_corpus();
  ThreadPool pool(2);
  BatchScheduler sched(pool);
  auto bytes = sched.compress(corpus.specs).serialize();

  const Container intact = Container::deserialize(bytes);
  // The v3 payload section starts right after the 8-byte head; frame CRCs
  // are lazy, so the flip surfaces at decode time, not at parse time.
  bytes[8 + 5] ^= 0x10;  // corrupt the first chunk's frame
  const Container corrupted = Container::deserialize(bytes);

  // The CRC failure propagates while sibling chunk tasks are still in
  // flight; the scheduler must wait them out before rethrowing.
  EXPECT_THROW(sched.decompress(corrupted), ContainerError);
  EXPECT_EQ(sched.decompress(intact).fields.size(), 4u);
}

TEST(BatchDeterminism, MakespanShrinksWithSimulatedWorkers) {
  const Corpus corpus = make_corpus();
  ThreadPool p4(4);
  BatchScheduler sched(p4);
  const Container container = sched.compress(corpus.specs);
  const BatchDecompressResult r = sched.decompress(container);
  ASSERT_GE(r.chunk_seconds.size(), 16u);

  const double ms1 = r.makespan(1);
  const double ms4 = r.makespan(4);
  // Same chunks, different summation grouping (per-chunk vs per-field).
  EXPECT_DOUBLE_EQ(ms1, r.simulated_seconds);
  EXPECT_GE(ms1 / ms4, 2.0);
  // The makespan can never beat the critical path or perfect speedup.
  double longest = 0.0;
  for (double s : r.chunk_seconds) longest = std::max(longest, s);
  EXPECT_GE(ms4, longest);
  EXPECT_GE(ms4, r.simulated_seconds / 4.0 * (1 - 1e-12));
}

}  // namespace
}  // namespace ohd::pipeline
