// FdSink/FdSource adapter coverage: append-only writes onto regular files
// and socketpairs (the sink is the server/client frame write path), the
// pread-based source's bounds checks, torn-append reporting, and the
// file-shrank TransientIoError.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/byte_stream.hpp"

namespace ohd::pipeline {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 13);
  return v;
}

TEST(FdStream, FileRoundTripThroughSinkAndSource) {
  const std::string path =
      "/tmp/ohd_fd_stream_" + std::to_string(::getpid()) + ".bin";
  const auto bytes = pattern(10000);
  {
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    FdSink sink(fd, /*owns=*/true);
    sink.write(std::span(bytes).first(4000));
    sink.write(std::span(bytes).subspan(4000));
    EXPECT_EQ(sink.position(), bytes.size());
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  FdSource source(fd, /*owns=*/true);
  EXPECT_EQ(source.size(), bytes.size());
  std::vector<std::uint8_t> back(bytes.size());
  source.read_at(0, back);
  EXPECT_EQ(back, bytes);

  // Concurrent-friendly random access: read_at is pread-based, stateless.
  std::vector<std::uint8_t> mid(100);
  source.read_at(5000, mid);
  EXPECT_EQ(mid, std::vector<std::uint8_t>(bytes.begin() + 5000,
                                           bytes.begin() + 5100));
  ::unlink(path.c_str());
}

TEST(FdStream, SourceRejectsOutOfBoundsReads) {
  const std::string path =
      "/tmp/ohd_fd_bounds_" + std::to_string(::getpid()) + ".bin";
  {
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    FdSink sink(fd, /*owns=*/true);
    sink.write(pattern(64));
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  FdSource source(fd, /*owns=*/true);
  std::vector<std::uint8_t> buf(32);
  EXPECT_THROW(source.read_at(40, buf), ArchiveError);  // 40+32 > 64
  EXPECT_THROW(source.read_at(65, std::span(buf).first(0)), ArchiveError);
  ::unlink(path.c_str());
}

TEST(FdStream, SinkWritesAcrossSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    FdSink sink(fds[0], /*owns=*/true);
    const auto bytes = pattern(2000);
    sink.write(bytes);
    EXPECT_EQ(sink.position(), bytes.size());
    std::vector<std::uint8_t> got(bytes.size());
    std::size_t off = 0;
    while (off < got.size()) {
      const ssize_t n = ::read(fds[1], got.data() + off, got.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(got, bytes);
  }
  ::close(fds[1]);
}

TEST(FdStream, WriteOnClosedPeerReportsArchiveError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // peer gone: EPIPE, reported as a typed sink failure
  FdSink sink(fds[0], /*owns=*/true);
  const auto bytes = pattern(1 << 20);  // larger than any socket buffer
  EXPECT_THROW(sink.write(bytes), ArchiveError);
}

TEST(FdStream, RejectsInvalidDescriptor) {
  EXPECT_THROW(FdSink(-1), ArchiveError);
  EXPECT_THROW(FdSource(-1), ArchiveError);
}

}  // namespace
}  // namespace ohd::pipeline
