// CancelToken + cooperative cancellation in the BatchScheduler fan-outs:
// inert tokens are free and never fire, live tokens share one flag across
// copies, a pre-cancelled token aborts compress/decompress/decode_range with
// OperationCancelled before work runs, and an UNCANCELLED live token leaves
// results bit-identical to a run without any token.
#include "pipeline/cancel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "pipeline/archive_io.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/thread_pool.hpp"

namespace ohd::pipeline {
namespace {

std::vector<float> make_field(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.004 * static_cast<double>(i)));
  }
  return v;
}

TEST(CancelToken, InertTokenNeverCancels) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  t.request_cancel();  // no-op on an inert token
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.throw_if_cancelled());
}

TEST(CancelToken, CopiesShareOneFlag) {
  CancelToken a = CancelToken::make();
  CancelToken b = a;
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.cancelled());
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_THROW(a.throw_if_cancelled(), OperationCancelled);
  a.request_cancel();  // idempotent
  EXPECT_TRUE(b.cancelled());
}

class BatchCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<float> data = make_field(20000);
    FieldSpec spec;
    spec.name = "f";
    spec.data = data;
    spec.dims = sz::Dims::d1(data.size());
    spec.chunk_elems = 2048;
    ThreadPool pool(2);
    archive_ = BatchScheduler(pool).compress(std::vector<FieldSpec>{spec})
                   .serialize();
    data_ = data;
  }

  std::vector<float> data_;
  std::vector<std::uint8_t> archive_;
};

TEST_F(BatchCancelTest, PreCancelledDecompressThrowsBeforeDecoding) {
  ThreadPool pool(2);
  BatchScheduler scheduler(pool);
  MemorySource src(archive_);
  ArchiveReader reader(src);
  CancelToken cancel = CancelToken::make();
  cancel.request_cancel();
  EXPECT_THROW(scheduler.decompress(reader, {}, cancel), OperationCancelled);
  EXPECT_THROW(
      scheduler.decode_range(reader, 0, 100, 5000, {}, cancel),
      OperationCancelled);
}

TEST_F(BatchCancelTest, PreCancelledCompressAbandonsTheSession) {
  ThreadPool pool(2);
  BatchScheduler scheduler(pool);
  const std::vector<float> data = make_field(8192);
  FieldSpec spec;
  spec.name = "g";
  spec.data = data;
  spec.dims = sz::Dims::d1(data.size());
  spec.chunk_elems = 1024;
  CancelToken cancel = CancelToken::make();
  cancel.request_cancel();
  MemorySink sink;
  ArchiveWriter writer(sink);
  EXPECT_THROW(
      scheduler.compress_to(writer, std::vector<FieldSpec>{spec}, cancel),
      OperationCancelled);
}

TEST_F(BatchCancelTest, UncancelledTokenIsBitIdenticalToNoToken) {
  ThreadPool pool(3);
  BatchScheduler scheduler(pool);
  MemorySource src(archive_);
  ArchiveReader reader(src);
  const CancelToken live = CancelToken::make();  // never fired

  const auto plain = scheduler.decompress(reader);
  const auto tokened = scheduler.decompress(reader, {}, live);
  ASSERT_EQ(plain.fields.size(), tokened.fields.size());
  const auto& a = plain.fields[0].decode.data;
  const auto& b = tokened.fields[0].decode.data;
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));

  const auto range_plain = scheduler.decode_range(reader, 0, 500, 9000);
  const auto range_tokened =
      scheduler.decode_range(reader, 0, 500, 9000, {}, live);
  EXPECT_EQ(range_plain, range_tokened);
}

}  // namespace
}  // namespace ohd::pipeline
