// The failure-model layer: RetryPolicy/with_retry semantics, deterministic
// fault schedules (FaultInjectingSource/Sink), bounded-retry convergence of
// ArchiveReader under injected faults, errno-detailed file IO errors, and
// the crash-consistency pair — AtomicFileSink's all-or-nothing publish and
// repair_truncated() re-finalizing a torn FileSink session.
#include "pipeline/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/archive_io.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/recovery.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool file_exists(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              0.02 * rng.normal());
  }
  return v;
}

/// Small preambled archive + its reference floats, shared by the retry and
/// crash tests.
struct TestArchive {
  std::vector<std::uint8_t> bytes;
  std::vector<float> reference;
};

TestArchive test_archive() {
  TestArchive a;
  const auto data = wavy_field(2000, 91);
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;
  cfg.radius = 64;
  MemorySink sink;
  ArchiveWriter writer(sink, {.recovery_preambles = true});
  writer.add_field("f", data, sz::Dims::d1(2000), cfg, 512);
  writer.finish();
  a.bytes = sink.take();
  const MemorySource source(a.bytes);
  const ArchiveReader reader(source);
  cudasim::SimContext ctx;
  a.reference = reader.decode_field(ctx, 0).data;
  return a;
}

// ---- RetryPolicy / with_retry ---------------------------------------------

TEST(RetryPolicy, BackoffIsExponentialAndDeterministic) {
  RetryPolicy p;
  EXPECT_FALSE(p.enabled());  // default: one attempt, fail fast
  p.max_attempts = 4;
  p.base_delay = std::chrono::microseconds(100);
  p.backoff_multiplier = 2.0;
  p.jitter = 0.0;
  EXPECT_TRUE(p.enabled());
  EXPECT_EQ(p.delay_before(1).count(), 100);
  EXPECT_EQ(p.delay_before(2).count(), 200);
  EXPECT_EQ(p.delay_before(3).count(), 400);

  // Jitter perturbs within +-jitter and is a pure function of (seed, retry).
  p.jitter = 0.1;
  const auto d1 = p.delay_before(3);
  EXPECT_EQ(d1.count(), p.delay_before(3).count());
  EXPECT_GE(d1.count(), 360);
  EXPECT_LE(d1.count(), 440);
  RetryPolicy other = p;
  other.jitter_seed ^= 0xabcdef;
  EXPECT_NE(other.delay_before(3).count(), d1.count());
}

TEST(WithRetry, RetriesTransientsWithinBudgetOnly) {
  RetryPolicy p;
  p.max_attempts = 3;

  int calls = 0, retries = 0;
  const int got = with_retry(
      p,
      [&] {
        if (++calls < 3) throw TransientIoError("flaky");
        return 42;
      },
      [&] { ++retries; });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);

  // Budget exhausted: the last transient error surfaces.
  calls = 0;
  EXPECT_THROW(with_retry(p,
                          [&]() -> int {
                            ++calls;
                            throw TransientIoError("always");
                          }),
               TransientIoError);
  EXPECT_EQ(calls, 3);

  // Permanent errors are never retried, whatever the budget.
  calls = 0;
  EXPECT_THROW(with_retry(p,
                          [&]() -> int {
                            ++calls;
                            throw ArchiveError("torn");
                          }),
               ArchiveError);
  EXPECT_EQ(calls, 1);
}

// ---- Deterministic fault schedules ----------------------------------------

TEST(FaultInjection, ScheduleIsAPureFunctionOfSeedAndOpIndex) {
  const std::vector<std::uint8_t> data(4096, 0x5a);
  FaultSpec spec;
  spec.seed = 1234;
  spec.transient_read_rate = 0.3;
  spec.short_read_rate = 0.2;

  const auto outcomes = [&] {
    const MemorySource inner(data);
    const FaultInjectingSource faulty(inner, spec);
    std::vector<bool> ok;
    std::vector<std::uint8_t> buf(64);
    for (int i = 0; i < 200; ++i) {
      try {
        faulty.read_at(static_cast<std::uint64_t>(i) * 16, buf);
        ok.push_back(true);
      } catch (const TransientIoError&) {
        ok.push_back(false);
      }
    }
    return ok;
  };
  const std::vector<bool> first = outcomes();
  EXPECT_EQ(first, outcomes());  // same seed, same op sequence, same faults
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);

  spec.seed = 1235;
  EXPECT_NE(outcomes(), first);  // a different seed reshuffles the schedule
}

TEST(FaultInjection, MaxFaultsCapMakesTheWrapperTransparent) {
  const std::vector<std::uint8_t> data(256, 7);
  FaultSpec spec;
  spec.transient_read_rate = 1.0;
  spec.max_faults = 2;
  const MemorySource inner(data);
  const FaultInjectingSource faulty(inner, spec);
  std::vector<std::uint8_t> buf(16);
  EXPECT_THROW(faulty.read_at(0, buf), TransientIoError);
  EXPECT_THROW(faulty.read_at(0, buf), TransientIoError);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NO_THROW(faulty.read_at(0, buf));
  }
  const FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.transient_read_errors, 2u);
  EXPECT_EQ(stats.faults(), 2u);
}

TEST(FaultInjection, TornAppendLandsAPrefixAndIsPermanent) {
  FaultSpec spec;
  spec.torn_write_rate = 1.0;
  spec.max_faults = 1;
  MemorySink inner;
  FaultInjectingSink faulty(inner, spec);
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  try {
    faulty.write(bytes);
    FAIL() << "torn write did not throw";
  } catch (const TransientIoError&) {
    FAIL() << "a torn append must be permanent: a retry would duplicate "
              "the landed prefix";
  } catch (const ArchiveError&) {
  }
  const FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.torn_writes, 1u);
  // A strict PREFIX landed in the inner sink — the crash model.
  EXPECT_LT(inner.position(), bytes.size());
  const std::vector<std::uint8_t> prefix(
      bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(
                                         inner.position()));
  EXPECT_EQ(inner.bytes(), prefix);
  // Past the cap the sink is transparent.
  EXPECT_NO_THROW(faulty.write(bytes));
}

// ---- Bounded retry on the reader ------------------------------------------

TEST(ArchiveReaderRetry, ConvergesUnderBoundedTransientFaults) {
  const TestArchive a = test_archive();
  const MemorySource clean(a.bytes);
  FaultSpec spec;
  spec.seed = 7;
  spec.transient_read_rate = 0.3;
  spec.short_read_rate = 0.1;
  const FaultInjectingSource faulty(clean, spec);
  ReaderOptions opts;
  opts.retry.max_attempts = 16;
  const ArchiveReader reader(faulty, opts);
  cudasim::SimContext ctx;
  EXPECT_EQ(reader.decode_field(ctx, 0).data, a.reference);
  EXPECT_NO_THROW(reader.verify());
  EXPECT_GT(reader.io_retries(), 0u);
  EXPECT_GT(faulty.stats().faults(), 0u);
}

TEST(ArchiveReaderRetry, ExhaustedBudgetSurfacesTheTransientError) {
  const TestArchive a = test_archive();
  const MemorySource clean(a.bytes);
  FaultSpec spec;
  spec.transient_read_rate = 1.0;  // every read fails, forever
  const FaultInjectingSource faulty(clean, spec);
  ReaderOptions opts;
  opts.retry.max_attempts = 3;
  EXPECT_THROW(ArchiveReader(faulty, opts), TransientIoError);

  // Default options: fail-fast on the first transient error, no retries.
  EXPECT_THROW(ArchiveReader{faulty}, TransientIoError);
}

// ---- File IO error detail --------------------------------------------------

TEST(FileIo, ErrorsCarryErrnoDetailAndThePath) {
  const std::string bad = "/nonexistent-ohd-dir/archive.bin";
  try {
    FileSink sink(bad);
    FAIL() << "open succeeded";
  } catch (const ArchiveError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(bad), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
  try {
    const FileSource source(bad);
    FAIL() << "open succeeded";
  } catch (const ArchiveError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(bad), std::string::npos) << what;
  }
}

TEST(FileIo, FileSinkCloseIsCheckedAndIdempotentStateIsVisible) {
  const std::string path = temp_path("ohd_checked_close.bin");
  FileSink sink(path);
  sink.write(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(sink.closed());
  sink.close();
  EXPECT_TRUE(sink.closed());
  // Writing after close is a contract violation, reported as ArchiveError.
  EXPECT_THROW(sink.write(std::vector<std::uint8_t>{4}), ArchiveError);
  std::remove(path.c_str());
}

// ---- Crash consistency -----------------------------------------------------

TEST(CrashConsistency, AtomicFileSinkPublishesAllOrNothing) {
  const TestArchive a = test_archive();
  const std::string path = temp_path("ohd_atomic_publish.bin");
  std::remove(path.c_str());
  {
    AtomicFileSink sink(path);
    EXPECT_EQ(sink.final_path(), path);
    EXPECT_NE(sink.temp_path(), path);
    sink.write(a.bytes);
    // Nothing is visible at the destination until commit.
    EXPECT_FALSE(file_exists(path));
    EXPECT_TRUE(file_exists(sink.temp_path()));
    EXPECT_FALSE(sink.committed());
    sink.commit();
    EXPECT_TRUE(sink.committed());
    EXPECT_TRUE(file_exists(path));
    EXPECT_FALSE(file_exists(sink.temp_path()));
  }
  // The published archive is complete and valid.
  const FileSource source(path);
  const ArchiveReader reader(source);
  cudasim::SimContext ctx;
  EXPECT_EQ(reader.decode_field(ctx, 0).data, a.reference);
  std::remove(path.c_str());
}

TEST(CrashConsistency, AbandonedAtomicSessionLeavesNoFiles) {
  const std::string path = temp_path("ohd_atomic_abandon.bin");
  std::remove(path.c_str());
  std::string temp;
  {
    AtomicFileSink sink(path);
    temp = sink.temp_path();
    sink.write(std::vector<std::uint8_t>{1, 2, 3, 4});
    // Destroyed without commit: the "crash" of an unfinished session.
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(temp));
}

TEST(CrashConsistency, FinishCommitsThroughAnAtomicSink) {
  // ArchiveWriter::finish() calls commit(): through an AtomicFileSink a
  // finished session IS published, an unfinished one leaves nothing behind.
  const std::string path = temp_path("ohd_atomic_finish.bin");
  std::remove(path.c_str());
  const auto data = wavy_field(800, 93);
  sz::CompressorConfig cfg;
  cfg.radius = 64;
  {
    AtomicFileSink sink(path);
    ArchiveWriter writer(sink, {.recovery_preambles = true});
    writer.add_field("f", data, sz::Dims::d1(800), cfg, 256);
    writer.finish();
    EXPECT_TRUE(sink.committed());
  }
  EXPECT_TRUE(file_exists(path));
  const FileSource source(path);
  EXPECT_NO_THROW(ArchiveReader(source).verify());
  std::remove(path.c_str());
}

TEST(CrashConsistency, TornFileSessionRepairsIntoAValidArchive) {
  // The full crash-recovery loop: a plain FileSink session dies on a torn
  // append (leaving a torn file, unlike AtomicFileSink), salvage sees only
  // the intact prefix, and repair_truncated + AtomicFileSink re-finalizes it
  // into a strictly valid archive with every surviving chunk bit-identical.
  const TestArchive a = test_archive();
  const std::string torn_path = temp_path("ohd_torn_session.bin");
  const std::string repaired_path = temp_path("ohd_repaired.bin");
  std::remove(repaired_path.c_str());

  // Simulate the torn session by writing a prefix of the real archive: the
  // deterministic sink-side equivalent of dying mid-append.
  FaultSpec spec;
  spec.seed = 11;
  spec.torn_write_rate = 1.0;
  spec.max_faults = 1;
  {
    FileSink file(torn_path);
    FaultInjectingSink faulty(file, spec);
    try {
      faulty.write(a.bytes);  // tears: a prefix lands in the file
    } catch (const ArchiveError&) {
    }
    file.flush();
    EXPECT_LT(file.position(), a.bytes.size());
    EXPECT_GT(faulty.stats().torn_writes, 0u);
  }

  {
    const FileSource damaged(torn_path);
    AtomicFileSink out(repaired_path);
    const RepairReport rr = repair_truncated(damaged, out);
    EXPECT_EQ(rr.output_bytes, out.position());
    EXPECT_TRUE(out.committed());  // finish() committed (and published) it
  }
  const FileSource source(repaired_path);
  const ArchiveReader reader(source);
  EXPECT_NO_THROW(reader.verify());
  if (!reader.fields().empty()) {
    cudasim::SimContext ctx;
    const FieldDecode d = reader.decode_field(ctx, 0);
    ASSERT_LE(d.data.size(), a.reference.size());
    for (std::size_t i = 0; i < d.data.size(); ++i) {
      ASSERT_EQ(d.data[i], a.reference[i]);
    }
  }
  std::remove(torn_path.c_str());
  std::remove(repaired_path.c_str());
}

}  // namespace
}  // namespace ohd::pipeline
