#include "pipeline/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ohd::pipeline {
namespace {

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ThrowingTasksNeverWedgeTheWorkers) {
  // Exception-safety regression: a task that throws must be fully contained
  // by its future — every worker survives, and a burst of later submits
  // (more tasks than workers, so each worker must pick up work again) still
  // runs to completion. A wedged or dead worker would deadlock the final
  // gets or drop tasks.
  ThreadPool pool(2);
  std::vector<std::future<int>> bad;
  for (int i = 0; i < 16; ++i) {
    bad.push_back(pool.submit([]() -> int {
      throw std::runtime_error("task failure");
    }));
  }
  for (auto& f : bad) {
    EXPECT_THROW(f.get(), std::runtime_error);
  }
  std::atomic<int> ran{0};
  std::vector<std::future<int>> good;
  for (int i = 0; i < 32; ++i) {
    good.push_back(pool.submit([&ran, i] {
      ran.fetch_add(1);
      return i;
    }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(good[static_cast<std::size_t>(i)].get(), i);
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, RunsTasksConcurrently) {
  // Four tasks rendezvous at a barrier: this can only complete if all four
  // are in flight simultaneously, i.e. the pool really has four workers.
  constexpr int kTasks = 4;
  ThreadPool pool(kTasks);
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&] {
      std::unique_lock<std::mutex> lock(m);
      if (++arrived == kTasks) {
        cv.notify_all();
      } else {
        cv.wait(lock, [&] { return arrived == kTasks; });
      }
    }));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    f.get();
  }
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace ohd::pipeline
