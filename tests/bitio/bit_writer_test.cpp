#include "bitio/bit_writer.hpp"

#include <gtest/gtest.h>

namespace ohd::bitio {
namespace {

TEST(BitWriter, EmptyStream) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.finish().empty());
}

TEST(BitWriter, SingleBitLandsInMsb) {
  BitWriter w;
  w.put(1, 1);
  const auto units = w.finish();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0], 0x80000000u);
}

TEST(BitWriter, MsbFirstOrderWithinUnit) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0b01, 2);
  const auto units = w.finish();
  ASSERT_EQ(units.size(), 1u);
  // Stream: 1 0 1 0 1 ...
  EXPECT_EQ(units[0] >> 27, 0b10101u);
}

TEST(BitWriter, CrossesUnitBoundary) {
  BitWriter w;
  w.put(0xFFFFFFFF, 30);
  w.put(0b1011, 4);  // two bits in unit 0, two in unit 1
  EXPECT_EQ(w.bit_count(), 34u);
  const auto units = w.finish();
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0], 0xFFFFFFFEu);  // bits 30-31 are '10'
  EXPECT_EQ(units[0] & 3u, 2u);
  EXPECT_EQ(units[1] >> 30, 0b11u);
}

TEST(BitWriter, Put32Bits) {
  BitWriter w;
  w.put(0xDEADBEEF, 32);
  const auto units = w.finish();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0], 0xDEADBEEFu);
}

TEST(BitWriter, PutZeroLenIsNoop) {
  BitWriter w;
  w.put(0x7, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitWriter, PadToBoundary) {
  BitWriter w;
  w.put(1, 1);
  w.pad_to(128);
  EXPECT_EQ(w.bit_count(), 128u);
  EXPECT_EQ(w.finish().size(), 4u);
}

TEST(BitWriter, PadToAlreadyAlignedIsNoop) {
  BitWriter w;
  w.put(0xABCD, 16);
  w.put(0x1234, 16);
  w.pad_to(32);
  EXPECT_EQ(w.bit_count(), 32u);
}

TEST(BitWriter, PadAcrossMultipleUnits) {
  BitWriter w;
  w.put(1, 1);
  w.pad_to(256);
  EXPECT_EQ(w.bit_count(), 256u);
  EXPECT_EQ(w.finish().size(), 8u);
}

TEST(BitWriter, UpperBitsOfCodeIgnored) {
  BitWriter w;
  w.put(0xFFFFFFF5, 3);  // only the low 3 bits (101) count
  const auto units = w.finish();
  EXPECT_EQ(units[0] >> 29, 0b101u);
}

}  // namespace
}  // namespace ohd::bitio
