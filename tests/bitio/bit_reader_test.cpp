#include "bitio/bit_reader.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ohd::bitio {
namespace {

TEST(BitReader, ReadsMsbFirst) {
  std::vector<std::uint32_t> units = {0xA0000000};  // 1010...
  BitReader r(units, 32);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 0u);
}

TEST(BitReader, SeekAndPosition) {
  std::vector<std::uint32_t> units = {0x00000001, 0x80000000};
  BitReader r(units, 64);
  r.seek(31);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.position(), 32u);
  EXPECT_EQ(r.get_bit(), 1u);  // first bit of unit 1
}

TEST(BitReader, PastEndReadsZero) {
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 8);
  r.seek(8);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.position(), 9u);
}

TEST(BitReader, PeekDoesNotAdvance) {
  std::vector<std::uint32_t> units = {0xB4000000};  // 10110100...
  BitReader r(units, 32);
  EXPECT_EQ(r.peek(5), 0b10110u);
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.peek(8), 0b10110100u);
}

TEST(BitReader, PeekAcrossUnits) {
  std::vector<std::uint32_t> units = {0x00000001, 0xC0000000};
  BitReader r(units, 64);
  r.seek(31);
  EXPECT_EQ(r.peek(3), 0b111u);
}

TEST(BitReader, PeekBeyondEndPadsZero) {
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 4);
  r.seek(2);
  EXPECT_EQ(r.peek(4), 0b1100u);
}

TEST(BitReader, SkipAdvances) {
  std::vector<std::uint32_t> units = {0x0F000000};
  BitReader r(units, 32);
  r.skip(4);
  EXPECT_EQ(r.get_bit(), 1u);
}

}  // namespace
}  // namespace ohd::bitio
