#include "bitio/bit_reader.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ohd::bitio {
namespace {

TEST(BitReader, ReadsMsbFirst) {
  std::vector<std::uint32_t> units = {0xA0000000};  // 1010...
  BitReader r(units, 32);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 0u);
}

TEST(BitReader, SeekAndPosition) {
  std::vector<std::uint32_t> units = {0x00000001, 0x80000000};
  BitReader r(units, 64);
  r.seek(31);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.position(), 32u);
  EXPECT_EQ(r.get_bit(), 1u);  // first bit of unit 1
}

TEST(BitReader, PastEndReadsZero) {
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 8);
  r.seek(8);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.position(), 9u);
}

TEST(BitReader, PeekDoesNotAdvance) {
  std::vector<std::uint32_t> units = {0xB4000000};  // 10110100...
  BitReader r(units, 32);
  EXPECT_EQ(r.peek(5), 0b10110u);
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.peek(8), 0b10110100u);
}

TEST(BitReader, PeekAcrossUnits) {
  std::vector<std::uint32_t> units = {0x00000001, 0xC0000000};
  BitReader r(units, 64);
  r.seek(31);
  EXPECT_EQ(r.peek(3), 0b111u);
}

TEST(BitReader, PeekBeyondEndPadsZero) {
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 4);
  r.seek(2);
  EXPECT_EQ(r.peek(4), 0b1100u);
}

TEST(BitReader, SkipAdvances) {
  std::vector<std::uint32_t> units = {0x0F000000};
  BitReader r(units, 32);
  r.skip(4);
  EXPECT_EQ(r.get_bit(), 1u);
}

// ---- Regression cases for the buffered refill (see ISSUE 1) ----------------

TEST(BitReader, PeekFull32Bits) {
  std::vector<std::uint32_t> units = {0x12345678, 0x9ABCDEF0};
  BitReader r(units, 64);
  EXPECT_EQ(r.peek(32), 0x12345678u);  // len == 32: shift must not overflow
  r.seek(16);
  EXPECT_EQ(r.peek(32), 0x56789ABCu);  // 32 bits straddling a unit boundary
}

TEST(BitReader, Peek32StraddlingFinalPartialUnit) {
  // total_bits ends mid-unit: the tail of the last unit is sequence padding
  // and must read as zero even though the stored bits are ones.
  std::vector<std::uint32_t> units = {0xFFFFFFFF, 0xFFFFFFFF};
  BitReader r(units, 40);
  r.seek(24);
  EXPECT_EQ(r.peek(32), 0xFFFF0000u);  // 16 valid bits, 16 padding zeros
  r.seek(36);
  EXPECT_EQ(r.peek(8), 0xF0u);
}

TEST(BitReader, PeekFarPastEndIsZero) {
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 32);
  r.seek(100);
  EXPECT_EQ(r.peek(32), 0u);
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.position(), 101u);
}

TEST(BitReader, TotalBitsBeyondUnitArrayReadsZero) {
  // Inconsistent input (total_bits > 32 * units): the reader must pad with
  // zeros instead of reading out of bounds.
  std::vector<std::uint32_t> units = {0xFFFFFFFF};
  BitReader r(units, 48);
  r.seek(28);
  EXPECT_EQ(r.peek(20), 0xF0000u);
}

TEST(BitReader, SeekBackAfterReadingInvalidatesBuffer) {
  std::vector<std::uint32_t> units = {0xB4000000, 0x12345678};
  BitReader r(units, 64);
  r.skip(40);
  (void)r.get_bit();
  r.seek(0);
  EXPECT_EQ(r.peek(8), 0xB4u);
  EXPECT_EQ(r.get_bit(), 1u);
}

TEST(BitReader, SkipExactlyBufferedBitsThenRead) {
  std::vector<std::uint32_t> units = {0x00000000, 0x00000000, 0xFF000000};
  BitReader r(units, 96);
  (void)r.peek(32);  // fault in a buffer...
  r.skip(64);        // ...then skip past everything it could hold
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.position(), 65u);
}

TEST(BitReader, InterleavedPeekSkipGetBitMatchesReference) {
  // Differential check against a trivial per-bit reference over a mixed
  // access pattern (the LUT decode step's peek/skip cadence).
  std::vector<std::uint32_t> units = {0xDEADBEEF, 0x01234567, 0x89ABCDEF,
                                      0xFEDCBA98};
  const std::uint64_t total = 112;  // final unit only partially valid
  auto ref_bit = [&](std::uint64_t p) -> std::uint32_t {
    if (p >= total) return 0;
    return (units[p / 32] >> (31 - p % 32)) & 1u;
  };
  auto ref_peek = [&](std::uint64_t p, std::uint32_t len) {
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < len; ++i) v = (v << 1) | ref_bit(p + i);
    return v;
  };
  BitReader r(units, total);
  std::uint64_t pos = 0;
  const std::uint32_t lens[] = {1, 3, 12, 32, 7, 24, 32, 5, 17};
  for (std::uint32_t len : lens) {
    ASSERT_EQ(r.peek(len), ref_peek(pos, len)) << "peek at " << pos;
    ASSERT_EQ(r.get_bit(), ref_bit(pos)) << "get_bit at " << pos;
    ++pos;
    r.skip(len);
    pos += len;
    ASSERT_EQ(r.position(), pos);
  }
}

TEST(BitReader, WideRefillExhaustiveSeekPeekSweep) {
  // The refill pulls TWO units in one pass; sweep every (seek position,
  // peek width) pair across a stream whose valid tail ends mid-unit, so the
  // second fetched unit is variously missing, partial, and full.
  std::vector<std::uint32_t> units = {0xDEADBEEF, 0x01234567, 0x89ABCDEF,
                                      0xFFFFFFFF, 0x00000001};
  const std::uint64_t total = 4 * 32 + 9;  // 9 valid bits in the last unit
  auto ref_bit = [&](std::uint64_t p) -> std::uint32_t {
    if (p >= total) return 0;
    return (units[p / 32] >> (31 - p % 32)) & 1u;
  };
  BitReader r(units, total);
  for (std::uint64_t pos = 0; pos <= total + 40; ++pos) {
    for (const std::uint32_t len : {1u, 5u, 12u, 31u, 32u}) {
      std::uint32_t expect = 0;
      for (std::uint32_t i = 0; i < len; ++i) {
        expect = (expect << 1) | ref_bit(pos + i);
      }
      r.seek(pos);
      ASSERT_EQ(r.peek(len), expect) << "pos " << pos << " len " << len;
      // And via the consuming path, which refills differently.
      r.seek(pos);
      for (std::uint32_t i = 0; i < len; ++i) {
        ASSERT_EQ(r.get_bit(), ref_bit(pos + i)) << "pos " << pos + i;
      }
    }
  }
}

TEST(BitReader, MinRefillGuaranteeHoldsMidStream) {
  // After any refill there are at least kMinRefillBits buffered, so a
  // peek(32) immediately after a misaligned skip is served by one refill:
  // equivalently, peek(32) then skip(32) repeatedly must walk the stream
  // without ever returning stale bits.
  std::vector<std::uint32_t> units(64);
  util::Xoshiro256 rng(21);
  for (auto& u : units) u = static_cast<std::uint32_t>(rng());
  const std::uint64_t total = units.size() * 32;
  auto ref_bit = [&](std::uint64_t p) -> std::uint32_t {
    if (p >= total) return 0;
    return (units[p / 32] >> (31 - p % 32)) & 1u;
  };
  BitReader r(units, total);
  std::uint64_t pos = 0;
  r.seek(0);
  while (pos + 32 <= total) {
    std::uint32_t expect = 0;
    for (std::uint32_t i = 0; i < 32; ++i) {
      expect = (expect << 1) | ref_bit(pos + i);
    }
    ASSERT_EQ(r.peek(32), expect) << "pos " << pos;
    const std::uint32_t step = 1 + static_cast<std::uint32_t>(pos % 31);
    r.skip(step);
    pos += step;
  }
}

}  // namespace
}  // namespace ohd::bitio
