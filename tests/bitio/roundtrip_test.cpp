// Property test: anything written with BitWriter reads back identically with
// BitReader, across randomized (value, length) sequences.
#include <gtest/gtest.h>

#include <vector>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "util/rng.hpp"

namespace ohd::bitio {
namespace {

class BitIoRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoRoundtrip, WriteThenReadMatches) {
  util::Xoshiro256 rng(GetParam());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tokens;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::uint32_t>(1 + rng.bounded(32));
    const auto value = static_cast<std::uint32_t>(
        rng.bounded(len == 32 ? 0x100000000ull : (1ull << len)));
    tokens.emplace_back(value, len);
    w.put(value, len);
  }
  const std::uint64_t total = w.bit_count();
  const auto units = w.finish();

  BitReader r(units, total);
  for (const auto& [value, len] : tokens) {
    EXPECT_EQ(r.peek(len), value);
    r.skip(len);
  }
  EXPECT_EQ(r.position(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

TEST(BitIoRoundtrip, BitByBitAgreesWithPeek) {
  util::Xoshiro256 rng(7);
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    w.put(static_cast<std::uint32_t>(rng() & 0x1FFF), 13);
  }
  const auto total = w.bit_count();
  const auto units = w.finish();
  BitReader a(units, total);
  BitReader b(units, total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint32_t bit = a.get_bit();
    EXPECT_EQ(bit, b.peek(1));
    b.skip(1);
  }
}

}  // namespace
}  // namespace ohd::bitio
