// End-to-end integration: generate a dataset, compress with the cuSZ
// pipeline, decompress with every decoder, check error bounds and content
// agreement across the full stack.
#include <gtest/gtest.h>

#include <cmath>

#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"

namespace ohd {
namespace {

class PipelineOnDataset : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineOnDataset, CompressDecompressWithinBound) {
  const auto field = data::make_by_name(GetParam(), 0.05);
  sz::CompressorConfig cfg;
  cfg.rel_error_bound = 1e-3;
  const auto blob = sz::compress(field.data, field.dims, cfg);

  cudasim::SimContext ctx;
  const auto result = sz::decompress(ctx, blob);
  const auto stats = sz::compute_error_stats(field.data, result.data);
  EXPECT_LE(stats.max_abs_error,
            cfg.rel_error_bound * stats.value_range * (1 + 1e-6));
  EXPECT_GT(stats.psnr_db, 40.0);
  EXPECT_GT(blob.ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PipelineOnDataset,
                         ::testing::Values("HACC", "EXAALT", "CESM", "Nyx",
                                           "Hurricane", "QMCPack", "RTM",
                                           "GAMESS"));

TEST(Pipeline, DecodersAgreeOnRealisticQuantCodes) {
  const auto field = data::make_hacc(0.05);
  std::vector<float> reference;
  for (core::Method m : {core::Method::CuszNaive,
                         core::Method::SelfSyncOptimized,
                         core::Method::GapArrayOptimized}) {
    sz::CompressorConfig cfg;
    cfg.method = m;
    const auto blob = sz::compress(field.data, field.dims, cfg);
    cudasim::SimContext ctx;
    const auto result = sz::decompress(ctx, blob);
    if (reference.empty()) {
      reference = result.data;
    } else {
      EXPECT_EQ(result.data, reference);
    }
  }
}

TEST(Pipeline, ErrorBoundSweepStaysBounded) {
  const auto field = data::make_cesm(0.03);
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    sz::CompressorConfig cfg;
    cfg.rel_error_bound = eb;
    const auto blob = sz::compress(field.data, field.dims, cfg);
    cudasim::SimContext ctx;
    const auto result = sz::decompress(ctx, blob);
    const auto stats = sz::compute_error_stats(field.data, result.data);
    EXPECT_LE(stats.max_abs_error, eb * stats.value_range * (1 + 1e-6))
        << "eb=" << eb;
  }
}

TEST(Pipeline, LargerErrorBoundCompressesBetter) {
  const auto field = data::make_hacc(0.05);
  double prev_ratio = 0.0;
  for (double eb : {1e-4, 1e-3, 1e-2}) {
    sz::CompressorConfig cfg;
    cfg.rel_error_bound = eb;
    const auto blob = sz::compress(field.data, field.dims, cfg);
    EXPECT_GT(blob.ratio(), prev_ratio) << "eb=" << eb;
    prev_ratio = blob.ratio();
  }
}

}  // namespace
}  // namespace ohd
