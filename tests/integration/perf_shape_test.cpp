// Performance-SHAPE assertions on the simulated V100: the qualitative
// findings of the paper's evaluation must hold in the model. These are the
// invariants the benchmark harness relies on; absolute GB/s are checked only
// for sane orders of magnitude.
#include <gtest/gtest.h>

#include "core/gap_decoder.hpp"
#include "core/huffman_codec.hpp"
#include "core/naive_decoder.hpp"
#include "core/selfsync_decoder.hpp"
#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/lorenzo.hpp"
#include "util/rng.hpp"

namespace ohd {
namespace {

using core::Method;

/// Quantization codes of a dataset at the paper's eb.
std::vector<std::uint16_t> quant_codes(const data::Field& f,
                                       double rel_eb = 1e-3) {
  float lo = f.data[0], hi = f.data[0];
  for (float v : f.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const auto q = sz::lorenzo_quantize(
      f.data, f.dims, rel_eb * (hi - lo > 0 ? hi - lo : 1.0));
  return q.codes;
}

double decode_seconds(Method m, std::span<const std::uint16_t> codes) {
  const auto enc = core::encode_for_method(m, codes, 1024);
  cudasim::SimContext ctx;
  return core::decode(ctx, enc).seconds();
}

TEST(PerfShape, OptimizedDecodersBeatBaselineOnHacc) {
  const auto codes = quant_codes(data::make_hacc(0.1));
  const double naive = decode_seconds(Method::CuszNaive, codes);
  const double opt_ss = decode_seconds(Method::SelfSyncOptimized, codes);
  const double opt_gap = decode_seconds(Method::GapArrayOptimized, codes);
  EXPECT_LT(opt_ss, naive);       // paper: 3.14x
  EXPECT_LT(opt_gap, opt_ss);     // paper: gap array is the fastest
}

TEST(PerfShape, OriginalSelfSyncCollapsesOnHighRatioData) {
  // Paper Table V: ori. self-sync is FASTER than the baseline on low-CR data
  // (HACC: 1.50x) but SLOWER on high-CR data (Nyx: 0.09x).
  const auto low_cr = quant_codes(data::make_hacc(0.1));
  const auto high_cr = quant_codes(data::make_nyx(0.4));

  const double naive_low = decode_seconds(Method::CuszNaive, low_cr);
  const double ori_low = decode_seconds(Method::SelfSyncOriginal, low_cr);
  EXPECT_LT(ori_low, naive_low);

  const double naive_high = decode_seconds(Method::CuszNaive, high_cr);
  const double ori_high = decode_seconds(Method::SelfSyncOriginal, high_cr);
  EXPECT_GT(ori_high, naive_high);
}

TEST(PerfShape, OptimizationRecoversHighRatioThroughput) {
  // The shared-memory staged writes are exactly what fixes the high-CR
  // collapse: optimized self-sync must beat the baseline even on Nyx.
  const auto codes = quant_codes(data::make_nyx(0.4));
  const double naive = decode_seconds(Method::CuszNaive, codes);
  const double opt = decode_seconds(Method::SelfSyncOptimized, codes);
  EXPECT_LT(opt, naive);
}

TEST(PerfShape, SharedBufferSweepHasInteriorOptimum) {
  // Figure 3: throughput as a function of the fixed buffer size peaks at an
  // interior point (too small => iteration overhead + lost parallelism; too
  // large => occupancy loss).
  const auto codes = quant_codes(data::make_hacc(0.1));
  const auto cb = huffman::Codebook::from_data(codes, 1024);
  const auto enc = huffman::encode_gap(codes, cb);

  auto staged_seconds = [&](std::uint32_t buffer) {
    cudasim::SimContext ctx;
    core::GapArrayOptions opts;
    opts.tune_shared_memory = false;
    opts.fixed_buffer_symbols = buffer;
    return core::decode_gap_array(ctx, enc, cb, {}, opts)
        .phases.decode_write_s;
  };
  const double tiny = staged_seconds(1024);
  const double mid = staged_seconds(4096);
  const double huge = staged_seconds(16384);
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

TEST(PerfShape, TunedDecodeWithinMarginOfBruteForceBest) {
  // Table I: the online tuner's decode+write lands near the brute-force best
  // buffer size (the paper reports within ~10% at 100MB+ scale; we allow a
  // wider margin because per-class kernels amortize worse on small inputs).
  const auto codes = quant_codes(data::make_cesm(0.3));
  const auto cb = huffman::Codebook::from_data(codes, 1024);
  const auto enc = huffman::encode_gap(codes, cb);

  double best = 1e30;
  for (std::uint32_t buffer = 1024; buffer <= 8192; buffer += 1024) {
    cudasim::SimContext ctx;
    core::GapArrayOptions opts;
    opts.tune_shared_memory = false;
    opts.fixed_buffer_symbols = buffer;
    best = std::min(best, core::decode_gap_array(ctx, enc, cb, {}, opts)
                              .phases.decode_write_s);
  }
  cudasim::SimContext ctx;
  const auto tuned = core::decode_gap_array(ctx, enc, cb, {},
                                            core::GapArrayOptions::optimized());
  EXPECT_LT(tuned.phases.decode_write_s, best * 1.30);
}

TEST(PerfShape, EndToEndDecompressionSpeedupHolds) {
  // Figure 4's qualitative claim: swapping the baseline decoder for the
  // optimized gap-array decoder speeds up overall cuSZ decompression.
  const auto field = data::make_hacc(0.1);
  auto total_seconds = [&](Method m) {
    sz::CompressorConfig cfg;
    cfg.method = m;
    const auto blob = sz::compress(field.data, field.dims, cfg);
    cudasim::SimContext ctx;
    return sz::decompress(ctx, blob).total_seconds();
  };
  EXPECT_LT(total_seconds(Method::GapArrayOptimized),
            total_seconds(Method::CuszNaive));
}

TEST(PerfShape, ThroughputIsPlausibleForAV100) {
  // Order-of-magnitude check: the optimized gap-array decoder should land
  // between 20 and 500 GB/s on quantization codes (paper: ~85-124 GB/s).
  // Needs a stream large enough that fixed launch overheads do not dominate.
  const auto codes = quant_codes(data::make_hacc(0.5));
  const double seconds = decode_seconds(Method::GapArrayOptimized, codes);
  const double gbps = codes.size() * 2 / 1e9 / seconds;
  EXPECT_GT(gbps, 20.0);
  EXPECT_LT(gbps, 500.0);
}

}  // namespace
}  // namespace ohd
