// Equivalence of the flat-LUT decode path with the bit-by-bit first-code
// walk: decode_one_lut must match decode_one symbol-for-symbol — same
// symbol, same consumed-bit count, same validity, same reader position —
// on every input, including desynchronized garbage and incomplete codes.
#include "huffman/decode_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bitio/bit_reader.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"
#include "util/rng.hpp"

namespace ohd::huffman {
namespace {

/// Walks both decode paths over the same units from `start_bit` for up to
/// `max_steps` codewords and asserts they stay in lockstep.
void expect_lockstep(std::span<const std::uint32_t> units,
                     std::uint64_t total_bits, const Codebook& cb,
                     std::uint64_t start_bit, std::uint32_t max_steps) {
  bitio::BitReader a(units, total_bits);
  bitio::BitReader b(units, total_bits);
  a.seek(start_bit);
  b.seek(start_bit);
  const DecodeTable& table = cb.decode_table();
  for (std::uint32_t step = 0;
       step < max_steps && a.position() < total_bits; ++step) {
    const DecodedSymbol x = decode_one(a, cb);
    const DecodedSymbol y = decode_one_lut(b, cb, table);
    ASSERT_EQ(x.valid, y.valid) << "step " << step << " from " << start_bit;
    ASSERT_EQ(x.len, y.len) << "step " << step << " from " << start_bit;
    if (x.valid) {
      ASSERT_EQ(x.symbol, y.symbol)
          << "step " << step << " from " << start_bit;
    }
    ASSERT_EQ(a.position(), b.position())
        << "step " << step << " from " << start_bit;
  }
}

/// Multi-symbol lockstep: decode_multi on one reader must retire exactly the
/// symbols (and bit positions) that repeated decode_one calls produce on
/// another, on every input — including desynchronized garbage, where an
/// unassigned prefix surfaces as a zero-count batch consuming max_len bits.
void expect_multi_lockstep(std::span<const std::uint32_t> units,
                           std::uint64_t total_bits, const Codebook& cb,
                           std::uint64_t start_bit, std::uint32_t max_steps) {
  bitio::BitReader ref(units, total_bits);
  bitio::BitReader multi(units, total_bits);
  ref.seek(start_bit);
  multi.seek(start_bit);
  const DecodeTable& table = cb.decode_table();
  for (std::uint32_t step = 0;
       step < max_steps && multi.position() < total_bits; ++step) {
    const DecodedBatch batch = decode_multi(multi, cb, table);
    ASSERT_GT(batch.bits, 0u) << "step " << step << " from " << start_bit;
    if (batch.count == 0) {
      const DecodedSymbol x = decode_one(ref, cb);
      ASSERT_FALSE(x.valid) << "step " << step << " from " << start_bit;
    } else {
      for (std::uint32_t i = 0; i < batch.count; ++i) {
        const DecodedSymbol x = decode_one(ref, cb);
        ASSERT_TRUE(x.valid) << "step " << step << " from " << start_bit;
        ASSERT_EQ(x.symbol, batch.symbols[i])
            << "step " << step << " symbol " << i << " from " << start_bit;
      }
    }
    ASSERT_EQ(ref.position(), multi.position())
        << "step " << step << " from " << start_bit;
  }
}

std::vector<std::uint16_t> random_stream(util::Xoshiro256& rng, std::size_t n,
                                         std::uint32_t alphabet,
                                         double skew) {
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    if (rng.uniform() < skew) {
      s = static_cast<std::uint16_t>(rng.bounded(alphabet / 8 + 1));
    } else {
      s = static_cast<std::uint16_t>(rng.bounded(alphabet));
    }
  }
  return out;
}

TEST(DecodeTableEquivalence, RandomizedCodebooksAndStreams) {
  util::Xoshiro256 rng(42);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t alphabet =
        static_cast<std::uint32_t>(2 + rng.bounded(1023));
    const double skew = rng.uniform();
    const auto data = random_stream(rng, 2000, alphabet, skew);
    const Codebook cb = Codebook::from_data(data, alphabet);
    const StreamEncoding enc = encode_plain(data, cb);

    // In-sync decode of the whole stream.
    expect_lockstep(enc.units, enc.total_bits, cb, 0, 3000);
    // Desynchronized garbage starts: arbitrary bit offsets, including ones
    // landing mid-codeword.
    for (int s = 0; s < 8; ++s) {
      expect_lockstep(enc.units, enc.total_bits, cb,
                      rng.bounded(enc.total_bits), 200);
    }
  }
}

TEST(DecodeTableEquivalence, SingleSymbolIncompleteCode) {
  // A one-symbol alphabet yields an incomplete 1-bit code: the other branch
  // is an unassigned prefix, reachable on the stream's zero padding.
  const std::vector<std::uint16_t> data(64, 0);
  const Codebook cb = Codebook::from_data(data, 1);
  ASSERT_EQ(cb.max_len(), 1u);
  ASSERT_EQ(cb.decode_table().index_bits(), 1u);
  const StreamEncoding enc = encode_plain(data, cb);
  expect_lockstep(enc.units, enc.total_bits, cb, 0, 100);

  // Garbage: a buffer of bits the codeword never produces (all ones decode
  // fine for codeword 0 of length 1 only if first bit matches; craft both).
  const std::vector<std::uint32_t> garbage = {0xFFFF0000, 0x12345678};
  expect_lockstep(garbage, 64, cb, 0, 100);
  expect_lockstep(garbage, 64, cb, 13, 100);
}

TEST(DecodeTableEquivalence, MaxLength24Codes) {
  // Complete code with lengths 1..23 plus two 24s (Kraft sum exactly 1):
  // codewords far beyond the 12-bit index exercise the fallback ladder.
  std::vector<std::uint8_t> lengths;
  for (std::uint8_t l = 1; l <= 23; ++l) lengths.push_back(l);
  lengths.push_back(24);
  lengths.push_back(24);
  const Codebook cb = Codebook::from_lengths(lengths);
  ASSERT_EQ(cb.max_len(), kMaxCodeLen);
  ASSERT_EQ(cb.decode_table().index_bits(),
            DecodeTable::kDefaultIndexBits);

  // A stream that hits every symbol, including the deepest codewords.
  std::vector<std::uint16_t> data;
  for (std::uint16_t s = 0; s < lengths.size(); ++s) {
    data.push_back(s);
    data.push_back(static_cast<std::uint16_t>(lengths.size() - 1 - s));
  }
  const StreamEncoding enc = encode_plain(data, cb);
  expect_lockstep(enc.units, enc.total_bits, cb, 0, 200);

  // Desynchronized starts walk the ladder through unassigned deep prefixes.
  util::Xoshiro256 rng(7);
  for (int s = 0; s < 32; ++s) {
    expect_lockstep(enc.units, enc.total_bits, cb,
                    rng.bounded(enc.total_bits), 64);
  }
  // Pure garbage bits, too.
  std::vector<std::uint32_t> garbage(64);
  for (auto& u : garbage) u = static_cast<std::uint32_t>(rng());
  expect_lockstep(garbage, garbage.size() * 32, cb, 0, 2000);
}

TEST(DecodeTableEquivalence, NarrowTableForcesFrequentFallback) {
  // An explicitly narrow table (K=4) on a deep codebook: most codewords
  // take the fallback ladder, which must still agree with decode_one.
  util::Xoshiro256 rng(11);
  const auto data = random_stream(rng, 4000, 700, 0.9);
  const Codebook cb = Codebook::from_data(data, 700);
  const DecodeTable narrow(cb, 4);
  ASSERT_EQ(narrow.index_bits(), 4u);
  const StreamEncoding enc = encode_plain(data, cb);

  bitio::BitReader a(enc.units, enc.total_bits);
  bitio::BitReader b(enc.units, enc.total_bits);
  for (std::uint64_t i = 0; i < enc.num_symbols; ++i) {
    const DecodedSymbol x = decode_one(a, cb);
    const DecodedSymbol y = decode_one_lut(b, cb, narrow);
    ASSERT_EQ(x.valid, y.valid);
    ASSERT_EQ(x.symbol, y.symbol);
    ASSERT_EQ(x.len, y.len);
    ASSERT_EQ(a.position(), b.position());
  }
}

TEST(DecodeTable, StructureMatchesCanonicalCodes) {
  // lengths {1, 2, 3, 3}: canonical codes 0, 10, 110, 111.
  const std::vector<std::uint8_t> lengths = {1, 2, 3, 3};
  const Codebook cb = Codebook::from_lengths(lengths);
  const DecodeTable t(cb, 3);
  ASSERT_EQ(t.index_bits(), 3u);
  ASSERT_EQ(t.entries().size(), 8u);
  // Indices 000..011 -> symbol 0 (len 1); 100,101 -> symbol 1 (len 2);
  // 110 -> symbol 2; 111 -> symbol 3.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.entry(i).symbol, 0);
    EXPECT_EQ(t.entry(i).len, 1);
  }
  EXPECT_EQ(t.entry(4).symbol, 1);
  EXPECT_EQ(t.entry(5).symbol, 1);
  EXPECT_EQ(t.entry(4).len, 2);
  EXPECT_EQ(t.entry(6).symbol, 2);
  EXPECT_EQ(t.entry(7).symbol, 3);
  EXPECT_EQ(t.entry(7).len, 3);
}

TEST(DecodeTable, IndexBitsClampToMaxLen) {
  const std::vector<std::uint8_t> lengths = {1, 2, 2};
  const Codebook cb = Codebook::from_lengths(lengths);
  EXPECT_EQ(cb.decode_table().index_bits(), 2u);  // default 12 clamps to 2
  EXPECT_EQ(cb.decode_table().entries().size(), 4u);
  EXPECT_EQ(DecodeTable(cb, 30).index_bits(), 2u);
  EXPECT_TRUE(DecodeTable().empty());
}

TEST(MultiEntry, PacksCompleteCodewordsOnly) {
  // lengths {1, 2, 3, 3}: canonical codes 0, 10, 110, 111, K = 3.
  const std::vector<std::uint8_t> lengths = {1, 2, 3, 3};
  const Codebook cb = Codebook::from_lengths(lengths);
  const DecodeTable t(cb, 3);
  ASSERT_EQ(t.multi_entries().size(), 8u);

  // 000 = three 1-bit codewords (saturates kMaxMultiSymbols).
  const DecodeTable::MultiEntry& m0 = t.multi_entry(0b000);
  EXPECT_EQ(m0.count, 3);
  EXPECT_EQ(m0.bits, 3);
  EXPECT_EQ(m0.symbols[0], 0);
  EXPECT_EQ(m0.symbols[1], 0);
  EXPECT_EQ(m0.symbols[2], 0);

  // 010 = codeword 0, then codeword 10: two complete codewords, 3 bits.
  const DecodeTable::MultiEntry& m2 = t.multi_entry(0b010);
  EXPECT_EQ(m2.count, 2);
  EXPECT_EQ(m2.bits, 3);
  EXPECT_EQ(m2.symbols[0], 0);
  EXPECT_EQ(m2.symbols[1], 1);

  // 011 = codeword 0, then the prefix 11 of a 3-bit codeword — NOT complete
  // within the window, so only the first symbol packs.
  const DecodeTable::MultiEntry& m3 = t.multi_entry(0b011);
  EXPECT_EQ(m3.count, 1);
  EXPECT_EQ(m3.bits, 1);
  EXPECT_EQ(m3.symbols[0], 0);

  // 100 = codeword 10, then codeword 0: both fit exactly.
  const DecodeTable::MultiEntry& m4 = t.multi_entry(0b100);
  EXPECT_EQ(m4.count, 2);
  EXPECT_EQ(m4.bits, 3);
  EXPECT_EQ(m4.symbols[0], 1);
  EXPECT_EQ(m4.symbols[1], 0);

  // 110 / 111 = one full-window codeword each.
  EXPECT_EQ(t.multi_entry(0b110).count, 1);
  EXPECT_EQ(t.multi_entry(0b110).bits, 3);
  EXPECT_EQ(t.multi_entry(0b110).symbols[0], 2);
  EXPECT_EQ(t.multi_entry(0b111).count, 1);
  EXPECT_EQ(t.multi_entry(0b111).symbols[0], 3);
}

TEST(MultiEntry, FallbackConditionMatchesSingleEntries) {
  // Deep codebook: windows whose first codeword exceeds the index width must
  // be fallbacks in BOTH tables, and every non-fallback multi entry's first
  // symbol must match the single entry.
  std::vector<std::uint8_t> lengths;
  for (std::uint8_t l = 1; l <= 23; ++l) lengths.push_back(l);
  lengths.push_back(24);
  lengths.push_back(24);
  const Codebook cb = Codebook::from_lengths(lengths);
  const DecodeTable& t = cb.decode_table();
  for (std::uint32_t w = 0; w < t.entries().size(); ++w) {
    const DecodeTable::Entry& e = t.entry(w);
    const DecodeTable::MultiEntry& m = t.multi_entry(w);
    if (e.len == 0) {
      EXPECT_EQ(m.count, 0) << "window " << w;
      EXPECT_EQ(m.bits, 0) << "window " << w;
    } else {
      ASSERT_GE(m.count, 1) << "window " << w;
      EXPECT_EQ(m.symbols[0], e.symbol) << "window " << w;
      EXPECT_GE(m.bits, e.len) << "window " << w;
      EXPECT_LE(m.bits, t.index_bits()) << "window " << w;
    }
  }
}

TEST(MultiDecodeEquivalence, RandomizedCodebooksAndStreams) {
  util::Xoshiro256 rng(202);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t alphabet =
        static_cast<std::uint32_t>(2 + rng.bounded(1023));
    const double skew = rng.uniform();
    const auto data = random_stream(rng, 2000, alphabet, skew);
    const Codebook cb = Codebook::from_data(data, alphabet);
    const StreamEncoding enc = encode_plain(data, cb);

    expect_multi_lockstep(enc.units, enc.total_bits, cb, 0, 3000);
    // Desynchronized garbage starts, including mid-codeword ones.
    for (int s = 0; s < 8; ++s) {
      expect_multi_lockstep(enc.units, enc.total_bits, cb,
                            rng.bounded(enc.total_bits), 200);
    }
  }
}

TEST(MultiDecodeEquivalence, SingleSymbolIncompleteCode) {
  const std::vector<std::uint16_t> data(64, 0);
  const Codebook cb = Codebook::from_data(data, 1);
  const StreamEncoding enc = encode_plain(data, cb);
  expect_multi_lockstep(enc.units, enc.total_bits, cb, 0, 100);
  // Garbage hits the unassigned '1' branch (invalid single-bit steps).
  const std::vector<std::uint32_t> garbage = {0xFFFF0000, 0x12345678};
  expect_multi_lockstep(garbage, 64, cb, 0, 100);
  expect_multi_lockstep(garbage, 64, cb, 13, 100);
}

TEST(MultiDecodeEquivalence, MaxLength24Codes) {
  std::vector<std::uint8_t> lengths;
  for (std::uint8_t l = 1; l <= 23; ++l) lengths.push_back(l);
  lengths.push_back(24);
  lengths.push_back(24);
  const Codebook cb = Codebook::from_lengths(lengths);
  std::vector<std::uint16_t> data;
  for (std::uint16_t s = 0; s < lengths.size(); ++s) {
    data.push_back(s);
    data.push_back(static_cast<std::uint16_t>(lengths.size() - 1 - s));
  }
  const StreamEncoding enc = encode_plain(data, cb);
  expect_multi_lockstep(enc.units, enc.total_bits, cb, 0, 200);
  util::Xoshiro256 rng(99);
  for (int s = 0; s < 32; ++s) {
    expect_multi_lockstep(enc.units, enc.total_bits, cb,
                          rng.bounded(enc.total_bits), 64);
  }
  std::vector<std::uint32_t> garbage(64);
  for (auto& u : garbage) u = static_cast<std::uint32_t>(rng());
  expect_multi_lockstep(garbage, garbage.size() * 32, cb, 0, 2000);
}

TEST(MultiDecodeEquivalence, SharedPooledCodebook) {
  // The shared-codebook path decodes one chunk's stream with a book built
  // from a DIFFERENT (pooled) histogram: codewords the chunk never uses
  // still shape the table. Multi-symbol decode must stay in lockstep.
  util::Xoshiro256 rng(303);
  const auto chunk_a = random_stream(rng, 3000, 600, 0.9);
  const auto chunk_b = random_stream(rng, 3000, 600, 0.2);
  std::vector<std::uint16_t> pooled = chunk_a;
  pooled.insert(pooled.end(), chunk_b.begin(), chunk_b.end());
  const Codebook shared = Codebook::from_data(pooled, 600);
  for (const auto& chunk : {chunk_a, chunk_b}) {
    const StreamEncoding enc = encode_plain(chunk, shared);
    expect_multi_lockstep(enc.units, enc.total_bits, shared, 0, 4000);
    for (int s = 0; s < 8; ++s) {
      expect_multi_lockstep(enc.units, enc.total_bits, shared,
                            rng.bounded(enc.total_bits), 200);
    }
  }
}

}  // namespace
}  // namespace ohd::huffman
