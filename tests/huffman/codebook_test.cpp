#include "huffman/codebook.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "huffman/decode_step.hpp"

namespace ohd::huffman {
namespace {

TEST(Histogram, CountsSymbols) {
  const std::vector<std::uint16_t> data = {0, 1, 1, 3, 3, 3};
  const auto h = symbol_histogram(data, 4);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 3u);
}

TEST(Histogram, RejectsOutOfRangeSymbol) {
  const std::vector<std::uint16_t> data = {5};
  EXPECT_THROW(symbol_histogram(data, 4), std::out_of_range);
}

TEST(CodeLengths, SkewedFrequenciesGiveShortCodeToCommonSymbol) {
  const std::vector<std::uint64_t> freqs = {1000, 10, 10, 1};
  const auto lens = huffman_code_lengths(freqs);
  EXPECT_EQ(lens[0], 1u);
  EXPECT_GE(lens[3], lens[1]);
  EXPECT_GT(lens[3], lens[0]);
}

TEST(CodeLengths, UniformFourSymbolsGiveTwoBits) {
  const std::vector<std::uint64_t> freqs = {5, 5, 5, 5};
  const auto lens = huffman_code_lengths(freqs);
  for (auto l : lens) EXPECT_EQ(l, 2u);
}

TEST(CodeLengths, ZeroFrequencySymbolsGetNoCode) {
  const std::vector<std::uint64_t> freqs = {5, 0, 5, 0};
  const auto lens = huffman_code_lengths(freqs);
  EXPECT_GT(lens[0], 0u);
  EXPECT_EQ(lens[1], 0u);
  EXPECT_EQ(lens[3], 0u);
}

TEST(CodeLengths, SingleSymbolGetsOneBit) {
  const std::vector<std::uint64_t> freqs = {0, 42, 0};
  const auto lens = huffman_code_lengths(freqs);
  EXPECT_EQ(lens[1], 1u);
}

TEST(CodeLengths, KraftInequalityHolds) {
  std::vector<std::uint64_t> freqs(257);
  for (std::size_t i = 0; i < freqs.size(); ++i) freqs[i] = i * i + 1;
  const auto lens = huffman_code_lengths(freqs);
  double kraft = 0.0;
  for (auto l : lens) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
  EXPECT_NEAR(kraft, 1.0, 1e-9);  // Huffman codes are complete
}

TEST(CodeLengths, ExponentialFrequenciesRespectLengthCap) {
  // Fibonacci-like frequencies force deep trees; the builder must flatten.
  std::vector<std::uint64_t> freqs(64);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lens = huffman_code_lengths(freqs);
  for (auto l : lens) EXPECT_LE(l, kMaxCodeLen);
}

TEST(Codebook, PrefixFreeProperty) {
  const std::vector<std::uint64_t> freqs = {50, 30, 10, 5, 3, 2};
  const auto cb = Codebook::from_lengths(huffman_code_lengths(freqs));
  for (std::uint32_t a = 0; a < cb.alphabet_size(); ++a) {
    for (std::uint32_t b = 0; b < cb.alphabet_size(); ++b) {
      if (a == b) continue;
      const auto& ca = cb.code(static_cast<std::uint16_t>(a));
      const auto& cbk = cb.code(static_cast<std::uint16_t>(b));
      if (ca.len == 0 || cbk.len == 0 || ca.len > cbk.len) continue;
      // ca must not be a prefix of cb.
      EXPECT_NE(ca.bits, cbk.bits >> (cbk.len - ca.len))
          << "code " << a << " is a prefix of code " << b;
    }
  }
}

TEST(Codebook, CanonicalCodesAreSortedWithinLength) {
  const std::vector<std::uint8_t> lens = {3, 3, 3, 3, 2, 2};
  const auto cb = Codebook::from_lengths(lens);
  EXPECT_LT(cb.code(0).bits, cb.code(1).bits);
  EXPECT_LT(cb.code(4).bits, cb.code(5).bits);
}

TEST(Codebook, DecodeTablesInvertEncodeTable) {
  const std::vector<std::uint64_t> freqs = {100, 50, 25, 12, 6, 3, 2, 1};
  const auto cb = Codebook::from_lengths(huffman_code_lengths(freqs));
  for (std::uint32_t s = 0; s < cb.alphabet_size(); ++s) {
    const auto& c = cb.code(static_cast<std::uint16_t>(s));
    if (c.len == 0) continue;
    bitio::BitWriter w;
    w.put(c.bits, c.len);
    const auto units = w.finish();
    bitio::BitReader r(units, c.len);
    const DecodedSymbol d = decode_one(r, cb);
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.symbol, s);
    EXPECT_EQ(d.len, c.len);
  }
}

TEST(Codebook, ExpectedBitsMatchesEntropyRegime) {
  // Two equal symbols: exactly 1 bit/symbol.
  const std::vector<std::uint64_t> freqs = {10, 10};
  const auto cb = Codebook::from_lengths(huffman_code_lengths(freqs));
  EXPECT_DOUBLE_EQ(cb.expected_bits_per_symbol(freqs), 1.0);
}

TEST(Codebook, SerializeRoundtrip) {
  const std::vector<std::uint64_t> freqs = {9, 7, 5, 3, 1, 0, 2};
  const auto cb = Codebook::from_lengths(huffman_code_lengths(freqs));
  const auto bytes = cb.serialize();
  const auto cb2 = Codebook::deserialize(bytes);
  ASSERT_EQ(cb2.alphabet_size(), cb.alphabet_size());
  for (std::uint32_t s = 0; s < cb.alphabet_size(); ++s) {
    EXPECT_EQ(cb.code(static_cast<std::uint16_t>(s)).bits,
              cb2.code(static_cast<std::uint16_t>(s)).bits);
    EXPECT_EQ(cb.code(static_cast<std::uint16_t>(s)).len,
              cb2.code(static_cast<std::uint16_t>(s)).len);
  }
}

TEST(Codebook, DeserializeRejectsTruncatedInput) {
  const std::vector<std::uint8_t> junk = {1, 0};
  EXPECT_THROW(Codebook::deserialize(junk), std::invalid_argument);
}

TEST(Codebook, RejectsOverlongLengths) {
  std::vector<std::uint8_t> lens = {static_cast<std::uint8_t>(kMaxCodeLen + 1)};
  EXPECT_THROW(Codebook::from_lengths(lens), std::invalid_argument);
}

TEST(DecodeStep, SelfSynchronizationExampleFromPaper) {
  // The Ferguson-Rabinowitz codebook from the paper's Listing 1:
  //   A:00  B:10  C:11  D:010  E:011
  // (canonicalized here, but with the same length structure). Decoding the
  // stream with one bit skipped must resynchronize.
  const std::vector<std::uint8_t> lens = {2, 2, 2, 3, 3};
  const auto cb = Codebook::from_lengths(lens);
  // Encode "CBADCBA".
  const std::vector<std::uint16_t> msg = {2, 1, 0, 3, 2, 1, 0};
  bitio::BitWriter w;
  for (auto s : msg) w.put(cb.code(s).bits, cb.code(s).len);
  const auto total = w.bit_count();
  const auto units = w.finish();

  // Decode from offset 1 (a skipped bit): after some garbage the decoder
  // must land back on a codeword boundary of the original stream.
  bitio::BitReader good(units, total);
  std::vector<std::uint64_t> boundaries;
  while (good.position() < total) {
    boundaries.push_back(good.position());
    decode_one(good, cb);
  }
  bitio::BitReader bad(units, total);
  bad.seek(1);
  bool resynced = false;
  while (bad.position() < total) {
    decode_one(bad, cb);
    for (auto b : boundaries) {
      if (bad.position() == b) {
        resynced = true;
        break;
      }
    }
    if (resynced) break;
  }
  EXPECT_TRUE(resynced);
}

}  // namespace
}  // namespace ohd::huffman
