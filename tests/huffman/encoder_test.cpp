#include "huffman/encoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ohd::huffman {
namespace {

std::vector<std::uint16_t> random_symbols(std::size_t n, std::uint32_t alphabet,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    // Geometric-ish distribution: realistic skew for Huffman.
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < 0.6) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

TEST(PlainEncoder, RoundtripsThroughSequentialDecoder) {
  const auto data = random_symbols(10000, 64, 1);
  const auto cb = Codebook::from_data(data, 64);
  const auto enc = encode_plain(data, cb);
  EXPECT_EQ(enc.num_symbols, data.size());
  EXPECT_EQ(decode_sequential(enc, cb), data);
}

TEST(PlainEncoder, PadsToWholeSequences) {
  const auto data = random_symbols(100, 16, 2);
  const auto cb = Codebook::from_data(data, 16);
  const auto enc = encode_plain(data, cb);
  const std::uint64_t unit_bits = enc.units.size() * 32;
  EXPECT_EQ(unit_bits % enc.geometry.seq_bits(), 0u);
  EXPECT_LE(enc.total_bits, unit_bits);
}

TEST(PlainEncoder, SubseqAndSeqCounts) {
  StreamGeometry g;
  g.units_per_subseq = 4;
  g.subseqs_per_seq = 128;
  const auto data = random_symbols(50000, 32, 3);
  const auto cb = Codebook::from_data(data, 32);
  const auto enc = encode_plain(data, cb, g);
  EXPECT_EQ(enc.num_subseqs(), (enc.total_bits + 127) / 128);
  EXPECT_EQ(enc.num_seqs(), (enc.num_subseqs() + 127) / 128);
}

TEST(PlainEncoder, RejectsSymbolWithoutCode) {
  const std::vector<std::uint16_t> train = {0, 0, 1};
  const auto cb = Codebook::from_data(train, 4);
  const std::vector<std::uint16_t> bad = {3};
  EXPECT_THROW(encode_plain(bad, cb), std::invalid_argument);
}

TEST(ChunkedEncoder, ChunksAreUnitAligned) {
  const auto data = random_symbols(5000, 32, 4);
  const auto cb = Codebook::from_data(data, 32);
  const auto enc = encode_chunked(data, cb, 512);
  for (auto off : enc.chunk_bit_offset) EXPECT_EQ(off % 32, 0u);
  EXPECT_EQ(enc.num_chunks(), (data.size() + 511) / 512);
}

TEST(ChunkedEncoder, ChunkSymbolCountsSumToTotal) {
  const auto data = random_symbols(5003, 32, 5);
  const auto cb = Codebook::from_data(data, 32);
  const auto enc = encode_chunked(data, cb, 512);
  std::uint64_t sum = 0;
  for (auto c : enc.chunk_num_symbols) sum += c;
  EXPECT_EQ(sum, data.size());
  EXPECT_EQ(enc.chunk_num_symbols.back(), 5003u % 512u);
}

TEST(ChunkedEncoder, PaddingCostsCompressionRatio) {
  const auto data = random_symbols(100000, 64, 6);
  const auto cb = Codebook::from_data(data, 64);
  const auto plain = encode_plain(data, cb);
  const auto small_chunks = encode_chunked(data, cb, 128);
  const auto big_chunks = encode_chunked(data, cb, 4096);
  // More chunks => more per-chunk alignment waste and metadata.
  EXPECT_GT(small_chunks.payload_bytes(), big_chunks.payload_bytes());
  EXPECT_GE(big_chunks.payload_bytes(), plain.units.size() * 4 - 4096);
}

TEST(ChunkedEncoder, RejectsZeroChunkSize) {
  const std::vector<std::uint16_t> data = {0, 1};
  const auto cb = Codebook::from_data(data, 4);
  EXPECT_THROW(encode_chunked(data, cb, 0), std::invalid_argument);
}

TEST(Encoders, EmptyInputProducesEmptyStream) {
  const std::vector<std::uint16_t> train = {0, 1};
  const auto cb = Codebook::from_data(train, 4);
  const std::vector<std::uint16_t> empty;
  const auto plain = encode_plain(empty, cb);
  EXPECT_EQ(plain.total_bits, 0u);
  EXPECT_EQ(plain.num_subseqs(), 0u);
  const auto gap = encode_gap(empty, cb);
  EXPECT_TRUE(gap.gaps.empty());
}

}  // namespace
}  // namespace ohd::huffman
