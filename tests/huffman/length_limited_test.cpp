#include "huffman/length_limited.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "huffman/codebook.hpp"
#include "util/rng.hpp"

namespace ohd::huffman {
namespace {

double kraft_sum(std::span<const std::uint8_t> lengths) {
  double k = 0.0;
  for (auto l : lengths) {
    if (l > 0) k += std::pow(2.0, -static_cast<double>(l));
  }
  return k;
}

TEST(PackageMerge, UnconstrainedMatchesHuffman) {
  // With a generous cap, package-merge and Huffman produce codes of equal
  // weighted length (both optimal).
  const std::vector<std::uint64_t> freqs = {40, 30, 15, 8, 4, 2, 1};
  const auto pm = package_merge_lengths(freqs, 24);
  const auto hf = huffman_code_lengths(freqs);
  EXPECT_EQ(weighted_length(freqs, pm), weighted_length(freqs, hf));
}

TEST(PackageMerge, RespectsTheCap) {
  std::vector<std::uint64_t> freqs(32);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const auto next = a + b;
    a = b;
    b = next;
  }
  for (std::uint32_t cap = 5; cap <= 12; ++cap) {
    const auto lens = package_merge_lengths(freqs, cap);
    for (auto l : lens) EXPECT_LE(l, cap) << "cap=" << cap;
    EXPECT_NEAR(kraft_sum(lens), 1.0, 1e-12) << "cap=" << cap;
  }
}

TEST(PackageMerge, NeverWorseThanFlatteningHeuristic) {
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(200);
    for (auto& f : freqs) {
      f = static_cast<std::uint64_t>(
          std::pow(10.0, rng.uniform(0.0, 6.0)));
    }
    const auto pm = package_merge_lengths(freqs, kMaxCodeLen);
    const auto heuristic = huffman_code_lengths(freqs);
    EXPECT_LE(weighted_length(freqs, pm), weighted_length(freqs, heuristic));
  }
}

TEST(PackageMerge, TightCapEqualsFixedLengthCode) {
  // 8 symbols with cap 3: the only feasible code is 3 bits for everyone.
  const std::vector<std::uint64_t> freqs(8, 5);
  const auto lens = package_merge_lengths(freqs, 3);
  for (auto l : lens) EXPECT_EQ(l, 3);
}

TEST(PackageMerge, InfeasibleCapThrows) {
  const std::vector<std::uint64_t> freqs(9, 1);  // 9 symbols, cap 3 => 8 slots
  EXPECT_THROW(package_merge_lengths(freqs, 3), std::invalid_argument);
}

TEST(PackageMerge, ZeroFrequencySymbolsExcluded) {
  const std::vector<std::uint64_t> freqs = {10, 0, 5, 0};
  const auto lens = package_merge_lengths(freqs, 8);
  EXPECT_GT(lens[0], 0);
  EXPECT_EQ(lens[1], 0);
  EXPECT_EQ(lens[3], 0);
}

TEST(PackageMerge, SingleSymbol) {
  const std::vector<std::uint64_t> freqs = {0, 7};
  const auto lens = package_merge_lengths(freqs, 8);
  EXPECT_EQ(lens[1], 1);
}

TEST(PackageMerge, LengthsBuildAValidCanonicalCodebook) {
  util::Xoshiro256 rng(23);
  std::vector<std::uint64_t> freqs(1024);
  for (auto& f : freqs) f = 1 + rng.bounded(100000);
  const auto lens = package_merge_lengths(freqs, 12);
  const auto cb = Codebook::from_lengths(lens);
  EXPECT_EQ(cb.max_len(), 12u);
}

class PackageMergeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PackageMergeSweep, KraftEqualityAndCapHold) {
  const auto [alphabet, cap] = GetParam();
  if ((1u << cap) < static_cast<unsigned>(alphabet)) GTEST_SKIP();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(alphabet * 131 + cap));
  std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
  for (auto& f : freqs) f = 1 + rng.bounded(1u << 20);
  const auto lens = package_merge_lengths(freqs, static_cast<std::uint32_t>(cap));
  EXPECT_NEAR(kraft_sum(lens), 1.0, 1e-12);
  for (auto l : lens) {
    EXPECT_GT(l, 0);
    EXPECT_LE(l, cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PackageMergeSweep,
                         ::testing::Combine(::testing::Values(2, 17, 256, 1024),
                                            ::testing::Values(4, 11, 16, 24)));

}  // namespace
}  // namespace ohd::huffman
