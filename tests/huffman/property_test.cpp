// Property sweeps over alphabet sizes, skews, and stream lengths: every
// encoder layout must reproduce its input through the reference sequential
// decoder, and the three layouts must agree on content.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "huffman/encoder.hpp"
#include "util/rng.hpp"

namespace ohd::huffman {
namespace {

struct Params {
  std::uint32_t alphabet;
  double skew;      // 0 = uniform, larger = more concentrated
  std::size_t n;
  std::uint64_t seed;
};

std::vector<std::uint16_t> make_stream(const Params& p) {
  util::Xoshiro256 rng(p.seed);
  std::vector<std::uint16_t> out(p.n);
  for (auto& s : out) {
    if (p.skew == 0.0) {
      s = static_cast<std::uint16_t>(rng.bounded(p.alphabet));
    } else {
      // Geometric tail over the alphabet.
      std::uint32_t v = 0;
      const double cont = 1.0 - 1.0 / (1.0 + p.skew);
      while (v + 1 < p.alphabet && rng.uniform() < cont) ++v;
      s = static_cast<std::uint16_t>(v);
    }
  }
  return out;
}

class EncoderProperty
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(EncoderProperty, PlainStreamRoundtrips) {
  const auto [alphabet, skew, n] = GetParam();
  const Params p{static_cast<std::uint32_t>(alphabet), skew,
                 static_cast<std::size_t>(n), 7u};
  const auto data = make_stream(p);
  const auto cb = Codebook::from_data(data, p.alphabet);
  const auto enc = encode_plain(data, cb);
  EXPECT_EQ(decode_sequential(enc, cb), data);
}

TEST_P(EncoderProperty, GapStreamHasSameBitsAsPlain) {
  const auto [alphabet, skew, n] = GetParam();
  const Params p{static_cast<std::uint32_t>(alphabet), skew,
                 static_cast<std::size_t>(n), 11u};
  const auto data = make_stream(p);
  const auto cb = Codebook::from_data(data, p.alphabet);
  const auto plain = encode_plain(data, cb);
  const auto gap = encode_gap(data, cb);
  EXPECT_EQ(gap.stream.units, plain.units);
  EXPECT_EQ(gap.stream.total_bits, plain.total_bits);
}

TEST_P(EncoderProperty, CompressedSizeBeatsRawForSkewedData) {
  const auto [alphabet, skew, n] = GetParam();
  // Tiny streams are dominated by sequence padding; low skew or tiny
  // alphabets have nothing to compress.
  if (skew < 1.0 || alphabet < 8 || n < 4096) {
    GTEST_SKIP() << "not expected to compress";
  }
  const Params p{static_cast<std::uint32_t>(alphabet), skew,
                 static_cast<std::size_t>(n), 13u};
  const auto data = make_stream(p);
  const auto cb = Codebook::from_data(data, p.alphabet);
  const auto enc = encode_plain(data, cb);
  EXPECT_LT(enc.payload_bytes(), data.size() * 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderProperty,
    ::testing::Combine(::testing::Values(2, 16, 256, 1024),
                       ::testing::Values(0.0, 1.0, 8.0),
                       ::testing::Values(100, 4096, 50000)));

TEST(EncoderEdgeCases, SingleSymbolAlphabetStream) {
  const std::vector<std::uint16_t> data(1000, 5);
  const auto cb = Codebook::from_data(data, 16);
  const auto enc = encode_plain(data, cb);
  EXPECT_EQ(enc.total_bits, 1000u);  // forced 1-bit code
  EXPECT_EQ(decode_sequential(enc, cb), data);
}

TEST(EncoderEdgeCases, OneSymbolStream) {
  const std::vector<std::uint16_t> data = {3};
  const auto cb = Codebook::from_data(data, 8);
  const auto enc = encode_plain(data, cb);
  EXPECT_EQ(decode_sequential(enc, cb), data);
}

TEST(EncoderEdgeCases, AlternatingExtremes) {
  std::vector<std::uint16_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 100 == 0) ? 1023 : 512;
  }
  const auto cb = Codebook::from_data(data, 1024);
  const auto enc = encode_plain(data, cb);
  EXPECT_EQ(decode_sequential(enc, cb), data);
}

}  // namespace
}  // namespace ohd::huffman
