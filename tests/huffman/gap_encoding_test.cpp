// The gap array is the encoder/decoder contract of Yamamoto et al.'s scheme;
// these tests pin down its exact semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bitio/bit_reader.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"
#include "util/rng.hpp"

namespace ohd::huffman {
namespace {

std::vector<std::uint16_t> random_symbols(std::size_t n, std::uint32_t alphabet,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) s = static_cast<std::uint16_t>(rng.bounded(alphabet));
  return out;
}

TEST(GapEncoding, OneGapPerSubsequence) {
  const auto data = random_symbols(20000, 64, 1);
  const auto cb = Codebook::from_data(data, 64);
  const auto enc = encode_gap(data, cb);
  EXPECT_EQ(enc.gaps.size(), enc.stream.num_subseqs());
}

TEST(GapEncoding, FirstGapIsZero) {
  const auto data = random_symbols(1000, 16, 2);
  const auto cb = Codebook::from_data(data, 16);
  const auto enc = encode_gap(data, cb);
  ASSERT_FALSE(enc.gaps.empty());
  EXPECT_EQ(enc.gaps[0], 0u);
}

TEST(GapEncoding, GapsAreBelowMaxCodeLength) {
  const auto data = random_symbols(50000, 256, 3);
  const auto cb = Codebook::from_data(data, 256);
  const auto enc = encode_gap(data, cb);
  // Interior gaps are bounded by the longest codeword; only trailing
  // no-codeword subsequences may point further (to end of stream).
  for (std::size_t i = 0; i + 1 < enc.gaps.size(); ++i) {
    EXPECT_LT(enc.gaps[i], kMaxCodeLen) << "subsequence " << i;
  }
}

TEST(GapEncoding, GapPointsAtValidCodewordBoundary) {
  const auto data = random_symbols(30000, 64, 4);
  const auto cb = Codebook::from_data(data, 64);
  const auto enc = encode_gap(data, cb);
  const std::uint64_t subseq_bits = enc.stream.geometry.subseq_bits();

  // Collect the true codeword start positions.
  std::vector<std::uint64_t> starts;
  bitio::BitReader r(enc.stream.units, enc.stream.total_bits);
  while (r.position() < enc.stream.total_bits) {
    starts.push_back(r.position());
    decode_one(r, cb);
  }

  std::size_t cursor = 0;
  for (std::size_t g = 0; g < enc.gaps.size(); ++g) {
    const std::uint64_t boundary = g * subseq_bits;
    const std::uint64_t target = boundary + enc.gaps[g];
    while (cursor < starts.size() && starts[cursor] < boundary) ++cursor;
    if (cursor < starts.size()) {
      EXPECT_EQ(target, starts[cursor])
          << "gap " << g << " does not hit the first codeword of its "
             "subsequence";
    } else {
      EXPECT_EQ(target, enc.stream.total_bits);
    }
  }
}

TEST(GapEncoding, ThreadRangesPartitionAllSymbols) {
  // Decoding [boundary+gap[i], boundary+gap[i+1]) for every subsequence must
  // reproduce the stream exactly, with no duplicates or holes.
  const auto data = random_symbols(40000, 128, 5);
  const auto cb = Codebook::from_data(data, 128);
  const auto enc = encode_gap(data, cb);
  const std::uint64_t subseq_bits = enc.stream.geometry.subseq_bits();

  std::vector<std::uint16_t> decoded;
  for (std::size_t g = 0; g < enc.gaps.size(); ++g) {
    const std::uint64_t start = g * subseq_bits + enc.gaps[g];
    const std::uint64_t limit =
        g + 1 < enc.gaps.size()
            ? (g + 1) * subseq_bits + enc.gaps[g + 1]
            : enc.stream.total_bits;
    bitio::BitReader r(enc.stream.units, enc.stream.total_bits);
    r.seek(start);
    while (r.position() < limit && r.position() < enc.stream.total_bits) {
      const auto d = decode_one(r, cb);
      ASSERT_TRUE(d.valid);
      decoded.push_back(d.symbol);
    }
  }
  EXPECT_EQ(decoded, data);
}

TEST(GapEncoding, SidecarCostsUnderThreePercent) {
  // Yamamoto et al. report gap arrays under 3% of the data size. With
  // 128-bit subsequences the sidecar is 1 byte per 16 bytes of COMPRESSED
  // stream, so relative to the uncompressed quantization codes it is
  // 1/(16*ratio) — under 3% whenever the stream compresses at >= 2.1x,
  // which quantization codes always do in practice.
  util::Xoshiro256 rng(6);
  std::vector<std::uint16_t> data(100000);
  for (auto& s : data) {
    const auto v = 512 + static_cast<long>(rng.normal() * 12.0);
    s = static_cast<std::uint16_t>(std::clamp(v, 1l, 1023l));
  }
  const auto cb = Codebook::from_data(data, 1024);
  const auto enc = encode_gap(data, cb);
  const double sidecar = static_cast<double>(enc.gaps.size());
  const double quant_bytes = static_cast<double>(data.size()) * 2;
  EXPECT_LT(sidecar / quant_bytes, 0.03);
}

TEST(GapEncoding, TrailingEmptySubsequenceGapPointsPastStream) {
  // A single long codeword stream whose tail subsequence holds only padding.
  const std::vector<std::uint16_t> train = {0, 0, 0, 1};
  const auto cb = Codebook::from_data(train, 4);
  const std::vector<std::uint16_t> data(3, 0);  // 3 bits total
  const auto enc = encode_gap(data, cb);
  ASSERT_EQ(enc.gaps.size(), 1u);
  EXPECT_EQ(enc.gaps[0], 0u);
}

}  // namespace
}  // namespace ohd::huffman
