// CompressionService end-to-end coverage: round-trip fidelity against the
// direct pipeline, the client/archive lifecycle errors (double close,
// submit after close/shutdown, unknown handles), deterministic queue-full
// and per-client-cap rejections via the pause() valve, LRU eviction with a
// decode in flight, graceful drain, the multi-client worker-count-invariance
// property, stats accounting, and the "service.*" registry catalogue.
#include "service/compression_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/rng.hpp"

namespace ohd::service {
namespace {

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.02) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

CompressJob two_field_job(std::uint64_t seed) {
  CompressJob job;
  job.fields.push_back(
      {"alpha", wavy_field(6000, seed), sz::Dims::d1(6000)});
  job.fields.push_back(
      {"beta", wavy_field(40 * 50, seed + 1, 0.005), sz::Dims::d2(40, 50)});
  return job;
}

/// Compress a job through the service and reopen the archive as a handle.
ArchiveHandle compress_and_open(CompressionService& svc, ClientId client,
                                CompressJob job) {
  auto bytes = svc.submit_compress(client, std::move(job)).get().archive;
  return svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes)));
}

bool identical_floats(const std::vector<float>& a,
                      const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- Round trip -----------------------------------------------------------

TEST(CompressionService, RoundTripMatchesDirectPipeline) {
  ServiceConfig cfg;
  cfg.workers = 2;
  CompressionService svc(cfg);
  ClientOptions opts;
  opts.rel_error_bound = 1e-3;
  opts.chunk_elems = 2048;
  const ClientId client = svc.open_client(opts);

  CompressJob job = two_field_job(7);
  const std::vector<float> input0 = job.fields[0].data;
  auto archive = svc.submit_compress(client, job).get().archive;

  // Byte-identical to the same specs run directly through the scheduler.
  pipeline::ThreadPool pool(1);
  std::vector<pipeline::FieldSpec> specs;
  for (const auto& f : job.fields) {
    pipeline::FieldSpec s;
    s.name = f.name;
    s.data = f.data;
    s.dims = f.dims;
    s.config.rel_error_bound = opts.rel_error_bound;
    s.chunk_elems = opts.chunk_elems;
    specs.push_back(s);
  }
  pipeline::MemorySink direct;
  pipeline::ArchiveWriter writer(direct);
  pipeline::BatchScheduler(pool).compress_to(writer, specs);
  writer.finish();
  EXPECT_EQ(archive, direct.bytes());

  // Decompress through the service: error-bounded floats, both fields.
  const ArchiveHandle h = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(archive)));
  const auto result = svc.submit_decompress(client, h).get();
  ASSERT_EQ(result.fields.size(), 2u);
  EXPECT_EQ(result.fields[0].name, "alpha");
  const auto& decoded = result.fields[0].decode.data;
  ASSERT_EQ(decoded.size(), input0.size());
  const auto [lo, hi] = std::minmax_element(input0.begin(), input0.end());
  const double bound = opts.rel_error_bound * (*hi - *lo) * 1.000001;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    ASSERT_NEAR(decoded[i], input0[i], bound) << "element " << i;
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected(), 0u);
}

TEST(CompressionService, ChunkAndRangeMatchFullDecode) {
  CompressionService svc{ServiceConfig{}};
  ClientOptions opts;
  opts.chunk_elems = 1024;
  const ClientId client = svc.open_client(opts);
  CompressJob job;
  const std::vector<float> data = wavy_field(5000, 11);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));

  const auto full = svc.submit_decompress(client, h).get();
  const auto& values = full.fields[0].decode.data;

  // Chunk 2 covers elements [2048, 3072).
  const auto chunk = svc.submit_chunk(client, h, 0, 2).get();
  ASSERT_EQ(chunk.size(), 1024u);
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), values.begin() + 2048));

  // An unaligned range crossing two chunk boundaries.
  const auto range = svc.submit_range(client, h, 0, 1000, 3500).get();
  ASSERT_EQ(range.size(), 2500u);
  EXPECT_TRUE(std::equal(range.begin(), range.end(), values.begin() + 1000));
}

// ---- Lifecycle errors -----------------------------------------------------

TEST(CompressionService, DoubleCloseClientThrows) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.close_client(client);
  EXPECT_THROW(svc.close_client(client), ClientError);
}

TEST(CompressionService, SubmitAfterClientCloseThrows) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.close_client(client);
  EXPECT_THROW(svc.submit_compress(client, two_field_job(1)), ClientError);
  EXPECT_THROW(svc.open_archive(client, nullptr), ClientError);
}

TEST(CompressionService, SubmitAfterShutdownThrowsServiceStopped) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.shutdown();
  EXPECT_TRUE(svc.stopped());
  EXPECT_THROW(svc.submit_compress(client, two_field_job(1)), ServiceStopped);
  EXPECT_THROW(svc.open_client(), ServiceStopped);
  svc.shutdown();  // idempotent
}

TEST(CompressionService, UnknownHandleThrowsOnCallerThread) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  EXPECT_THROW(svc.submit_decompress(client, 42), ClientError);
  EXPECT_THROW(svc.submit_chunk(client, 42, 0, 0), ClientError);
  EXPECT_THROW(svc.submit_range(client, 42, 0, 0, 1), ClientError);
  EXPECT_THROW(svc.close_archive(client, 42), ClientError);
}

// ---- Admission control ----------------------------------------------------

TEST(CompressionService, QueueFullRejectionIsDeterministic) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 3;
  cfg.max_inflight_per_client = 100;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 3);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  // Paused, nothing drains: exactly max_queue_depth submits are admitted and
  // every further one is rejected — same counts on every run.
  svc.pause();
  std::vector<std::future<CompressResult>> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(svc.submit_compress(client, job));
  }
  EXPECT_EQ(svc.queue_depth(), 3u);
  EXPECT_THROW(svc.submit_compress(client, job), ServiceBusy);
  EXPECT_THROW(svc.submit_compress(client, job), ServiceBusy);
  EXPECT_EQ(svc.stats().rejected_busy, 2u);
  EXPECT_EQ(svc.stats().accepted, 3u);

  svc.resume();
  for (auto& f : admitted) {
    EXPECT_FALSE(f.get().archive.empty());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.queue_depth_peak, 3);
}

TEST(CompressionService, PerClientInflightCapRejectsOnlyThatClient) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 100;
  cfg.max_inflight_per_client = 2;
  CompressionService svc(cfg);
  const ClientId a = svc.open_client();
  const ClientId b = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 5);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  svc.pause();
  auto f1 = svc.submit_compress(a, job);
  auto f2 = svc.submit_compress(a, job);
  EXPECT_THROW(svc.submit_compress(a, job), ServiceBusy);
  EXPECT_EQ(svc.stats().rejected_client_cap, 1u);
  // Client b is under its own cap; the queue has room.
  auto f3 = svc.submit_compress(b, job);
  svc.resume();
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(svc.stats().completed, 3u);

  // Slots were released: a can submit again.
  EXPECT_FALSE(svc.submit_compress(a, job).get().archive.empty());
}

// ---- LRU eviction with a decode in flight ---------------------------------

TEST(CompressionService, LruEvictionWhileDecodeInFlight) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_open_readers_per_client = 1;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(4096, 9);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  auto bytes = svc.submit_compress(client, job).get().archive;
  auto bytes2 = bytes;

  const ArchiveHandle h1 = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes)));

  // Queue a decompress of h1, then evict h1 before it can run.
  svc.pause();
  auto pending = svc.submit_decompress(client, h1);
  const ArchiveHandle h2 = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes2)));
  EXPECT_EQ(svc.stats().readers_evicted, 1u);
  // The evicted handle is gone for NEW requests...
  EXPECT_THROW(svc.submit_decompress(client, h1), ClientError);
  // ...but the queued request resolved its entry at submit time and must
  // complete correctly after resume.
  svc.resume();
  const auto result = pending.get();
  ASSERT_EQ(result.fields.size(), 1u);
  EXPECT_EQ(result.fields[0].decode.data.size(), data.size());
  EXPECT_NO_THROW(svc.submit_decompress(client, h2).get());
}

// ---- Graceful drain -------------------------------------------------------

TEST(CompressionService, ShutdownDrainsAdmittedRequests) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 16;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 13);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  svc.pause();
  std::vector<std::future<CompressResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(svc.submit_compress(client, job));
  }
  // shutdown() resumes, drains all five, then joins.
  svc.shutdown();
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().archive.empty());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.inflight, 0);
}

// ---- Failure accounting ---------------------------------------------------

TEST(CompressionService, RequestFailureLandsInFutureAndFailedCounter) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 17);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));

  auto bad = svc.submit_chunk(client, h, 7, 0);  // field 7 does not exist
  EXPECT_THROW(bad.get(), std::invalid_argument);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the compress
  EXPECT_EQ(stats.inflight, 0);    // slot released on failure too
}

// ---- Worker-count invariance ----------------------------------------------

TEST(CompressionService, MultiClientResultsInvariantAcrossPoolSizes) {
  // The same three-client workload on a (1 worker, 1 dispatcher) service and
  // a (4 workers, 3 dispatchers) service: every archive and every decoded
  // field must be bit-identical.
  const auto run = [](std::size_t workers, std::size_t dispatchers) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.dispatchers = dispatchers;
    CompressionService svc(cfg);

    struct Output {
      std::vector<std::uint8_t> archive;
      std::vector<std::vector<float>> fields;
      std::vector<float> range;
    };
    std::vector<Output> outputs;
    const double bounds[] = {1e-2, 1e-3, 1e-4};
    for (int c = 0; c < 3; ++c) {
      ClientOptions opts;
      opts.rel_error_bound = bounds[c];
      opts.chunk_elems = 1024;
      opts.plan.auto_method = (c == 1);
      opts.plan.shared_codebook = (c == 1);
      const ClientId client = svc.open_client(opts);

      Output out;
      CompressJob job = two_field_job(100 + static_cast<std::uint64_t>(c));
      out.archive = svc.submit_compress(client, job).get().archive;
      auto copy = out.archive;
      const ArchiveHandle h = svc.open_archive(
          client,
          std::make_shared<pipeline::OwningMemorySource>(std::move(copy)));
      auto result = svc.submit_decompress(client, h).get();
      for (auto& f : result.fields) {
        out.fields.push_back(std::move(f.decode.data));
      }
      out.range = svc.submit_range(client, h, 0, 500, 4500).get();
      outputs.push_back(std::move(out));
    }
    return outputs;
  };

  const auto small = run(1, 1);
  const auto big = run(4, 3);
  ASSERT_EQ(small.size(), big.size());
  for (std::size_t c = 0; c < small.size(); ++c) {
    EXPECT_EQ(small[c].archive, big[c].archive) << "client " << c;
    ASSERT_EQ(small[c].fields.size(), big[c].fields.size());
    for (std::size_t f = 0; f < small[c].fields.size(); ++f) {
      EXPECT_TRUE(identical_floats(small[c].fields[f], big[c].fields[f]))
          << "client " << c << " field " << f;
    }
    EXPECT_TRUE(identical_floats(small[c].range, big[c].range))
        << "client " << c;
  }
}

// ---- Telemetry ------------------------------------------------------------

TEST(CompressionService, ServiceCatalogueAppearsInSnapshot) {
  obs::ScopedTelemetry telemetry;
  CompressionService svc{ServiceConfig{}};
  ClientOptions opts;
  opts.chunk_elems = 1024;  // 3000 elems => 3 chunks, so chunk 1 exists
  const ClientId client = svc.open_client(opts);
  CompressJob job;
  const std::vector<float> data = wavy_field(3000, 23);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));
  svc.submit_decompress(client, h).get();
  svc.submit_chunk(client, h, 0, 1).get();
  svc.submit_range(client, h, 0, 100, 900).get();

  const auto snap = obs::registry().snapshot();
  ASSERT_NE(snap.counter("service.accepted"), nullptr);
  EXPECT_EQ(snap.counter("service.accepted")->value, 4u);
  ASSERT_NE(snap.counter("service.completed"), nullptr);
  EXPECT_EQ(snap.counter("service.completed")->value, 4u);
  ASSERT_NE(snap.gauge("service.queue_depth"), nullptr);
  ASSERT_NE(snap.gauge("service.inflight"), nullptr);
  EXPECT_GE(snap.gauge("service.inflight")->peak, 1);
  ASSERT_NE(snap.gauge("service.active_clients"), nullptr);
  EXPECT_EQ(snap.gauge("service.active_clients")->value, 1);
  ASSERT_NE(snap.gauge("service.open_readers"), nullptr);
  EXPECT_EQ(snap.gauge("service.open_readers")->value, 1);

  for (const char* name :
       {"service.compress", "service.decompress", "service.chunk",
        "service.range"}) {
    const auto latency = std::string(name) + ".latency_ns";
    const auto wait = std::string(name) + ".queue_wait_ns";
    ASSERT_NE(snap.histogram(latency), nullptr) << latency;
    EXPECT_EQ(snap.histogram(latency)->count, 1u) << latency;
    ASSERT_NE(snap.histogram(wait), nullptr) << wait;
    EXPECT_EQ(snap.histogram(wait)->count, 1u) << wait;
  }
}

}  // namespace
}  // namespace ohd::service
