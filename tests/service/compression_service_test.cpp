// CompressionService end-to-end coverage: round-trip fidelity against the
// direct pipeline, the client/archive lifecycle errors (double close,
// submit after close/shutdown, unknown handles), deterministic queue-full
// and per-client-cap rejections via the pause() valve, LRU eviction with a
// decode in flight, graceful drain, the multi-client worker-count-invariance
// property, stats accounting, and the "service.*" registry catalogue.
#include "service/compression_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/rng.hpp"

namespace ohd::service {
namespace {

std::vector<float> wavy_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.02) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

CompressJob two_field_job(std::uint64_t seed) {
  CompressJob job;
  job.fields.push_back(
      {"alpha", wavy_field(6000, seed), sz::Dims::d1(6000)});
  job.fields.push_back(
      {"beta", wavy_field(40 * 50, seed + 1, 0.005), sz::Dims::d2(40, 50)});
  return job;
}

/// Compress a job through the service and reopen the archive as a handle.
ArchiveHandle compress_and_open(CompressionService& svc, ClientId client,
                                CompressJob job) {
  auto bytes = svc.submit_compress(client, std::move(job)).get().archive;
  return svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes)));
}

bool identical_floats(const std::vector<float>& a,
                      const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- Round trip -----------------------------------------------------------

TEST(CompressionService, RoundTripMatchesDirectPipeline) {
  ServiceConfig cfg;
  cfg.workers = 2;
  CompressionService svc(cfg);
  ClientOptions opts;
  opts.rel_error_bound = 1e-3;
  opts.chunk_elems = 2048;
  const ClientId client = svc.open_client(opts);

  CompressJob job = two_field_job(7);
  const std::vector<float> input0 = job.fields[0].data;
  auto archive = svc.submit_compress(client, job).get().archive;

  // Byte-identical to the same specs run directly through the scheduler.
  pipeline::ThreadPool pool(1);
  std::vector<pipeline::FieldSpec> specs;
  for (const auto& f : job.fields) {
    pipeline::FieldSpec s;
    s.name = f.name;
    s.data = f.data;
    s.dims = f.dims;
    s.config.rel_error_bound = opts.rel_error_bound;
    s.chunk_elems = opts.chunk_elems;
    specs.push_back(s);
  }
  pipeline::MemorySink direct;
  pipeline::ArchiveWriter writer(direct);
  pipeline::BatchScheduler(pool).compress_to(writer, specs);
  writer.finish();
  EXPECT_EQ(archive, direct.bytes());

  // Decompress through the service: error-bounded floats, both fields.
  const ArchiveHandle h = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(archive)));
  const auto result = svc.submit_decompress(client, h).get();
  ASSERT_EQ(result.fields.size(), 2u);
  EXPECT_EQ(result.fields[0].name, "alpha");
  const auto& decoded = result.fields[0].decode.data;
  ASSERT_EQ(decoded.size(), input0.size());
  const auto [lo, hi] = std::minmax_element(input0.begin(), input0.end());
  const double bound = opts.rel_error_bound * (*hi - *lo) * 1.000001;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    ASSERT_NEAR(decoded[i], input0[i], bound) << "element " << i;
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected(), 0u);
}

TEST(CompressionService, ChunkAndRangeMatchFullDecode) {
  CompressionService svc{ServiceConfig{}};
  ClientOptions opts;
  opts.chunk_elems = 1024;
  const ClientId client = svc.open_client(opts);
  CompressJob job;
  const std::vector<float> data = wavy_field(5000, 11);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));

  const auto full = svc.submit_decompress(client, h).get();
  const auto& values = full.fields[0].decode.data;

  // Chunk 2 covers elements [2048, 3072).
  const auto chunk = svc.submit_chunk(client, h, 0, 2).get();
  ASSERT_EQ(chunk.size(), 1024u);
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), values.begin() + 2048));

  // An unaligned range crossing two chunk boundaries.
  const auto range = svc.submit_range(client, h, 0, 1000, 3500).get();
  ASSERT_EQ(range.size(), 2500u);
  EXPECT_TRUE(std::equal(range.begin(), range.end(), values.begin() + 1000));
}

// ---- Lifecycle errors -----------------------------------------------------

TEST(CompressionService, DoubleCloseClientThrows) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.close_client(client);
  EXPECT_THROW(svc.close_client(client), ClientError);
}

TEST(CompressionService, SubmitAfterClientCloseThrows) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.close_client(client);
  EXPECT_THROW(svc.submit_compress(client, two_field_job(1)), ClientError);
  EXPECT_THROW(svc.open_archive(client, nullptr), ClientError);
}

TEST(CompressionService, SubmitAfterShutdownThrowsServiceStopped) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  svc.shutdown();
  EXPECT_TRUE(svc.stopped());
  EXPECT_THROW(svc.submit_compress(client, two_field_job(1)), ServiceStopped);
  EXPECT_THROW(svc.open_client(), ServiceStopped);
  svc.shutdown();  // idempotent
}

TEST(CompressionService, UnknownHandleThrowsOnCallerThread) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  EXPECT_THROW(svc.submit_decompress(client, 42), ClientError);
  EXPECT_THROW(svc.submit_chunk(client, 42, 0, 0), ClientError);
  EXPECT_THROW(svc.submit_range(client, 42, 0, 0, 1), ClientError);
  EXPECT_THROW(svc.close_archive(client, 42), ClientError);
}

// ---- Admission control ----------------------------------------------------

TEST(CompressionService, QueueFullRejectionIsDeterministic) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 3;
  cfg.max_inflight_per_client = 100;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 3);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  // Paused, nothing drains: exactly max_queue_depth submits are admitted and
  // every further one is rejected — same counts on every run.
  svc.pause();
  std::vector<std::future<CompressResult>> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(svc.submit_compress(client, job).future);
  }
  EXPECT_EQ(svc.queue_depth(), 3u);
  EXPECT_THROW(svc.submit_compress(client, job), ServiceBusy);
  EXPECT_THROW(svc.submit_compress(client, job), ServiceBusy);
  EXPECT_EQ(svc.stats().rejected_busy, 2u);
  EXPECT_EQ(svc.stats().accepted, 3u);

  svc.resume();
  for (auto& f : admitted) {
    EXPECT_FALSE(f.get().archive.empty());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.queue_depth_peak, 3);
}

TEST(CompressionService, PerClientInflightCapRejectsOnlyThatClient) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 100;
  cfg.max_inflight_per_client = 2;
  CompressionService svc(cfg);
  const ClientId a = svc.open_client();
  const ClientId b = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 5);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  svc.pause();
  auto f1 = svc.submit_compress(a, job);
  auto f2 = svc.submit_compress(a, job);
  EXPECT_THROW(svc.submit_compress(a, job), ServiceBusy);
  EXPECT_EQ(svc.stats().rejected_client_cap, 1u);
  // Client b is under its own cap; the queue has room.
  auto f3 = svc.submit_compress(b, job);
  svc.resume();
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(svc.stats().completed, 3u);

  // Slots were released: a can submit again.
  EXPECT_FALSE(svc.submit_compress(a, job).get().archive.empty());
}

// ---- LRU eviction with a decode in flight ---------------------------------

TEST(CompressionService, LruEvictionWhileDecodeInFlight) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_open_readers_per_client = 1;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(4096, 9);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  auto bytes = svc.submit_compress(client, job).get().archive;
  auto bytes2 = bytes;

  const ArchiveHandle h1 = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes)));

  // Queue a decompress of h1, then evict h1 before it can run.
  svc.pause();
  auto pending = svc.submit_decompress(client, h1);
  const ArchiveHandle h2 = svc.open_archive(
      client,
      std::make_shared<pipeline::OwningMemorySource>(std::move(bytes2)));
  EXPECT_EQ(svc.stats().readers_evicted, 1u);
  // The evicted handle is gone for NEW requests...
  EXPECT_THROW(svc.submit_decompress(client, h1), ClientError);
  // ...but the queued request resolved its entry at submit time and must
  // complete correctly after resume.
  svc.resume();
  const auto result = pending.get();
  ASSERT_EQ(result.fields.size(), 1u);
  EXPECT_EQ(result.fields[0].decode.data.size(), data.size());
  EXPECT_NO_THROW(svc.submit_decompress(client, h2).get());
}

// ---- Graceful drain -------------------------------------------------------

TEST(CompressionService, ShutdownDrainsAdmittedRequests) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 16;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 13);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});

  svc.pause();
  std::vector<std::future<CompressResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(svc.submit_compress(client, job).future);
  }
  // shutdown() resumes, drains all five, then joins.
  svc.shutdown();
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().archive.empty());
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.inflight, 0);
}

// ---- Failure accounting ---------------------------------------------------

TEST(CompressionService, RequestFailureLandsInFutureAndFailedCounter) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, 17);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));

  auto bad = svc.submit_chunk(client, h, 7, 0);  // field 7 does not exist
  EXPECT_THROW(bad.get(), std::invalid_argument);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the compress
  EXPECT_EQ(stats.inflight, 0);    // slot released on failure too
}

// ---- Worker-count invariance ----------------------------------------------

TEST(CompressionService, MultiClientResultsInvariantAcrossPoolSizes) {
  // The same three-client workload on a (1 worker, 1 dispatcher) service and
  // a (4 workers, 3 dispatchers) service: every archive and every decoded
  // field must be bit-identical.
  const auto run = [](std::size_t workers, std::size_t dispatchers) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.dispatchers = dispatchers;
    CompressionService svc(cfg);

    struct Output {
      std::vector<std::uint8_t> archive;
      std::vector<std::vector<float>> fields;
      std::vector<float> range;
    };
    std::vector<Output> outputs;
    const double bounds[] = {1e-2, 1e-3, 1e-4};
    for (int c = 0; c < 3; ++c) {
      ClientOptions opts;
      opts.rel_error_bound = bounds[c];
      opts.chunk_elems = 1024;
      opts.plan.auto_method = (c == 1);
      opts.plan.shared_codebook = (c == 1);
      const ClientId client = svc.open_client(opts);

      Output out;
      CompressJob job = two_field_job(100 + static_cast<std::uint64_t>(c));
      out.archive = svc.submit_compress(client, job).get().archive;
      auto copy = out.archive;
      const ArchiveHandle h = svc.open_archive(
          client,
          std::make_shared<pipeline::OwningMemorySource>(std::move(copy)));
      auto result = svc.submit_decompress(client, h).get();
      for (auto& f : result.fields) {
        out.fields.push_back(std::move(f.decode.data));
      }
      out.range = svc.submit_range(client, h, 0, 500, 4500).get();
      outputs.push_back(std::move(out));
    }
    return outputs;
  };

  const auto small = run(1, 1);
  const auto big = run(4, 3);
  ASSERT_EQ(small.size(), big.size());
  for (std::size_t c = 0; c < small.size(); ++c) {
    EXPECT_EQ(small[c].archive, big[c].archive) << "client " << c;
    ASSERT_EQ(small[c].fields.size(), big[c].fields.size());
    for (std::size_t f = 0; f < small[c].fields.size(); ++f) {
      EXPECT_TRUE(identical_floats(small[c].fields[f], big[c].fields[f]))
          << "client " << c << " field " << f;
    }
    EXPECT_TRUE(identical_floats(small[c].range, big[c].range))
        << "client " << c;
  }
}

// ---- Telemetry ------------------------------------------------------------

TEST(CompressionService, ServiceCatalogueAppearsInSnapshot) {
  obs::ScopedTelemetry telemetry;
  CompressionService svc{ServiceConfig{}};
  ClientOptions opts;
  opts.chunk_elems = 1024;  // 3000 elems => 3 chunks, so chunk 1 exists
  const ClientId client = svc.open_client(opts);
  CompressJob job;
  const std::vector<float> data = wavy_field(3000, 23);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  const ArchiveHandle h = compress_and_open(svc, client, std::move(job));
  svc.submit_decompress(client, h).get();
  svc.submit_chunk(client, h, 0, 1).get();
  svc.submit_range(client, h, 0, 100, 900).get();

  const auto snap = obs::registry().snapshot();
  ASSERT_NE(snap.counter("service.accepted"), nullptr);
  EXPECT_EQ(snap.counter("service.accepted")->value, 4u);
  ASSERT_NE(snap.counter("service.completed"), nullptr);
  EXPECT_EQ(snap.counter("service.completed")->value, 4u);
  ASSERT_NE(snap.gauge("service.queue_depth"), nullptr);
  ASSERT_NE(snap.gauge("service.inflight"), nullptr);
  EXPECT_GE(snap.gauge("service.inflight")->peak, 1);
  ASSERT_NE(snap.gauge("service.active_clients"), nullptr);
  EXPECT_EQ(snap.gauge("service.active_clients")->value, 1);
  ASSERT_NE(snap.gauge("service.open_readers"), nullptr);
  EXPECT_EQ(snap.gauge("service.open_readers")->value, 1);

  for (const char* name :
       {"service.compress", "service.decompress", "service.chunk",
        "service.range"}) {
    const auto latency = std::string(name) + ".latency_ns";
    const auto wait = std::string(name) + ".queue_wait_ns";
    ASSERT_NE(snap.histogram(latency), nullptr) << latency;
    EXPECT_EQ(snap.histogram(latency)->count, 1u) << latency;
    ASSERT_NE(snap.histogram(wait), nullptr) << wait;
    EXPECT_EQ(snap.histogram(wait)->count, 1u) << wait;
  }
}

// ---- Cancellation ---------------------------------------------------------

/// One small one-field job — cheap enough that lifecycle tests can submit
/// dozens without dominating the suite's runtime.
CompressJob small_job(std::uint64_t seed) {
  CompressJob job;
  const std::vector<float> data = wavy_field(2048, seed);
  job.fields.push_back({"f", data, sz::Dims::d1(data.size())});
  return job;
}

TEST(CompressionService, CancelQueuedRequestSettlesImmediately) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 8;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  auto keep = svc.submit_compress(client, small_job(31));
  auto doomed = svc.submit_compress(client, small_job(32));
  EXPECT_EQ(svc.cancel(doomed.id), CancelResult::Cancelled);

  // cancel() settled the future inline: ready before resume, exact stats.
  try {
    doomed.get();
    FAIL() << "expected RequestCancelled";
  } catch (const RequestCancelled& e) {
    EXPECT_EQ(std::string(e.what()),
              "request " + std::to_string(doomed.id) +
                  " cancelled before execution");
  }
  EXPECT_EQ(svc.stats().cancelled, 1u);
  EXPECT_EQ(svc.stats().queue_depth, 1);

  // Double-cancel and cancelling an unknown id are harmless no-ops.
  EXPECT_EQ(svc.cancel(doomed.id), CancelResult::NotFound);
  EXPECT_EQ(svc.cancel(999999), CancelResult::NotFound);

  svc.resume();
  EXPECT_FALSE(keep.get().archive.empty());
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.settled(), stats.accepted);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

TEST(CompressionService, CancelAfterCompletionIsNoOp) {
  CompressionService svc{ServiceConfig{}};
  const ClientId client = svc.open_client();
  auto sub = svc.submit_compress(client, small_job(33));
  EXPECT_FALSE(sub.get().archive.empty());
  EXPECT_EQ(svc.cancel(sub.id), CancelResult::NotFound);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(CompressionService, CancelRunningRequestStopsBetweenChunks) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.dispatchers = 1;
  CompressionService svc(cfg);
  ClientOptions opts;
  opts.chunk_elems = 512;  // 512 chunks: a wide cancellation window
  const ClientId client = svc.open_client(opts);
  CompressJob job;
  const std::vector<float> data = wavy_field(512 * 512, 34);
  job.fields.push_back({"big", data, sz::Dims::d1(data.size())});

  auto sub = svc.submit_compress(client, std::move(job));
  // Wait until the dispatcher picked it up, then cancel mid-execution.
  while (svc.queue_depth() > 0) std::this_thread::yield();
  const CancelResult r = svc.cancel(sub.id);
  EXPECT_NE(r, CancelResult::Cancelled);  // no longer queued

  bool was_cancelled = false;
  try {
    sub.get();  // value only if cancel lost the race to the last chunk
  } catch (const RequestCancelled&) {
    was_cancelled = true;
  }
  if (r == CancelResult::Signalled) {
    EXPECT_TRUE(was_cancelled);  // 512 chunk boundaries: the check must hit
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.settled(), 1u);
  EXPECT_EQ(stats.cancelled, was_cancelled ? 1u : 0u);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

TEST(CompressionService, CancelVersusDispatchRaceSettlesEveryFuture) {
  // Submit-then-immediately-cancel races the dispatcher on the same id:
  // whatever interleaving happens, every future settles exactly once with a
  // value or RequestCancelled, and the books balance.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 2;
  cfg.max_queue_depth = 64;
  cfg.max_inflight_per_client = 64;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  constexpr std::uint64_t kRounds = 32;
  std::uint64_t values = 0, cancels = 0;
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    auto sub = svc.submit_compress(client, small_job(100 + i));
    (void)svc.cancel(sub.id);
    try {
      EXPECT_FALSE(sub.get().archive.empty());
      ++values;
    } catch (const RequestCancelled&) {
      ++cancels;
    }
  }
  EXPECT_EQ(values + cancels, kRounds);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, kRounds);
  EXPECT_EQ(stats.completed, values);
  EXPECT_EQ(stats.cancelled, cancels);
  EXPECT_EQ(stats.settled(), stats.accepted);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

TEST(CompressionService, CallerHeldTokenCancelsWithoutTheRequestId) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  RequestOptions opts;
  opts.cancel = CancellationToken::make();
  auto sub = svc.submit_compress(client, small_job(35), opts);
  opts.cancel.request_cancel();  // no RequestId needed
  svc.resume();
  EXPECT_THROW(sub.get(), RequestCancelled);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.settled(), stats.accepted);
}

TEST(CompressionService, ShutdownDrainsAQueueWithCancelledRequests) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 16;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  std::vector<Submission<CompressResult>> subs;
  for (int i = 0; i < 4; ++i) {
    subs.push_back(svc.submit_compress(client, small_job(40 + i)));
  }
  EXPECT_EQ(svc.cancel(subs[1].id), CancelResult::Cancelled);
  EXPECT_EQ(svc.cancel(subs[3].id), CancelResult::Cancelled);

  // shutdown() resumes and drains: the two survivors complete, the two
  // cancelled futures already hold RequestCancelled.
  svc.shutdown();
  EXPECT_FALSE(subs[0].get().archive.empty());
  EXPECT_THROW(subs[1].get(), RequestCancelled);
  EXPECT_FALSE(subs[2].get().archive.empty());
  EXPECT_THROW(subs[3].get(), RequestCancelled);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.settled(), 4u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

// ---- Deadlines ------------------------------------------------------------

TEST(CompressionService, SweeperExpiresQueuedPastDeadlineRequests) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.sweep_interval = std::chrono::microseconds(200);
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();  // the sweeper keeps running while paused
  RequestOptions late;
  late.deadline = Deadline::after(std::chrono::milliseconds(2));
  auto doomed1 = svc.submit_compress(client, small_job(50), late);
  auto doomed2 = svc.submit_compress(client, small_job(51), late);
  auto survivor = svc.submit_compress(client, small_job(52));

  // The sweeper expires both while the service is still paused.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (svc.stats().expired < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(svc.stats().expired, 2u);
  try {
    doomed1.get();
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(std::string(e.what()),
              "request " + std::to_string(doomed1.id) +
                  " deadline exceeded before execution");
  }
  EXPECT_THROW(doomed2.get(), DeadlineExceeded);

  svc.resume();
  EXPECT_FALSE(survivor.get().archive.empty());
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.settled(), 3u);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

TEST(CompressionService, DispatchRechecksDeadlineWhenSweeperIsSlow) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  // Sweeper effectively disabled: only the dispatch-time re-check can fire.
  cfg.sweep_interval = std::chrono::microseconds(60'000'000);
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  RequestOptions late;
  late.deadline = Deadline::after(std::chrono::milliseconds(1));
  auto sub = svc.submit_compress(client, small_job(53), late);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  svc.resume();
  EXPECT_THROW(sub.get(), DeadlineExceeded);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.settled(), stats.accepted);
}

// ---- Byte quotas ----------------------------------------------------------

TEST(CompressionService, ByteQuotaAccountingIsExact) {
  // small_job carries 2048 floats = 8192 payload bytes. Quota 20000 admits
  // two jobs (16384) and rejects the third.
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 8;
  cfg.max_inflight_bytes_per_client = 20000;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  auto sub1 = svc.submit_compress(client, small_job(60));
  auto sub2 = svc.submit_compress(client, small_job(61));
  EXPECT_EQ(svc.stats().inflight_bytes, 16384);
  try {
    svc.submit_compress(client, small_job(62));
    FAIL() << "expected ServiceBusy";
  } catch (const ServiceBusy& e) {
    EXPECT_EQ(std::string(e.what()),
              "submit: client 1 over byte quota (in flight 16384 + request "
              "8192 > 20000; queue depth 2/8)");
  }
  EXPECT_EQ(svc.stats().rejected_quota, 1u);

  // Cancelling a queued request releases its bytes immediately...
  EXPECT_EQ(svc.cancel(sub2.id), CancelResult::Cancelled);
  EXPECT_EQ(svc.stats().inflight_bytes, 8192);
  svc.resume();
  // ...and completion releases the rest before get() returns.
  EXPECT_FALSE(sub1.get().archive.empty());
  EXPECT_EQ(svc.stats().inflight_bytes, 0);
  EXPECT_EQ(svc.stats().inflight_bytes_peak, 16384);

  // The freed quota admits new work.
  EXPECT_FALSE(svc.submit_compress(client, small_job(63)).get().archive.empty());
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

// ---- Pinned rejection message formats -------------------------------------

TEST(CompressionService, RejectionMessagesCarryQueueAndClientState) {
  {  // per-client in-flight cap
    ServiceConfig cfg;
    cfg.dispatchers = 1;
    cfg.max_queue_depth = 8;
    cfg.max_inflight_per_client = 1;
    CompressionService svc(cfg);
    const ClientId client = svc.open_client();
    svc.pause();
    auto held = svc.submit_compress(client, small_job(70));
    try {
      svc.submit_compress(client, small_job(71));
      FAIL() << "expected ServiceBusy";
    } catch (const ServiceBusy& e) {
      EXPECT_EQ(std::string(e.what()),
                "submit: client 1 at in-flight cap (1/1; queue depth 1/8)");
    }
    svc.resume();
    held.wait();
  }
  {  // queue overload with nothing sheddable (same priority everywhere)
    ServiceConfig cfg;
    cfg.dispatchers = 1;
    cfg.max_queue_depth = 1;
    cfg.max_inflight_per_client = 4;
    CompressionService svc(cfg);
    const ClientId client = svc.open_client();
    svc.pause();
    auto held = svc.submit_compress(client, small_job(72));
    try {
      svc.submit_compress(client, small_job(73));
      FAIL() << "expected ServiceOverloaded";
    } catch (const ServiceOverloaded& e) {
      // No pops yet, so the drain-rate EWMA (and the hint) is exactly zero.
      EXPECT_EQ(std::string(e.what()),
                "submit: queue overloaded (depth 1/1; client 1 in-flight 1/4; "
                "retry-after ~0.0 ms)");
      EXPECT_EQ(e.retry_after_ns(), 0u);
    }
    svc.resume();
    held.wait();
  }
}

// ---- Priority-aware load shedding -----------------------------------------

TEST(CompressionService, OverloadShedsNewestBackgroundFirst) {
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 4;
  cfg.max_inflight_per_client = 100;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  RequestOptions bg;
  bg.priority = Priority::Background;
  std::vector<Submission<CompressResult>> background;
  for (int i = 0; i < 4; ++i) {
    background.push_back(svc.submit_compress(client, small_job(80 + i), bg));
  }

  RequestOptions interactive;
  interactive.priority = Priority::Interactive;
  auto i1 = svc.submit_compress(client, small_job(90), interactive);
  auto i2 = svc.submit_compress(client, small_job(91), interactive);

  // Each interactive submit shed the NEWEST queued background request; the
  // victim's future settled inline with the pinned verdict.
  try {
    background[3].get();
    FAIL() << "expected ServiceOverloaded";
  } catch (const ServiceOverloaded& e) {
    EXPECT_EQ(std::string(e.what()),
              "request " + std::to_string(background[3].id) +
                  " shed under overload by interactive-priority submit "
                  "(queue depth 4/4; retry-after ~0.0 ms)");
    EXPECT_EQ(e.retry_after_ns(), 0u);
  }
  EXPECT_THROW(background[2].get(), ServiceOverloaded);
  EXPECT_EQ(svc.stats().shed, 2u);

  // A further background submit finds nothing below itself: rejected.
  EXPECT_THROW(svc.submit_compress(client, small_job(92), bg),
               ServiceOverloaded);
  EXPECT_EQ(svc.stats().rejected_busy, 1u);

  svc.resume();
  EXPECT_FALSE(background[0].get().archive.empty());
  EXPECT_FALSE(background[1].get().archive.empty());
  EXPECT_FALSE(i1.get().archive.empty());
  EXPECT_FALSE(i2.get().archive.empty());
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.accepted, 6u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.settled(), 6u);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.inflight_bytes, 0);
}

// ---- Reader retry totals --------------------------------------------------

/// Owning fault wrapper: FaultInjectingSource borrows its inner source, so
/// the archive bytes and the injector travel together behind one shared_ptr.
struct FaultyArchiveSource : pipeline::ByteSource {
  FaultyArchiveSource(std::vector<std::uint8_t> bytes,
                      pipeline::FaultSpec spec)
      : mem(std::move(bytes)), faults(mem, spec) {}
  std::uint64_t size() const override { return faults.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override {
    faults.read_at(offset, out);
  }
  pipeline::OwningMemorySource mem;
  pipeline::FaultInjectingSource faults;
};

TEST(CompressionService, ReaderIoRetriesSurfaceInStats) {
  ServiceConfig cfg;
  cfg.reader.retry.max_attempts = 4;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();
  auto bytes = svc.submit_compress(client, small_job(95)).get().archive;

  // rate 1.0 with max_faults 2: the first two reads fault, then the wrapper
  // goes transparent — exactly two retries, every run.
  pipeline::FaultSpec spec;
  spec.seed = 7;
  spec.transient_read_rate = 1.0;
  spec.max_faults = 2;
  const ArchiveHandle h = svc.open_archive(
      client, std::make_shared<FaultyArchiveSource>(std::move(bytes), spec));
  EXPECT_EQ(svc.submit_decompress(client, h).get().fields.size(), 1u);
  EXPECT_EQ(svc.stats().io_retries, 2u);

  // The total survives closing the reader and then the client (harvested
  // into retired counters, not lost with the ArchiveReader).
  svc.close_archive(client, h);
  EXPECT_EQ(svc.stats().io_retries, 2u);
  svc.close_client(client);
  EXPECT_EQ(svc.stats().io_retries, 2u);
}

// ---- Lifecycle telemetry catalogue ----------------------------------------

TEST(CompressionService, LifecycleCountersAppearInSnapshot) {
  obs::ScopedTelemetry telemetry;
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 2;
  cfg.max_inflight_per_client = 100;
  CompressionService svc(cfg);
  const ClientId client = svc.open_client();

  svc.pause();
  RequestOptions bg;
  bg.priority = Priority::Background;
  auto shed_victim = svc.submit_compress(client, small_job(96), bg);
  auto keep = svc.submit_compress(client, small_job(97));
  RequestOptions interactive;
  interactive.priority = Priority::Interactive;
  auto urgent = svc.submit_compress(client, small_job(98), interactive);
  EXPECT_THROW(shed_victim.get(), ServiceOverloaded);
  EXPECT_EQ(svc.cancel(keep.id), CancelResult::Cancelled);
  svc.resume();
  EXPECT_FALSE(urgent.get().archive.empty());

  const auto snap = obs::registry().snapshot();
  ASSERT_NE(snap.counter("service.shed.count"), nullptr);
  EXPECT_EQ(snap.counter("service.shed.count")->value, 1u);
  ASSERT_NE(snap.counter("service.cancel.total"), nullptr);
  EXPECT_EQ(snap.counter("service.cancel.total")->value, 1u);
  ASSERT_NE(snap.counter("service.cancel.queued"), nullptr);
  EXPECT_EQ(snap.counter("service.cancel.queued")->value, 1u);
  ASSERT_NE(snap.counter("service.expired.total"), nullptr);
  EXPECT_EQ(snap.counter("service.expired.total")->value, 0u);
  ASSERT_NE(snap.counter("service.rejected_quota"), nullptr);
  ASSERT_NE(snap.gauge("service.inflight_bytes"), nullptr);
  EXPECT_EQ(snap.gauge("service.inflight_bytes")->value, 0);
  EXPECT_GT(snap.gauge("service.inflight_bytes")->peak, 0);
  for (const char* name :
       {"service.queue_age.interactive_ns", "service.queue_age.batch_ns",
        "service.queue_age.background_ns"}) {
    EXPECT_NE(snap.gauge(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace ohd::service
