// ClientContext / ClientRegistry unit coverage: reader LRU (eviction order,
// touch-on-access, eviction counting, shared entries surviving eviction),
// in-flight slot accounting, and the open/find/close client lifecycle
// including the double-close error.
#include "service/client_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "pipeline/archive_io.hpp"
#include "pipeline/byte_stream.hpp"

namespace ohd::service {
namespace {

/// Smallest valid archive: one tiny field, one chunk.
std::shared_ptr<const pipeline::OwningMemorySource> tiny_archive() {
  std::vector<float> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)));
  }
  pipeline::MemorySink sink;
  pipeline::ArchiveWriter writer(sink);
  writer.add_field("f", data, sz::Dims::d1(data.size()), {}, 256);
  writer.finish();
  return std::make_shared<pipeline::OwningMemorySource>(sink.take());
}

TEST(ClientContext, LruEvictsOldestAndAccessRefreshes) {
  ClientContext ctx(1, {});
  const auto src = tiny_archive();
  std::uint64_t evicted = 0;

  const ArchiveHandle h1 = ctx.open_reader(src, {}, 2, &evicted);
  const ArchiveHandle h2 = ctx.open_reader(src, {}, 2, &evicted);
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(ctx.open_reader_count(), 2u);

  // Touch h1 so h2 becomes least recently used; the third open evicts h2.
  ctx.reader(h1);
  const ArchiveHandle h3 = ctx.open_reader(src, {}, 2, &evicted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(ctx.open_reader_count(), 2u);
  EXPECT_NO_THROW(ctx.reader(h1));
  EXPECT_NO_THROW(ctx.reader(h3));
  EXPECT_THROW(ctx.reader(h2), ClientError);
}

TEST(ClientContext, EvictedEntrySurvivesThroughOutstandingSharedPtr) {
  ClientContext ctx(1, {});
  const auto src = tiny_archive();
  std::uint64_t evicted = 0;

  const ArchiveHandle h1 = ctx.open_reader(src, {}, 1, &evicted);
  // Resolve before eviction, as a request would at submit time.
  std::shared_ptr<ReaderEntry> held = ctx.reader(h1);
  ctx.open_reader(src, {}, 1, &evicted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_THROW(ctx.reader(h1), ClientError);
  // The held entry still decodes: eviction dropped only the registry ref.
  EXPECT_EQ(held->reader.fields().size(), 1u);
  EXPECT_NO_THROW(held->reader.verify());
}

TEST(ClientContext, CloseReaderRemovesHandleAndRejectsUnknown) {
  ClientContext ctx(1, {});
  const auto src = tiny_archive();
  const ArchiveHandle h = ctx.open_reader(src, {}, 4);
  ctx.close_reader(h);
  EXPECT_EQ(ctx.open_reader_count(), 0u);
  EXPECT_THROW(ctx.close_reader(h), ClientError);
  EXPECT_THROW(ctx.reader(h), ClientError);
  EXPECT_THROW(ctx.close_reader(999), ClientError);
}

TEST(ClientContext, HandlesAreNeverReused) {
  ClientContext ctx(1, {});
  const auto src = tiny_archive();
  const ArchiveHandle h1 = ctx.open_reader(src, {}, 1);
  const ArchiveHandle h2 = ctx.open_reader(src, {}, 1);  // evicts h1
  const ArchiveHandle h3 = ctx.open_reader(src, {}, 1);  // evicts h2
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h3);
  EXPECT_NE(h1, h3);
}

TEST(ClientContext, NullSourceRejected) {
  ClientContext ctx(1, {});
  EXPECT_THROW(ctx.open_reader(nullptr, {}, 4), ClientError);
}

TEST(ClientContext, InflightSlotsRespectCap) {
  ClientContext ctx(1, {});
  EXPECT_TRUE(ctx.try_acquire_slot(2));
  EXPECT_TRUE(ctx.try_acquire_slot(2));
  EXPECT_FALSE(ctx.try_acquire_slot(2));
  EXPECT_EQ(ctx.inflight(), 2u);
  ctx.release_slot();
  EXPECT_TRUE(ctx.try_acquire_slot(2));
  EXPECT_FALSE(ctx.try_acquire_slot(2));
}

TEST(ClientRegistry, OpenFindCloseLifecycle) {
  ClientRegistry reg;
  ClientOptions opts;
  opts.rel_error_bound = 1e-4;
  const auto a = reg.open(opts);
  const auto b = reg.open({});
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find(a->id())->options().rel_error_bound, 1e-4);

  reg.close(a->id());
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.find(a->id()), ClientError);
  // Double close is an error, not a no-op.
  EXPECT_THROW(reg.close(a->id()), ClientError);
  EXPECT_THROW(reg.find(999), ClientError);
}

TEST(ClientRegistry, OpenReadersSumsAcrossClients) {
  ClientRegistry reg;
  const auto src = tiny_archive();
  const auto a = reg.open({});
  const auto b = reg.open({});
  a->open_reader(src, {}, 4);
  a->open_reader(src, {}, 4);
  b->open_reader(src, {}, 4);
  EXPECT_EQ(reg.open_readers(), 3u);
  reg.close(a->id());
  EXPECT_EQ(reg.open_readers(), 1u);
}

TEST(ClientRegistry, IdsAreMonotoneAndNeverReused) {
  ClientRegistry reg;
  const ClientId a = reg.open({})->id();
  reg.close(a);
  const ClientId b = reg.open({})->id();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace ohd::service
