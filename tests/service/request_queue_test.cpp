// PriorityRequestQueue unit coverage: the credit-weighted pop schedule and
// its starvation bound, FIFO order within a class, weight redistribution
// when classes empty out, and the three removal paths (remove-by-id for
// cancel, shed_below for overload, expire for deadlines) that hand requests
// back instead of dropping them.
#include "service/request_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ohd::service {
namespace {

QueuedRequest req(RequestId id, Priority p, std::uint64_t enqueue_ns = 0,
                  std::uint64_t deadline_ns = 0) {
  QueuedRequest r;
  r.id = id;
  r.priority = p;
  r.enqueue_ns = enqueue_ns;
  r.deadline_ns = deadline_ns;
  return r;
}

/// Pops everything, returning the ids in pop order.
std::vector<RequestId> pop_all(PriorityRequestQueue& q) {
  std::vector<RequestId> ids;
  while (auto r = q.pop()) ids.push_back(r->id);
  return ids;
}

TEST(PriorityRequestQueue, WeightedCycleUnderSaturation) {
  PriorityRequestQueue q;
  // 8 of each class, ids encode the class: 1xx interactive, 2xx batch,
  // 3xx background.
  for (RequestId i = 0; i < 8; ++i) {
    q.push(req(100 + i, Priority::Interactive));
    q.push(req(200 + i, Priority::Batch));
    q.push(req(300 + i, Priority::Background));
  }
  // One full credit cycle is 7 pops: 4 interactive, 2 batch, 1 background —
  // the documented starvation bound, FIFO within each class.
  const std::vector<RequestId> first_cycle = {100, 101, 102, 103,
                                              200, 201, 300};
  std::vector<RequestId> got;
  for (int i = 0; i < 7; ++i) got.push_back(q.pop()->id);
  EXPECT_EQ(got, first_cycle);
  // The next cycle repeats the pattern with the next ids.
  const std::vector<RequestId> second_cycle = {104, 105, 106, 107,
                                               202, 203, 301};
  got.clear();
  for (int i = 0; i < 7; ++i) got.push_back(q.pop()->id);
  EXPECT_EQ(got, second_cycle);
}

TEST(PriorityRequestQueue, LowClassesDrainWhenHighIsEmpty) {
  PriorityRequestQueue q;
  for (RequestId i = 0; i < 4; ++i) q.push(req(300 + i, Priority::Background));
  // No interactive/batch work: background pops immediately, in FIFO order —
  // empty classes never hoard the cycle.
  EXPECT_EQ(pop_all(q), (std::vector<RequestId>{300, 301, 302, 303}));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PriorityRequestQueue, RemoveByIdTakesTheRequestOut) {
  PriorityRequestQueue q;
  q.push(req(1, Priority::Batch));
  q.push(req(2, Priority::Batch));
  q.push(req(3, Priority::Interactive));
  auto removed = q.remove(2);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, 2u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.remove(2).has_value());  // already gone
  EXPECT_FALSE(q.remove(99).has_value());
  EXPECT_EQ(pop_all(q), (std::vector<RequestId>{3, 1}));
}

TEST(PriorityRequestQueue, ShedBelowPicksNewestOfLowestClass) {
  PriorityRequestQueue q;
  q.push(req(20, Priority::Batch));
  q.push(req(30, Priority::Background));
  q.push(req(31, Priority::Background));

  // An interactive submit sheds the NEWEST background request first.
  auto victim = q.shed_below(Priority::Interactive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 31u);
  // A batch submit can still displace background...
  victim = q.shed_below(Priority::Batch);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 30u);
  // ...but never its own class, and background can displace nothing.
  EXPECT_FALSE(q.shed_below(Priority::Batch).has_value());
  EXPECT_FALSE(q.shed_below(Priority::Background).has_value());
  // With background empty, interactive may displace batch.
  victim = q.shed_below(Priority::Interactive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 20u);
  EXPECT_TRUE(q.empty());
}

TEST(PriorityRequestQueue, ExpireRemovesOnlyPastDeadlineRequests) {
  PriorityRequestQueue q;
  q.push(req(1, Priority::Batch, 0, 100));       // expires at t=100
  q.push(req(2, Priority::Batch, 0, 0));         // no deadline
  q.push(req(3, Priority::Interactive, 0, 50));  // expires at t=50
  q.push(req(4, Priority::Background, 0, 500));

  auto expired = q.expire(100);
  std::vector<RequestId> ids;
  for (const auto& r : expired) ids.push_back(r.id);
  // (priority, FIFO) order: interactive 3 before batch 1.
  EXPECT_EQ(ids, (std::vector<RequestId>{3, 1}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.expire(100).empty());  // idempotent at the same instant
}

TEST(PriorityRequestQueue, DrainReturnsEverythingInPriorityOrder) {
  PriorityRequestQueue q;
  q.push(req(30, Priority::Background));
  q.push(req(10, Priority::Interactive));
  q.push(req(20, Priority::Batch));
  auto all = q.drain();
  std::vector<RequestId> ids;
  for (const auto& r : all) ids.push_back(r.id);
  EXPECT_EQ(ids, (std::vector<RequestId>{10, 20, 30}));
  EXPECT_TRUE(q.empty());
}

TEST(PriorityRequestQueue, OldestEnqueueTracksFifoHead) {
  PriorityRequestQueue q;
  EXPECT_EQ(q.oldest_enqueue_ns(Priority::Batch), 0u);
  q.push(req(1, Priority::Batch, 1000));
  q.push(req(2, Priority::Batch, 2000));
  EXPECT_EQ(q.oldest_enqueue_ns(Priority::Batch), 1000u);
  EXPECT_EQ(q.oldest_enqueue_ns(Priority::Interactive), 0u);
  (void)q.pop();
  EXPECT_EQ(q.oldest_enqueue_ns(Priority::Batch), 2000u);
  EXPECT_EQ(q.size(Priority::Batch), 1u);
}

}  // namespace
}  // namespace ohd::service
