#include "cudasim/exec.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cudasim/device_buffer.hpp"

namespace ohd::cudasim {
namespace {

TEST(Exec, KernelRunsEveryThreadOnce) {
  SimContext ctx;
  std::vector<int> hits(1024, 0);
  ctx.launch("touch", {4, 256, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { ++hits[blk.global_tid(t)]; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Exec, PhasesActAsBarriers) {
  // Phase 2 reads what phase 1 wrote across the whole block.
  SimContext ctx;
  bool ok = true;
  ctx.launch("barrier", {1, 128, 4 * 128}, [&](BlockCtx& blk) {
    auto* shared = blk.shared_as<std::uint32_t>();
    blk.for_each_thread([&](ThreadCtx& t) { shared[t.tid()] = t.tid(); });
    blk.for_each_thread([&](ThreadCtx& t) {
      const std::uint32_t peer = (t.tid() + 64) % 128;
      if (shared[peer] != peer) ok = false;
    });
  });
  EXPECT_TRUE(ok);
}

TEST(Exec, WarpAndLaneIdentifiers) {
  SimContext ctx;
  ctx.launch("ids", {1, 64, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) {
      EXPECT_EQ(t.warp(), t.tid() / 32);
      EXPECT_EQ(t.lane(), t.tid() % 32);
    });
  });
}

TEST(Exec, CoalescedWarpAccessProducesFewTransactions) {
  SimContext ctx;
  const std::uint64_t base = ctx.reserve_address(1 << 20);
  // 32 lanes write 4-byte values to consecutive addresses: 128 bytes = 4
  // 32-byte transactions per warp.
  const auto r = ctx.launch("coalesced", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread(
        [&](ThreadCtx& t) { t.global_write(base + t.tid() * 4, 4); });
  });
  EXPECT_EQ(r.stats.global_transactions, 4u);
}

TEST(Exec, ScatteredWarpAccessProducesOneTransactionPerLane) {
  SimContext ctx;
  const std::uint64_t base = ctx.reserve_address(1 << 20);
  const auto r = ctx.launch("scattered", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread(
        [&](ThreadCtx& t) { t.global_write(base + t.tid() * 4096, 4); });
  });
  EXPECT_EQ(r.stats.global_transactions, 32u);
}

TEST(Exec, WarpPhaseSectorReuseHitsL1) {
  SimContext ctx;
  const std::uint64_t base = ctx.reserve_address(1 << 20);
  // Slot 0 scatters to 32 sectors; slot 1 re-reads a sector lane 0 already
  // touched — an L1 hit, so no new bandwidth transaction is counted.
  const auto r = ctx.launch("slots", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) {
      t.global_read(base + t.tid() * 4096, 4);  // slot 0: 32 txns
      t.global_read(base, 4);                   // slot 1: warm sector
    });
  });
  EXPECT_EQ(r.stats.global_transactions, 32u);
}

TEST(Exec, SectorReuseDoesNotCarryAcrossPhases) {
  SimContext ctx;
  const std::uint64_t base = ctx.reserve_address(1 << 20);
  const auto r = ctx.launch("twophase", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { t.global_read(base, 4); });
    blk.for_each_thread([&](ThreadCtx& t) { t.global_read(base, 4); });
  });
  EXPECT_EQ(r.stats.global_transactions, 2u);
}

TEST(Exec, DivergenceChargesWarpAtMaxLaneCost) {
  SimContext ctx;
  // Lane 0 charges 1000 cycles, the rest 1: the warp costs 1000.
  const auto r = ctx.launch("diverge", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread(
        [&](ThreadCtx& t) { t.charge(t.tid() == 0 ? 1000 : 1); });
  });
  EXPECT_EQ(r.stats.critical_block_cycles_max, 1000u);
}

TEST(Exec, BarrierChargesBlockAtMaxWarpCost) {
  SimContext ctx;
  // Warp 1 (tids 32-63) is slow: the whole block pays for it.
  const auto r = ctx.launch("slowwarp", {1, 64, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread(
        [&](ThreadCtx& t) { t.charge(t.warp() == 1 ? 500 : 10); });
  });
  EXPECT_EQ(r.stats.critical_block_cycles_max, 500u);
  // Both warps occupy their schedulers for those 500 cycles.
  EXPECT_EQ(r.stats.scheduled_warp_cycles, 1000u);
}

TEST(Exec, TimelineAccumulatesLaunches) {
  SimContext ctx;
  ctx.launch("a", {1, 32, 0}, [](BlockCtx&) {});
  ctx.launch("a", {1, 32, 0}, [](BlockCtx&) {});
  ctx.launch("b", {1, 32, 0}, [](BlockCtx&) {});
  EXPECT_EQ(ctx.timeline().entries().size(), 3u);
  EXPECT_NEAR(ctx.timeline().total_with_prefix("a"),
              2 * ctx.spec().launch_overhead_s, 1e-9);
}

TEST(Exec, LaunchUntimedDoesNotTouchTimeline) {
  SimContext ctx;
  ctx.launch_untimed("x", {1, 32, 0}, [](BlockCtx&) {});
  EXPECT_TRUE(ctx.timeline().entries().empty());
}

TEST(Exec, DistinctBuffersGetDisjointAddressRanges) {
  SimContext ctx;
  DeviceBuffer<std::uint32_t> a(ctx, 100);
  DeviceBuffer<std::uint32_t> b(ctx, 100);
  EXPECT_GE(b.addr_of(0), a.addr_of(99) + 4);
}

TEST(Exec, HostToDeviceChargesTimeline) {
  SimContext ctx;
  const double t = ctx.host_to_device(1'000'000);
  EXPECT_GT(t, 0.0);
  EXPECT_NEAR(ctx.timeline().total(), t, 1e-12);
}

}  // namespace
}  // namespace ohd::cudasim
