#include "cudasim/device_spec.hpp"

#include <gtest/gtest.h>

namespace ohd::cudasim {
namespace {

TEST(DeviceSpec, V100Parameters) {
  const DeviceSpec s = DeviceSpec::v100();
  EXPECT_EQ(s.num_sms, 80u);
  EXPECT_EQ(s.warp_size, 32u);
  EXPECT_GT(s.global_bw_gbps, 0.0);
  EXPECT_GT(s.clock_hz(), 1e9);
}

TEST(DeviceSpec, A100IsBiggerThanV100) {
  const DeviceSpec v = DeviceSpec::v100();
  const DeviceSpec a = DeviceSpec::a100();
  EXPECT_GT(a.num_sms, v.num_sms);
  EXPECT_GT(a.global_bw_gbps, v.global_bw_gbps);
  EXPECT_GT(a.shmem_per_sm_bytes, v.shmem_per_sm_bytes);
}

}  // namespace
}  // namespace ohd::cudasim
