#include "cudasim/algorithms.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace ohd::cudasim {
namespace {

TEST(PrefixSum, ExclusiveWithSentinel) {
  SimContext ctx;
  const std::vector<std::uint32_t> in = {3, 1, 4, 1, 5};
  const auto out = device_exclusive_prefix_sum(ctx, in);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 4u);
  EXPECT_EQ(out[3], 8u);
  EXPECT_EQ(out[4], 9u);
  EXPECT_EQ(out[5], 14u);
}

TEST(PrefixSum, EmptyInput) {
  SimContext ctx;
  const auto out = device_exclusive_prefix_sum(ctx, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(PrefixSum, ChargesTimeline) {
  SimContext ctx;
  const std::vector<std::uint32_t> in(10000, 1);
  device_exclusive_prefix_sum(ctx, in, "scan");
  EXPECT_GT(ctx.timeline().total_with_prefix("scan"), 0.0);
}

TEST(Histogram, CountsKeys) {
  SimContext ctx;
  const std::vector<std::uint32_t> keys = {0, 1, 1, 2, 2, 2};
  const auto bins = device_histogram(ctx, keys, 4);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[1], 2u);
  EXPECT_EQ(bins[2], 3u);
  EXPECT_EQ(bins[3], 0u);
}

TEST(RadixSort, SortsPairsStably) {
  SimContext ctx;
  std::vector<std::uint32_t> keys = {3, 1, 3, 0, 1};
  std::vector<std::uint32_t> values = {10, 11, 12, 13, 14};
  device_radix_sort_pairs(ctx, keys, values);
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{0, 1, 1, 3, 3}));
  EXPECT_EQ(values, (std::vector<std::uint32_t>{13, 11, 14, 10, 12}));
}

TEST(RadixSort, FewerKeyBitsCostLess) {
  SimContext ctx1, ctx2;
  std::vector<std::uint32_t> k1(50000), v1(50000);
  std::iota(k1.rbegin(), k1.rend(), 0);
  std::iota(v1.begin(), v1.end(), 0);
  auto k2 = k1;
  auto v2 = v1;
  device_radix_sort_pairs(ctx1, k1, v1, 8);
  device_radix_sort_pairs(ctx2, k2, v2, 32);
  EXPECT_LT(ctx1.timeline().total(), ctx2.timeline().total());
  EXPECT_EQ(k1, k2);
}

}  // namespace
}  // namespace ohd::cudasim
