#include "cudasim/perf_model.hpp"

#include <gtest/gtest.h>

namespace ohd::cudasim {
namespace {

DeviceSpec spec() { return DeviceSpec::v100(); }

TEST(Occupancy, LimitedByThreads) {
  const Occupancy occ = occupancy_for(spec(), 1024, 0);
  EXPECT_EQ(occ.blocks_per_sm, 2u);  // 2048 / 1024
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, LimitedBySharedMemory) {
  const DeviceSpec s = spec();
  const Occupancy occ = occupancy_for(s, 128, s.shmem_per_sm_bytes / 4);
  EXPECT_EQ(occ.blocks_per_sm, 4u);
  EXPECT_LT(occ.fraction, 1.0);
}

TEST(Occupancy, LimitedByMaxBlocks) {
  const Occupancy occ = occupancy_for(spec(), 32, 0);
  EXPECT_EQ(occ.blocks_per_sm, spec().max_blocks_per_sm);
}

TEST(Occupancy, MoreSharedMemoryNeverRaisesOccupancy) {
  std::uint32_t prev = ~0u;
  for (std::uint32_t shmem = 1024; shmem <= 32768; shmem += 1024) {
    const Occupancy occ = occupancy_for(spec(), 128, shmem);
    EXPECT_LE(occ.blocks_per_sm, prev);
    prev = occ.blocks_per_sm;
  }
}

KernelStats make_stats(std::uint64_t warp_cycles, std::uint64_t txns,
                       std::uint32_t grid, std::uint32_t block,
                       std::uint32_t shmem = 0) {
  KernelStats st;
  st.scheduled_warp_cycles = warp_cycles;
  st.critical_block_cycles_max = warp_cycles / std::max(1u, grid);
  st.global_transactions = txns;
  st.grid_dim = grid;
  st.block_dim = block;
  st.shmem_per_block = shmem;
  return st;
}

TEST(PerfModel, MoreWorkTakesLonger) {
  const PerfModel m(spec());
  const auto t1 = m.time_kernel(make_stats(1'000'000, 0, 100, 256));
  const auto t2 = m.time_kernel(make_stats(10'000'000, 0, 100, 256));
  EXPECT_GT(t2.seconds, t1.seconds);
}

TEST(PerfModel, MemoryBoundKernelScalesWithTransactions) {
  const PerfModel m(spec());
  const auto t1 = m.time_kernel(make_stats(1000, 10'000'000, 1000, 256));
  const auto t2 = m.time_kernel(make_stats(1000, 40'000'000, 1000, 256));
  EXPECT_GT(t2.memory_seconds, 3.5 * t1.memory_seconds);
}

TEST(PerfModel, LowOccupancySlowsKernel) {
  const PerfModel m(spec());
  // Same work, but the second launch's shared memory allows only one block
  // (4 warps) per SM.
  const auto fast = m.time_kernel(make_stats(50'000'000, 1'000'000, 2000, 128, 0));
  const auto slow = m.time_kernel(
      make_stats(50'000'000, 1'000'000, 2000, 128, spec().shmem_per_sm_bytes));
  EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(PerfModel, LaunchOverheadFloorsEmptyKernel) {
  const PerfModel m(spec());
  KernelStats st;
  st.grid_dim = 0;
  EXPECT_DOUBLE_EQ(m.time_kernel(st).seconds, spec().launch_overhead_s);
}

TEST(PerfModel, CriticalPathBoundsSmallGrids) {
  const PerfModel m(spec());
  // One monster block cannot be faster than its own cycle count.
  KernelStats st = make_stats(10'000'000, 0, 1, 128);
  st.critical_block_cycles_max = 10'000'000;
  const auto t = m.time_kernel(st);
  EXPECT_GE(t.compute_seconds, 10e6 / spec().clock_hz() * 0.9);
}

TEST(PerfModel, HostToDeviceUsesPcieBandwidth) {
  const PerfModel m(spec());
  const double t = m.host_to_device_seconds(12'000'000'000ull);
  EXPECT_NEAR(t, 1.0, 0.01);  // 12 GB at 12 GB/s
}

TEST(KernelStats, MergeAccumulates) {
  KernelStats a = make_stats(100, 5, 1, 32);
  KernelStats b = make_stats(200, 7, 1, 32);
  a.merge(b);
  EXPECT_EQ(a.scheduled_warp_cycles, 300u);
  EXPECT_EQ(a.global_transactions, 12u);
}

}  // namespace
}  // namespace ohd::cudasim
