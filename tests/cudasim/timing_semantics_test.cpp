// Semantics of the timing decomposition the tuner's stream-overlap model
// depends on, and of the latency-hiding curve.
#include <gtest/gtest.h>

#include "cudasim/exec.hpp"

namespace ohd::cudasim {
namespace {

TEST(TimingSemantics, SecondsIsMaxOfSaturatedAndCriticalPlusOverhead) {
  SimContext ctx;
  const auto r = ctx.launch("k", {64, 128, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { t.charge(5000); });
  });
  EXPECT_NEAR(r.timing.seconds,
              std::max(r.timing.saturated_seconds, r.timing.critical_seconds) +
                  ctx.spec().launch_overhead_s,
              1e-12);
}

TEST(TimingSemantics, SingleBlockIsCriticalPathBound) {
  SimContext ctx;
  const auto r = ctx.launch("k", {1, 128, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { t.charge(1'000'000); });
  });
  EXPECT_GT(r.timing.critical_seconds, r.timing.saturated_seconds);
}

TEST(TimingSemantics, ManyBlocksAreThroughputBound) {
  SimContext ctx;
  const auto r = ctx.launch("k", {4096, 128, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { t.charge(1000); });
  });
  EXPECT_GT(r.timing.saturated_seconds, r.timing.critical_seconds);
}

TEST(TimingSemantics, SharedMemoryPressureSlowsThroughputBoundKernel) {
  auto run = [](std::uint32_t shmem) {
    SimContext ctx;
    return ctx
        .launch("k", {4096, 128, shmem},
                [&](BlockCtx& blk) {
                  blk.for_each_thread([&](ThreadCtx& t) { t.charge(2000); });
                })
        .timing.seconds;
  };
  const double light = run(2048);
  const double heavy = run(16 * 1024);  // 4 blocks/SM => 16 warps => derated
  EXPECT_GT(heavy, light * 1.1);
}

TEST(TimingSemantics, HideCurveHasFloor) {
  // Even a configuration with one resident warp per SM makes progress at
  // the documented floor rate, not asymptotically zero.
  const DeviceSpec spec = DeviceSpec::v100();
  PerfModel model(spec);
  KernelStats st;
  st.grid_dim = 4096;
  st.block_dim = 32;
  st.shmem_per_block = spec.shmem_per_sm_bytes;  // 1 block (1 warp) per SM
  st.scheduled_warp_cycles = 1'000'000'000;
  const auto slow = model.time_kernel(st);
  st.shmem_per_block = 0;
  const auto fast = model.time_kernel(st);
  EXPECT_LT(slow.seconds, fast.seconds / spec.latency_hide_base * 1.05);
}

TEST(TimingSemantics, DivergentIterationCountsCostTheWarpItsSlowestLane) {
  // One lane runs 100x longer: the whole warp (and block) pays.
  SimContext ctx;
  const auto uniform = ctx.launch("u", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) { t.charge(100); });
  });
  const auto skewed = ctx.launch("s", {1, 32, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread(
        [&](ThreadCtx& t) { t.charge(t.tid() == 7 ? 10000 : 100); });
  });
  EXPECT_NEAR(static_cast<double>(skewed.stats.critical_block_cycles_max),
              10000.0, 1.0);
  EXPECT_NEAR(static_cast<double>(uniform.stats.critical_block_cycles_max),
              100.0, 1.0);
}

TEST(TimingSemantics, A100OutrunsV100OnTheSameKernel) {
  auto run = [](DeviceSpec spec) {
    SimContext ctx(spec);
    return ctx
        .launch("k", {2048, 128, 0},
                [&](BlockCtx& blk) {
                  blk.for_each_thread([&](ThreadCtx& t) {
                    t.charge(3000);
                    t.global_read(t.tid() * 64, 4);
                  });
                })
        .timing.seconds;
  };
  EXPECT_LT(run(DeviceSpec::a100()), run(DeviceSpec::v100()));
}

}  // namespace
}  // namespace ohd::cudasim
