#include "sz/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ohd::sz {
namespace {

TEST(Metrics, ZeroErrorForIdenticalData) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const auto s = compute_error_stats(a, a);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 0.0);
  EXPECT_EQ(s.psnr_db, 999.0);
}

TEST(Metrics, MaxAbsError) {
  const std::vector<float> a = {0.0f, 1.0f, 2.0f};
  const std::vector<float> b = {0.5f, 1.0f, 1.0f};
  const auto s = compute_error_stats(a, b);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 1.0);
  EXPECT_DOUBLE_EQ(s.value_range, 2.0);
}

TEST(Metrics, PsnrDecreasesWithError) {
  const std::vector<float> a = {0.0f, 1.0f, 2.0f, 3.0f};
  std::vector<float> small = a, big = a;
  small[0] += 0.01f;
  big[0] += 0.5f;
  EXPECT_GT(compute_error_stats(a, small).psnr_db,
            compute_error_stats(a, big).psnr_db);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(compute_error_stats(a, b), std::invalid_argument);
}

TEST(Metrics, CompressionRatio) {
  EXPECT_DOUBLE_EQ(compression_ratio(100, 25), 4.0);
  EXPECT_DOUBLE_EQ(compression_ratio(100, 0), 0.0);
}

}  // namespace
}  // namespace ohd::sz
