#include "sz/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::sz {
namespace {

std::vector<float> spiky_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.01 * static_cast<double>(i)) +
                              (rng.uniform() < 0.02 ? 50.0 * rng.normal()
                                                    : 0.01 * rng.normal()));
  }
  return v;
}

CompressedBlob make_blob(std::uint64_t seed,
                         core::Method method = core::Method::GapArrayOptimized) {
  const auto data = spiky_field(50000, seed);
  CompressorConfig cfg;
  cfg.method = method;
  cfg.radius = 128;  // forces some outliers
  return compress(data, Dims::d1(data.size()), cfg);
}

TEST(BlobSerialization, RoundtripPreservesDecompression) {
  const auto data = spiky_field(50000, 1);
  CompressorConfig cfg;
  cfg.radius = 128;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  ASSERT_GT(blob.outliers.size(), 0u);

  const auto bytes = serialize_blob(blob);
  const auto parsed = deserialize_blob(bytes);
  EXPECT_EQ(parsed.dims.count(), blob.dims.count());
  EXPECT_EQ(parsed.radius, blob.radius);
  EXPECT_EQ(parsed.outliers.size(), blob.outliers.size());

  cudasim::SimContext c1, c2;
  const auto a = decompress(c1, blob);
  const auto b = decompress(c2, parsed);
  EXPECT_EQ(a.data, b.data);
}

TEST(BlobSerialization, SerializedSizeTracksAccounting) {
  const auto blob = make_blob(2);
  const auto bytes = serialize_blob(blob);
  // compressed_bytes() is the blob's size model; the real serialization must
  // agree within a small header margin.
  const double ratio = static_cast<double>(bytes.size()) /
                       static_cast<double>(blob.compressed_bytes());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(BlobSerializationFailure, TruncationThrows) {
  const auto bytes = serialize_blob(make_blob(3));
  for (std::size_t cut : {std::size_t{2}, bytes.size() / 3, bytes.size() - 1}) {
    std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(deserialize_blob(prefix), std::invalid_argument);
  }
}

TEST(BlobSerializationFailure, NonMonotonicOutliersRejected) {
  auto blob = make_blob(4);
  ASSERT_GE(blob.outliers.size(), 2u);
  std::swap(blob.outliers[0], blob.outliers[1]);
  const auto bytes = serialize_blob(blob);
  EXPECT_THROW(deserialize_blob(bytes), std::invalid_argument);
}

TEST(BlobSerializationFailure, OverflowingExtentsRejected) {
  const auto bytes = serialize_blob(make_blob(6));
  // Wire layout: magic (0..4), version u8 (4), rank u32 (5..9), then three
  // u64 extents at 9, 17, 25.
  auto crafted = bytes;
  crafted[24] = 0x80;  // extent[1] = 2^63 on a rank-1 blob (trailing must be 1)
  EXPECT_THROW(deserialize_blob(crafted), std::invalid_argument);
  crafted = bytes;
  crafted[5] = 3;      // rank 3 ...
  crafted[24] = 0x80;  // ... so extent[0] * extent[1] wraps 64 bits
  EXPECT_THROW(deserialize_blob(crafted), std::invalid_argument);
}

TEST(BlobSerializationFailure, DimsMismatchRejected) {
  auto blob = make_blob(5);
  blob.dims.extent[0] += 1;  // now inconsistent with the code count
  const auto bytes = serialize_blob(blob);
  EXPECT_THROW(deserialize_blob(bytes), std::invalid_argument);
}

TEST(BlobSerialization, SharedCodebookFrameRoundTrips) {
  const auto blob = make_blob(7);
  const auto slim = serialize_blob(blob, /*embed_codebook=*/false);
  const auto full = serialize_blob(blob);
  EXPECT_LT(slim.size(), full.size());

  EXPECT_THROW(deserialize_blob(slim), std::invalid_argument);
  const auto parsed = deserialize_blob(slim, &blob.encoded.codebook);
  EXPECT_EQ(serialize_blob(parsed), full);

  cudasim::SimContext c1, c2;
  const auto a = decompress(c1, blob);
  const auto b = decompress(c2, parsed);
  EXPECT_EQ(a.data, b.data);
}

}  // namespace
}  // namespace ohd::sz
