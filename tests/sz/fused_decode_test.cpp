// Fused decode→dequantize→reconstruct write path: float-for-float identical
// to the staged pipeline (decode to a quant-code vector, then
// lorenzo_reconstruct), across methods, ranks, outlier densities, and both
// decompress entry points.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sz/compressor.hpp"
#include "util/rng.hpp"

namespace ohd::sz {
namespace {

/// Smooth field with occasional jumps, so quantization produces a realistic
/// mix of short codes plus genuine outlier records.
std::vector<float> spiky_field(std::size_t n, std::uint64_t seed,
                               double spike_p = 0.002) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  float level = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < spike_p) {
      level += static_cast<float>(rng.normal() * 50.0);
    }
    v[i] = level + static_cast<float>(std::sin(0.01 * static_cast<double>(i)) +
                                      0.001 * rng.normal());
  }
  return v;
}

TEST(FusedDecodeWrite, MatchesStagedReconstructBitForBit) {
  const auto data = spiky_field(60000, 5);
  CompressorConfig cfg;
  cfg.rel_error_bound = 1e-5;  // tight enough that the spikes become outliers
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  ASSERT_FALSE(blob.outliers.empty());  // the corpus must exercise outliers

  core::DecoderConfig fused;
  ASSERT_TRUE(fused.use_fused_write);  // documented default
  core::DecoderConfig staged;
  staged.use_fused_write = false;

  cudasim::SimContext ctx_a, ctx_b;
  const auto a = decompress(ctx_a, blob, fused);
  const auto b = decompress(ctx_b, blob, staged);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << i;  // exact, not approximate
  }
  // The write path must not change the simulated timings.
  EXPECT_DOUBLE_EQ(a.total_seconds(), b.total_seconds());
}

TEST(FusedDecodeWrite, DecompressIntoMatchesDecompress) {
  const auto data = spiky_field(40000, 7);
  CompressorConfig cfg;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);

  cudasim::SimContext ctx_a, ctx_b;
  const auto whole = decompress(ctx_a, blob);
  std::vector<float> dest(data.size());
  const auto into = decompress_into(ctx_b, blob, dest);
  EXPECT_TRUE(into.data.empty());
  EXPECT_EQ(dest, whole.data);
  EXPECT_DOUBLE_EQ(into.total_seconds(), whole.total_seconds());
  EXPECT_DOUBLE_EQ(into.huffman_seconds, whole.huffman_seconds);

  std::vector<float> wrong_size(data.size() - 1);
  cudasim::SimContext ctx_c;
  EXPECT_THROW(decompress_into(ctx_c, blob, wrong_size),
               std::invalid_argument);
}

TEST(FusedDecodeWrite, HostFusedPathMatchesSimulatedDecode) {
  const auto data = spiky_field(50000, 9);
  for (const core::Method method :
       {core::Method::SelfSyncOptimized, core::Method::GapArrayOptimized,
        core::Method::CuszNaive}) {
    CompressorConfig cfg;
    cfg.method = method;
    const auto blob = compress(data, Dims::d1(data.size()), cfg);
    cudasim::SimContext ctx;
    const auto simulated = decompress(ctx, blob);
    std::vector<float> host(data.size());
    fused_decode_reconstruct(blob, host);
    EXPECT_EQ(host, simulated.data)
        << core::method_name(method) << " fused host decode diverged";
  }
}

TEST(FusedDecodeWrite, HigherRankBlobsUseTheStagedPathIdentically) {
  const auto data = spiky_field(128 * 96, 11);
  CompressorConfig cfg;
  const auto blob = compress(data, Dims::d2(128, 96), cfg);

  core::DecoderConfig fused;          // fused flag on, but rank 2 => staged
  core::DecoderConfig staged;
  staged.use_fused_write = false;
  cudasim::SimContext ctx_a, ctx_b;
  const auto a = decompress(ctx_a, blob, fused);
  const auto b = decompress(ctx_b, blob, staged);
  EXPECT_EQ(a.data, b.data);

  // decompress_into works for rank 2 too (via the staged copy)...
  std::vector<float> dest(data.size());
  cudasim::SimContext ctx_c;
  decompress_into(ctx_c, blob, dest);
  EXPECT_EQ(dest, a.data);
  // ...but the host-only fused sink is 1-D by contract.
  std::vector<float> host(data.size());
  EXPECT_THROW(fused_decode_reconstruct(blob, host), std::invalid_argument);
}

TEST(FusedDecodeWrite, AllOutlierChunkReconstructs) {
  // Pathological chunk: every element an outlier (pure noise at a tight
  // bound) — the sink must consume the records in index order.
  util::Xoshiro256 rng(13);
  std::vector<float> data(5000);
  for (auto& v : data) v = static_cast<float>(rng.normal() * 1e6);
  CompressorConfig cfg;
  cfg.rel_error_bound = 1e-9;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  ASSERT_GT(blob.outliers.size(), data.size() / 2);
  cudasim::SimContext ctx;
  const auto fused = decompress(ctx, blob);
  std::vector<float> host(data.size());
  fused_decode_reconstruct(blob, host);
  EXPECT_EQ(host, fused.data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - fused.data[i]),
              blob.abs_error_bound * (1 + 1e-6))
        << i;
  }
}

}  // namespace
}  // namespace ohd::sz
