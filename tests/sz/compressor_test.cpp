#include "sz/compressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::sz {
namespace {

std::vector<float> test_field(std::size_t n, std::uint64_t seed,
                              double noise = 0.002) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.001 * static_cast<double>(i)) +
                              noise * rng.normal());
  }
  return v;
}

TEST(Compressor, RoundtripWithinRelativeBound) {
  const auto data = test_field(100000, 1);
  CompressorConfig cfg;
  cfg.rel_error_bound = 1e-3;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);

  cudasim::SimContext ctx;
  const auto result = decompress(ctx, blob);
  ASSERT_EQ(result.data.size(), data.size());
  float lo = data[0], hi = data[0];
  for (float v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double abs_eb = cfg.rel_error_bound * (hi - lo);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - result.data[i]), abs_eb * (1 + 1e-6)) << i;
  }
}

TEST(Compressor, AllDecodableMethodsReconstructIdentically) {
  const auto data = test_field(80000, 2);
  std::vector<float> reference;
  for (core::Method m : {core::Method::CuszNaive,
                         core::Method::SelfSyncOriginal,
                         core::Method::SelfSyncOptimized,
                         core::Method::GapArrayOptimized}) {
    CompressorConfig cfg;
    cfg.method = m;
    const auto blob = compress(data, Dims::d1(data.size()), cfg);
    cudasim::SimContext ctx;
    const auto result = decompress(ctx, blob);
    if (reference.empty()) {
      reference = result.data;
    } else {
      EXPECT_EQ(result.data, reference) << core::method_name(m);
    }
  }
}

TEST(Compressor, EightBitMethodRefusesDecompression) {
  const auto data = test_field(10000, 3);
  CompressorConfig cfg;
  cfg.method = core::Method::GapArrayOriginal8Bit;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  cudasim::SimContext ctx;
  EXPECT_THROW(decompress(ctx, blob), std::invalid_argument);
}

TEST(Compressor, TighterBoundLowersRatio) {
  const auto data = test_field(100000, 4, 0.01);
  CompressorConfig loose, tight;
  loose.rel_error_bound = 1e-2;
  tight.rel_error_bound = 1e-4;
  const auto blob_l = compress(data, Dims::d1(data.size()), loose);
  const auto blob_t = compress(data, Dims::d1(data.size()), tight);
  EXPECT_GT(blob_l.ratio(), blob_t.ratio());
}

TEST(Compressor, TimelineCoversAllStages) {
  const auto data = test_field(60000, 5);
  CompressorConfig cfg;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  cudasim::SimContext ctx;
  const auto result = decompress(ctx, blob);
  EXPECT_GT(result.huffman_seconds, 0.0);
  EXPECT_GT(result.reverse_lorenzo_seconds, 0.0);
  EXPECT_EQ(result.h2d_seconds, 0.0);
}

TEST(Compressor, H2dTransferChargedWhenRequested) {
  const auto data = test_field(60000, 6);
  CompressorConfig cfg;
  const auto blob = compress(data, Dims::d1(data.size()), cfg);
  cudasim::SimContext ctx;
  const auto result = decompress(ctx, blob, {}, /*simulate_h2d=*/true);
  EXPECT_GT(result.h2d_seconds, 0.0);
  // Transfer time matches the compressed size over PCIe bandwidth.
  const double expected =
      ctx.model().host_to_device_seconds(blob.compressed_bytes());
  EXPECT_NEAR(result.h2d_seconds, expected, 1e-9);
}

TEST(Compressor, RatioAccountsForOutliers) {
  util::Xoshiro256 rng(7);
  std::vector<float> spiky(50000);
  for (auto& v : spiky) {
    v = static_cast<float>(rng.uniform() < 0.05 ? 100.0 * rng.normal()
                                                : 0.01 * rng.normal());
  }
  CompressorConfig cfg;
  cfg.radius = 64;
  const auto blob = compress(spiky, Dims::d1(spiky.size()), cfg);
  EXPECT_GT(blob.outliers.size(), 0u);
  EXPECT_GT(blob.compressed_bytes(), blob.encoded.compressed_bytes());
}

TEST(Compressor, RejectsNonPositiveBound) {
  const std::vector<float> data(10, 1.0f);
  CompressorConfig cfg;
  cfg.rel_error_bound = 0.0;
  EXPECT_THROW(compress(data, Dims::d1(10), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ohd::sz
