// Properties specific to cuSZ-style dual-quantization: exact integer
// prediction (no reconstruction-noise feedback), lattice idempotency, and
// boundary-plane behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sz/lorenzo.hpp"
#include "util/rng.hpp"

namespace ohd::sz {
namespace {

TEST(DualQuant, LinearRampQuantizesToConstantCodes) {
  // A 1-D linear ramp on the lattice has constant first differences, so
  // after the first element every code equals radius + slope.
  std::vector<float> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(0.01 * static_cast<double>(i));
  }
  const double eb = 1e-3;  // quantum 2e-3, slope = 5 quanta
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), eb);
  for (std::size_t i = 2; i < q.codes.size(); ++i) {
    ASSERT_EQ(q.codes[i], q.radius + 5) << i;
  }
}

TEST(DualQuant, BilinearFieldQuantizesToZeroResiduals2D) {
  // f(x,y) = a + bx + cy is reproduced exactly by the 2-D Lorenzo predictor
  // on the integer lattice: interior codes are exactly the zero-residual
  // code.
  const std::size_t nx = 64, ny = 48;
  std::vector<float> data(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      data[y * nx + x] = static_cast<float>(0.3 + 0.02 * x + 0.05 * y);
    }
  }
  const auto q = lorenzo_quantize(data, Dims::d2(nx, ny), 1e-3);
  std::size_t nonzero_interior = 0;
  for (std::size_t y = 1; y < ny; ++y) {
    for (std::size_t x = 1; x < nx; ++x) {
      nonzero_interior += (q.codes[y * nx + x] != q.radius);
    }
  }
  // Rounding of the lattice snap can perturb a few cells; the bulk is exact.
  EXPECT_LT(static_cast<double>(nonzero_interior) / (nx * ny), 0.02);
}

TEST(DualQuant, NoNoiseFeedbackOnConstantData) {
  const std::vector<float> data(5000, 0.731f);
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-4);
  for (std::size_t i = 1; i < q.codes.size(); ++i) {
    ASSERT_EQ(q.codes[i], q.radius);
  }
  // Only the very first element (predicted as 0, which is 3655 quanta off)
  // may be an outlier.
  EXPECT_LE(q.outliers.size(), 1u);
}

TEST(DualQuant, LatticeIdempotency) {
  // quantize(reconstruct(quantize(x))) == quantize(x) code-for-code.
  util::Xoshiro256 rng(3);
  std::vector<float> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(std::sin(0.003 * static_cast<double>(i)) +
                                 0.001 * rng.normal());
  }
  const double eb = 1e-3;
  const auto q1 = lorenzo_quantize(data, Dims::d1(data.size()), eb);
  const auto rec = lorenzo_reconstruct(q1);
  const auto q2 = lorenzo_quantize(rec, Dims::d1(rec.size()), eb);
  EXPECT_EQ(q1.codes, q2.codes);
}

TEST(DualQuant, FirstPlanePredictsFromLowerRankNeighbors) {
  // On the x=0 face of a 3-D field the predictor degrades gracefully (2-D /
  // 1-D / zero); the roundtrip must still hold the bound there.
  util::Xoshiro256 rng(5);
  const std::size_t n1 = 20;
  std::vector<float> data(n1 * n1 * n1);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const double eb = 0.02;
  const auto q = lorenzo_quantize(data, Dims::d3(n1, n1, n1), eb);
  const auto rec = lorenzo_reconstruct(q);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::abs(data[i] - rec[i]), eb * (1 + 1e-9)) << i;
  }
}

TEST(DualQuant, RadiusSweepTradesOutliersForCodes) {
  util::Xoshiro256 rng(7);
  std::vector<float> data(30000);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const double eb = 1e-3;
  std::size_t prev_outliers = static_cast<std::size_t>(-1);
  for (std::uint32_t radius : {16u, 64u, 256u, 1024u}) {
    const auto q = lorenzo_quantize(data, Dims::d1(data.size()), eb, radius);
    EXPECT_LT(q.outliers.size(), prev_outliers);
    prev_outliers = q.outliers.size();
    const auto rec = lorenzo_reconstruct(q);
    for (std::size_t i = 0; i < data.size(); i += 997) {
      ASSERT_LE(std::abs(data[i] - rec[i]), eb * (1 + 1e-9));
    }
  }
}

}  // namespace
}  // namespace ohd::sz
