#include "sz/lorenzo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ohd::sz {
namespace {

std::vector<float> smooth_1d(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.01 * static_cast<double>(i));
  }
  return v;
}

void expect_bounded(std::span<const float> a, std::span<const float> b,
                    double eb) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_LE(std::abs(static_cast<double>(a[i]) - b[i]), eb * (1 + 1e-9))
        << "at " << i;
  }
}

TEST(Lorenzo, Roundtrip1DWithinBound) {
  const auto data = smooth_1d(10000);
  const double eb = 1e-4;
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), eb);
  const auto rec = lorenzo_reconstruct(q);
  expect_bounded(data, rec, eb);
}

TEST(Lorenzo, Roundtrip2DWithinBound) {
  util::Xoshiro256 rng(1);
  const std::size_t nx = 120, ny = 90;
  std::vector<float> data(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      data[y * nx + x] = static_cast<float>(
          std::sin(0.05 * x) * std::cos(0.07 * y) + 0.01 * rng.normal());
    }
  }
  const double eb = 1e-3;
  const auto q = lorenzo_quantize(data, Dims::d2(nx, ny), eb);
  expect_bounded(data, lorenzo_reconstruct(q), eb);
}

TEST(Lorenzo, Roundtrip3DWithinBound) {
  util::Xoshiro256 rng(2);
  const std::size_t n1 = 24;
  std::vector<float> data(n1 * n1 * n1);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const double eb = 0.05;
  const auto q = lorenzo_quantize(data, Dims::d3(n1, n1, n1), eb);
  expect_bounded(data, lorenzo_reconstruct(q), eb);
}

TEST(Lorenzo, SmoothDataConcentratesCodes) {
  // sin(0.01*i) steps by at most ~0.01 per sample; at quantum 2e-3 the
  // first-order prediction errors stay within a few quanta of zero.
  const auto data = smooth_1d(10000);
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-3);
  std::size_t center = 0;
  for (auto c : q.codes) {
    center += (c >= q.radius - 6 && c <= q.radius + 6);
  }
  EXPECT_GT(static_cast<double>(center) / q.codes.size(), 0.95);
  EXPECT_EQ(q.outliers.size(), 0u);
}

TEST(Lorenzo, NoisyDataProducesOutliers) {
  util::Xoshiro256 rng(3);
  std::vector<float> data(10000);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  // Tiny bound relative to the data's variation forces radius overflows.
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-4, 16);
  EXPECT_GT(q.outliers.size(), 0u);
  expect_bounded(data, lorenzo_reconstruct(q), 1e-4);
}

TEST(Lorenzo, OutliersAreReconstructedExactly) {
  util::Xoshiro256 rng(4);
  std::vector<float> data(1000);
  for (auto& v : data) v = static_cast<float>(100.0 * rng.normal());
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-6, 4);
  const auto rec = lorenzo_reconstruct(q);
  for (const Outlier& o : q.outliers) {
    EXPECT_EQ(rec[o.index], o.value);
  }
}

TEST(Lorenzo, CodesStayWithinAlphabet) {
  util::Xoshiro256 rng(5);
  std::vector<float> data(20000);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  const auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-2, 512);
  for (auto c : q.codes) EXPECT_LT(c, q.alphabet_size());
}

TEST(Lorenzo, RejectsBadArguments) {
  const std::vector<float> data(10, 0.0f);
  EXPECT_THROW(lorenzo_quantize(data, Dims::d1(11), 1e-3),
               std::invalid_argument);
  EXPECT_THROW(lorenzo_quantize(data, Dims::d1(10), 0.0),
               std::invalid_argument);
  EXPECT_THROW(lorenzo_quantize(data, Dims::d1(10), 1e-3, 1),
               std::invalid_argument);
}

TEST(Lorenzo, ReconstructDetectsMissingOutliers) {
  util::Xoshiro256 rng(6);
  std::vector<float> data(1000);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  auto q = lorenzo_quantize(data, Dims::d1(data.size()), 1e-4, 8);
  ASSERT_GT(q.outliers.size(), 0u);
  const auto outliers = std::move(q.outliers);
  q.outliers.clear();
  EXPECT_THROW(lorenzo_reconstruct(q), std::invalid_argument);
  (void)outliers;
}

TEST(Lorenzo, DecompressionIsIdempotent) {
  // Compressing the reconstructed field again yields the same codes
  // (the classic SZ idempotency property).
  const auto data = smooth_1d(5000);
  const double eb = 1e-3;
  const auto q1 = lorenzo_quantize(data, Dims::d1(data.size()), eb);
  const auto rec1 = lorenzo_reconstruct(q1);
  const auto q2 = lorenzo_quantize(rec1, Dims::d1(rec1.size()), eb);
  const auto rec2 = lorenzo_reconstruct(q2);
  for (std::size_t i = 0; i < rec1.size(); ++i) {
    ASSERT_NEAR(rec1[i], rec2[i], eb * 1e-3) << i;
  }
}

}  // namespace
}  // namespace ohd::sz
