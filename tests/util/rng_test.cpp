#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ohd::util {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 rng(5);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.bounded(8)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Xoshiro256, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace ohd::util
