#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/timer.hpp"

namespace ohd::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::array<double, 4> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeomeanOfKnownValues) {
  const std::array<double, 2> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Stats, MinMax) {
  const std::array<double, 3> v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(minimum(v), -1.0);
  EXPECT_DOUBLE_EQ(maximum(v), 3.0);
}

TEST(Throughput, GbPerSecond) {
  EXPECT_DOUBLE_EQ(throughput_gbps(1'000'000'000ull, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(throughput_gbps(500'000'000ull, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(throughput_gbps(1, 0.0), 0.0);
}

TEST(Throughput, Mebibytes) {
  EXPECT_DOUBLE_EQ(mebibytes(1024 * 1024), 1.0);
}

TEST(WallTimer, MeasuresNonNegativeTime) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.milliseconds(), 0.0);
}

}  // namespace
}  // namespace ohd::util
