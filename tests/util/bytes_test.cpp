#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ohd::util {
namespace {

TEST(Bytes, ScalarRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x12345678);
  w.u64(0x1122334455667788ull);
  w.f32(3.5f);
  w.f64(-2.25);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ArrayRoundtrip) {
  ByteWriter w;
  const std::vector<std::uint32_t> values = {1, 2, 3, 0xFFFFFFFF};
  w.array<std::uint32_t>(values);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.array<std::uint32_t>(), values);
}

TEST(Bytes, MagicMatch) {
  ByteWriter w;
  w.magic("OHDZ");
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_NO_THROW(r.expect_magic("OHDZ"));
}

TEST(Bytes, MagicMismatchThrows) {
  ByteWriter w;
  w.magic("XXXX");
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.expect_magic("OHDZ"), std::invalid_argument);
}

TEST(Bytes, TruncatedScalarThrows) {
  ByteWriter w;
  w.u16(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.u32(), std::invalid_argument);
}

TEST(Bytes, OversizedArrayLengthThrows) {
  ByteWriter w;
  w.u64(1ull << 40);  // claims a petabyte array
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.array<std::uint32_t>(), std::invalid_argument);
}

TEST(Bytes, EmptyArrayRoundtrip) {
  ByteWriter w;
  w.array<std::uint8_t>(std::vector<std::uint8_t>{});
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_TRUE(r.array<std::uint8_t>().empty());
}

}  // namespace
}  // namespace ohd::util
