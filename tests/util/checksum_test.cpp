#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ohd::util {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, DetectsEverySingleBitFlipInASmallFrame) {
  const auto frame = bytes_of("chunk frame payload 0123456789");
  const std::uint32_t good = crc32(frame);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = frame;
      copy[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(copy), good) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace ohd::util
