#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ohd::util {
namespace {

TEST(Table, RendersTitleAndColumns) {
  Table t("Demo");
  t.set_columns({"A", "B"});
  t.add_row("row1", {"1.0", "2.0"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("row1"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(Table, MissingCellsRenderDash) {
  Table t("T");
  t.set_columns({"A", "B", "C"});
  t.add_row("r", {"x"});
  const std::string s = t.render();
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t("T");
  t.set_columns({"A"});
  t.add_row("r1", {"123456"});
  t.add_row("r2", {"1"});
  const std::string s = t.render();
  // Both data rows end at the same column.
  const auto l1 = s.find("123456");
  const auto l2 = s.rfind(" 1\n");
  EXPECT_NE(l1, std::string::npos);
  EXPECT_NE(l2, std::string::npos);
}

TEST(FormatHelpers, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(FormatHelpers, Speedup) {
  EXPECT_EQ(fmt_speedup(3.64), "3.64x");
  EXPECT_EQ(fmt_speedup(0.09), "0.09x");
}

}  // namespace
}  // namespace ohd::util
