#!/usr/bin/env python3
"""Docs link checker: fail CI when markdown documentation drifts from the
tree.

Usage:
    check_docs_links.py [repo_root]          # default: script's parent dir

Walks every tracked markdown file (README.md, docs/*.md, and any other
*.md outside build/third-party directories) and verifies two things:

  1. Every RELATIVE markdown link target `[text](path)` resolves to an
     existing file or directory (resolved against the linking file's own
     directory; `#fragment` suffixes are stripped; http(s)/mailto links
     are skipped — CI must not depend on the network).
  2. Every backtick reference that LOOKS like a repo path (contains a
     `/` and ends in a known source/doc extension, e.g.
     `src/pipeline/archive_io.hpp` or `scripts/validate_trace.py`)
     resolves from the repo root. Prose backticks (`ByteSink`, command
     lines with flags, glob patterns) are ignored.

Generated artifacts (BENCH_*.json, TRACE_*.json, build/ paths) are
whitelisted by pattern: docs legitimately name files that exist only
after a bench run.

Exit 0 and a per-file summary when clean; exit 1 listing every broken
reference otherwise.
"""

import os
import re
import sys

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")

# Backtick path refs must end in one of these to be checked; anything else
# in backticks is prose/code, not a file claim.
PATH_EXTS = (
    ".hpp", ".cpp", ".h", ".c", ".md", ".py", ".json", ".txt", ".yml",
    ".yaml", ".cmake", ".sh",
)

# Outputs of bench/CI runs and other intentionally-absent paths.
GENERATED = re.compile(
    r"(^|/)(BENCH_|TRACE_|SNAPSHOT_|FAULT_)[\w.]*\.json$|^build/|^archive\.ohdc$"
)

SKIP_DIRS = {".git", "build", ".github"}


def tracked_markdown(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(path)

    for m in MD_LINK.finditer(text):
        target = m.group(1).split("#", 1)[0]
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        line = text.count("\n", 0, m.start()) + 1
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append((line, f"broken link: ({m.group(1)})"))

    for m in BACKTICK.finditer(text):
        ref = m.group(1).strip()
        # A path claim: sub-directory slash, a known extension, and no
        # shell/glob/prose characters.
        if "/" not in ref or not ref.endswith(PATH_EXTS):
            continue
        if re.search(r"[\s*?$<>|:{}\[\]()]|\.\.", ref):
            continue
        if ref.startswith("./"):
            ref = ref[2:]
        if GENERATED.search(ref):
            continue
        # Resolve repo-root first, then relative to the doc itself; accept
        # header-ish refs like `pipeline/archive_io.hpp` under src/.
        candidates = [
            os.path.join(root, ref),
            os.path.join(base, ref),
            os.path.join(root, "src", ref),
        ]
        if not any(os.path.exists(c) for c in candidates):
            line = text.count("\n", 0, m.start()) + 1
            errors.append((line, f"stale path reference: `{m.group(1)}`"))

    return errors


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    failed = False
    checked = 0
    for md in tracked_markdown(root):
        rel = os.path.relpath(md, root)
        errors = check_file(md, root)
        checked += 1
        if errors:
            failed = True
            for line, msg in errors:
                print(f"FAIL: {rel}:{line}: {msg}", file=sys.stderr)
        else:
            print(f"ok: {rel}")
    if checked == 0:
        print("FAIL: no markdown files found", file=sys.stderr)
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
