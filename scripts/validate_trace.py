#!/usr/bin/env python3
"""Structural validator for Chrome trace_event JSON produced by
obs::TraceRecorder::chrome_trace_json() (bench_stream_io --trace).

Usage:
    validate_trace.py <trace.json>

Checks (each failure is fatal):
  * the file is well-formed JSON with a "traceEvents" array;
  * every event is a complete-duration event (ph == "X") carrying the
    required keys: name, ph, ts, dur, pid, tid — with numeric non-negative
    ts/dur and integer pid/tid;
  * timestamps are monotone non-decreasing across the array (the exporter
    sorts by start time so chrome://tracing / Perfetto never reorders), and
    the earliest event starts at ts 0 (timestamps are relative);
  * span nesting is balanced: every event's "args.parent" either is -1
    (thread root) or names another event's "args.id" on the SAME tid whose
    [ts, ts+dur] interval encloses the child's — i.e. the per-thread open-span
    stack the recorder maintains really was a stack.

Exits 0 with a one-line summary (event count, thread count, max depth) on
success, 1 with a FAIL message otherwise.
"""

import json
import numbers
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")
# Floating-point slop for interval containment: ts/dur are microseconds with
# nanosecond (3-decimal) resolution, so half a nanosecond covers rounding.
EPS_US = 0.0005


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('top-level "traceEvents" array missing')
    if not events:
        fail("trace is empty — the instrumented run recorded no spans")

    by_id = {}
    prev_ts = None
    for i, ev in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail(f"event {i} is missing required key {key!r}: {ev}")
        if ev["ph"] != "X":
            fail(f"event {i} is not a complete-duration event: ph={ev['ph']!r}")
        for key in ("ts", "dur"):
            v = ev[key]
            if not isinstance(v, numbers.Real) or isinstance(v, bool) or v < 0:
                fail(f"event {i} has non-numeric or negative {key}: {v!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int) or isinstance(ev[key], bool):
                fail(f"event {i} has non-integer {key}: {ev[key]!r}")
        if prev_ts is not None and ev["ts"] < prev_ts:
            fail(
                f"timestamps are not monotone: event {i} starts at "
                f"{ev['ts']} after an event starting at {prev_ts}"
            )
        prev_ts = ev["ts"]
        args = ev.get("args", {})
        if "id" in args:
            if args["id"] in by_id:
                fail(f"duplicate span id {args['id']} at event {i}")
            by_id[args["id"]] = ev

    if events[0]["ts"] != 0:
        fail(f"earliest event starts at ts {events[0]['ts']}, expected 0")

    # Balanced nesting: each child's interval sits inside its parent's, on
    # the parent's thread. Depth is measured along the parent chain.
    max_depth = 0
    for ev in events:
        depth = 0
        cur = ev
        seen = set()
        while True:
            cur_args = cur.get("args", {})
            pid_ = cur_args.get("parent", -1)
            if pid_ == -1:
                break
            if pid_ not in by_id:
                fail(f"span {cur_args.get('id')} names unknown parent {pid_}")
            if pid_ in seen:
                fail(f"parent cycle at span id {pid_}")
            seen.add(pid_)
            parent = by_id[pid_]
            if parent["tid"] != cur["tid"]:
                fail(
                    f"span {cur_args.get('id')} (tid {cur['tid']}) has parent "
                    f"{pid_} on a different thread (tid {parent['tid']})"
                )
            if cur["ts"] + EPS_US < parent["ts"] or (
                cur["ts"] + cur["dur"]
                > parent["ts"] + parent["dur"] + EPS_US
            ):
                fail(
                    f"span {cur_args.get('id')} [{cur['ts']}, "
                    f"{cur['ts'] + cur['dur']}] escapes parent {pid_} "
                    f"[{parent['ts']}, {parent['ts'] + parent['dur']}] — "
                    f"the open-span stack was not balanced"
                )
            depth += 1
            cur = parent
        max_depth = max(max_depth, depth)

    threads = {ev["tid"] for ev in events}
    print(
        f"trace ok: {len(events)} events, {len(threads)} threads, "
        f"max nesting depth {max_depth}"
    )


if __name__ == "__main__":
    main()
