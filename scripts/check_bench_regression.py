#!/usr/bin/env python3
"""Bench regression guard: compare a freshly produced bench JSON against a
committed baseline and fail on regressions beyond the allowed tolerance.

Usage:
    check_bench_regression.py <current.json> <baseline.json>

The baseline file declares which metrics to guard and how:

    {
      "benchmark": "pipeline_throughput",         # must match current
      "tolerance": 0.25,                          # default allowed regression
      "metrics": {
        "sim_decompress_speedup_4_workers": {"value": 3.9,
                                             "higher_is_better": true},
        "lut_speedup": {"value": 2.0, "higher_is_better": true,
                        "tolerance": 0.5},        # per-metric override
        "all_identical": {"require": true}        # hard boolean gate
      }
    }

Only regressions fail: a current value better than baseline always passes.
Deterministic (simulated) metrics use the default 25% tolerance; wall-clock
ratios carry wider per-metric tolerances in the baseline because CI runner
generations differ.

Key-set drift rules:
  * ADDED metrics keys in the current output (fields the baseline does not
    guard yet — e.g. a bench gaining multi-symbol or fused-write numbers)
    never fail the guard; they are listed as "unguarded" so refreshing the
    baseline stays a conscious, visible step. The baseline's optional
    "params" list names corpus/config parameters (e.g. num_symbols, scale)
    to exclude from that listing — they are inputs, not metrics.
  * A guarded metric MISSING from the current output still fails: silently
    dropping a reported number is itself a regression.
  * A guarded metric whose current value is not numeric (null / string /
    nested object) fails with a clear message instead of a traceback.
"""

import json
import numbers
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    if current.get("benchmark") != baseline.get("benchmark"):
        fail(
            f"benchmark mismatch: current={current.get('benchmark')!r} "
            f"baseline={baseline.get('benchmark')!r}"
        )

    default_tol = float(baseline.get("tolerance", 0.25))
    failures = []
    print(f"{'metric':<45} {'baseline':>12} {'current':>12} {'limit':>12}")
    for name, spec in baseline["metrics"].items():
        if name not in current:
            failures.append(f"metric '{name}' missing from current output")
            continue
        got = current[name]
        if "require" in spec:
            ok = got == spec["require"]
            print(f"{name:<45} {spec['require']!s:>12} {got!s:>12} "
                  f"{'(exact)':>12} {'ok' if ok else 'REGRESSION'}")
            if not ok:
                failures.append(f"'{name}' must be {spec['require']}, got {got}")
            continue
        if not isinstance(got, numbers.Real) or isinstance(got, bool):
            failures.append(
                f"'{name}' is guarded as numeric but the current output "
                f"holds {got!r}")
            continue
        value = float(spec["value"])
        tol = float(spec.get("tolerance", default_tol))
        higher_is_better = bool(spec.get("higher_is_better", True))
        if higher_is_better:
            limit = value * (1.0 - tol)
            ok = float(got) >= limit
        else:
            limit = value * (1.0 + tol)
            ok = float(got) <= limit
        print(f"{name:<45} {value:>12.4f} {float(got):>12.4f} {limit:>12.4f} "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(
                f"'{name}' regressed: {got} vs baseline {value} "
                f"(allowed {'>=' if higher_is_better else '<='} {limit:.4f})"
            )

    # Metrics the bench now reports but the baseline does not guard yet.
    # Never a failure — new fields must be able to land before their baseline
    # refresh — but surfaced so the refresh is not forgotten. Corpus/config
    # parameters declared in the baseline's "params" list are inputs, not
    # metrics, and stay out of the listing.
    params = set(baseline.get("params", []))
    unguarded = sorted(
        name for name in current
        if name not in baseline["metrics"] and name != "benchmark"
        and name not in params
        and isinstance(current[name], numbers.Real))
    if unguarded:
        print(f"unguarded current metrics (add to baseline to guard): "
              f"{', '.join(unguarded)}")

    if failures:
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        fail(f"{len(failures)} bench metric(s) regressed beyond tolerance")
    print("bench regression guard: all metrics within tolerance")


if __name__ == "__main__":
    main()
