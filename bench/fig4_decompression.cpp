// Reproduces paper Figure 4: end-to-end cuSZ decompression throughput (GB/s
// relative to the FULL dataset size) with the baseline decoder and the two
// optimized decoders, assuming device-resident compressed data (the
// in-memory compression scenario).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Figure 4 reproduction: overall cuSZ decompression throughput "
              "(GB/s relative to the\nfull dataset; compressed data "
              "device-resident; rel eb 1e-3)\n\n");
  const auto scale = bench::bench_scale();
  const std::vector<core::Method> methods = {core::Method::CuszNaive,
                                             core::Method::SelfSyncOptimized,
                                             core::Method::GapArrayOptimized};

  util::Table table("Figure 4: decompression throughput (GB/s)");
  table.set_columns(
      {"baseline", "opt. self-sync", "speedup", "opt. gap-array", "speedup"});

  std::vector<double> ss_speedups, gap_speedups;
  for (auto& field : data::evaluation_suite(scale)) {
    std::vector<double> gbps;
    for (core::Method m : methods) {
      sz::CompressorConfig cfg;
      cfg.method = m;
      const auto blob = sz::compress(field.data, field.dims, cfg);
      cudasim::SimContext ctx;
      const auto r = sz::decompress(ctx, blob, bench::paper_decoder_config());
      gbps.push_back(bench::gbps(blob.original_bytes(), r.total_seconds()));
    }
    ss_speedups.push_back(gbps[1] / gbps[0]);
    gap_speedups.push_back(gbps[2] / gbps[0]);
    table.add_row(field.name,
                  {util::fmt(gbps[0], 1), util::fmt(gbps[1], 1),
                   util::fmt_speedup(gbps[1] / gbps[0]), util::fmt(gbps[2], 1),
                   util::fmt_speedup(gbps[2] / gbps[0])});
  }
  table.print();
  std::printf("\nAverage speedup: opt. self-sync %.2fx (paper 2.08x), "
              "opt. gap-array %.2fx (paper 2.43x)\n",
              util::mean(ss_speedups), util::mean(gap_speedups));
  return 0;
}
