// Ablation for §IV-A: the __all_sync early-exit in the intra-sequence
// synchronization kernel. The paper reports ~11% average speedup for the
// phase, concentrated on low-compression-ratio datasets where
// synchronization is a larger share of the decode.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/selfsync_decoder.hpp"
#include "huffman/encoder.hpp"
#include "util/stats.hpp"

using namespace ohd;

int main() {
  std::printf("Ablation (paper §IV-A): early-exit intra-sequence "
              "synchronization\n\n");
  const auto suite = bench::prepare_suite();
  std::printf("%-10s %18s %18s %9s\n", "dataset", "busy-wait (GB/s)",
              "early-exit (GB/s)", "speedup");
  std::vector<double> speedups;
  for (const auto& p : suite) {
    const auto cb = huffman::Codebook::from_data(p.codes, p.alphabet);
    const auto enc = huffman::encode_plain(p.codes, cb);
    cudasim::SimContext c1, c2;
    const auto original = core::selfsync_synchronize(c1, enc, cb, bench::paper_decoder_config(), false);
    const auto optimized = core::selfsync_synchronize(c2, enc, cb, bench::paper_decoder_config(), true);
    const double g_ori = bench::gbps(p.quant_bytes(), original.intra_seconds);
    const double g_opt = bench::gbps(p.quant_bytes(), optimized.intra_seconds);
    speedups.push_back(original.intra_seconds / optimized.intra_seconds);
    std::printf("%-10s %18.1f %18.1f %8.2fx\n", p.field.name.c_str(), g_ori,
                g_opt, speedups.back());
  }
  std::printf("\naverage intra-sync speedup: %.2fx (paper: ~1.11x average, "
              "up to 1.34x on low-ratio data)\n",
              util::mean(speedups));
  return 0;
}
