// Streaming archive IO driver: measures the ArchiveWriter/ArchiveReader
// sessions against the whole-buffer Container path on a mixed corpus.
//
// Two properties are benchmarked and gated:
//  * bounded residency — a streaming decompress must never materialize the
//    archive: the reader keeps only head+index+footer resident and at most
//    one in-flight frame per worker (ArchiveReader::peak_frame_bytes() is
//    the measured high-water mark, checked against workers * max frame);
//    the whole-buffer path, by construction, holds every archive byte.
//  * IO/compute overlap — the streamed decompress fetches frames inside the
//    decode tasks, so file IO overlaps ThreadPool decode; the staged path
//    reads the whole file, parses it, then decodes. The wall-clock ratio is
//    reported (near 1.0 when the page cache hides IO, higher on cold/slow
//    storage).
//  * fault-tolerance happy path — the default strict mode pays nothing for
//    the recovery machinery: the default writer output stays byte-identical
//    to the whole-buffer image (happy_path_archive_overhead_fraction == 0),
//    and even on an archive written with recovery preambles a strict decode
//    reads exactly the plain archive's worth of bytes
//    (strict_decode_read_amplification == 1.0, guarded at < 2%). The opt-in
//    preamble storage cost is reported alongside
//    (recovery_preamble_overhead_fraction; ~66 B per chunk, so a few percent
//    on this highly-compressible corpus and sub-percent on large frames).
//
// Floats are verified bit-identical between the streamed and whole-buffer
// decompress before anything is reported.
//
//  * telemetry overhead — the streamed decompress is rerun with the full
//    observability stack live (process-wide enable flag, registry mirroring,
//    installed trace recorder) and the min-of-reps wall is compared against
//    the plain run; the fraction is guarded (< 2% budget, wall-clock
//    tolerance on top) so instrumentation can never silently tax the hot
//    path.
//
//   ./bench_stream_io                    # table on stdout
//   ./bench_stream_io --json [path]      # also write BENCH_stream.json
//   ./bench_stream_io --trace [path]     # Chrome trace of a streamed decode
//   ./bench_stream_io --snapshot [path]  # obs::Snapshot JSON of that decode
//
// OHD_BENCH_SCALE scales the corpus (default 1.0 => ~1.0M elements; CI smoke
// uses 0.05). The scratch archive lands in /tmp.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/generic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

constexpr std::size_t kWorkers = 4;
constexpr int kReps = 3;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Integrates a symbol stream into a float field (same shaping as
/// bench_pipeline_throughput): Lorenzo increments follow the stream's
/// distribution, so the corpus spans the compressibility range.
std::vector<float> walk_field(const std::vector<std::uint16_t>& stream,
                              std::uint32_t alphabet) {
  std::vector<float> out(stream.size());
  const double mid = alphabet / 2.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    acc += (static_cast<double>(stream[i]) - mid) * 1e-3;
    out[i] = static_cast<float>(acc);
  }
  return out;
}

struct CorpusField {
  std::string name;
  std::vector<float> data;
  sz::Dims dims;
  sz::CompressorConfig config;
  bool adaptive = false;
};

std::vector<CorpusField> make_corpus(double scale) {
  const auto n1 = static_cast<std::size_t>(262144 * scale);
  const std::size_t planes2d = std::max<std::size_t>(8, n1 / 256);

  std::vector<CorpusField> corpus;
  auto add = [&corpus](std::string name, std::vector<std::uint16_t> stream,
                       std::uint32_t alphabet, sz::Dims dims, core::Method m,
                       double rel_eb, bool adaptive) {
    CorpusField f;
    f.name = std::move(name);
    f.data = walk_field(stream, alphabet);
    f.dims = dims;
    f.config.method = m;
    f.config.rel_error_bound = rel_eb;
    f.adaptive = adaptive;
    corpus.push_back(std::move(f));
  };

  add("uniform", data::uniform_stream(n1, 64, 201), 64, sz::Dims::d1(n1),
      core::Method::SelfSyncOptimized, 1e-3, false);
  add("zipf", data::zipf_stream(n1, 512, 1.1, 202), 512, sz::Dims::d1(n1),
      core::Method::GapArrayOptimized, 1e-4, true);
  add("geometric", data::geometric_stream(256 * planes2d, 512, 0.15, 203),
      512, sz::Dims::d2(256, planes2d), core::Method::GapArrayOptimized,
      1e-3, true);
  add("markov", data::markov_stream(n1, 256, 0.005, 204), 256,
      sz::Dims::d1(n1), core::Method::CuszNaive, 5e-3, false);
  return corpus;
}

bool floats_identical(const pipeline::BatchDecompressResult& a,
                      const pipeline::BatchDecompressResult& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i].decode.data != b.fields[i].decode.data) return false;
  }
  return true;
}

int run(bool emit_json, const char* json_path, const char* trace_path,
        const char* snapshot_path) {
  const double scale = bench_scale();
  const auto corpus = make_corpus(scale);
  std::uint64_t corpus_bytes = 0;
  std::vector<pipeline::FieldSpec> specs;
  for (const auto& f : corpus) {
    corpus_bytes += f.data.size() * 4;
    pipeline::FieldSpec spec;
    spec.name = f.name;
    spec.data = f.data;
    spec.dims = f.dims;
    spec.config = f.config;
    spec.chunk_elems = std::max<std::size_t>(512, f.data.size() / 32);
    spec.plan.auto_method = f.adaptive;
    spec.plan.shared_codebook = f.adaptive;
    specs.push_back(spec);
  }
  std::printf("corpus: %zu fields, %.2f MB (scale %.3g), %zu workers\n",
              corpus.size(), static_cast<double>(corpus_bytes) / 1e6, scale,
              kWorkers);

  pipeline::ThreadPool pool(kWorkers);
  const pipeline::BatchScheduler sched(pool);
  const std::string path = "/tmp/ohd_stream_bench.bin";

  // Whole-buffer write: compress into a resident Container, then one
  // serialize() image (every archive byte lives in memory twice on the way
  // to the sink).
  util::WallTimer whole_write_timer;
  const pipeline::Container archive = sched.compress(specs);
  const auto whole_bytes = archive.serialize();
  const double whole_write_wall = whole_write_timer.seconds();

  // Streaming write: frames hit the file as their futures complete; writer
  // state is just the index.
  util::WallTimer stream_write_timer;
  std::uint64_t stream_archive_bytes = 0;
  {
    pipeline::FileSink sink(path);
    pipeline::ArchiveWriter writer(sink);
    sched.compress_to(writer, specs);
    stream_archive_bytes = writer.finish();
  }
  const double stream_write_wall = stream_write_timer.seconds();
  if (stream_archive_bytes != whole_bytes.size()) {
    std::fprintf(stderr,
                 "FAIL: streamed archive (%llu B) != whole-buffer archive "
                 "(%zu B)\n",
                 static_cast<unsigned long long>(stream_archive_bytes),
                 whole_bytes.size());
    return 1;
  }

  // Reference floats from the whole-buffer path.
  const pipeline::BatchDecompressResult reference = sched.decompress(archive);

  // Staged decode: read the whole file, parse the image, then decompress —
  // IO, parse, and compute serialized behind full archive residency.
  double staged_wall = 1e300;
  pipeline::BatchDecompressResult staged;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer t;
    std::vector<std::uint8_t> bytes;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      if (!f) {
        std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
        return 1;
      }
      bytes.resize(stream_archive_bytes);
      const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
      if (got != bytes.size()) {
        std::fprintf(stderr, "short read of %s\n", path.c_str());
        return 1;
      }
    }
    const pipeline::Container parsed = pipeline::Container::deserialize(bytes);
    staged = sched.decompress(parsed);
    staged_wall = std::min(staged_wall, t.seconds());
  }

  // Streamed decode: footer-first open, frames fetched inside the decode
  // tasks — IO overlaps decode, residency stays bounded.
  const pipeline::FileSource source(path);
  const pipeline::ArchiveReader reader(source);
  double stream_wall = 1e300;
  pipeline::BatchDecompressResult streamed;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer t;
    streamed = sched.decompress(reader);
    stream_wall = std::min(stream_wall, t.seconds());
  }

  // Telemetry overhead: the same streamed decompress with the full
  // observability stack live — process-wide flag on, every registry mirror
  // taken, a trace recorder collecting spans. Both sides are min-of-reps on
  // a warm page cache so the fraction isolates instrumentation cost.
  constexpr int kOverheadReps = 5;
  double plain_wall = stream_wall;
  for (int rep = kReps; rep < kOverheadReps; ++rep) {
    util::WallTimer t;
    streamed = sched.decompress(reader);
    plain_wall = std::min(plain_wall, t.seconds());
  }
  obs::TraceRecorder recorder;
  pipeline::BatchDecompressResult traced;
  double telemetry_wall = 1e300;
  std::string snapshot_json;
  std::size_t trace_spans = 0;
  {
    const obs::ScopedTelemetry scope(&recorder);
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      recorder.clear();
      obs::registry().reset();
      util::WallTimer t;
      traced = sched.decompress(reader);
      telemetry_wall = std::min(telemetry_wall, t.seconds());
    }
    // Snapshot/trace come from the last rep (registry reset per rep, so the
    // report describes exactly one streamed decompress).
    snapshot_json = obs::registry().snapshot().to_json(4);
    trace_spans = recorder.spans().size();
  }
  const double telemetry_overhead = telemetry_wall / plain_wall - 1.0;

  // Fault-tolerance happy path: the same corpus written once more with
  // recovery preambles (WriterOptions::recovery_preambles). Two properties
  // are gated so the opt-in stays effectively free when nothing fails:
  //  * archive growth stays under the 2% budget, and
  //  * a strict decode never touches a preamble byte — index entries address
  //    the frame past its preamble, so read traffic over the preambled
  //    archive equals the plain archive size exactly (amplification 1.0,
  //    deterministic).
  pipeline::MemorySink pre_sink;
  {
    pipeline::ArchiveWriter pre_writer(pre_sink, {.recovery_preambles = true});
    sched.compress_to(pre_writer, specs);
    pre_writer.finish();
  }
  const double preamble_overhead =
      (static_cast<double>(pre_sink.bytes().size()) -
       static_cast<double>(stream_archive_bytes)) /
      static_cast<double>(stream_archive_bytes);
  const pipeline::MemorySource pre_mem(pre_sink.bytes());
  const pipeline::TrackingSource pre_tracked(pre_mem);
  const pipeline::ArchiveReader pre_reader(pre_tracked);
  const pipeline::BatchDecompressResult preambled =
      sched.decompress(pre_reader);
  const double read_amplification =
      static_cast<double>(pre_tracked.bytes_read()) /
      static_cast<double>(stream_archive_bytes);

  const bool identical = floats_identical(streamed, reference) &&
                         floats_identical(staged, reference) &&
                         floats_identical(preambled, reference) &&
                         floats_identical(traced, reference);
  const std::uint64_t peak_buffered =
      reader.resident_bytes() + reader.peak_frame_bytes();
  const std::uint64_t budget =
      reader.resident_bytes() + kWorkers * reader.max_frame_bytes();
  const bool bounded = reader.peak_frame_bytes() > 0 &&
                       reader.peak_frame_bytes() <=
                           kWorkers * reader.max_frame_bytes();
  const double peak_fraction =
      static_cast<double>(peak_buffered) /
      static_cast<double>(stream_archive_bytes);
  const double worst_case_fraction =
      static_cast<double>(budget) / static_cast<double>(stream_archive_bytes);
  const double overlap_speedup = staged_wall / stream_wall;

  std::printf("archive: %llu B (%.2fx over raw)\n",
              static_cast<unsigned long long>(stream_archive_bytes),
              static_cast<double>(corpus_bytes) /
                  static_cast<double>(stream_archive_bytes));
  std::printf("write: whole-buffer %.1f ms, streamed %.1f ms\n",
              whole_write_wall * 1e3, stream_write_wall * 1e3);
  std::printf(
      "decode: staged %.1f ms (peak residency %llu B = whole archive), "
      "streamed %.1f ms (peak residency %llu B = %.1f%% of the archive; "
      "budget %llu B) => overlap speedup %.2fx\n",
      staged_wall * 1e3, static_cast<unsigned long long>(stream_archive_bytes),
      stream_wall * 1e3, static_cast<unsigned long long>(peak_buffered),
      100.0 * peak_fraction, static_cast<unsigned long long>(budget),
      overlap_speedup);
  std::printf(
      "telemetry: plain %.1f ms, instrumented %.1f ms => overhead %+.2f%% "
      "(%zu trace spans)\n",
      plain_wall * 1e3, telemetry_wall * 1e3, 100.0 * telemetry_overhead,
      trace_spans);
  std::printf(
      "recovery preambles: +%llu B (%.2f%% overhead), strict decode read "
      "amplification %.4fx\n",
      static_cast<unsigned long long>(pre_sink.bytes().size() -
                                      stream_archive_bytes),
      100.0 * preamble_overhead, read_amplification);
  std::printf("floats identical across paths: %s; residency bounded: %s\n",
              identical ? "yes" : "NO", bounded ? "yes" : "NO");
  std::remove(path.c_str());
  if (!identical) {
    std::fprintf(stderr, "FAIL: streamed decompress diverged\n");
    return 1;
  }
  if (!bounded) {
    std::fprintf(stderr,
                 "FAIL: streaming decompress exceeded its residency budget\n");
    return 1;
  }

  if (trace_path != nullptr) {
    std::FILE* f = std::fopen(trace_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", trace_path);
      return 1;
    }
    const std::string chrome = recorder.chrome_trace_json();
    std::fwrite(chrome.data(), 1, chrome.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu spans)\n", trace_path, trace_spans);
  }
  if (snapshot_path != nullptr) {
    std::FILE* f = std::fopen(snapshot_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", snapshot_path);
      return 1;
    }
    std::fwrite(snapshot_json.data(), 1, snapshot_json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", snapshot_path);
  }
  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"stream_io\",\n"
        "  \"scale\": %.4f,\n"
        "  \"workers\": %zu,\n"
        "  \"corpus_fields\": %zu,\n"
        "  \"corpus_bytes\": %llu,\n"
        "  \"archive_bytes\": %llu,\n"
        "  \"resident_index_bytes\": %llu,\n"
        "  \"max_frame_bytes\": %llu,\n"
        "  \"peak_buffered_bytes\": %llu,\n"
        "  \"peak_buffered_fraction\": %.6f,\n"
        "  \"worst_case_peak_fraction\": %.6f,\n"
        "  \"round_trip_identical\": %s,\n"
        "  \"bounded_residency\": %s,\n"
        "  \"whole_buffer_write_wall_s\": %.6f,\n"
        "  \"stream_write_wall_s\": %.6f,\n"
        "  \"staged_decode_wall_s\": %.6f,\n"
        "  \"stream_decode_wall_s\": %.6f,\n"
        "  \"stream_decode_telemetry_wall_s\": %.6f,\n"
        "  \"telemetry_overhead_fraction\": %.6f,\n"
        "  \"telemetry\": {\n"
        "    \"trace_spans\": %zu,\n"
        "    \"snapshot\": %s\n"
        "  },\n"
        "  \"io_overlap_speedup\": %.4f,\n"
        "  \"happy_path_archive_overhead_fraction\": %.6f,\n"
        "  \"preambled_archive_bytes\": %llu,\n"
        "  \"recovery_preamble_overhead_fraction\": %.6f,\n"
        "  \"strict_decode_read_amplification\": %.6f\n"
        "}\n",
        scale, kWorkers, corpus.size(),
        static_cast<unsigned long long>(corpus_bytes),
        static_cast<unsigned long long>(stream_archive_bytes),
        static_cast<unsigned long long>(reader.resident_bytes()),
        static_cast<unsigned long long>(reader.max_frame_bytes()),
        static_cast<unsigned long long>(peak_buffered), peak_fraction,
        worst_case_fraction, identical ? "true" : "false",
        bounded ? "true" : "false", whole_write_wall, stream_write_wall,
        staged_wall, stream_wall, telemetry_wall, telemetry_overhead,
        trace_spans, snapshot_json.c_str(), overlap_speedup,
        (static_cast<double>(stream_archive_bytes) -
         static_cast<double>(whole_bytes.size())) /
            static_cast<double>(whole_bytes.size()),
        static_cast<unsigned long long>(pre_sink.bytes().size()),
        preamble_overhead, read_amplification);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_stream.json";
  const char* trace_path = nullptr;
  const char* snapshot_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "TRACE_stream.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      snapshot_path = "SNAPSHOT_stream.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') snapshot_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json [path]] [--trace [path]] "
                   "[--snapshot [path]]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(emit_json, json_path, trace_path, snapshot_path);
}
