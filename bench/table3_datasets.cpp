// Reproduces paper Table III: the evaluation-dataset inventory — here the
// synthetic stand-ins, with their dimensions, sizes, and the quantization
// behaviour that drives every other experiment (outlier fraction and
// quantization-code compression ratio at rel eb 1e-3).
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Table III reproduction: evaluation datasets (synthetic "
              "stand-ins for the SDRBench fields)\n\n");
  util::Table table("Table III: datasets");
  table.set_columns({"domain", "dims", "MiB", "quant CR", "outliers"});

  const char* domains[] = {"cosmology",       "molecular dyn.",
                           "climate",         "cosmology",
                           "weather",         "quantum MC",
                           "petroleum expl.", "quantum chem."};
  int d = 0;
  for (auto& field : data::evaluation_suite(bench::bench_scale())) {
    char dims[64];
    if (field.dims.rank == 1) {
      std::snprintf(dims, sizeof(dims), "%zu", field.dims.extent[0]);
    } else if (field.dims.rank == 2) {
      std::snprintf(dims, sizeof(dims), "%zux%zu", field.dims.extent[1],
                    field.dims.extent[0]);
    } else {
      std::snprintf(dims, sizeof(dims), "%zux%zux%zu", field.dims.extent[2],
                    field.dims.extent[1], field.dims.extent[0]);
    }
    float lo = field.data[0], hi = field.data[0];
    for (float v : field.data) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const auto q =
        sz::lorenzo_quantize(field.data, field.dims, 1e-3 * (hi - lo), 512);
    const auto enc = core::encode_for_method(core::Method::CuszNaive, q.codes,
                                             q.alphabet_size());
    const double cr = static_cast<double>(q.codes.size() * 2) /
                      static_cast<double>(enc.compressed_bytes());
    table.add_row(field.name,
                  {domains[d++], dims,
                   util::fmt(util::mebibytes(field.bytes()), 1),
                   util::fmt(cr, 2),
                   util::fmt(100.0 * q.outlier_fraction(), 2) + "%"});
  }
  table.print();
  std::printf("\nPaper reference quant-code ratios (Table IV baseline row): "
              "HACC 3.20, EXAALT 2.40, CESM 9.06,\nNyx 15.64, Hurricane "
              "9.78, QMCPack 2.46, RTM 8.41, GAMESS 12.10.\n");
  return 0;
}
