// Loopback wire-protocol soak driver: multi-client mixed traffic through
// net::ServiceServer / net::ServiceClient over TCP loopback, with every
// response checked against the in-process CompressionService path.
//
// Gated properties (all deterministic booleans in BENCH_net.json):
//  * wire bit-identity — for every client and round, the archive produced
//    over the wire is byte-identical to submitting the SAME job with the
//    SAME session options directly to the owning service, and the wire
//    decompress/chunk/range responses are float-identical to the direct
//    submissions against the same archive image.
//  * zero lost responses — every wire request a driver submits settles
//    exactly once with a verified response; the per-client accounting
//    (requests_sent == responses_received, errors_received == 0) and the
//    server's accounting (frames_out covers every response) agree.
//  * reconnect convergence — a client whose server is shut down and
//    replaced (same Unix-socket path) observes ConnectionLost, reconnects
//    inside compress_retrying's backoff loop, and completes with a
//    bit-identical archive; exactly the expected reconnect count.
//
// Wall-clock metric (guarded with a wide tolerance): sustained wire
// round-trip throughput across all clients.
//
//   ./bench_net_soak                 # table on stdout
//   ./bench_net_soak --json [path]   # also write BENCH_net.json
//
// OHD_BENCH_SCALE scales the per-client field size (default 1.0 => 12288
// elements per client; CI smoke uses 0.05).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

constexpr std::size_t kClients = 6;
constexpr std::size_t kRounds = 6;          // mixed wire rounds per client
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kDispatchers = 3;
constexpr std::size_t kChunkElems = 2048;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::vector<float> client_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 0.02 * rng.normal();
    v[i] = static_cast<float>(
        std::sin(0.004 * static_cast<double>(i)) + acc * 0.1);
  }
  return v;
}

service::CompressJob make_job(std::size_t elems, std::uint64_t seed) {
  service::CompressJob job;
  job.fields.push_back(
      {"soak", client_field(elems, seed), sz::Dims::d1(elems)});
  return job;
}

bool identical_floats(const std::vector<float>& a,
                      const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Wire submit with bounded-impatience retry on ServiceBusy: the same
/// backpressure discipline the in-process soak uses, but the busy signal
/// arrives as an error frame settled into the submission's future.
template <typename SubmitFn>
auto wire_retrying(SubmitFn&& submit, std::atomic<std::uint64_t>& busy_retries)
    -> decltype(submit().get()) {
  for (;;) {
    try {
      return submit().get();
    } catch (const service::ServiceOverloaded& e) {
      busy_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          std::max<std::uint64_t>(e.retry_after_ns(), 200'000)));
    } catch (const service::ServiceBusy&) {
      busy_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

/// Direct (in-process) submit with the same busy retry.
template <typename SubmitFn>
auto direct_retrying(SubmitFn&& submit,
                     std::atomic<std::uint64_t>& busy_retries)
    -> decltype(submit().get()) {
  for (;;) {
    try {
      return submit().get();
    } catch (const service::ServiceBusy&) {
      busy_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

struct SoakOutcome {
  std::uint64_t submitted = 0;    // wire requests the drivers sent
  std::uint64_t responses = 0;    // wire futures that yielded a value
  std::uint64_t verified = 0;     // responses bit-identical to direct path
  std::uint64_t busy_retries = 0;
  double wall_s = 0.0;
  bool accounting_ok = false;     // client counters reconcile, zero errors
};

/// The loopback soak: kClients client threads, each owning one
/// ServiceClient over TCP loopback, each round compressing a seeded field
/// over the wire, re-uploading the archive, and reading it back via
/// decompress + chunk + range — every response compared against the direct
/// in-process submission with identical options.
SoakOutcome run_soak(service::CompressionService& svc,
                     const net::Endpoint& endpoint, std::size_t elems) {
  SoakOutcome out;
  std::atomic<std::uint64_t> submitted{0}, responses{0}, verified{0},
      busy_retries{0};
  std::atomic<bool> accounting_ok{true};

  util::WallTimer wall;
  std::vector<std::thread> drivers;
  drivers.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      try {
      net::ClientConfig cfg;
      cfg.endpoint = endpoint;
      cfg.chunk_elems = kChunkElems;
      net::ServiceClient client(cfg);

      // The in-process reference session mirrors the wire session's
      // negotiated options exactly (the OpenClient body fields overlay the
      // server's default ClientOptions, which this bench leaves at their
      // defaults on both sides).
      service::ClientOptions ref_opts;
      ref_opts.rel_error_bound = cfg.rel_error_bound;
      ref_opts.radius = cfg.radius;
      ref_opts.chunk_elems = cfg.chunk_elems;
      const service::ClientId ref = svc.open_client(ref_opts);

      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::uint64_t seed = 0x9e3779b9u * (c + 1) + round;
        const service::CompressJob job = make_job(elems, seed);

        // Compress over the wire vs directly: archives must be
        // byte-identical.
        submitted.fetch_add(1, std::memory_order_relaxed);
        const service::CompressResult wire_res = wire_retrying(
            [&] { return client.submit_compress(job); }, busy_retries);
        responses.fetch_add(1, std::memory_order_relaxed);
        const service::CompressResult direct_res = direct_retrying(
            [&] { return svc.submit_compress(ref, job); }, busy_retries);
        if (wire_res.archive == direct_res.archive &&
            !wire_res.archive.empty()) {
          verified.fetch_add(1, std::memory_order_relaxed);
        }

        // Read the archive back through both paths.
        const service::ArchiveHandle wire_h =
            client.open_archive(wire_res.archive);
        const service::ArchiveHandle direct_h = svc.open_archive(
            ref,
            std::make_shared<pipeline::OwningMemorySource>(wire_res.archive));

        submitted.fetch_add(1, std::memory_order_relaxed);
        const net::DecompressBody wire_dec = wire_retrying(
            [&] { return client.submit_decompress(wire_h); }, busy_retries);
        responses.fetch_add(1, std::memory_order_relaxed);
        const pipeline::BatchDecompressResult direct_dec = direct_retrying(
            [&] { return svc.submit_decompress(ref, direct_h); },
            busy_retries);
        if (wire_dec.fields.size() == direct_dec.fields.size() &&
            wire_dec.fields.size() == 1 &&
            wire_dec.fields[0].name == direct_dec.fields[0].name &&
            identical_floats(wire_dec.fields[0].data,
                             direct_dec.fields[0].decode.data)) {
          verified.fetch_add(1, std::memory_order_relaxed);
        }

        // elems >= kChunkElems + 512 guarantees at least two chunks.
        submitted.fetch_add(1, std::memory_order_relaxed);
        const std::vector<float> wire_chunk = wire_retrying(
            [&] { return client.submit_chunk(wire_h, 0, round % 2); },
            busy_retries);
        responses.fetch_add(1, std::memory_order_relaxed);
        const std::vector<float> direct_chunk = direct_retrying(
            [&] { return svc.submit_chunk(ref, direct_h, 0, round % 2); },
            busy_retries);
        if (identical_floats(wire_chunk, direct_chunk)) {
          verified.fetch_add(1, std::memory_order_relaxed);
        }

        const std::uint64_t lo = (seed % 7) * 97 % elems;
        const std::uint64_t hi =
            std::min<std::uint64_t>(elems, lo + kChunkElems + 33);
        submitted.fetch_add(1, std::memory_order_relaxed);
        const std::vector<float> wire_range = wire_retrying(
            [&] { return client.submit_range(wire_h, 0, lo, hi); },
            busy_retries);
        responses.fetch_add(1, std::memory_order_relaxed);
        const std::vector<float> direct_range = direct_retrying(
            [&] { return svc.submit_range(ref, direct_h, 0, lo, hi); },
            busy_retries);
        if (identical_floats(wire_range, direct_range)) {
          verified.fetch_add(1, std::memory_order_relaxed);
        }

        client.close_archive(wire_h);
        svc.close_archive(ref, direct_h);
      }

      svc.close_client(ref);
      const net::ClientStats cs = client.stats();
      // Each round: compress + open_archive + decompress + chunk + range +
      // close_archive = 6 wire requests, plus the OpenClient handshake.
      if (cs.errors_received != 0 ||
          cs.responses_received != cs.requests_sent) {
        accounting_ok.store(false, std::memory_order_relaxed);
      }
      } catch (const std::exception& e) {
        // A driver failure fails the zero-lost gate instead of aborting.
        std::fprintf(stderr, "driver %zu failed: %s\n", c, e.what());
        accounting_ok.store(false, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : drivers) t.join();

  out.wall_s = wall.seconds();
  out.submitted = submitted.load();
  out.responses = responses.load();
  out.verified = verified.load();
  out.busy_retries = busy_retries.load();
  out.accounting_ok = accounting_ok.load();
  return out;
}

struct ReconnectOutcome {
  bool observed_disconnect = false;  // the dead server was actually noticed
  bool converged = false;            // compress_retrying succeeded after
  bool bit_identical = false;        // ...with the same archive bytes
  std::uint64_t reconnects = 0;
};

/// Kill-and-replace convergence: connect over a Unix socket, shut the
/// server down, verify the client notices, bring up a NEW server on the
/// same path, and require compress_retrying to reconnect and produce the
/// same archive the first server did.
ReconnectOutcome run_reconnect(std::size_t elems) {
  ReconnectOutcome out;
  const std::string path =
      "/tmp/ohd_net_soak_" + std::to_string(::getpid()) + ".sock";

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 2;
  service::CompressionService svc(cfg);

  net::ServerConfig scfg;
  scfg.listen.push_back(net::Endpoint::unix_socket(path));
  auto server = std::make_unique<net::ServiceServer>(svc, scfg);

  net::ClientConfig ccfg;
  ccfg.endpoint = net::Endpoint::unix_socket(path);
  ccfg.retry.max_attempts = 8;
  ccfg.retry.base_delay = std::chrono::microseconds(500);
  net::ServiceClient client(ccfg);

  const service::CompressJob job = make_job(elems, 0xc0ffee);
  const service::CompressResult before = client.compress_retrying(job);

  server->shutdown();
  server.reset();

  // The demux reader observes EOF and tears the connection down; poll until
  // the client agrees it is disconnected.
  for (int i = 0; i < 2000 && client.connected(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  out.observed_disconnect = !client.connected();

  server = std::make_unique<net::ServiceServer>(svc, scfg);
  try {
    const service::CompressResult after = client.compress_retrying(job);
    out.converged = true;
    out.bit_identical =
        !after.archive.empty() && after.archive == before.archive;
  } catch (...) {
    out.converged = false;
  }
  out.reconnects = client.stats().reconnects;

  client.disconnect();
  server->shutdown();
  svc.shutdown();
  ::unlink(path.c_str());
  return out;
}

int run(bool emit_json, const char* json_path) {
  const double scale = bench_scale();
  const auto elems = std::max<std::size_t>(
      kChunkElems + 512, static_cast<std::size_t>(12288 * scale));
  std::printf(
      "net soak: %zu clients x %zu rounds, %zu elems/client (scale %.3g), "
      "service %zu workers + %zu dispatchers, TCP loopback\n",
      kClients, kRounds, elems, scale, kWorkers, kDispatchers);

  SoakOutcome soak;
  std::uint64_t srv_frames_in = 0, srv_frames_out = 0;
  std::uint64_t srv_bytes_in = 0, srv_bytes_out = 0;
  std::uint64_t srv_error_frames = 0, srv_decode_rejects = 0;
  std::uint64_t net_error_frames_stat = 0;
  {
    const obs::ScopedTelemetry telemetry;
    service::ServiceConfig cfg;
    cfg.workers = kWorkers;
    cfg.dispatchers = kDispatchers;
    cfg.max_queue_depth = 256;
    cfg.max_inflight_per_client = 8;
    service::CompressionService svc(cfg);
    net::ServiceServer server(svc);  // one ephemeral TCP loopback listener

    soak = run_soak(svc, server.endpoints().front(), elems);

    server.shutdown();
    const net::ServerStats ss = server.stats();
    srv_frames_in = ss.frames_in;
    srv_frames_out = ss.frames_out;
    srv_bytes_in = ss.bytes_in;
    srv_bytes_out = ss.bytes_out;
    srv_error_frames = ss.error_frames;
    srv_decode_rejects = ss.decode_rejects;
    net_error_frames_stat = svc.stats().net_error_frames;
    svc.shutdown();
  }

  // Hard gates.
  const std::uint64_t expected = kClients * kRounds * 4;  // checked submits
  const bool bit_identical =
      soak.verified == expected && soak.responses == expected;
  const bool zero_lost = soak.accounting_ok &&
                         soak.responses == soak.submitted &&
                         soak.submitted == expected &&
                         srv_decode_rejects == 0 &&
                         srv_error_frames == net_error_frames_stat;
  const double throughput =
      soak.wall_s > 0 ? static_cast<double>(soak.responses) / soak.wall_s : 0;

  const ReconnectOutcome rec =
      run_reconnect(std::max<std::size_t>(kChunkElems + 512, elems / 2));
  const bool reconnect_converged = rec.observed_disconnect && rec.converged &&
                                   rec.bit_identical && rec.reconnects == 1;

  std::printf(
      "wire: %llu submitted, %llu responses, %llu verified (+%llu busy "
      "retries) => bit-identical: %s, zero lost: %s\n",
      static_cast<unsigned long long>(soak.submitted),
      static_cast<unsigned long long>(soak.responses),
      static_cast<unsigned long long>(soak.verified),
      static_cast<unsigned long long>(soak.busy_retries),
      bit_identical ? "yes" : "NO", zero_lost ? "yes" : "NO");
  std::printf(
      "server: %llu/%llu frames in/out, %llu/%llu bytes in/out, %llu error "
      "frames (service stat %llu), %llu decode rejects\n",
      static_cast<unsigned long long>(srv_frames_in),
      static_cast<unsigned long long>(srv_frames_out),
      static_cast<unsigned long long>(srv_bytes_in),
      static_cast<unsigned long long>(srv_bytes_out),
      static_cast<unsigned long long>(srv_error_frames),
      static_cast<unsigned long long>(net_error_frames_stat),
      static_cast<unsigned long long>(srv_decode_rejects));
  std::printf(
      "reconnect: disconnect observed: %s, converged: %s, bit-identical: "
      "%s, reconnects: %llu => gate: %s\n",
      rec.observed_disconnect ? "yes" : "NO", rec.converged ? "yes" : "NO",
      rec.bit_identical ? "yes" : "NO",
      static_cast<unsigned long long>(rec.reconnects),
      reconnect_converged ? "yes" : "NO");
  std::printf("throughput: %.1f wire round trips/s over %.2f s\n", throughput,
              soak.wall_s);

  const bool all_ok = bit_identical && zero_lost && reconnect_converged;
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: net soak property violated\n");
  }

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"net\",\n"
        "  \"scale\": %.4f,\n"
        "  \"clients\": %zu,\n"
        "  \"rounds\": %zu,\n"
        "  \"elems_per_client\": %zu,\n"
        "  \"workers\": %zu,\n"
        "  \"dispatchers\": %zu,\n"
        "  \"requests_submitted\": %llu,\n"
        "  \"responses\": %llu,\n"
        "  \"responses_verified\": %llu,\n"
        "  \"busy_retries\": %llu,\n"
        "  \"server_frames_in\": %llu,\n"
        "  \"server_frames_out\": %llu,\n"
        "  \"server_bytes_in\": %llu,\n"
        "  \"server_bytes_out\": %llu,\n"
        "  \"server_error_frames\": %llu,\n"
        "  \"reconnects\": %llu,\n"
        "  \"soak_wall_s\": %.6f,\n"
        "  \"wire_bit_identical\": %s,\n"
        "  \"zero_lost\": %s,\n"
        "  \"reconnect_converged\": %s,\n"
        "  \"throughput_roundtrips_per_s\": %.2f\n"
        "}\n",
        scale, kClients, kRounds, elems, kWorkers, kDispatchers,
        static_cast<unsigned long long>(soak.submitted),
        static_cast<unsigned long long>(soak.responses),
        static_cast<unsigned long long>(soak.verified),
        static_cast<unsigned long long>(soak.busy_retries),
        static_cast<unsigned long long>(srv_frames_in),
        static_cast<unsigned long long>(srv_frames_out),
        static_cast<unsigned long long>(srv_bytes_in),
        static_cast<unsigned long long>(srv_bytes_out),
        static_cast<unsigned long long>(srv_error_frames),
        static_cast<unsigned long long>(rec.reconnects), soak.wall_s,
        bit_identical ? "true" : "false", zero_lost ? "true" : "false",
        reconnect_converged ? "true" : "false", throughput);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    }
  }
  return run(emit_json, json_path);
}
