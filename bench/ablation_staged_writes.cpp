// Ablation for §IV-B: direct scattered stores versus the Algorithm 1
// shared-memory staged decode+write, per dataset. The paper reports the
// optimized decode+write phase running 15.6x faster than the original
// self-sync decode+write on average, with the gap widening on high-ratio
// datasets.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/gap_decoder.hpp"
#include "huffman/encoder.hpp"
#include "util/stats.hpp"

using namespace ohd;

int main() {
  std::printf("Ablation (paper §IV-B): direct scatter vs shared-memory "
              "staged decode+write\n\n");
  const auto suite = bench::prepare_suite();
  std::printf("%-10s %8s %14s %14s %9s\n", "dataset", "CR",
              "direct (GB/s)", "staged (GB/s)", "speedup");
  std::vector<double> speedups;
  for (const auto& p : suite) {
    const auto cb = huffman::Codebook::from_data(p.codes, p.alphabet);
    const auto enc = huffman::encode_gap(p.codes, cb);
    const double cr = static_cast<double>(p.quant_bytes()) /
                      (enc.payload_bytes() + cb.serialized_bytes());

    cudasim::SimContext c1, c2;
    core::GapArrayOptions direct;
    direct.staged_writes = false;
    direct.tune_shared_memory = false;
    const double s_direct =
        core::decode_gap_array(c1, enc, cb, bench::paper_decoder_config(), direct).phases.decode_write_s;
    const double s_staged =
        core::decode_gap_array(c2, enc, cb, bench::paper_decoder_config(),
                               core::GapArrayOptions::optimized())
            .phases.decode_write_s;
    const double speedup = s_direct / s_staged;
    speedups.push_back(speedup);
    std::printf("%-10s %8.2f %14.1f %14.1f %8.2fx\n", p.field.name.c_str(), cr,
                bench::gbps(p.quant_bytes(), s_direct),
                bench::gbps(p.quant_bytes(), s_staged), speedup);
  }
  std::printf("\naverage decode+write speedup: %.2fx (paper: 15.6x vs the "
              "original self-sync phase);\nthe speedup must grow with the "
              "compression ratio.\n",
              util::mean(speedups));
  return 0;
}
