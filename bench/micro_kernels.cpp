// google-benchmark microbenchmarks of the substrate hot paths: these measure
// HOST wall time of the functional simulation (useful for keeping the
// simulator itself fast), not simulated GPU time.
#include <benchmark/benchmark.h>

#include <vector>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "cudasim/algorithms.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"
#include "util/rng.hpp"

namespace {

using namespace ohd;

std::vector<std::uint16_t> skewed_stream(std::size_t n) {
  util::Xoshiro256 rng(5);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < 1024 && rng.uniform() < 0.7) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

void BM_CodebookConstruction(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::Codebook::from_data(data, 1024));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodebookConstruction)->Arg(1 << 14)->Arg(1 << 17);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::encode_plain(data, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 14)->Arg(1 << 17);

void BM_SequentialDecode(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::decode_sequential(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SequentialDecode)->Arg(1 << 14)->Arg(1 << 17);

void BM_BitWriterThroughput(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tokens(1 << 16);
  for (auto& [v, l] : tokens) {
    l = static_cast<std::uint32_t>(1 + rng.bounded(24));
    v = static_cast<std::uint32_t>(rng.bounded(1u << l));
  }
  for (auto _ : state) {
    bitio::BitWriter w;
    for (const auto& [v, l] : tokens) w.put(v, l);
    benchmark::DoNotOptimize(w.finish());
  }
  state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_BitWriterThroughput);

void BM_DevicePrefixSum(benchmark::State& state) {
  std::vector<std::uint32_t> counts(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    cudasim::SimContext ctx;
    benchmark::DoNotOptimize(
        cudasim::device_exclusive_prefix_sum(ctx, counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DevicePrefixSum)->Arg(1 << 16);

void BM_DeviceRadixSort(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(state.range(0)));
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.bounded(10));
  std::vector<std::uint32_t> values(keys.size());
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    cudasim::SimContext ctx;
    cudasim::device_radix_sort_pairs(ctx, k, v, 8);
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeviceRadixSort)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
