// Microbenchmarks of the substrate hot paths: these measure HOST wall time
// of the functional simulation (useful for keeping the simulator itself
// fast), not simulated GPU time.
//
// Two modes:
//  * default — google-benchmark microbenchmarks (when built with gbench);
//  * --json [path] — the perf-trajectory probe: times flat-LUT decoding
//    against the legacy bit-by-bit path on a quant-like symbol stream and
//    writes machine-readable results (symbols/sec, speedup) to
//    BENCH_decode.json. Needs no benchmark library, so CI can always run it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "cudasim/algorithms.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/decode_table.hpp"
#include "huffman/encoder.hpp"
#include "util/rng.hpp"

#if defined(OHD_HAVE_GBENCH)
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace ohd;

/// Quant-like stream: values concentrate geometrically near zero, like
/// Lorenzo quantization codes near the radius (avg code length ~3 bits).
std::vector<std::uint16_t> skewed_stream(std::size_t n) {
  util::Xoshiro256 rng(5);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < 1024 && rng.uniform() < 0.7) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

/// Shared decode loop so the two timed arms differ only in the per-symbol
/// decode step.
template <typename DecodeStep>
std::vector<std::uint16_t> decode_all(const huffman::StreamEncoding& enc,
                                      DecodeStep&& step) {
  std::vector<std::uint16_t> out(enc.num_symbols);
  bitio::BitReader reader(enc.units, enc.total_bits);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const huffman::DecodedSymbol d = step(reader);
    if (!d.valid) throw std::runtime_error("decode desynced");
    out[i] = d.symbol;
  }
  return out;
}

std::vector<std::uint16_t> decode_all_bit_by_bit(
    const huffman::StreamEncoding& enc, const huffman::Codebook& cb) {
  return decode_all(enc, [&](bitio::BitReader& reader) {
    return huffman::decode_one(reader, cb);
  });
}

std::vector<std::uint16_t> decode_all_lut(const huffman::StreamEncoding& enc,
                                          const huffman::Codebook& cb) {
  const huffman::DecodeTable& table = cb.decode_table();
  return decode_all(enc, [&](bitio::BitReader& reader) {
    return huffman::decode_one_lut(reader, cb, table);
  });
}

/// Best-of-`reps` wall seconds of `fn()` (which must return the decoded
/// stream, checked against `expect`).
template <typename Fn>
double best_seconds(int reps, const std::vector<std::uint16_t>& expect,
                    Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::uint16_t> got = fn();
    const auto t1 = std::chrono::steady_clock::now();
    if (got != expect) throw std::runtime_error("decode mismatch");
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int run_json_mode(const char* out_path) {
  constexpr std::size_t kNumSymbols = 1 << 21;  // ~2M, quant-like
  constexpr int kReps = 7;
  const auto data = skewed_stream(kNumSymbols);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);

  // Warm-up (touches the stream + table once) and correctness cross-check.
  if (decode_all_lut(enc, cb) != decode_all_bit_by_bit(enc, cb)) {
    std::fprintf(stderr, "LUT / bit-by-bit decode mismatch\n");
    return 1;
  }

  const double legacy_s = best_seconds(kReps, data, [&] {
    return decode_all_bit_by_bit(enc, cb);
  });
  const double lut_s = best_seconds(kReps, data, [&] {
    return decode_all_lut(enc, cb);
  });
  const double legacy_sps = static_cast<double>(kNumSymbols) / legacy_s;
  const double lut_sps = static_cast<double>(kNumSymbols) / lut_s;
  const double speedup = legacy_s / lut_s;

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"huffman_decode\",\n"
               "  \"num_symbols\": %zu,\n"
               "  \"alphabet\": 1024,\n"
               "  \"lut_index_bits\": %u,\n"
               "  \"bit_by_bit_symbols_per_sec\": %.0f,\n"
               "  \"lut_symbols_per_sec\": %.0f,\n"
               "  \"lut_speedup\": %.3f\n"
               "}\n",
               kNumSymbols, cb.decode_table().index_bits(), legacy_sps,
               lut_sps, speedup);
  std::fclose(f);
  std::printf("wrote %s: bit-by-bit %.1f Msym/s, LUT %.1f Msym/s (%.2fx)\n",
              out_path, legacy_sps / 1e6, lut_sps / 1e6, speedup);
  return 0;
}

#if defined(OHD_HAVE_GBENCH)

void BM_CodebookConstruction(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::Codebook::from_data(data, 1024));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodebookConstruction)->Arg(1 << 14)->Arg(1 << 17);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::encode_plain(data, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecodeBitByBit(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_all_bit_by_bit(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeBitByBit)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecodeLut(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_all_lut(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeLut)->Arg(1 << 14)->Arg(1 << 17);

void BM_BitWriterThroughput(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tokens(1 << 16);
  for (auto& [v, l] : tokens) {
    l = static_cast<std::uint32_t>(1 + rng.bounded(24));
    v = static_cast<std::uint32_t>(rng.bounded(1u << l));
  }
  for (auto _ : state) {
    bitio::BitWriter w;
    for (const auto& [v, l] : tokens) w.put(v, l);
    benchmark::DoNotOptimize(w.finish());
  }
  state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_BitWriterThroughput);

void BM_DevicePrefixSum(benchmark::State& state) {
  std::vector<std::uint32_t> counts(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    cudasim::SimContext ctx;
    benchmark::DoNotOptimize(
        cudasim::device_exclusive_prefix_sum(ctx, counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DevicePrefixSum)->Arg(1 << 16);

void BM_DeviceRadixSort(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(state.range(0)));
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.bounded(10));
  std::vector<std::uint32_t> values(keys.size());
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    cudasim::SimContext ctx;
    cudasim::device_radix_sort_pairs(ctx, k, v, 8);
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeviceRadixSort)->Arg(1 << 14);

#endif  // OHD_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path = i + 1 < argc && argv[i + 1][0] != '-'
                             ? argv[i + 1]
                             : "BENCH_decode.json";
      return run_json_mode(path);
    }
  }
#if defined(OHD_HAVE_GBENCH)
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "built without google-benchmark; only --json [path] mode is "
               "available\n");
  return 1;
#endif
}
