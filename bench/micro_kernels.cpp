// Microbenchmarks of the substrate hot paths: these measure HOST wall time
// of the functional simulation (useful for keeping the simulator itself
// fast), not simulated GPU time.
//
// Three modes:
//  * default — google-benchmark microbenchmarks (when built with gbench);
//  * --json [path] — the perf-trajectory probe: times flat-LUT, multi-symbol
//    LUT, and fused decode→dequantize→reconstruct decoding against the
//    legacy bit-by-bit path on a quant-like symbol stream and writes
//    machine-readable results (symbols/sec, speedups) to BENCH_decode.json.
//    Needs no benchmark library, so CI can always run it.
//  * --calibrate [path] — the MethodSelector calibration probe: sweeps
//    synthetic chunks across the compressibility range, records each
//    candidate method's ANALYTIC decode estimate next to its MEASURED
//    simulated decode cost, and writes the rows to BENCH_calibration.json
//    for scripts/calibrate_selector.py to regression-fit.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "core/huffman_codec.hpp"
#include "cudasim/algorithms.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/decode_table.hpp"
#include "huffman/encoder.hpp"
#include "pipeline/method_selector.hpp"
#include "sz/compressor.hpp"
#include "util/rng.hpp"

#if defined(OHD_HAVE_GBENCH)
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace ohd;

/// Quant-like stream: values concentrate geometrically near zero, like
/// Lorenzo quantization codes near the radius. `continue_p` sets the skew
/// (0.7 gives avg code length ~3 bits, the BENCH_decode corpus).
std::vector<std::uint16_t> skewed_stream(std::size_t n, double continue_p = 0.7,
                                         std::uint64_t seed = 5) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < 1024 && rng.uniform() < continue_p) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

/// Shared decode loop so the single-symbol timed arms differ only in the
/// per-symbol decode step.
template <typename DecodeStep>
std::vector<std::uint16_t> decode_all(const huffman::StreamEncoding& enc,
                                      DecodeStep&& step) {
  std::vector<std::uint16_t> out(enc.num_symbols);
  bitio::BitReader reader(enc.units, enc.total_bits);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const huffman::DecodedSymbol d = step(reader);
    if (!d.valid) throw std::runtime_error("decode desynced");
    out[i] = d.symbol;
  }
  return out;
}

std::vector<std::uint16_t> decode_all_bit_by_bit(
    const huffman::StreamEncoding& enc, const huffman::Codebook& cb) {
  return decode_all(enc, [&](bitio::BitReader& reader) {
    return huffman::decode_one(reader, cb);
  });
}

std::vector<std::uint16_t> decode_all_lut(const huffman::StreamEncoding& enc,
                                          const huffman::Codebook& cb) {
  const huffman::DecodeTable& table = cb.decode_table();
  return decode_all(enc, [&](bitio::BitReader& reader) {
    return huffman::decode_one_lut(reader, cb, table);
  });
}

/// Multi-symbol LUT decode: one probe retires up to kMaxMultiSymbols
/// codewords. The batch's symbol slots are stored unconditionally (safe:
/// the loop guard guarantees room for a full batch) and the cursor advances
/// by the retired count, so the hot loop carries no per-symbol branch.
std::vector<std::uint16_t> decode_all_multi(const huffman::StreamEncoding& enc,
                                            const huffman::Codebook& cb) {
  const huffman::DecodeTable& table = cb.decode_table();
  std::vector<std::uint16_t> out(enc.num_symbols);
  bitio::BitReader reader(enc.units, enc.total_bits);
  const std::size_t n = out.size();
  std::size_t i = 0;
  while (i + huffman::DecodeTable::kMaxMultiSymbols <= n) {
    const huffman::DecodedBatch b = huffman::decode_multi(reader, cb, table);
    if (b.count == 0) throw std::runtime_error("decode desynced");
    out[i] = b.symbols[0];
    out[i + 1] = b.symbols[1];
    out[i + 2] = b.symbols[2];
    i += b.count;
  }
  for (; i < n; ++i) {
    const huffman::DecodedSymbol d = huffman::decode_one_lut(reader, cb, table);
    if (!d.valid) throw std::runtime_error("decode desynced");
    out[i] = d.symbol;
  }
  return out;
}

/// Best-of-`reps` wall seconds of `fn()` (which must return a value equal to
/// `expect`).
template <typename Fn, typename Expect>
double best_seconds(int reps, const Expect& expect, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto got = fn();
    const auto t1 = std::chrono::steady_clock::now();
    if (got != expect) throw std::runtime_error("decode mismatch");
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int run_json_mode(const char* out_path) {
  constexpr std::size_t kNumSymbols = 1 << 21;  // ~2M, quant-like
  constexpr int kReps = 7;
  const auto data = skewed_stream(kNumSymbols);
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);

  // Warm-up (touches the stream + tables once) and correctness cross-check.
  if (decode_all_lut(enc, cb) != decode_all_bit_by_bit(enc, cb) ||
      decode_all_multi(enc, cb) != data) {
    std::fprintf(stderr, "LUT / multi / bit-by-bit decode mismatch\n");
    return 1;
  }

  const double legacy_s = best_seconds(kReps, data, [&] {
    return decode_all_bit_by_bit(enc, cb);
  });
  const double lut_s = best_seconds(kReps, data, [&] {
    return decode_all_lut(enc, cb);
  });
  const double multi_s = best_seconds(kReps, data, [&] {
    return decode_all_multi(enc, cb);
  });

  // Fused decode→dequantize→reconstruct on a 1-D quant-like float field:
  // the staged arm decodes to a quant-code vector and then reconstructs
  // (the pre-fusion pipeline), the fused arm streams codes straight into
  // the float buffer.
  std::vector<float> field(kNumSymbols);
  {
    util::Xoshiro256 rng(11);
    float v = 0.0f;
    for (auto& x : field) {
      // Smooth random walk; quantizes to skewed codes like the corpus.
      v += static_cast<float>(rng.uniform() - 0.5) * 0.01f;
      x = v;
    }
  }
  sz::CompressorConfig cfg;
  cfg.method = core::Method::SelfSyncOptimized;  // plain stream payload
  const sz::CompressedBlob blob =
      sz::compress(field, sz::Dims::d1(kNumSymbols), cfg);
  std::vector<float> fused_out(kNumSymbols);
  sz::fused_decode_reconstruct(blob, fused_out);
  const auto& blob_stream =
      std::get<huffman::StreamEncoding>(blob.encoded.payload);
  const std::vector<float> staged_expect = sz::lorenzo_reconstruct(
      decode_all_multi(blob_stream, blob.encoded.codebook), blob.outliers,
      blob.dims, blob.abs_error_bound, blob.radius);
  if (fused_out != staged_expect) {
    std::fprintf(stderr, "fused / staged reconstruct mismatch\n");
    return 1;
  }
  const double staged_recon_s = best_seconds(kReps, staged_expect, [&] {
    return sz::lorenzo_reconstruct(
        decode_all_multi(blob_stream, blob.encoded.codebook), blob.outliers,
        blob.dims, blob.abs_error_bound, blob.radius);
  });
  const double fused_recon_s = best_seconds(kReps, staged_expect, [&] {
    std::vector<float> out(kNumSymbols);
    sz::fused_decode_reconstruct(blob, out);
    return out;
  });

  const double legacy_sps = static_cast<double>(kNumSymbols) / legacy_s;
  const double lut_sps = static_cast<double>(kNumSymbols) / lut_s;
  const double multi_sps = static_cast<double>(kNumSymbols) / multi_s;
  const double speedup = legacy_s / lut_s;

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"huffman_decode\",\n"
               "  \"num_symbols\": %zu,\n"
               "  \"alphabet\": 1024,\n"
               "  \"lut_index_bits\": %u,\n"
               "  \"bit_by_bit_symbols_per_sec\": %.0f,\n"
               "  \"lut_symbols_per_sec\": %.0f,\n"
               "  \"lut_speedup\": %.3f,\n"
               "  \"multisym_symbols_per_sec\": %.0f,\n"
               "  \"multisym_speedup\": %.3f,\n"
               "  \"multisym_vs_lut_speedup\": %.3f,\n"
               "  \"fused_floats_per_sec\": %.0f,\n"
               "  \"staged_floats_per_sec\": %.0f,\n"
               "  \"fused_vs_staged_speedup\": %.3f\n"
               "}\n",
               kNumSymbols, cb.decode_table().index_bits(), legacy_sps,
               lut_sps, speedup, multi_sps, legacy_s / multi_s,
               lut_s / multi_s,
               static_cast<double>(kNumSymbols) / fused_recon_s,
               static_cast<double>(kNumSymbols) / staged_recon_s,
               staged_recon_s / fused_recon_s);
  std::fclose(f);
  std::printf(
      "wrote %s: bit-by-bit %.1f, LUT %.1f, multi %.1f Msym/s "
      "(LUT %.2fx, multi %.2fx over LUT), fused write %.2fx over staged\n",
      out_path, legacy_sps / 1e6, lut_sps / 1e6, multi_sps / 1e6, speedup,
      lut_s / multi_s, staged_recon_s / fused_recon_s);
  return 0;
}

int run_calibrate_mode(const char* out_path) {
  // Chunks spanning the compressibility range the pipeline sees: geometric
  // skews from near-incompressible to heavily peaked, at three chunk sizes.
  const double skews[] = {0.35, 0.5, 0.7, 0.85, 0.93};
  const std::size_t sizes[] = {1u << 14, 1u << 16, 1u << 18};
  const sz::CompressorConfig cfg;
  const pipeline::MethodSelector selector(cfg.decoder);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"selector_calibration\",\n"
               "  \"rows\": [\n");
  bool first = true;
  std::uint64_t seed = 100;
  for (const std::size_t n : sizes) {
    for (const double p : skews) {
      std::vector<std::uint16_t> codes = skewed_stream(n, p, seed++);
      // Code 0 is the outlier marker; shift into the regular range (clamped
      // to the 2*radius-1 top code) so the chunk has no outlier records to
      // fabricate.
      for (auto& c : codes) {
        c = static_cast<std::uint16_t>(std::min<std::uint32_t>(c + 1u, 1023u));
      }
      sz::QuantizedField q;
      q.dims = sz::Dims::d1(n);
      q.error_bound = 1e-3;
      q.radius = cfg.radius;
      q.codes = std::move(codes);
      const pipeline::ChunkProbe probe = pipeline::probe_chunk(q);
      for (const core::Method method : selector.candidates()) {
        const core::EncodedStream enc = core::encode_for_method(
            method, q.codes, q.alphabet_size(), cfg.decoder);
        cudasim::SimContext ctx;
        const core::DecodeResult dec = core::decode(ctx, enc, cfg.decoder);
        if (dec.symbols != q.codes) {
          std::fprintf(stderr, "calibration decode mismatch\n");
          std::fclose(f);
          return 1;
        }
        const pipeline::MethodEstimate est = selector.estimate(method, probe);
        std::fprintf(f,
                     "%s    {\"method_id\": %d, \"method\": \"%s\", "
                     "\"num_symbols\": %zu, \"avg_code_bits\": %.4f, "
                     "\"estimated_s\": %.9e, \"simulated_s\": %.9e}",
                     first ? "" : ",\n", static_cast<int>(method),
                     core::method_name(method).c_str(), n,
                     probe.avg_code_bits, est.decode_seconds,
                     dec.phases.total());
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

#if defined(OHD_HAVE_GBENCH)

void BM_CodebookConstruction(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::Codebook::from_data(data, 1024));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodebookConstruction)->Arg(1 << 14)->Arg(1 << 17);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman::encode_plain(data, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecodeBitByBit(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_all_bit_by_bit(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeBitByBit)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecodeLut(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_all_lut(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeLut)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecodeMultiSym(benchmark::State& state) {
  const auto data = skewed_stream(static_cast<std::size_t>(state.range(0)));
  const auto cb = huffman::Codebook::from_data(data, 1024);
  const auto enc = huffman::encode_plain(data, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_all_multi(enc, cb));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeMultiSym)->Arg(1 << 14)->Arg(1 << 17);

void BM_BitWriterThroughput(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tokens(1 << 16);
  for (auto& [v, l] : tokens) {
    l = static_cast<std::uint32_t>(1 + rng.bounded(24));
    v = static_cast<std::uint32_t>(rng.bounded(1u << l));
  }
  for (auto _ : state) {
    bitio::BitWriter w;
    for (const auto& [v, l] : tokens) w.put(v, l);
    benchmark::DoNotOptimize(w.finish());
  }
  state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_BitWriterThroughput);

void BM_DevicePrefixSum(benchmark::State& state) {
  std::vector<std::uint32_t> counts(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    cudasim::SimContext ctx;
    benchmark::DoNotOptimize(
        cudasim::device_exclusive_prefix_sum(ctx, counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DevicePrefixSum)->Arg(1 << 16);

void BM_DeviceRadixSort(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(state.range(0)));
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.bounded(10));
  std::vector<std::uint32_t> values(keys.size());
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    cudasim::SimContext ctx;
    cudasim::device_radix_sort_pairs(ctx, k, v, 8);
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeviceRadixSort)->Arg(1 << 14);

#endif  // OHD_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path = i + 1 < argc && argv[i + 1][0] != '-'
                             ? argv[i + 1]
                             : "BENCH_decode.json";
      return run_json_mode(path);
    }
    if (std::strcmp(argv[i], "--calibrate") == 0) {
      const char* path = i + 1 < argc && argv[i + 1][0] != '-'
                             ? argv[i + 1]
                             : "BENCH_calibration.json";
      return run_calibrate_mode(path);
    }
  }
#if defined(OHD_HAVE_GBENCH)
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "built without google-benchmark; only --json [path] and "
               "--calibrate [path] modes are available\n");
  return 1;
#endif
}
