// Reproduces paper Figure 3: throughput of the decode+write phase as a
// function of the (fixed) shared-memory buffer size, on HACC quantization
// codes at rel eb 1e-3. The paper reports an interior optimum (5120 symbols
// on their HACC chunk) with ~32% spread between best and worst.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/gap_decoder.hpp"
#include "huffman/encoder.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Figure 3 reproduction: decode+write throughput vs shared "
              "buffer size on HACC\n(rel eb 1e-3; buffer in u16 symbols; "
              "shared bytes = 2x symbols)\n\n");
  const auto p = bench::prepare(data::make_hacc(bench::bench_scale()));
  const auto cb = huffman::Codebook::from_data(p.codes, p.alphabet);
  const auto enc = huffman::encode_gap(p.codes, cb);

  std::printf("%10s  %12s  %10s\n", "buffer", "shmem bytes", "GB/s");
  double best = 0.0, worst = 1e30;
  std::uint32_t best_buf = 0, worst_buf = 0;
  for (std::uint32_t buffer = 1024; buffer <= 8192; buffer += 512) {
    cudasim::SimContext ctx;
    core::GapArrayOptions opts;
    opts.tune_shared_memory = false;
    opts.fixed_buffer_symbols = buffer;
    const double s =
        core::decode_gap_array(ctx, enc, cb, bench::paper_decoder_config(), opts).phases.decode_write_s;
    const double g = bench::gbps(p.quant_bytes(), s);
    std::printf("%10u  %12u  %10.1f\n", buffer, buffer * 2, g);
    if (g > best) {
      best = g;
      best_buf = buffer;
    }
    if (g < worst) {
      worst = g;
      worst_buf = buffer;
    }
  }
  std::printf("\nbest %.1f GB/s at %u symbols; worst %.1f GB/s at %u symbols; "
              "spread %.0f%%\n",
              best, best_buf, worst, worst_buf, 100.0 * (best - worst) / best);
  std::printf("Paper shape to compare against: an interior optimum (5120 on "
              "their HACC), with the\nsmallest and largest buffers both "
              "measurably slower (~32%% spread).\n");
  return 0;
}
