#include "common.hpp"

#include <algorithm>
#include <stdexcept>

namespace ohd::bench {

PreparedDataset prepare(data::Field field, double rel_eb) {
  PreparedDataset p;
  p.rel_eb = rel_eb;
  float lo = field.data.empty() ? 0.0f : field.data[0];
  float hi = lo;
  for (float v : field.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo > 0 ? hi - lo : 1.0;
  const auto q =
      sz::lorenzo_quantize(field.data, field.dims, rel_eb * range, 512);
  p.codes = q.codes;
  p.alphabet = q.alphabet_size();
  p.field = std::move(field);
  return p;
}

std::vector<PreparedDataset> prepare_suite(double rel_eb) {
  std::vector<PreparedDataset> out;
  for (auto& f : data::evaluation_suite(bench_scale())) {
    out.push_back(prepare(std::move(f), rel_eb));
  }
  return out;
}

core::PhaseTimings timed_decode(core::Method method,
                                std::span<const std::uint16_t> codes,
                                std::uint32_t alphabet) {
  const auto enc =
      core::encode_for_method(method, codes, alphabet, paper_decoder_config());
  cudasim::SimContext ctx;
  const auto result = core::decode(ctx, enc, paper_decoder_config());
  if (method == core::Method::GapArrayOriginal8Bit) {
    for (std::size_t i = 0; i < codes.size(); ++i) {
      if (result.symbols[i] != (codes[i] & 0xFF)) {
        throw std::logic_error("8-bit decode mismatch");
      }
    }
  } else if (!std::equal(codes.begin(), codes.end(),
                         result.symbols.begin(), result.symbols.end())) {
    throw std::logic_error("decode mismatch in benchmark");
  }
  return result.phases;
}

double gbps(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e9 / seconds : 0.0;
}

}  // namespace ohd::bench
