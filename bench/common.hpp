// Shared helpers for the benchmark harness: dataset preparation (generate ->
// quantize at the paper's error bound -> encode per method) and throughput
// reporting in the paper's units (GB/s relative to quantization-code bytes
// for decode tables, relative to the full dataset for Figures 4/5).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/huffman_codec.hpp"
#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/lorenzo.hpp"
#include "util/timer.hpp"

namespace ohd::bench {

/// Dataset scale factor, overridable with OHD_BENCH_SCALE (default 1.0 =>
/// ~2M elements per dataset, large enough that fixed kernel-launch overheads
/// do not distort the simulated throughputs; use e.g. 0.1 for a quick pass).
inline double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// The decode configuration every paper-reproduction bench pins: the
/// single-symbol flat-LUT path (the PR 1 configuration the tables' and
/// figures' documented bands were measured with). The multi-symbol batch is
/// this repository's own optimization, reported separately by
/// bench_micro_kernels / bench_pipeline_throughput — the published
/// implementations the paper compares never had it, and batching the naive
/// baseline would deflate every speedup-vs-baseline column.
inline core::DecoderConfig paper_decoder_config() {
  core::DecoderConfig config;
  config.use_multisym_lut = false;
  return config;
}

struct PreparedDataset {
  data::Field field;
  std::vector<std::uint16_t> codes;  // quantization codes at rel eb
  std::uint32_t alphabet = 1024;
  double rel_eb = 1e-3;

  std::uint64_t quant_bytes() const { return codes.size() * 2; }
  std::uint64_t dataset_bytes() const { return field.bytes(); }
};

/// Quantizes a dataset at the given relative error bound (paper default
/// 1e-3).
PreparedDataset prepare(data::Field field, double rel_eb = 1e-3);

/// All eight datasets at bench scale.
std::vector<PreparedDataset> prepare_suite(double rel_eb = 1e-3);

/// Decodes `codes` with `method` on a fresh simulated V100; returns the
/// phase timings and checks the decoded stream matches (throws otherwise).
core::PhaseTimings timed_decode(core::Method method,
                                std::span<const std::uint16_t> codes,
                                std::uint32_t alphabet);

/// GB/s given bytes and simulated seconds (decimal GB, as in the paper).
double gbps(std::uint64_t bytes, double seconds);

}  // namespace ohd::bench
