// Batch-pipeline workload driver: builds a mixed five-field corpus from the
// generic symbol-stream generators (uniform / geometric / zipf / markov /
// quant, each shaped into a float field via a random walk so its Lorenzo
// increments follow the flavor's distribution), compresses it into a chunked
// container, then sweeps worker counts and chunk sizes over batch
// decompression.
//
// Every chunk-size point builds the archive TWICE: with per-chunk private
// codebooks (the PR 2 baseline) and with adaptive planning (per-chunk method
// selection + field-level shared codebooks). The bytes-per-chunk curve of
// both is reported; at the smallest chunk size the shared-codebook archive
// must be strictly smaller — amortizing the per-chunk codebook bytes is the
// whole point of the field-level book.
//
// Two throughput views are reported for every sweep point:
//  * simulated — corpus bytes over the deterministic simulated-GPU batch
//    makespan (BatchDecompressResult::makespan, list-scheduled over N
//    virtual workers); machine-independent, this is the scaling headline;
//  * host — corpus bytes over the measured wall time of the functional
//    simulation on the ThreadPool (scales only with physical cores).
// Every multi-threaded run is verified bit-identical to the 1-worker run
// (the sweep decodes the ADAPTIVE archive, so shared-codebook and
// auto-method chunks are what the identity check covers).
//
//   ./bench_pipeline_throughput            # table on stdout
//   ./bench_pipeline_throughput --json [path]   # also write BENCH_pipeline.json
//
// OHD_BENCH_SCALE scales the corpus (default 1.0 => ~1.3M elements; CI smoke
// uses 0.05).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/generic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Integrates a symbol stream into a float field: increments follow the
/// stream's distribution, so the Lorenzo-quantized codes of the field mirror
/// the flavor's entropy.
std::vector<float> walk_field(const std::vector<std::uint16_t>& stream,
                              std::uint32_t alphabet) {
  std::vector<float> out(stream.size());
  const double mid = alphabet / 2.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    acc += (static_cast<double>(stream[i]) - mid) * 1e-3;
    out[i] = static_cast<float>(acc);
  }
  return out;
}

struct CorpusField {
  std::string flavor;
  std::vector<float> data;
  sz::Dims dims;
  sz::CompressorConfig config;
};

std::vector<CorpusField> make_corpus(double scale) {
  const auto n1 = static_cast<std::size_t>(262144 * scale);
  // 2-D/3-D fields need exact extents; round to the plane sizes used below.
  const std::size_t planes2d = std::max<std::size_t>(4, n1 / 256);
  const std::size_t planes3d = std::max<std::size_t>(2, n1 / 2048);

  std::vector<CorpusField> corpus;
  auto add = [&corpus](std::string flavor, std::vector<std::uint16_t> stream,
                       std::uint32_t alphabet, sz::Dims dims, core::Method m,
                       double rel_eb) {
    CorpusField f;
    f.flavor = std::move(flavor);
    f.data = walk_field(stream, alphabet);
    f.dims = dims;
    f.config.method = m;
    f.config.rel_error_bound = rel_eb;
    corpus.push_back(std::move(f));
  };

  add("uniform", data::uniform_stream(n1, 64, 101), 64, sz::Dims::d1(n1),
      core::Method::SelfSyncOptimized, 1e-3);
  add("geometric",
      data::geometric_stream(256 * planes2d, 512, 0.15, 102), 512,
      sz::Dims::d2(256, planes2d), core::Method::GapArrayOptimized, 1e-3);
  add("zipf", data::zipf_stream(n1, 512, 1.1, 103), 512, sz::Dims::d1(n1),
      core::Method::CuszNaive, 1e-4);
  add("markov",
      data::markov_stream(64 * 32 * planes3d, 256, 0.005, 104), 256,
      sz::Dims::d3(64, 32, planes3d), core::Method::GapArrayOptimized, 5e-3);
  add("quant", data::quant_code_stream(256 * planes2d, 1024, 40.0, 105),
      1024, sz::Dims::d2(256, planes2d), core::Method::SelfSyncOriginal, 1e-3);
  return corpus;
}

struct SweepPoint {
  std::size_t chunk_divisor = 0;
  std::size_t num_chunks = 0;
  std::size_t threads = 0;
  double host_wall_s = 0.0;
  double sim_makespan_s = 0.0;
  double sim_gbps = 0.0;
  double host_gbps = 0.0;
  bool identical = false;
};

bool results_identical(const pipeline::BatchDecompressResult& a,
                       const pipeline::BatchDecompressResult& b) {
  if (a.chunk_seconds != b.chunk_seconds) return false;
  if (a.simulated_seconds != b.simulated_seconds) return false;
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i].decode.data != b.fields[i].decode.data) return false;
  }
  return true;
}

/// Archive-size comparison of one chunk-size point: the same corpus with
/// per-chunk private codebooks vs adaptive planning (auto method + shared
/// codebooks).
struct ArchivePoint {
  std::size_t chunk_divisor = 0;
  std::size_t num_chunks = 0;
  std::size_t private_bytes = 0;
  std::size_t adaptive_bytes = 0;
  std::size_t method_counts[5] = {0, 0, 0, 0, 0};  // by core::Method tag
  std::size_t shared_ref_chunks = 0;

  double bytes_per_chunk_private() const {
    return static_cast<double>(private_bytes) /
           static_cast<double>(num_chunks);
  }
  double bytes_per_chunk_adaptive() const {
    return static_cast<double>(adaptive_bytes) /
           static_cast<double>(num_chunks);
  }
};

int run(bool emit_json, const char* json_path) {
  const double scale = bench_scale();
  const auto corpus = make_corpus(scale);
  std::uint64_t corpus_bytes = 0;
  for (const auto& f : corpus) corpus_bytes += f.data.size() * 4;
  std::printf("corpus: %zu fields, %.2f MB (scale %.3g)\n", corpus.size(),
              static_cast<double>(corpus_bytes) / 1e6, scale);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  // Chunks per field, roughly; 64 produces the smallest chunks, where the
  // per-chunk codebook overhead is at its worst.
  const std::size_t chunk_divisors[] = {64, 16, 4};

  std::vector<SweepPoint> points;
  std::vector<ArchivePoint> archives;
  double sim_speedup_4t = 0.0;
  double host_speedup_4t = 0.0;
  bool all_identical = true;

  for (const std::size_t divisor : chunk_divisors) {
    std::vector<pipeline::FieldSpec> specs;
    for (const auto& f : corpus) {
      pipeline::FieldSpec spec;
      spec.name = f.flavor;
      spec.data = f.data;
      spec.dims = f.dims;
      spec.config = f.config;
      spec.chunk_elems = std::max<std::size_t>(512, f.data.size() / divisor);
      specs.push_back(spec);
    }

    pipeline::ThreadPool build_pool(0);
    const pipeline::Container private_container =
        pipeline::BatchScheduler(build_pool).compress(specs);
    for (auto& spec : specs) {
      spec.plan.auto_method = true;
      spec.plan.shared_codebook = true;
    }
    const pipeline::Container container =
        pipeline::BatchScheduler(build_pool).compress(specs);

    ArchivePoint ap;
    ap.chunk_divisor = divisor;
    ap.private_bytes = private_container.serialize().size();
    ap.adaptive_bytes = container.serialize().size();
    std::size_t num_chunks = 0;
    for (const auto& f : container.fields()) {
      num_chunks += f.chunks.size();
      for (const auto& rec : f.chunks) {
        ap.method_counts[static_cast<std::size_t>(rec.method)]++;
        ap.shared_ref_chunks +=
            rec.codebook_ref == pipeline::CodebookRef::SharedField;
      }
    }
    ap.num_chunks = num_chunks;
    archives.push_back(ap);
    std::printf(
        "chunks=%-3zu archive: private %zu B, adaptive %zu B "
        "(%.1f%% smaller; %zu/%zu chunks on the shared book)\n",
        num_chunks, ap.private_bytes, ap.adaptive_bytes,
        100.0 * (1.0 - static_cast<double>(ap.adaptive_bytes) /
                           static_cast<double>(ap.private_bytes)),
        ap.shared_ref_chunks, num_chunks);

    pipeline::ThreadPool ref_pool(1);
    util::WallTimer ref_timer;
    const pipeline::BatchDecompressResult reference =
        pipeline::BatchScheduler(ref_pool).decompress(container);
    const double ref_wall = ref_timer.seconds();

    for (const std::size_t threads : thread_counts) {
      SweepPoint p;
      p.chunk_divisor = divisor;
      p.num_chunks = num_chunks;
      p.threads = threads;
      if (threads == 1) {
        p.host_wall_s = ref_wall;
        p.identical = true;
      } else {
        pipeline::ThreadPool pool(threads);
        util::WallTimer timer;
        const pipeline::BatchDecompressResult r =
            pipeline::BatchScheduler(pool).decompress(container);
        p.host_wall_s = timer.seconds();
        p.identical = results_identical(r, reference);
      }
      p.sim_makespan_s = reference.makespan(threads);
      p.sim_gbps = util::throughput_gbps(corpus_bytes, p.sim_makespan_s);
      p.host_gbps = util::throughput_gbps(corpus_bytes, p.host_wall_s);
      all_identical = all_identical && p.identical;
      points.push_back(p);
      std::printf(
          "chunks=%-3zu workers=%zu  sim %8.3f ms (%6.2f GB/s)  host %8.1f ms "
          "(%.3f GB/s)  identical=%s\n",
          num_chunks, threads, p.sim_makespan_s * 1e3, p.sim_gbps,
          p.host_wall_s * 1e3, p.host_gbps, p.identical ? "yes" : "NO");
    }

    // The headline scaling number comes from the finer chunking (more
    // chunks => better load balance on the simulated workers).
    if (divisor == 16) {
      sim_speedup_4t = reference.makespan(1) / reference.makespan(4);
      double wall_4t = 0.0;
      for (const auto& p : points) {
        if (p.chunk_divisor == divisor && p.threads == 4) {
          wall_4t = p.host_wall_s;
        }
      }
      host_speedup_4t = wall_4t > 0.0 ? ref_wall / wall_4t : 0.0;
    }
  }

  std::printf("simulated decompress speedup at 4 workers: %.2fx (host %.2fx)\n",
              sim_speedup_4t, host_speedup_4t);
  // The smallest chunk size is where per-chunk codebooks hurt the most; the
  // shared-codebook archive must be STRICTLY smaller there.
  const ArchivePoint& smallest = archives.front();
  const bool shared_smaller = smallest.adaptive_bytes < smallest.private_bytes;
  std::printf(
      "smallest chunks (%zu): %.1f B/chunk private vs %.1f B/chunk adaptive "
      "=> shared codebooks %s\n",
      smallest.num_chunks, smallest.bytes_per_chunk_private(),
      smallest.bytes_per_chunk_adaptive(),
      shared_smaller ? "win" : "DO NOT WIN");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: multi-threaded decompress diverged from sequential\n");
    return 1;
  }
  if (!shared_smaller) {
    std::fprintf(stderr,
                 "FAIL: shared-codebook archive is not smaller than the "
                 "per-chunk-codebook archive at the smallest chunk size\n");
    return 1;
  }

  // Telemetry block for the report: one instrumented 4-worker decompress at
  // the middle chunking, kept OUT of the timed sweep above so the measured
  // walls stay un-instrumented. The snapshot gives the report per-phase
  // latency quantiles and chunk counts alongside the throughput numbers.
  std::string telemetry_snapshot;
  std::size_t telemetry_spans = 0;
  {
    std::vector<pipeline::FieldSpec> specs;
    for (const auto& f : corpus) {
      pipeline::FieldSpec spec;
      spec.name = f.flavor;
      spec.data = f.data;
      spec.dims = f.dims;
      spec.config = f.config;
      spec.chunk_elems = std::max<std::size_t>(512, f.data.size() / 16);
      spec.plan.auto_method = true;
      spec.plan.shared_codebook = true;
      specs.push_back(spec);
    }
    pipeline::ThreadPool pool(4);
    const pipeline::Container container =
        pipeline::BatchScheduler(pool).compress(specs);
    obs::TraceRecorder rec;
    const obs::ScopedTelemetry scope(&rec);
    pipeline::BatchScheduler(pool).decompress(container);
    telemetry_snapshot = obs::registry().snapshot().to_json(4);
    telemetry_spans = rec.spans().size();
  }

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"pipeline_throughput\",\n"
                 "  \"corpus_fields\": %zu,\n"
                 "  \"corpus_bytes\": %llu,\n"
                 "  \"scale\": %.4f,\n"
                 "  \"all_identical\": %s,\n"
                 "  \"sim_decompress_speedup_4_workers\": %.3f,\n"
                 "  \"host_decompress_speedup_4_workers\": %.3f,\n"
                 "  \"shared_codebook_smaller_at_smallest_chunk\": %s,\n"
                 "  \"shared_codebook_savings_at_smallest_chunk\": %.4f,\n"
                 "  \"telemetry\": {\n"
                 "    \"trace_spans\": %zu,\n"
                 "    \"snapshot\": %s\n"
                 "  },\n"
                 "  \"archives\": [\n",
                 corpus.size(),
                 static_cast<unsigned long long>(corpus_bytes), scale,
                 all_identical ? "true" : "false", sim_speedup_4t,
                 host_speedup_4t, shared_smaller ? "true" : "false",
                 1.0 - static_cast<double>(smallest.adaptive_bytes) /
                           static_cast<double>(smallest.private_bytes),
                 telemetry_spans, telemetry_snapshot.c_str());
    for (std::size_t i = 0; i < archives.size(); ++i) {
      const ArchivePoint& a = archives[i];
      std::fprintf(
          f,
          "    {\"chunk_divisor\": %zu, \"num_chunks\": %zu, "
          "\"private_bytes\": %zu, \"adaptive_bytes\": %zu, "
          "\"bytes_per_chunk_private\": %.1f, "
          "\"bytes_per_chunk_adaptive\": %.1f, "
          "\"shared_ref_chunks\": %zu, "
          "\"method_counts\": [%zu, %zu, %zu, %zu, %zu]}%s\n",
          a.chunk_divisor, a.num_chunks, a.private_bytes, a.adaptive_bytes,
          a.bytes_per_chunk_private(), a.bytes_per_chunk_adaptive(),
          a.shared_ref_chunks, a.method_counts[0], a.method_counts[1],
          a.method_counts[2], a.method_counts[3], a.method_counts[4],
          i + 1 < archives.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(f,
                   "    {\"num_chunks\": %zu, \"workers\": %zu, "
                   "\"sim_makespan_s\": %.9f, \"sim_gbps\": %.3f, "
                   "\"host_wall_s\": %.6f, \"host_gbps\": %.4f, "
                   "\"identical\": %s}%s\n",
                   p.num_chunks, p.threads, p.sim_makespan_s, p.sim_gbps,
                   p.host_wall_s, p.host_gbps, p.identical ? "true" : "false",
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  return run(emit_json, json_path);
}
