// Batch-pipeline workload driver: builds a mixed five-field corpus from the
// generic symbol-stream generators (uniform / geometric / zipf / markov /
// quant, each shaped into a float field via a random walk so its Lorenzo
// increments follow the flavor's distribution), compresses it into a chunked
// container, then sweeps worker counts and chunk sizes over batch
// decompression.
//
// Two throughput views are reported for every sweep point:
//  * simulated — corpus bytes over the deterministic simulated-GPU batch
//    makespan (BatchDecompressResult::makespan, list-scheduled over N
//    virtual workers); machine-independent, this is the scaling headline;
//  * host — corpus bytes over the measured wall time of the functional
//    simulation on the ThreadPool (scales only with physical cores).
// Every multi-threaded run is verified bit-identical to the 1-worker run.
//
//   ./bench_pipeline_throughput            # table on stdout
//   ./bench_pipeline_throughput --json [path]   # also write BENCH_pipeline.json
//
// OHD_BENCH_SCALE scales the corpus (default 1.0 => ~1.3M elements; CI smoke
// uses 0.05).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/generic.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Integrates a symbol stream into a float field: increments follow the
/// stream's distribution, so the Lorenzo-quantized codes of the field mirror
/// the flavor's entropy.
std::vector<float> walk_field(const std::vector<std::uint16_t>& stream,
                              std::uint32_t alphabet) {
  std::vector<float> out(stream.size());
  const double mid = alphabet / 2.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    acc += (static_cast<double>(stream[i]) - mid) * 1e-3;
    out[i] = static_cast<float>(acc);
  }
  return out;
}

struct CorpusField {
  std::string flavor;
  std::vector<float> data;
  sz::Dims dims;
  sz::CompressorConfig config;
};

std::vector<CorpusField> make_corpus(double scale) {
  const auto n1 = static_cast<std::size_t>(262144 * scale);
  // 2-D/3-D fields need exact extents; round to the plane sizes used below.
  const std::size_t planes2d = std::max<std::size_t>(4, n1 / 256);
  const std::size_t planes3d = std::max<std::size_t>(2, n1 / 2048);

  std::vector<CorpusField> corpus;
  auto add = [&corpus](std::string flavor, std::vector<std::uint16_t> stream,
                       std::uint32_t alphabet, sz::Dims dims, core::Method m,
                       double rel_eb) {
    CorpusField f;
    f.flavor = std::move(flavor);
    f.data = walk_field(stream, alphabet);
    f.dims = dims;
    f.config.method = m;
    f.config.rel_error_bound = rel_eb;
    corpus.push_back(std::move(f));
  };

  add("uniform", data::uniform_stream(n1, 64, 101), 64, sz::Dims::d1(n1),
      core::Method::SelfSyncOptimized, 1e-3);
  add("geometric",
      data::geometric_stream(256 * planes2d, 512, 0.15, 102), 512,
      sz::Dims::d2(256, planes2d), core::Method::GapArrayOptimized, 1e-3);
  add("zipf", data::zipf_stream(n1, 512, 1.1, 103), 512, sz::Dims::d1(n1),
      core::Method::CuszNaive, 1e-4);
  add("markov",
      data::markov_stream(64 * 32 * planes3d, 256, 0.005, 104), 256,
      sz::Dims::d3(64, 32, planes3d), core::Method::GapArrayOptimized, 5e-3);
  add("quant", data::quant_code_stream(256 * planes2d, 1024, 40.0, 105),
      1024, sz::Dims::d2(256, planes2d), core::Method::SelfSyncOriginal, 1e-3);
  return corpus;
}

struct SweepPoint {
  std::size_t chunk_divisor = 0;
  std::size_t num_chunks = 0;
  std::size_t threads = 0;
  double host_wall_s = 0.0;
  double sim_makespan_s = 0.0;
  double sim_gbps = 0.0;
  double host_gbps = 0.0;
  bool identical = false;
};

bool results_identical(const pipeline::BatchDecompressResult& a,
                       const pipeline::BatchDecompressResult& b) {
  if (a.chunk_seconds != b.chunk_seconds) return false;
  if (a.simulated_seconds != b.simulated_seconds) return false;
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i].decode.data != b.fields[i].decode.data) return false;
  }
  return true;
}

int run(bool emit_json, const char* json_path) {
  const double scale = bench_scale();
  const auto corpus = make_corpus(scale);
  std::uint64_t corpus_bytes = 0;
  for (const auto& f : corpus) corpus_bytes += f.data.size() * 4;
  std::printf("corpus: %zu fields, %.2f MB (scale %.3g)\n", corpus.size(),
              static_cast<double>(corpus_bytes) / 1e6, scale);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const std::size_t chunk_divisors[] = {16, 4};  // chunks per field, roughly

  std::vector<SweepPoint> points;
  double sim_speedup_4t = 0.0;
  double host_speedup_4t = 0.0;
  bool all_identical = true;

  for (const std::size_t divisor : chunk_divisors) {
    std::vector<pipeline::FieldSpec> specs;
    for (const auto& f : corpus) {
      pipeline::FieldSpec spec;
      spec.name = f.flavor;
      spec.data = f.data;
      spec.dims = f.dims;
      spec.config = f.config;
      spec.chunk_elems = std::max<std::size_t>(512, f.data.size() / divisor);
      specs.push_back(spec);
    }

    pipeline::ThreadPool build_pool(0);
    const pipeline::Container container =
        pipeline::BatchScheduler(build_pool).compress(specs);
    std::size_t num_chunks = 0;
    for (const auto& f : container.fields()) num_chunks += f.chunks.size();

    pipeline::ThreadPool ref_pool(1);
    util::WallTimer ref_timer;
    const pipeline::BatchDecompressResult reference =
        pipeline::BatchScheduler(ref_pool).decompress(container);
    const double ref_wall = ref_timer.seconds();

    for (const std::size_t threads : thread_counts) {
      SweepPoint p;
      p.chunk_divisor = divisor;
      p.num_chunks = num_chunks;
      p.threads = threads;
      if (threads == 1) {
        p.host_wall_s = ref_wall;
        p.identical = true;
      } else {
        pipeline::ThreadPool pool(threads);
        util::WallTimer timer;
        const pipeline::BatchDecompressResult r =
            pipeline::BatchScheduler(pool).decompress(container);
        p.host_wall_s = timer.seconds();
        p.identical = results_identical(r, reference);
      }
      p.sim_makespan_s = reference.makespan(threads);
      p.sim_gbps = util::throughput_gbps(corpus_bytes, p.sim_makespan_s);
      p.host_gbps = util::throughput_gbps(corpus_bytes, p.host_wall_s);
      all_identical = all_identical && p.identical;
      points.push_back(p);
      std::printf(
          "chunks=%-3zu workers=%zu  sim %8.3f ms (%6.2f GB/s)  host %8.1f ms "
          "(%.3f GB/s)  identical=%s\n",
          num_chunks, threads, p.sim_makespan_s * 1e3, p.sim_gbps,
          p.host_wall_s * 1e3, p.host_gbps, p.identical ? "yes" : "NO");
    }

    // The headline scaling number comes from the finer chunking (more
    // chunks => better load balance on the simulated workers).
    if (divisor == 16) {
      sim_speedup_4t = reference.makespan(1) / reference.makespan(4);
      double wall_4t = 0.0;
      for (const auto& p : points) {
        if (p.chunk_divisor == divisor && p.threads == 4) {
          wall_4t = p.host_wall_s;
        }
      }
      host_speedup_4t = wall_4t > 0.0 ? ref_wall / wall_4t : 0.0;
    }
  }

  std::printf("simulated decompress speedup at 4 workers: %.2fx (host %.2fx)\n",
              sim_speedup_4t, host_speedup_4t);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: multi-threaded decompress diverged from sequential\n");
    return 1;
  }

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"pipeline_throughput\",\n"
                 "  \"corpus_fields\": %zu,\n"
                 "  \"corpus_bytes\": %llu,\n"
                 "  \"scale\": %.4f,\n"
                 "  \"all_identical\": %s,\n"
                 "  \"sim_decompress_speedup_4_workers\": %.3f,\n"
                 "  \"host_decompress_speedup_4_workers\": %.3f,\n"
                 "  \"sweep\": [\n",
                 corpus.size(),
                 static_cast<unsigned long long>(corpus_bytes), scale,
                 all_identical ? "true" : "false", sim_speedup_4t,
                 host_speedup_4t);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(f,
                   "    {\"num_chunks\": %zu, \"workers\": %zu, "
                   "\"sim_makespan_s\": %.9f, \"sim_gbps\": %.3f, "
                   "\"host_wall_s\": %.6f, \"host_gbps\": %.4f, "
                   "\"identical\": %s}%s\n",
                   p.num_chunks, p.threads, p.sim_makespan_s, p.sim_gbps,
                   p.host_wall_s, p.host_gbps, p.identical ? "true" : "false",
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  return run(emit_json, json_path);
}
