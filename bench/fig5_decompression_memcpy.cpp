// Reproduces paper Figure 5: end-to-end decompression throughput INCLUDING
// the host-to-device transfer of the compressed data over PCIe (the
// CPU-memory-resident scenario). Speedups shrink relative to Figure 4
// because the transfer is a decoder-independent bottleneck, and high-ratio
// datasets transfer less data so they look relatively faster.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Figure 5 reproduction: decompression throughput with "
              "host-to-device memcpy of the\ncompressed data (GB/s relative "
              "to the full dataset; rel eb 1e-3)\n\n");
  const auto scale = bench::bench_scale();
  const std::vector<core::Method> methods = {core::Method::CuszNaive,
                                             core::Method::SelfSyncOptimized,
                                             core::Method::GapArrayOptimized};

  util::Table table("Figure 5: decompression + H2D throughput (GB/s)");
  table.set_columns(
      {"baseline", "opt. self-sync", "speedup", "opt. gap-array", "speedup"});

  std::vector<double> ss_speedups, gap_speedups;
  for (auto& field : data::evaluation_suite(scale)) {
    std::vector<double> gbps;
    for (core::Method m : methods) {
      sz::CompressorConfig cfg;
      cfg.method = m;
      const auto blob = sz::compress(field.data, field.dims, cfg);
      cudasim::SimContext ctx;
      const auto r = sz::decompress(ctx, blob, bench::paper_decoder_config(), /*simulate_h2d=*/true);
      gbps.push_back(bench::gbps(blob.original_bytes(), r.total_seconds()));
    }
    ss_speedups.push_back(gbps[1] / gbps[0]);
    gap_speedups.push_back(gbps[2] / gbps[0]);
    table.add_row(field.name,
                  {util::fmt(gbps[0], 1), util::fmt(gbps[1], 1),
                   util::fmt_speedup(gbps[1] / gbps[0]), util::fmt(gbps[2], 1),
                   util::fmt_speedup(gbps[2] / gbps[0])});
  }
  table.print();
  std::printf("\nAverage speedup: opt. self-sync %.2fx (paper 1.53x), "
              "opt. gap-array %.2fx (paper 1.65x)\n",
              util::mean(ss_speedups), util::mean(gap_speedups));
  std::printf("Paper shape to compare against: smaller speedups than Figure "
              "4, and high-ratio datasets\nretain relatively higher "
              "throughput because less compressed data crosses PCIe.\n");
  return 0;
}
