// Reproduces paper Table II: per-phase throughput breakdown (GB/s relative
// to quantization-code bytes) of the original self-sync, optimized
// self-sync, and optimized gap-array decoders on all eight datasets.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/table.hpp"

using namespace ohd;

namespace {

void print_method(const char* title, core::Method method,
                  const std::vector<bench::PreparedDataset>& suite,
                  const std::vector<double>& baseline_total_gbps) {
  util::Table table(title);
  std::vector<std::string> columns;
  for (const auto& p : suite) columns.push_back(p.field.name);
  table.set_columns(columns);

  std::vector<core::PhaseTimings> phases;
  phases.reserve(suite.size());
  for (const auto& p : suite) {
    phases.push_back(bench::timed_decode(method, p.codes, p.alphabet));
  }

  auto phase_row = [&](const char* label, auto getter) {
    std::vector<std::string> row;
    for (std::size_t d = 0; d < suite.size(); ++d) {
      const double s = getter(phases[d]);
      row.push_back(s > 0 ? util::fmt(bench::gbps(suite[d].quant_bytes(), s), 1)
                          : std::string("-"));
    }
    table.add_row(label, row);
  };
  phase_row("intra-seq. sync.", [](const core::PhaseTimings& p) {
    return p.intra_sync_s;
  });
  phase_row("inter-seq. sync.", [](const core::PhaseTimings& p) {
    return p.inter_sync_s;
  });
  phase_row("get output idx.", [](const core::PhaseTimings& p) {
    return p.output_index_s;
  });
  phase_row("tune shared mem.", [](const core::PhaseTimings& p) {
    return p.tune_s;
  });
  phase_row("decode and write", [](const core::PhaseTimings& p) {
    return p.decode_write_s;
  });

  std::vector<std::string> total_row, speedup_row;
  for (std::size_t d = 0; d < suite.size(); ++d) {
    const double g =
        bench::gbps(suite[d].quant_bytes(), phases[d].total());
    total_row.push_back(util::fmt(g, 1));
    speedup_row.push_back(util::fmt_speedup(g / baseline_total_gbps[d]));
  }
  table.add_row("overall, decode", total_row);
  table.add_row("speedup vs cuSZ", speedup_row);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Table II reproduction: per-phase decoding breakdown on the "
              "simulated V100\n(GB/s relative to quantization-code bytes; "
              "rel eb 1e-3)\n\n");
  const auto suite = bench::prepare_suite();

  std::vector<double> baseline(suite.size());
  for (std::size_t d = 0; d < suite.size(); ++d) {
    const auto phases = bench::timed_decode(core::Method::CuszNaive,
                                            suite[d].codes, suite[d].alphabet);
    baseline[d] = bench::gbps(suite[d].quant_bytes(), phases.total());
  }

  print_method("original self-sync (GB/s per phase)",
               core::Method::SelfSyncOriginal, suite, baseline);
  print_method("optimized self-sync (GB/s per phase)",
               core::Method::SelfSyncOptimized, suite, baseline);
  print_method("optimized gap array (GB/s per phase)",
               core::Method::GapArrayOptimized, suite, baseline);

  std::printf("Paper shapes to compare against: the original decoder's "
              "'decode and write' collapses on\nhigh-ratio datasets "
              "(CESM/Nyx/Hurricane/RTM/GAMESS); the optimized phases hold "
              "100+ GB/s;\nthe gap-array decoder skips both sync phases "
              "entirely.\n");
  return 0;
}
