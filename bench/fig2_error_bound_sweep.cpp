// Reproduces paper Figure 2: decoding throughput versus relative error bound
// on the HACC dataset for the ORIGINAL self-sync and gap-array decoders
// (plus, for contrast, the optimized ones and the cuSZ baseline). Larger
// error bounds produce more-compressible quantization codes, which is where
// the original decoders collapse.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Figure 2 reproduction: decoding throughput vs error bound on "
              "HACC\n(GB/s relative to quantization-code bytes)\n\n");
  const std::vector<double> bounds = {1e-5, 1e-4, 1e-3, 5e-3, 1e-2};
  auto field = data::make_hacc(bench::bench_scale());

  util::Table table("Figure 2: throughput (GB/s) vs relative error bound");
  std::vector<std::string> columns;
  for (double eb : bounds) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "eb=%g", eb);
    columns.push_back(buf);
  }
  table.set_columns(columns);

  const std::vector<core::Method> methods = {
      core::Method::CuszNaive, core::Method::SelfSyncOriginal,
      core::Method::GapArrayOriginal8Bit, core::Method::SelfSyncOptimized,
      core::Method::GapArrayOptimized};

  std::vector<std::vector<std::string>> rows(methods.size());
  std::vector<std::string> cr_row;
  for (double eb : bounds) {
    const auto p = bench::prepare(field, eb);
    const auto enc = core::encode_for_method(core::Method::SelfSyncOptimized,
                                             p.codes, p.alphabet);
    cr_row.push_back(util::fmt(static_cast<double>(p.quant_bytes()) /
                                   enc.compressed_bytes(),
                               2));
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const auto phases = bench::timed_decode(methods[m], p.codes, p.alphabet);
      const std::uint64_t ref_bytes =
          methods[m] == core::Method::GapArrayOriginal8Bit ? p.codes.size()
                                                           : p.quant_bytes();
      rows[m].push_back(util::fmt(bench::gbps(ref_bytes, phases.total()), 1));
    }
  }
  table.add_row("quant-code compr. ratio", cr_row);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    table.add_row(core::method_name(methods[m]), rows[m]);
  }
  table.print();

  std::printf("\nPaper shape to compare against: the ORIGINAL decoders' "
              "throughput drops sharply as the\nerror bound (and hence the "
              "compression ratio) grows; the optimized decoders do not.\n");
  return 0;
}
