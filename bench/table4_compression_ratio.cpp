// Reproduces paper Table IV: compression ratios of the five methods on the
// eight datasets, normalized to the cuSZ baseline. The original 8-bit
// gap-array row doubles its ratio exactly as the paper does for a fair
// comparison against 16-bit decoders.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Table IV reproduction: compression ratio of the evaluated "
              "methods\n(ratio = original dataset bytes / compressed bytes; "
              "rel eb 1e-3)\n\n");
  const auto suite = bench::prepare_suite();

  const std::vector<core::Method> methods = {
      core::Method::CuszNaive, core::Method::SelfSyncOriginal,
      core::Method::SelfSyncOptimized, core::Method::GapArrayOriginal8Bit,
      core::Method::GapArrayOptimized};

  util::Table table("Table IV: compression ratios (x = vs baseline)");
  std::vector<std::string> columns;
  for (const auto& p : suite) columns.push_back(p.field.name);
  table.set_columns(columns);

  std::vector<std::string> sizes;
  for (const auto& p : suite) {
    sizes.push_back(util::fmt(util::mebibytes(p.dataset_bytes()), 1));
  }
  table.add_row("size in mebibyte", sizes);

  std::vector<double> baseline(suite.size(), 1.0);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> ratio_row, rel_row;
    for (std::size_t d = 0; d < suite.size(); ++d) {
      const auto& p = suite[d];
      const auto enc =
          core::encode_for_method(methods[m], p.codes, p.alphabet);
      double ratio = static_cast<double>(p.dataset_bytes()) /
                     static_cast<double>(enc.compressed_bytes());
      if (methods[m] == core::Method::GapArrayOriginal8Bit) {
        ratio *= 2.0;  // paper Table IV footnote: 8-bit ratios are doubled
      }
      if (m == 0) baseline[d] = ratio;
      ratio_row.push_back(util::fmt(ratio, 2));
      rel_row.push_back(util::fmt(ratio / baseline[d], 3) + "x");
    }
    table.add_row(core::method_name(methods[m]), ratio_row);
    table.add_row("  vs baseline", rel_row);
  }
  table.print();
  std::printf("\nPaper finding to compare against: ratios differ by at most "
              "~10%% across methods,\nso throughput, not ratio, should drive "
              "the choice of decoder.\n");
  return 0;
}
