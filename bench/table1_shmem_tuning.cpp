// Reproduces paper Table I: the online shared-memory tuning (Algorithm 2)
// versus a brute-force sweep of fixed buffer sizes (1024..8192 symbols in
// 512-symbol steps) for the decode+write phase, including the tuning
// overhead rows.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/gap_decoder.hpp"
#include "huffman/encoder.hpp"
#include "util/table.hpp"

using namespace ohd;

namespace {

struct SweepResult {
  double tuned_s = 0.0;        // decode+write with Algorithm 2 (no overhead)
  double tune_overhead_s = 0.0;
  double best_s = 1e30;
  std::uint32_t best_buffer = 0;
  double worst_s = 0.0;
  std::uint32_t worst_buffer = 0;
};

SweepResult sweep(const bench::PreparedDataset& p) {
  SweepResult r;
  const auto cb = huffman::Codebook::from_data(p.codes, p.alphabet);
  const auto enc = huffman::encode_gap(p.codes, cb);

  for (std::uint32_t buffer = 1024; buffer <= 8192; buffer += 512) {
    cudasim::SimContext ctx;
    core::GapArrayOptions opts;
    opts.tune_shared_memory = false;
    opts.fixed_buffer_symbols = buffer;
    const double s =
        core::decode_gap_array(ctx, enc, cb, bench::paper_decoder_config(), opts).phases.decode_write_s;
    if (s < r.best_s) {
      r.best_s = s;
      r.best_buffer = buffer;
    }
    if (s > r.worst_s) {
      r.worst_s = s;
      r.worst_buffer = buffer;
    }
  }
  cudasim::SimContext ctx;
  const auto tuned = core::decode_gap_array(ctx, enc, cb, bench::paper_decoder_config(),
                                            core::GapArrayOptions::optimized());
  r.tuned_s = tuned.phases.decode_write_s;
  r.tune_overhead_s = tuned.phases.tune_s;
  return r;
}

}  // namespace

int main() {
  std::printf("Table I reproduction: online shared-memory tuning vs "
              "brute-force buffer search\n(decode+write phase of the "
              "gap-array decoder; rel eb 1e-3)\n\n");
  const auto suite = bench::prepare_suite();

  util::Table table("Table I: tuned vs brute-force decode+write");
  std::vector<std::string> columns;
  for (const auto& p : suite) columns.push_back(p.field.name);
  table.set_columns(columns);

  std::vector<std::string> tuned_row, best_row, best_buf_row, best_diff_row,
      worst_row, worst_buf_row, worst_diff_row, overhead_row, with_oh_row;
  for (const auto& p : suite) {
    const SweepResult r = sweep(p);
    const double tuned_gbps = bench::gbps(p.quant_bytes(), r.tuned_s);
    const double best_gbps = bench::gbps(p.quant_bytes(), r.best_s);
    const double worst_gbps = bench::gbps(p.quant_bytes(), r.worst_s);
    const double with_oh =
        bench::gbps(p.quant_bytes(), r.tuned_s + r.tune_overhead_s);
    tuned_row.push_back(util::fmt(tuned_gbps, 1));
    best_row.push_back(util::fmt(best_gbps, 1));
    best_buf_row.push_back(std::to_string(r.best_buffer));
    best_diff_row.push_back(
        util::fmt(100.0 * (best_gbps - tuned_gbps) / tuned_gbps, 1) + "%");
    worst_row.push_back(util::fmt(worst_gbps, 1));
    worst_buf_row.push_back(std::to_string(r.worst_buffer));
    worst_diff_row.push_back(
        util::fmt(100.0 * (tuned_gbps - worst_gbps) / tuned_gbps, 1) + "%");
    overhead_row.push_back(
        util::fmt(r.tune_overhead_s * 1e6, 0) + "us");
    with_oh_row.push_back(util::fmt(with_oh, 1));
  }
  table.add_row("tuned GB/s", tuned_row);
  table.add_row("best brute-force GB/s", best_row);
  table.add_row("  buffer size (symbols)", best_buf_row);
  table.add_row("  % diff. from tuned", best_diff_row);
  table.add_row("worst brute-force GB/s", worst_row);
  table.add_row("  buffer size (symbols)", worst_buf_row);
  table.add_row("  % penalty avoided", worst_diff_row);
  table.add_row("tuning overhead", overhead_row);
  table.add_row("tuned w/ overhead GB/s", with_oh_row);
  table.print();

  std::printf("\nPaper shapes to compare against: tuned throughput within "
              "~10%% of the brute-force best\n(sometimes better, because "
              "different sections get different buffers), and up to ~40%%\n"
              "penalty avoided relative to the worst fixed size.\n");
  return 0;
}
