// CompressionService soak driver: sustained mixed traffic from 64 concurrent
// simulated clients (8 driver threads x 8 clients, every workload seeded)
// through one service instance, with the full observability stack live.
//
// Gated properties (all deterministic booleans in BENCH_service.json):
//  * zero lost/duplicated responses — every admitted request's future yields
//    exactly one verified response (decompress bit-identical to the client's
//    reference decode, chunk/range bit-identical to the matching slice), and
//    the service's own accounting agrees: completed == accepted, failed == 0.
//  * worker-count invariance — a compact multi-client workload produces
//    bit-identical archives, floats, and range slices on a (1 worker,
//    1 dispatcher) service and a (4 workers, 3 dispatchers) service.
//  * bounded residency — the "reader.frame_bytes" registry gauge (which
//    aggregates every open reader) peaks under the configured ceiling:
//    (workers + dispatchers * (2*workers + 2) + dispatchers) * max frame —
//    pool decode tasks hold one frame each, each dispatcher-run range
//    request prefetches at most max(2, 2*workers) frames, chunk decodes one.
//  * deterministic backpressure — a fixed paused-submit script is replayed
//    twice; both runs must reject exactly the same (expected) count.
//  * histograms present — all eight per-class "service.*" histograms appear
//    in the exported snapshot with nonzero counts.
//
// Wall-clock metrics (guarded with wide tolerances): sustained request
// throughput and the chunk-request p99 service latency.
//
//   ./bench_service_soak                 # table on stdout
//   ./bench_service_soak --json [path]   # also write BENCH_service.json
//
// OHD_BENCH_SCALE scales the per-client field size (default 1.0 => 16384
// elements per client; CI smoke uses 0.05).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

constexpr std::size_t kClients = 64;
constexpr std::size_t kDrivers = 8;
constexpr std::size_t kRounds = 12;  // mixed requests per client
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kDispatchers = 3;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::vector<float> client_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 0.02 * rng.normal();
    v[i] = static_cast<float>(
        std::sin(0.004 * static_cast<double>(i)) + acc * 0.1);
  }
  return v;
}

/// Submit with bounded-impatience retry: ServiceBusy is the expected
/// backpressure signal under soak load, so drivers back off and retry until
/// admitted (counting the retries).
template <typename Fn>
auto submit_retrying(Fn&& fn, std::atomic<std::uint64_t>& busy_retries)
    -> decltype(fn()) {
  for (;;) {
    try {
      return fn();
    } catch (const service::ServiceBusy&) {
      busy_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

struct SoakOutcome {
  std::uint64_t submitted = 0;   // admitted requests (driver-side count)
  std::uint64_t responses = 0;   // futures that yielded a response
  std::uint64_t verified = 0;    // responses that matched their reference
  std::uint64_t busy_retries = 0;
  std::uint64_t max_frame_bytes = 0;  // largest frame across all archives
  double wall_s = 0.0;
  bool ok = true;
};

/// One client's state during the soak: its reference decode plus the open
/// handle the mixed rounds hit.
struct ClientState {
  service::ClientId id = 0;
  service::ArchiveHandle handle = 0;
  std::size_t elems = 0;
  std::size_t chunks = 0;
  std::vector<float> reference;
  util::Xoshiro256 rng{0};
};

SoakOutcome run_soak(service::CompressionService& svc, std::size_t elems,
                     std::size_t chunk_elems) {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> busy_retries{0};
  std::atomic<std::uint64_t> max_frame{0};
  std::atomic<bool> ok{true};

  util::WallTimer wall;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      const double bounds[] = {1e-2, 1e-3, 1e-4};
      std::vector<ClientState> clients(kClients / kDrivers);

      // Set up each of this driver's clients: negotiate options, compress a
      // seeded field, reopen the archive, take a reference decode.
      for (std::size_t i = 0; i < clients.size(); ++i) {
        const std::size_t global = d * clients.size() + i;
        service::ClientOptions opts;
        opts.rel_error_bound = bounds[global % 3];
        opts.chunk_elems = chunk_elems;
        ClientState& c = clients[i];
        c.id = svc.open_client(opts);
        c.elems = elems;
        c.chunks = (elems + chunk_elems - 1) / chunk_elems;
        c.rng = util::Xoshiro256(0xabcd0000 + global);

        service::CompressJob job;
        job.fields.push_back({"field", client_field(elems, 1000 + global),
                              sz::Dims::d1(elems)});
        auto archive =
            submit_retrying(
                [&] { return svc.submit_compress(c.id, job); }, busy_retries)
                .get()
                .archive;
        submitted.fetch_add(1, std::memory_order_relaxed);
        responses.fetch_add(1, std::memory_order_relaxed);
        verified.fetch_add(1, std::memory_order_relaxed);

        {
          // Driver-side probe for the residency ceiling: footer-first open
          // costs only head+index reads and never fetches a frame.
          const pipeline::MemorySource probe_src(archive);
          const pipeline::ArchiveReader probe(probe_src);
          std::uint64_t seen = max_frame.load(std::memory_order_relaxed);
          while (probe.max_frame_bytes() > seen &&
                 !max_frame.compare_exchange_weak(seen, probe.max_frame_bytes(),
                                                  std::memory_order_relaxed)) {
          }
        }
        c.handle = svc.open_archive(
            c.id, std::make_shared<pipeline::OwningMemorySource>(
                      std::move(archive)));
        auto ref = submit_retrying(
                       [&] { return svc.submit_decompress(c.id, c.handle); },
                       busy_retries)
                       .get();
        submitted.fetch_add(1, std::memory_order_relaxed);
        responses.fetch_add(1, std::memory_order_relaxed);
        verified.fetch_add(1, std::memory_order_relaxed);
        c.reference = std::move(ref.fields.at(0).decode.data);
        if (c.reference.size() != elems) ok.store(false);
      }

      // Mixed rounds: submit one request per client (up to 8 in flight for
      // this driver, 64 service-wide), then collect and verify the wave.
      using FloatsFuture = std::future<std::vector<float>>;
      using DecompFuture = std::future<pipeline::BatchDecompressResult>;
      struct Pending {
        std::variant<DecompFuture, FloatsFuture> future;
        std::size_t begin = 0;  // verified slice [begin, end)
        std::size_t end = 0;
      };
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<Pending> wave(clients.size());
        for (std::size_t i = 0; i < clients.size(); ++i) {
          ClientState& c = clients[i];
          Pending& p = wave[i];
          switch (c.rng.bounded(3)) {
            case 0:
              p.future = submit_retrying(
                  [&] { return svc.submit_decompress(c.id, c.handle); },
                  busy_retries);
              p.begin = 0;
              p.end = c.elems;
              break;
            case 1: {
              const std::size_t chunk = c.rng.bounded(c.chunks);
              p.begin = chunk * chunk_elems;
              p.end = std::min(c.elems, p.begin + chunk_elems);
              p.future = submit_retrying(
                  [&] { return svc.submit_chunk(c.id, c.handle, 0, chunk); },
                  busy_retries);
              break;
            }
            default: {
              const std::size_t begin = c.rng.bounded(c.elems - 1);
              const std::size_t len = 1 + c.rng.bounded(c.elems - begin - 1);
              p.begin = begin;
              p.end = std::min(c.elems, begin + len);
              p.future = submit_retrying(
                  [&] {
                    return svc.submit_range(c.id, c.handle, 0, p.begin, p.end);
                  },
                  busy_retries);
              break;
            }
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < clients.size(); ++i) {
          ClientState& c = clients[i];
          Pending& p = wave[i];
          std::vector<float> got;
          if (auto* df = std::get_if<DecompFuture>(&p.future)) {
            got = std::move(df->get().fields.at(0).decode.data);
          } else {
            got = std::get<FloatsFuture>(p.future).get();
          }
          responses.fetch_add(1, std::memory_order_relaxed);
          const bool match =
              got.size() == p.end - p.begin &&
              std::equal(got.begin(), got.end(), c.reference.begin() +
                                                    static_cast<std::ptrdiff_t>(
                                                        p.begin));
          if (match) {
            verified.fetch_add(1, std::memory_order_relaxed);
          } else {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();

  SoakOutcome out;
  out.wall_s = wall.seconds();
  out.submitted = submitted.load();
  out.responses = responses.load();
  out.verified = verified.load();
  out.busy_retries = busy_retries.load();
  out.max_frame_bytes = max_frame.load();
  out.ok = ok.load();
  return out;
}

/// Fixed paused-submit script: with dispatchers idle, exactly
/// max_queue_depth submits are admitted and the rest rejected. Returns
/// {accepted, rejected} for one replay.
std::pair<std::uint64_t, std::uint64_t> rejection_script() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 4;
  cfg.max_inflight_per_client = 100;
  service::CompressionService svc(cfg);
  const service::ClientId client = svc.open_client();
  service::CompressJob job;
  job.fields.push_back(
      {"f", client_field(2048, 77), sz::Dims::d1(2048)});

  svc.pause();
  std::vector<std::future<service::CompressResult>> admitted;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 7; ++i) {
    try {
      admitted.push_back(svc.submit_compress(client, job));
    } catch (const service::ServiceBusy&) {
      ++rejected;
    }
  }
  svc.resume();
  for (auto& f : admitted) f.get();
  return {svc.stats().accepted, rejected};
}

/// Compact multi-client workload digest for the invariance check.
struct Digest {
  std::vector<std::vector<std::uint8_t>> archives;
  std::vector<std::vector<float>> floats;
  std::vector<std::vector<float>> ranges;

  bool operator==(const Digest& other) const {
    return archives == other.archives && floats == other.floats &&
           ranges == other.ranges;
  }
};

Digest run_invariance(std::size_t workers, std::size_t dispatchers,
                      std::size_t elems) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.dispatchers = dispatchers;
  service::CompressionService svc(cfg);
  Digest digest;
  const double bounds[] = {1e-2, 1e-3, 1e-4, 1e-3};
  for (int c = 0; c < 4; ++c) {
    service::ClientOptions opts;
    opts.rel_error_bound = bounds[c];
    opts.chunk_elems = 1024;
    opts.plan.auto_method = (c % 2 == 1);
    opts.plan.shared_codebook = (c % 2 == 1);
    const service::ClientId client = svc.open_client(opts);
    service::CompressJob job;
    job.fields.push_back({"field",
                          client_field(elems, 500 + static_cast<std::uint64_t>(c)),
                          sz::Dims::d1(elems)});
    auto archive = svc.submit_compress(client, job).get().archive;
    auto copy = archive;
    digest.archives.push_back(std::move(archive));
    const service::ArchiveHandle h = svc.open_archive(
        client,
        std::make_shared<pipeline::OwningMemorySource>(std::move(copy)));
    digest.floats.push_back(std::move(
        svc.submit_decompress(client, h).get().fields.at(0).decode.data));
    digest.ranges.push_back(
        svc.submit_range(client, h, 0, elems / 5, (4 * elems) / 5).get());
  }
  return digest;
}

int run(bool emit_json, const char* json_path) {
  const double scale = bench_scale();
  const auto elems = std::max<std::size_t>(
      2048, static_cast<std::size_t>(16384 * scale));
  const std::size_t chunk_elems = 1024;
  std::printf(
      "soak: %zu clients on %zu drivers, %zu rounds, %zu elems/client "
      "(scale %.3g), service %zu workers + %zu dispatchers\n",
      kClients, kDrivers, kRounds, elems, scale, kWorkers, kDispatchers);

  // ---- Soak phase (telemetry live for the whole run) ----------------------
  service::ServiceStats stats;
  SoakOutcome soak;
  std::uint64_t frame_peak = 0;
  bool histograms_present = true;
  std::string snapshot_json;
  double chunk_p99_ms = 0.0;
  {
    const obs::ScopedTelemetry telemetry;
    service::ServiceConfig cfg;
    cfg.workers = kWorkers;
    cfg.dispatchers = kDispatchers;
    cfg.max_queue_depth = 128;
    cfg.max_inflight_per_client = 4;
    cfg.max_open_readers_per_client = 2;
    service::CompressionService svc(cfg);
    soak = run_soak(svc, elems, chunk_elems);
    svc.shutdown();
    stats = svc.stats();

    const auto snap = obs::registry().snapshot();
    if (const auto* g = snap.gauge("reader.frame_bytes")) {
      frame_peak = static_cast<std::uint64_t>(g->peak);
    }
    for (const char* cls : {"compress", "decompress", "chunk", "range"}) {
      for (const char* kind : {".latency_ns", ".queue_wait_ns"}) {
        const std::string name = std::string("service.") + cls + kind;
        const auto* h = snap.histogram(name);
        if (h == nullptr || h->count == 0) histograms_present = false;
      }
    }
    if (const auto* h = snap.histogram("service.chunk.latency_ns")) {
      chunk_p99_ms = static_cast<double>(h->p99_ns) / 1e6;
    }
    snapshot_json = snap.to_json(4);
  }

  // Frame-residency ceiling: pool workers hold one frame per decode task,
  // each dispatcher-run range request prefetches at most max(2, 2*workers)
  // frames, a chunk request holds one.
  const std::uint64_t window = std::max<std::uint64_t>(2, 2 * kWorkers);
  const std::uint64_t ceiling =
      (kWorkers + kDispatchers * (window + 2) + kDispatchers) *
      soak.max_frame_bytes;
  const bool residency_bounded = frame_peak > 0 && frame_peak <= ceiling;

  const bool zero_lost = soak.ok && soak.responses == soak.submitted &&
                         soak.verified == soak.submitted &&
                         stats.completed == soak.submitted &&
                         stats.accepted == soak.submitted &&
                         stats.failed == 0;
  const double throughput =
      static_cast<double>(soak.submitted) / soak.wall_s;

  // ---- Deterministic backpressure -----------------------------------------
  const auto [acc1, rej1] = rejection_script();
  const auto [acc2, rej2] = rejection_script();
  const bool deterministic_rejections =
      acc1 == 4 && rej1 == 3 && acc2 == acc1 && rej2 == rej1;

  // ---- Worker-count invariance --------------------------------------------
  const std::size_t inv_elems = std::max<std::size_t>(2048, elems / 4);
  const bool worker_invariant =
      run_invariance(1, 1, inv_elems) == run_invariance(4, 3, inv_elems);

  std::printf(
      "requests: %llu admitted (+%llu busy retries), %llu responses, "
      "%llu verified => zero lost: %s\n",
      static_cast<unsigned long long>(soak.submitted),
      static_cast<unsigned long long>(soak.busy_retries),
      static_cast<unsigned long long>(soak.responses),
      static_cast<unsigned long long>(soak.verified),
      zero_lost ? "yes" : "NO");
  std::printf(
      "accounting: accepted %llu, completed %llu, failed %llu, rejected "
      "%llu, inflight peak %lld, queue peak %lld\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected()),
      static_cast<long long>(stats.inflight_peak),
      static_cast<long long>(stats.queue_depth_peak));
  std::printf(
      "throughput: %.1f req/s over %.2f s; chunk p99 %.3f ms\n", throughput,
      soak.wall_s, chunk_p99_ms);
  std::printf(
      "residency: frame peak %llu B vs ceiling %llu B (max frame %llu B) "
      "=> bounded: %s\n",
      static_cast<unsigned long long>(frame_peak),
      static_cast<unsigned long long>(ceiling),
      static_cast<unsigned long long>(soak.max_frame_bytes),
      residency_bounded ? "yes" : "NO");
  std::printf("deterministic rejections: %s (4 admitted / 3 rejected x2)\n",
              deterministic_rejections ? "yes" : "NO");
  std::printf("worker-count invariant: %s; service histograms present: %s\n",
              worker_invariant ? "yes" : "NO",
              histograms_present ? "yes" : "NO");

  const bool all_ok = zero_lost && residency_bounded &&
                      deterministic_rejections && worker_invariant &&
                      histograms_present;
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: soak property violated\n");
  }

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"service\",\n"
        "  \"scale\": %.4f,\n"
        "  \"clients\": %zu,\n"
        "  \"drivers\": %zu,\n"
        "  \"rounds\": %zu,\n"
        "  \"elems_per_client\": %zu,\n"
        "  \"workers\": %zu,\n"
        "  \"dispatchers\": %zu,\n"
        "  \"requests_admitted\": %llu,\n"
        "  \"busy_retries\": %llu,\n"
        "  \"responses\": %llu,\n"
        "  \"responses_verified\": %llu,\n"
        "  \"inflight_peak\": %lld,\n"
        "  \"queue_depth_peak\": %lld,\n"
        "  \"frame_peak_bytes\": %llu,\n"
        "  \"frame_ceiling_bytes\": %llu,\n"
        "  \"soak_wall_s\": %.6f,\n"
        "  \"zero_lost\": %s,\n"
        "  \"worker_invariant\": %s,\n"
        "  \"residency_bounded\": %s,\n"
        "  \"deterministic_rejections\": %s,\n"
        "  \"histograms_present\": %s,\n"
        "  \"throughput_req_per_s\": %.2f,\n"
        "  \"chunk_p99_ms\": %.4f,\n"
        "  \"telemetry\": {\n"
        "    \"snapshot\": %s\n"
        "  }\n"
        "}\n",
        scale, kClients, kDrivers, kRounds, elems, kWorkers, kDispatchers,
        static_cast<unsigned long long>(soak.submitted),
        static_cast<unsigned long long>(soak.busy_retries),
        static_cast<unsigned long long>(soak.responses),
        static_cast<unsigned long long>(soak.verified),
        static_cast<long long>(stats.inflight_peak),
        static_cast<long long>(stats.queue_depth_peak),
        static_cast<unsigned long long>(frame_peak),
        static_cast<unsigned long long>(ceiling), soak.wall_s,
        zero_lost ? "true" : "false", worker_invariant ? "true" : "false",
        residency_bounded ? "true" : "false",
        deterministic_rejections ? "true" : "false",
        histograms_present ? "true" : "false", throughput, chunk_p99_ms,
        snapshot_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  return run(emit_json, json_path);
}
