// CompressionService soak driver: sustained mixed traffic from 64 concurrent
// simulated clients (8 driver threads x 8 clients, every workload seeded)
// through one service instance, with the full observability stack live.
//
// Gated properties (all deterministic booleans in BENCH_service.json):
//  * zero lost/duplicated responses — every admitted request's future yields
//    exactly one verified response (decompress bit-identical to the client's
//    reference decode, chunk/range bit-identical to the matching slice), and
//    the service's own accounting agrees: completed == accepted, failed == 0.
//  * worker-count invariance — a compact multi-client workload produces
//    bit-identical archives, floats, and range slices on a (1 worker,
//    1 dispatcher) service and a (4 workers, 3 dispatchers) service.
//  * bounded residency — the "reader.frame_bytes" registry gauge (which
//    aggregates every open reader) peaks under the configured ceiling:
//    (workers + dispatchers * (2*workers + 2) + dispatchers) * max frame —
//    pool decode tasks hold one frame each, each dispatcher-run range
//    request prefetches at most max(2, 2*workers) frames, chunk decodes one.
//  * deterministic backpressure — a fixed paused-submit script is replayed
//    twice; both runs must reject exactly the same (expected) count.
//  * histograms present — all eight per-class "service.*" histograms appear
//    in the exported snapshot with nonzero counts.
//  * chaos soak — every client archive is wrapped in a seeded
//    FaultInjectingSource (transient + short reads) behind the service's
//    ReaderOptions::retry, while drivers race cancels, short deadlines, and
//    overload-priced priorities against the dispatchers. Gated: no future is
//    lost (every admitted request settles exactly once, failed == 0), every
//    admitted byte is released (in-flight bytes reconcile to zero after the
//    drain), every uncancelled result is bit-identical to its fault-free
//    reference decode, and the faults actually fired (io_retries > 0).
//  * deterministic shedding/expiry — fixed paused-submit scripts replayed
//    twice: the priority-shed script must shed exactly the two newest
//    background requests for two interactive submits and reject the next
//    background; the expiry script must expire exactly its three
//    short-deadline requests via the sweeper and complete the rest.
//
// Wall-clock metrics (guarded with wide tolerances): sustained request
// throughput and the chunk-request p99 service latency.
//
//   ./bench_service_soak                 # table on stdout
//   ./bench_service_soak --json [path]   # also write BENCH_service.json
//
// OHD_BENCH_SCALE scales the per-client field size (default 1.0 => 16384
// elements per client; CI smoke uses 0.05).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <span>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/fault_injection.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ohd;

constexpr std::size_t kClients = 64;
constexpr std::size_t kDrivers = 8;
constexpr std::size_t kRounds = 12;  // mixed requests per client
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kDispatchers = 3;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::vector<float> client_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 0.02 * rng.normal();
    v[i] = static_cast<float>(
        std::sin(0.004 * static_cast<double>(i)) + acc * 0.1);
  }
  return v;
}

/// Submit with bounded-impatience retry: ServiceBusy is the expected
/// backpressure signal under soak load, so drivers back off and retry until
/// admitted (counting the retries).
template <typename Fn>
auto submit_retrying(Fn&& fn, std::atomic<std::uint64_t>& busy_retries)
    -> decltype(fn()) {
  for (;;) {
    try {
      return fn();
    } catch (const service::ServiceBusy&) {
      busy_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

struct SoakOutcome {
  std::uint64_t submitted = 0;   // admitted requests (driver-side count)
  std::uint64_t responses = 0;   // futures that yielded a response
  std::uint64_t verified = 0;    // responses that matched their reference
  std::uint64_t busy_retries = 0;
  std::uint64_t max_frame_bytes = 0;  // largest frame across all archives
  double wall_s = 0.0;
  bool ok = true;
};

/// One client's state during the soak: its reference decode plus the open
/// handle the mixed rounds hit.
struct ClientState {
  service::ClientId id = 0;
  service::ArchiveHandle handle = 0;
  std::size_t elems = 0;
  std::size_t chunks = 0;
  std::vector<float> reference;
  util::Xoshiro256 rng{0};
};

SoakOutcome run_soak(service::CompressionService& svc, std::size_t elems,
                     std::size_t chunk_elems) {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> busy_retries{0};
  std::atomic<std::uint64_t> max_frame{0};
  std::atomic<bool> ok{true};

  util::WallTimer wall;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      const double bounds[] = {1e-2, 1e-3, 1e-4};
      std::vector<ClientState> clients(kClients / kDrivers);

      // Set up each of this driver's clients: negotiate options, compress a
      // seeded field, reopen the archive, take a reference decode.
      for (std::size_t i = 0; i < clients.size(); ++i) {
        const std::size_t global = d * clients.size() + i;
        service::ClientOptions opts;
        opts.rel_error_bound = bounds[global % 3];
        opts.chunk_elems = chunk_elems;
        ClientState& c = clients[i];
        c.id = svc.open_client(opts);
        c.elems = elems;
        c.chunks = (elems + chunk_elems - 1) / chunk_elems;
        c.rng = util::Xoshiro256(0xabcd0000 + global);

        service::CompressJob job;
        job.fields.push_back({"field", client_field(elems, 1000 + global),
                              sz::Dims::d1(elems)});
        auto archive =
            submit_retrying(
                [&] { return svc.submit_compress(c.id, job); }, busy_retries)
                .get()
                .archive;
        submitted.fetch_add(1, std::memory_order_relaxed);
        responses.fetch_add(1, std::memory_order_relaxed);
        verified.fetch_add(1, std::memory_order_relaxed);

        {
          // Driver-side probe for the residency ceiling: footer-first open
          // costs only head+index reads and never fetches a frame.
          const pipeline::MemorySource probe_src(archive);
          const pipeline::ArchiveReader probe(probe_src);
          std::uint64_t seen = max_frame.load(std::memory_order_relaxed);
          while (probe.max_frame_bytes() > seen &&
                 !max_frame.compare_exchange_weak(seen, probe.max_frame_bytes(),
                                                  std::memory_order_relaxed)) {
          }
        }
        c.handle = svc.open_archive(
            c.id, std::make_shared<pipeline::OwningMemorySource>(
                      std::move(archive)));
        auto ref = submit_retrying(
                       [&] { return svc.submit_decompress(c.id, c.handle).future; },
                       busy_retries)
                       .get();
        submitted.fetch_add(1, std::memory_order_relaxed);
        responses.fetch_add(1, std::memory_order_relaxed);
        verified.fetch_add(1, std::memory_order_relaxed);
        c.reference = std::move(ref.fields.at(0).decode.data);
        if (c.reference.size() != elems) ok.store(false);
      }

      // Mixed rounds: submit one request per client (up to 8 in flight for
      // this driver, 64 service-wide), then collect and verify the wave.
      using FloatsFuture = std::future<std::vector<float>>;
      using DecompFuture = std::future<pipeline::BatchDecompressResult>;
      struct Pending {
        std::variant<DecompFuture, FloatsFuture> future;
        std::size_t begin = 0;  // verified slice [begin, end)
        std::size_t end = 0;
      };
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<Pending> wave(clients.size());
        for (std::size_t i = 0; i < clients.size(); ++i) {
          ClientState& c = clients[i];
          Pending& p = wave[i];
          switch (c.rng.bounded(3)) {
            case 0:
              p.future = submit_retrying(
                  [&] { return svc.submit_decompress(c.id, c.handle).future; },
                  busy_retries);
              p.begin = 0;
              p.end = c.elems;
              break;
            case 1: {
              const std::size_t chunk = c.rng.bounded(c.chunks);
              p.begin = chunk * chunk_elems;
              p.end = std::min(c.elems, p.begin + chunk_elems);
              p.future = submit_retrying(
                  [&] { return svc.submit_chunk(c.id, c.handle, 0, chunk).future; },
                  busy_retries);
              break;
            }
            default: {
              const std::size_t begin = c.rng.bounded(c.elems - 1);
              const std::size_t len = 1 + c.rng.bounded(c.elems - begin - 1);
              p.begin = begin;
              p.end = std::min(c.elems, begin + len);
              p.future = submit_retrying(
                  [&] {
                    return svc.submit_range(c.id, c.handle, 0, p.begin, p.end)
                        .future;
                  },
                  busy_retries);
              break;
            }
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < clients.size(); ++i) {
          ClientState& c = clients[i];
          Pending& p = wave[i];
          std::vector<float> got;
          if (auto* df = std::get_if<DecompFuture>(&p.future)) {
            got = std::move(df->get().fields.at(0).decode.data);
          } else {
            got = std::get<FloatsFuture>(p.future).get();
          }
          responses.fetch_add(1, std::memory_order_relaxed);
          const bool match =
              got.size() == p.end - p.begin &&
              std::equal(got.begin(), got.end(), c.reference.begin() +
                                                    static_cast<std::ptrdiff_t>(
                                                        p.begin));
          if (match) {
            verified.fetch_add(1, std::memory_order_relaxed);
          } else {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();

  SoakOutcome out;
  out.wall_s = wall.seconds();
  out.submitted = submitted.load();
  out.responses = responses.load();
  out.verified = verified.load();
  out.busy_retries = busy_retries.load();
  out.max_frame_bytes = max_frame.load();
  out.ok = ok.load();
  return out;
}

/// Fixed paused-submit script: with dispatchers idle, exactly
/// max_queue_depth submits are admitted and the rest rejected. Returns
/// {accepted, rejected} for one replay.
std::pair<std::uint64_t, std::uint64_t> rejection_script() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 4;
  cfg.max_inflight_per_client = 100;
  service::CompressionService svc(cfg);
  const service::ClientId client = svc.open_client();
  service::CompressJob job;
  job.fields.push_back(
      {"f", client_field(2048, 77), sz::Dims::d1(2048)});

  svc.pause();
  std::vector<std::future<service::CompressResult>> admitted;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 7; ++i) {
    try {
      admitted.push_back(svc.submit_compress(client, job).future);
    } catch (const service::ServiceBusy&) {
      ++rejected;
    }
  }
  svc.resume();
  for (auto& f : admitted) f.get();
  return {svc.stats().accepted, rejected};
}

/// Compact multi-client workload digest for the invariance check.
struct Digest {
  std::vector<std::vector<std::uint8_t>> archives;
  std::vector<std::vector<float>> floats;
  std::vector<std::vector<float>> ranges;

  bool operator==(const Digest& other) const {
    return archives == other.archives && floats == other.floats &&
           ranges == other.ranges;
  }
};

Digest run_invariance(std::size_t workers, std::size_t dispatchers,
                      std::size_t elems) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.dispatchers = dispatchers;
  service::CompressionService svc(cfg);
  Digest digest;
  const double bounds[] = {1e-2, 1e-3, 1e-4, 1e-3};
  for (int c = 0; c < 4; ++c) {
    service::ClientOptions opts;
    opts.rel_error_bound = bounds[c];
    opts.chunk_elems = 1024;
    opts.plan.auto_method = (c % 2 == 1);
    opts.plan.shared_codebook = (c % 2 == 1);
    const service::ClientId client = svc.open_client(opts);
    service::CompressJob job;
    job.fields.push_back({"field",
                          client_field(elems, 500 + static_cast<std::uint64_t>(c)),
                          sz::Dims::d1(elems)});
    auto archive = svc.submit_compress(client, job).get().archive;
    auto copy = archive;
    digest.archives.push_back(std::move(archive));
    const service::ArchiveHandle h = svc.open_archive(
        client,
        std::make_shared<pipeline::OwningMemorySource>(std::move(copy)));
    digest.floats.push_back(std::move(
        svc.submit_decompress(client, h).get().fields.at(0).decode.data));
    digest.ranges.push_back(
        svc.submit_range(client, h, 0, elems / 5, (4 * elems) / 5).get());
  }
  return digest;
}

// ---- Chaos soak -------------------------------------------------------------

/// Owning fault wrapper: FaultInjectingSource borrows its inner source, so
/// the archive bytes and the injector must travel together behind the one
/// shared_ptr the service holds.
struct FaultyArchiveSource : pipeline::ByteSource {
  FaultyArchiveSource(std::vector<std::uint8_t> bytes,
                      pipeline::FaultSpec spec)
      : mem(std::move(bytes)), faults(mem, spec) {}
  std::uint64_t size() const override { return faults.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override {
    faults.read_at(offset, out);
  }
  pipeline::OwningMemorySource mem;
  pipeline::FaultInjectingSource faults;
};

struct ChaosOutcome {
  std::uint64_t admitted = 0;   // driver-side admitted round requests
  std::uint64_t settled = 0;    // futures that yielded value or verdict
  std::uint64_t completed = 0;  // futures that yielded a value
  std::uint64_t io_retries = 0;
  bool zero_lost = false;
  bool bit_identical = false;
  bool quota_reconciled = false;
  bool faults_observed = false;
};

/// Fault-injected request-lifecycle storm: every archive read may fail or
/// come up short (retried transparently by the service's ReaderOptions),
/// drivers cancel a seeded quarter of their submissions, attach occasional
/// sub-millisecond deadlines, and mix priorities against a small queue so
/// overload shedding fires. The only acceptable future outcomes are a
/// bit-identical result or one of the three lifecycle verdicts.
ChaosOutcome run_chaos(std::size_t elems, std::size_t chunk_elems) {
  constexpr std::size_t kChaosClients = 8;
  constexpr std::size_t kChaosDrivers = 4;
  constexpr std::size_t kChaosRounds = 10;

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 2;
  cfg.max_queue_depth = 8;
  cfg.max_inflight_per_client = 4;
  cfg.reader.retry.max_attempts = 8;
  service::CompressionService svc(cfg);

  struct ChaosClient {
    service::ClientId id = 0;
    service::ArchiveHandle handle = 0;
    std::size_t elems = 0;
    std::size_t chunks = 0;
    std::vector<float> reference;
  };
  std::vector<ChaosClient> clients(kChaosClients);
  for (std::size_t c = 0; c < kChaosClients; ++c) {
    service::ClientOptions opts;
    opts.chunk_elems = chunk_elems;
    ChaosClient& cc = clients[c];
    cc.id = svc.open_client(opts);
    cc.elems = elems;
    cc.chunks = (elems + chunk_elems - 1) / chunk_elems;
    service::CompressJob job;
    job.fields.push_back(
        {"field", client_field(elems, 9000 + c), sz::Dims::d1(elems)});
    auto archive = svc.submit_compress(cc.id, job).get().archive;
    {
      // Fault-free reference decode through a pristine copy of the archive.
      auto copy = archive;
      const service::ArchiveHandle ref = svc.open_archive(
          cc.id,
          std::make_shared<pipeline::OwningMemorySource>(std::move(copy)));
      cc.reference = std::move(
          svc.submit_decompress(cc.id, ref).get().fields.at(0).decode.data);
      svc.close_archive(cc.id, ref);
    }
    pipeline::FaultSpec spec;
    spec.seed = 0x900d + c;
    spec.transient_read_rate = 0.08;
    spec.short_read_rate = 0.04;
    cc.handle = svc.open_archive(
        cc.id, std::make_shared<FaultyArchiveSource>(std::move(archive), spec));
  }
  // Requests the setup itself ran through the service (per client: the
  // compress and the reference decompress).
  const std::uint64_t setup_requests = 2 * kChaosClients;

  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> settled{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> mismatched{0};
  std::atomic<std::uint64_t> unexpected{0};

  std::vector<std::thread> drivers;
  drivers.reserve(kChaosDrivers);
  for (std::size_t d = 0; d < kChaosDrivers; ++d) {
    drivers.emplace_back([&, d] {
      using FloatsFuture = std::future<std::vector<float>>;
      using DecompFuture = std::future<pipeline::BatchDecompressResult>;
      struct Pending {
        std::variant<DecompFuture, FloatsFuture> future;
        const ChaosClient* client = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
      };
      util::Xoshiro256 rng(0xc4a05 + d);
      for (std::size_t round = 0; round < kChaosRounds; ++round) {
        std::vector<Pending> wave;
        for (std::size_t i = d; i < kChaosClients; i += kChaosDrivers) {
          ChaosClient& c = clients[i];
          // Two submissions per client per round keep the small queue near
          // its high-water mark so shedding genuinely fires.
          for (int k = 0; k < 2; ++k) {
            service::RequestOptions opts;
            opts.priority =
                static_cast<service::Priority>(rng.bounded(3));
            if (rng.bounded(8) == 0) {
              opts.deadline = service::Deadline::after(
                  std::chrono::microseconds(300));
            }
            Pending p;
            p.client = &c;
            service::RequestId id = 0;
            try {
              switch (rng.bounded(3)) {
                case 0: {
                  auto sub = svc.submit_decompress(c.id, c.handle, opts);
                  id = sub.id;
                  p.future = std::move(sub.future);
                  p.begin = 0;
                  p.end = c.elems;
                  break;
                }
                case 1: {
                  const std::size_t chunk = rng.bounded(c.chunks);
                  p.begin = chunk * chunk_elems;
                  p.end = std::min(c.elems, p.begin + chunk_elems);
                  auto sub = svc.submit_chunk(c.id, c.handle, 0, chunk, opts);
                  id = sub.id;
                  p.future = std::move(sub.future);
                  break;
                }
                default: {
                  const std::size_t begin = rng.bounded(c.elems - 1);
                  const std::size_t len =
                      1 + rng.bounded(c.elems - begin - 1);
                  p.begin = begin;
                  p.end = std::min(c.elems, begin + len);
                  auto sub =
                      svc.submit_range(c.id, c.handle, 0, p.begin, p.end, opts);
                  id = sub.id;
                  p.future = std::move(sub.future);
                  break;
                }
              }
            } catch (const service::ServiceBusy&) {
              continue;  // not admitted (cap or overload): nothing to settle
            }
            admitted.fetch_add(1, std::memory_order_relaxed);
            // A seeded quarter of admitted requests get cancelled right
            // away — racing the dispatcher on the same id.
            if (rng.bounded(4) == 0) (void)svc.cancel(id);
            wave.push_back(std::move(p));
          }
        }
        for (Pending& p : wave) {
          try {
            std::vector<float> got;
            if (auto* df = std::get_if<DecompFuture>(&p.future)) {
              got = std::move(df->get().fields.at(0).decode.data);
            } else {
              got = std::get<FloatsFuture>(p.future).get();
            }
            completed.fetch_add(1, std::memory_order_relaxed);
            const bool match =
                got.size() == p.end - p.begin &&
                std::equal(got.begin(), got.end(),
                           p.client->reference.begin() +
                               static_cast<std::ptrdiff_t>(p.begin));
            if (!match) mismatched.fetch_add(1, std::memory_order_relaxed);
          } catch (const service::RequestCancelled&) {
          } catch (const service::DeadlineExceeded&) {
          } catch (const service::ServiceOverloaded&) {
          } catch (...) {
            unexpected.fetch_add(1, std::memory_order_relaxed);
          }
          settled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  svc.shutdown();
  const service::ServiceStats stats = svc.stats();

  ChaosOutcome out;
  out.admitted = admitted.load();
  out.settled = settled.load();
  out.completed = completed.load();
  out.io_retries = stats.io_retries;
  out.zero_lost = out.settled == out.admitted && unexpected.load() == 0 &&
                  stats.accepted == out.admitted + setup_requests &&
                  stats.settled() == stats.accepted && stats.failed == 0;
  out.bit_identical = mismatched.load() == 0 && out.completed > 0;
  out.quota_reconciled = stats.inflight == 0 && stats.inflight_bytes == 0;
  out.faults_observed = stats.io_retries > 0;
  return out;
}

// ---- Deterministic shed / expiry scripts ------------------------------------

/// Fixed paused-submit shed script: 4 background requests fill the queue,
/// 2 interactive submits shed the 2 newest of them, a further background
/// submit is rejected outright, and the 4 survivors complete after resume.
/// Returns (accepted, shed, rejected, completed, futures_ok).
struct ShedScriptResult {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  bool futures_ok = false;

  bool operator==(const ShedScriptResult& o) const {
    return accepted == o.accepted && shed == o.shed && rejected == o.rejected &&
           completed == o.completed && futures_ok == o.futures_ok;
  }
};

ShedScriptResult shed_script() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.max_queue_depth = 4;
  cfg.max_inflight_per_client = 100;
  service::CompressionService svc(cfg);
  const service::ClientId client = svc.open_client();
  service::CompressJob job;
  job.fields.push_back({"f", client_field(2048, 88), sz::Dims::d1(2048)});

  svc.pause();
  service::RequestOptions bg;
  bg.priority = service::Priority::Background;
  std::vector<service::Submission<service::CompressResult>> background;
  for (int i = 0; i < 4; ++i) {
    background.push_back(svc.submit_compress(client, job, bg));
  }
  service::RequestOptions interactive;
  interactive.priority = service::Priority::Interactive;
  auto i1 = svc.submit_compress(client, job, interactive);
  auto i2 = svc.submit_compress(client, job, interactive);

  ShedScriptResult r;
  try {
    svc.submit_compress(client, job, bg);
  } catch (const service::ServiceOverloaded&) {
    ++r.rejected;
  }
  // The two newest background futures hold ServiceOverloaded already.
  bool shed_ok = true;
  for (int i = 2; i < 4; ++i) {
    try {
      background[static_cast<std::size_t>(i)].get();
      shed_ok = false;
    } catch (const service::ServiceOverloaded&) {
    } catch (...) {
      shed_ok = false;
    }
  }
  svc.resume();
  bool done_ok = true;
  try {
    done_ok = !background[0].get().archive.empty() &&
              !background[1].get().archive.empty() &&
              !i1.get().archive.empty() && !i2.get().archive.empty();
  } catch (...) {
    done_ok = false;
  }
  const service::ServiceStats stats = svc.stats();
  r.accepted = stats.accepted;
  r.shed = stats.shed;
  r.completed = stats.completed;
  r.futures_ok = shed_ok && done_ok;
  return r;
}

/// Fixed paused-submit expiry script: 3 requests with a 2 ms deadline expire
/// via the sweeper while the service is paused; the 2 without deadlines
/// complete after resume. Returns (expired, completed, futures_ok).
struct ExpiryScriptResult {
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  bool futures_ok = false;

  bool operator==(const ExpiryScriptResult& o) const {
    return expired == o.expired && completed == o.completed &&
           futures_ok == o.futures_ok;
  }
};

ExpiryScriptResult expiry_script() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 1;
  cfg.sweep_interval = std::chrono::microseconds(200);
  service::CompressionService svc(cfg);
  const service::ClientId client = svc.open_client();
  service::CompressJob job;
  job.fields.push_back({"f", client_field(2048, 99), sz::Dims::d1(2048)});

  svc.pause();
  service::RequestOptions late;
  late.deadline = service::Deadline::after(std::chrono::milliseconds(2));
  std::vector<service::Submission<service::CompressResult>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(svc.submit_compress(client, job, late));
  }
  auto s1 = svc.submit_compress(client, job);
  auto s2 = svc.submit_compress(client, job);

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.stats().expired < 3 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool futures_ok = true;
  for (auto& d : doomed) {
    try {
      d.get();
      futures_ok = false;
    } catch (const service::DeadlineExceeded&) {
    } catch (...) {
      futures_ok = false;
    }
  }
  svc.resume();
  try {
    futures_ok = futures_ok && !s1.get().archive.empty() &&
                 !s2.get().archive.empty();
  } catch (...) {
    futures_ok = false;
  }
  const service::ServiceStats stats = svc.stats();
  return {stats.expired, stats.completed, futures_ok};
}

int run(bool emit_json, const char* json_path) {
  const double scale = bench_scale();
  const auto elems = std::max<std::size_t>(
      2048, static_cast<std::size_t>(16384 * scale));
  const std::size_t chunk_elems = 1024;
  std::printf(
      "soak: %zu clients on %zu drivers, %zu rounds, %zu elems/client "
      "(scale %.3g), service %zu workers + %zu dispatchers\n",
      kClients, kDrivers, kRounds, elems, scale, kWorkers, kDispatchers);

  // ---- Soak phase (telemetry live for the whole run) ----------------------
  service::ServiceStats stats;
  SoakOutcome soak;
  std::uint64_t frame_peak = 0;
  bool histograms_present = true;
  std::string snapshot_json;
  double chunk_p99_ms = 0.0;
  {
    const obs::ScopedTelemetry telemetry;
    service::ServiceConfig cfg;
    cfg.workers = kWorkers;
    cfg.dispatchers = kDispatchers;
    cfg.max_queue_depth = 128;
    cfg.max_inflight_per_client = 4;
    cfg.max_open_readers_per_client = 2;
    service::CompressionService svc(cfg);
    soak = run_soak(svc, elems, chunk_elems);
    svc.shutdown();
    stats = svc.stats();

    const auto snap = obs::registry().snapshot();
    if (const auto* g = snap.gauge("reader.frame_bytes")) {
      frame_peak = static_cast<std::uint64_t>(g->peak);
    }
    for (const char* cls : {"compress", "decompress", "chunk", "range"}) {
      for (const char* kind : {".latency_ns", ".queue_wait_ns"}) {
        const std::string name = std::string("service.") + cls + kind;
        const auto* h = snap.histogram(name);
        if (h == nullptr || h->count == 0) histograms_present = false;
      }
    }
    if (const auto* h = snap.histogram("service.chunk.latency_ns")) {
      chunk_p99_ms = static_cast<double>(h->p99_ns) / 1e6;
    }
    snapshot_json = snap.to_json(4);
  }

  // Frame-residency ceiling: pool workers hold one frame per decode task,
  // each dispatcher-run range request prefetches at most max(2, 2*workers)
  // frames, a chunk request holds one.
  const std::uint64_t window = std::max<std::uint64_t>(2, 2 * kWorkers);
  const std::uint64_t ceiling =
      (kWorkers + kDispatchers * (window + 2) + kDispatchers) *
      soak.max_frame_bytes;
  const bool residency_bounded = frame_peak > 0 && frame_peak <= ceiling;

  const bool zero_lost = soak.ok && soak.responses == soak.submitted &&
                         soak.verified == soak.submitted &&
                         stats.completed == soak.submitted &&
                         stats.accepted == soak.submitted &&
                         stats.failed == 0;
  const double throughput =
      static_cast<double>(soak.submitted) / soak.wall_s;

  // ---- Deterministic backpressure -----------------------------------------
  const auto [acc1, rej1] = rejection_script();
  const auto [acc2, rej2] = rejection_script();
  const bool deterministic_rejections =
      acc1 == 4 && rej1 == 3 && acc2 == acc1 && rej2 == rej1;

  // ---- Worker-count invariance --------------------------------------------
  const std::size_t inv_elems = std::max<std::size_t>(2048, elems / 4);
  const bool worker_invariant =
      run_invariance(1, 1, inv_elems) == run_invariance(4, 3, inv_elems);

  // ---- Chaos soak ---------------------------------------------------------
  const std::size_t chaos_elems = std::max<std::size_t>(2048, elems / 2);
  const ChaosOutcome chaos = run_chaos(chaos_elems, chunk_elems);

  // ---- Deterministic shedding and expiry ----------------------------------
  const ShedScriptResult shed1 = shed_script();
  const ShedScriptResult shed2 = shed_script();
  const ShedScriptResult shed_expected{6, 2, 1, 4, true};
  const bool deterministic_shed =
      shed1 == shed_expected && shed2 == shed_expected;
  const ExpiryScriptResult exp1 = expiry_script();
  const ExpiryScriptResult exp2 = expiry_script();
  const ExpiryScriptResult exp_expected{3, 2, true};
  const bool deterministic_expiry =
      exp1 == exp_expected && exp2 == exp_expected;

  std::printf(
      "requests: %llu admitted (+%llu busy retries), %llu responses, "
      "%llu verified => zero lost: %s\n",
      static_cast<unsigned long long>(soak.submitted),
      static_cast<unsigned long long>(soak.busy_retries),
      static_cast<unsigned long long>(soak.responses),
      static_cast<unsigned long long>(soak.verified),
      zero_lost ? "yes" : "NO");
  std::printf(
      "accounting: accepted %llu, completed %llu, failed %llu, rejected "
      "%llu, inflight peak %lld, queue peak %lld\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected()),
      static_cast<long long>(stats.inflight_peak),
      static_cast<long long>(stats.queue_depth_peak));
  std::printf(
      "throughput: %.1f req/s over %.2f s; chunk p99 %.3f ms\n", throughput,
      soak.wall_s, chunk_p99_ms);
  std::printf(
      "residency: frame peak %llu B vs ceiling %llu B (max frame %llu B) "
      "=> bounded: %s\n",
      static_cast<unsigned long long>(frame_peak),
      static_cast<unsigned long long>(ceiling),
      static_cast<unsigned long long>(soak.max_frame_bytes),
      residency_bounded ? "yes" : "NO");
  std::printf("deterministic rejections: %s (4 admitted / 3 rejected x2)\n",
              deterministic_rejections ? "yes" : "NO");
  std::printf("worker-count invariant: %s; service histograms present: %s\n",
              worker_invariant ? "yes" : "NO",
              histograms_present ? "yes" : "NO");
  std::printf(
      "chaos: %llu admitted, %llu settled (%llu values, %llu io retries) => "
      "zero lost: %s, bit-identical: %s, quota reconciled: %s, faults "
      "observed: %s\n",
      static_cast<unsigned long long>(chaos.admitted),
      static_cast<unsigned long long>(chaos.settled),
      static_cast<unsigned long long>(chaos.completed),
      static_cast<unsigned long long>(chaos.io_retries),
      chaos.zero_lost ? "yes" : "NO", chaos.bit_identical ? "yes" : "NO",
      chaos.quota_reconciled ? "yes" : "NO",
      chaos.faults_observed ? "yes" : "NO");
  std::printf(
      "deterministic shed: %s (6 accepted / 2 shed / 1 rejected / 4 "
      "completed x2); deterministic expiry: %s (3 expired / 2 completed "
      "x2)\n",
      deterministic_shed ? "yes" : "NO", deterministic_expiry ? "yes" : "NO");

  const bool all_ok = zero_lost && residency_bounded &&
                      deterministic_rejections && worker_invariant &&
                      histograms_present && chaos.zero_lost &&
                      chaos.bit_identical && chaos.quota_reconciled &&
                      chaos.faults_observed && deterministic_shed &&
                      deterministic_expiry;
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: soak property violated\n");
  }

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"service\",\n"
        "  \"scale\": %.4f,\n"
        "  \"clients\": %zu,\n"
        "  \"drivers\": %zu,\n"
        "  \"rounds\": %zu,\n"
        "  \"elems_per_client\": %zu,\n"
        "  \"workers\": %zu,\n"
        "  \"dispatchers\": %zu,\n"
        "  \"requests_admitted\": %llu,\n"
        "  \"busy_retries\": %llu,\n"
        "  \"responses\": %llu,\n"
        "  \"responses_verified\": %llu,\n"
        "  \"inflight_peak\": %lld,\n"
        "  \"queue_depth_peak\": %lld,\n"
        "  \"frame_peak_bytes\": %llu,\n"
        "  \"frame_ceiling_bytes\": %llu,\n"
        "  \"soak_wall_s\": %.6f,\n"
        "  \"zero_lost\": %s,\n"
        "  \"worker_invariant\": %s,\n"
        "  \"residency_bounded\": %s,\n"
        "  \"deterministic_rejections\": %s,\n"
        "  \"histograms_present\": %s,\n"
        "  \"chaos_admitted\": %llu,\n"
        "  \"chaos_settled\": %llu,\n"
        "  \"chaos_io_retries\": %llu,\n"
        "  \"chaos_zero_lost\": %s,\n"
        "  \"chaos_bit_identical\": %s,\n"
        "  \"chaos_quota_reconciled\": %s,\n"
        "  \"chaos_faults_observed\": %s,\n"
        "  \"deterministic_shed\": %s,\n"
        "  \"deterministic_expiry\": %s,\n"
        "  \"throughput_req_per_s\": %.2f,\n"
        "  \"chunk_p99_ms\": %.4f,\n"
        "  \"telemetry\": {\n"
        "    \"snapshot\": %s\n"
        "  }\n"
        "}\n",
        scale, kClients, kDrivers, kRounds, elems, kWorkers, kDispatchers,
        static_cast<unsigned long long>(soak.submitted),
        static_cast<unsigned long long>(soak.busy_retries),
        static_cast<unsigned long long>(soak.responses),
        static_cast<unsigned long long>(soak.verified),
        static_cast<long long>(stats.inflight_peak),
        static_cast<long long>(stats.queue_depth_peak),
        static_cast<unsigned long long>(frame_peak),
        static_cast<unsigned long long>(ceiling), soak.wall_s,
        zero_lost ? "true" : "false", worker_invariant ? "true" : "false",
        residency_bounded ? "true" : "false",
        deterministic_rejections ? "true" : "false",
        histograms_present ? "true" : "false",
        static_cast<unsigned long long>(chaos.admitted),
        static_cast<unsigned long long>(chaos.settled),
        static_cast<unsigned long long>(chaos.io_retries),
        chaos.zero_lost ? "true" : "false",
        chaos.bit_identical ? "true" : "false",
        chaos.quota_reconciled ? "true" : "false",
        chaos.faults_observed ? "true" : "false",
        deterministic_shed ? "true" : "false",
        deterministic_expiry ? "true" : "false", throughput, chunk_p99_ms,
        snapshot_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  const char* json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  return run(emit_json, json_path);
}
