// Seeded fault-injection matrix driver: exercises the fault-tolerance layer
// end to end against a deterministic fault schedule and reports recovery
// statistics. Four scenarios per seed:
//
//  * retry convergence — a strict streamed decompress over a
//    FaultInjectingSource (transient errors + short reads) with a bounded
//    RetryPolicy must converge to floats bit-identical to the clean run;
//  * truncation salvage — the archive cut at a seed-derived point, reopened
//    with ArchiveReader::open_salvage: every chunk reported Ok must match the
//    reference bit-exactly (zero CRC-invalid bytes surfaced), everything
//    else must be zero-filled and reported Missing/Corrupt;
//  * bit-flip quarantine — one seeded bit flipped inside a known frame; the
//    degraded batch decompress must quarantine exactly that chunk;
//  * torn-write repair — a FaultInjectingSink tears one append mid-session
//    (the crash model); repair_truncated() must re-finalize the prefix into
//    a strictly valid archive whose chunks verify and match the reference.
//
// The schedule is a pure function of the seed, so a failing seed replays
// exactly. CI runs this under ASan+UBSan across a seed matrix and uploads
// the JSON report.
//
//   ./bench_fault_injection                    # table on stdout
//   ./bench_fault_injection --seeds 8          # widen the matrix
//   ./bench_fault_injection --seed-base 100    # disjoint CI matrix legs
//   ./bench_fault_injection --json [path]      # also write FAULT_injection.json
//
// OHD_BENCH_SCALE scales the corpus exactly like bench_stream_io.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/generic.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/fault_injection.hpp"
#include "pipeline/recovery.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace ohd;

constexpr std::size_t kWorkers = 4;

double bench_scale() {
  if (const char* env = std::getenv("OHD_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

std::vector<float> walk_field(const std::vector<std::uint16_t>& stream,
                              std::uint32_t alphabet) {
  std::vector<float> out(stream.size());
  const double mid = alphabet / 2.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    acc += (static_cast<double>(stream[i]) - mid) * 1e-3;
    out[i] = static_cast<float>(acc);
  }
  return out;
}

struct Corpus {
  std::vector<std::vector<float>> data;  // keeps the spec spans alive
  std::vector<pipeline::FieldSpec> specs;
};

Corpus make_corpus(double scale) {
  const auto n1 = static_cast<std::size_t>(196608 * scale);
  Corpus c;
  auto add = [&c](std::string name, std::vector<std::uint16_t> stream,
                  std::uint32_t alphabet, core::Method m, double rel_eb,
                  bool adaptive) {
    c.data.push_back(walk_field(stream, alphabet));
    pipeline::FieldSpec spec;
    spec.name = std::move(name);
    spec.data = c.data.back();
    spec.dims = sz::Dims::d1(c.data.back().size());
    spec.config.method = m;
    spec.config.rel_error_bound = rel_eb;
    spec.chunk_elems = std::max<std::size_t>(512, c.data.back().size() / 16);
    spec.plan.auto_method = adaptive;
    spec.plan.shared_codebook = adaptive;
    c.specs.push_back(spec);
  };
  add("uniform", data::uniform_stream(n1, 64, 301), 64,
      core::Method::SelfSyncOptimized, 1e-3, false);
  add("zipf", data::zipf_stream(n1, 512, 1.1, 302), 512,
      core::Method::GapArrayOptimized, 1e-4, true);
  add("markov", data::markov_stream(n1, 256, 0.005, 303), 256,
      core::Method::CuszNaive, 5e-3, false);
  return c;
}

/// Checks a degraded decode against the clean reference: Ok ranges must be
/// bit-identical, non-Ok ranges zero-filled. Fields match by name — a
/// salvaged reader may hold fewer fields than the reference run.
bool partial_verified(const pipeline::PartialBatchDecompress& partial,
                      const pipeline::BatchDecompressResult& reference) {
  for (std::size_t fi = 0; fi < partial.report.fields.size(); ++fi) {
    const pipeline::FieldReport& fr = partial.report.fields[fi];
    const std::vector<float>& got = partial.result.fields[fi].decode.data;
    const std::vector<float>* ref = nullptr;
    for (const auto& field : reference.fields) {
      if (field.name == fr.name) ref = &field.decode.data;
    }
    if (ref == nullptr) return false;
    for (const pipeline::ChunkReport& cr : fr.chunks) {
      const std::uint64_t count =
          cr.elem_count > 0 ? cr.elem_count : got.size() - cr.elem_offset;
      for (std::uint64_t i = 0; i < count; ++i) {
        const float v = got[cr.elem_offset + i];
        if (cr.status == pipeline::ChunkStatus::Ok) {
          if (v != (*ref)[cr.elem_offset + i]) return false;
        } else if (v != 0.0f) {
          return false;
        }
      }
    }
  }
  return true;
}

struct MatrixTotals {
  // retry convergence
  std::size_t retry_runs = 0;
  std::size_t retry_identical = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t read_faults_injected = 0;
  // truncation salvage
  std::size_t salvage_runs = 0;
  std::size_t salvage_verified = 0;
  std::size_t salvage_chunks_ok = 0;
  std::size_t salvage_chunks_missing = 0;
  std::size_t salvage_chunks_corrupt = 0;
  std::size_t salvage_frames_rejected = 0;
  // bit-flip quarantine
  std::size_t flip_runs = 0;
  std::size_t flip_verified = 0;
  std::size_t flip_quarantined = 0;
  // torn-write repair
  std::size_t repair_runs = 0;
  std::size_t repair_torn = 0;
  std::size_t repair_verified = 0;
  std::size_t repair_chunks_kept = 0;
  std::size_t repair_chunks_dropped = 0;
};

int run(std::size_t seed_base, std::size_t seeds, bool emit_json,
        const char* json_path) {
  const double scale = bench_scale();
  const Corpus corpus = make_corpus(scale);
  pipeline::ThreadPool pool(kWorkers);
  const pipeline::BatchScheduler sched(pool);

  // One preambled archive + clean reference shared by every seed.
  pipeline::MemorySink sink;
  pipeline::ArchiveWriter writer(sink, {.recovery_preambles = true});
  sched.compress_to(writer, corpus.specs);
  writer.finish();
  const std::vector<std::uint8_t>& archive = sink.bytes();
  std::size_t total_chunks = 0;
  for (const auto& f : writer.fields()) total_chunks += f.chunks.size();
  const pipeline::MemorySource clean(archive);
  const pipeline::ArchiveReader clean_reader(clean);
  const pipeline::BatchDecompressResult reference =
      sched.decompress(clean_reader);
  std::printf("archive: %zu B, %zu fields, %zu chunks, seeds %zu..%zu\n",
              archive.size(), corpus.specs.size(), total_chunks, seed_base,
              seed_base + seeds - 1);

  MatrixTotals t;
  for (std::size_t seed = seed_base; seed < seed_base + seeds; ++seed) {
    util::Xoshiro256 rng(seed);  // seed-derived damage choices

    // -- retry convergence ---------------------------------------------------
    {
      pipeline::FaultSpec spec;
      spec.seed = seed;
      spec.transient_read_rate = 0.15;
      spec.short_read_rate = 0.10;
      const pipeline::FaultInjectingSource faulty(clean, spec);
      pipeline::ReaderOptions opts;
      opts.retry.max_attempts = 12;
      const pipeline::ArchiveReader reader(faulty, opts);
      const auto result = sched.decompress(reader);
      bool identical = result.fields.size() == reference.fields.size();
      for (std::size_t i = 0; identical && i < result.fields.size(); ++i) {
        identical = result.fields[i].decode.data ==
                    reference.fields[i].decode.data;
      }
      ++t.retry_runs;
      t.retry_identical += identical;
      t.io_retries += reader.io_retries();
      const pipeline::FaultStats fs = faulty.stats();
      t.read_faults_injected += fs.transient_read_errors + fs.short_reads;
    }

    // -- truncation salvage --------------------------------------------------
    {
      const double frac = 0.10 + 0.85 * rng.uniform();
      const std::size_t cut = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(archive.size()) * frac));
      const std::span<const std::uint8_t> damaged(archive.data(), cut);
      const pipeline::MemorySource source(damaged);
      pipeline::SalvageReport report;
      const pipeline::ArchiveReader reader =
          pipeline::ArchiveReader::open_salvage(source, &report);
      const pipeline::PartialBatchDecompress partial =
          sched.decompress_partial(reader);
      ++t.salvage_runs;
      t.salvage_verified += partial_verified(partial, reference);
      t.salvage_frames_rejected += report.frames_rejected;
      for (const auto& fr : partial.report.fields) {
        for (const auto& cr : fr.chunks) {
          t.salvage_chunks_ok += cr.status == pipeline::ChunkStatus::Ok;
          t.salvage_chunks_missing +=
              cr.status == pipeline::ChunkStatus::Missing;
          t.salvage_chunks_corrupt +=
              cr.status == pipeline::ChunkStatus::Corrupt;
        }
      }
    }

    // -- bit-flip quarantine -------------------------------------------------
    {
      const std::size_t fi = rng.bounded(clean_reader.fields().size());
      const auto& chunks = clean_reader.fields()[fi].chunks;
      const std::size_t ci = rng.bounded(chunks.size());
      const std::uint64_t at = 8 + chunks[ci].payload_offset +
                               rng.bounded(chunks[ci].payload_bytes);
      std::vector<std::uint8_t> flipped(archive);
      flipped[at] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
      const pipeline::MemorySource source(flipped);
      const pipeline::ArchiveReader reader(source);
      const pipeline::PartialBatchDecompress partial =
          sched.decompress_partial(reader);
      std::size_t corrupt = 0;
      bool target_hit = false;
      for (std::size_t f = 0; f < partial.report.fields.size(); ++f) {
        for (const auto& cr : partial.report.fields[f].chunks) {
          if (cr.status == pipeline::ChunkStatus::Corrupt) {
            ++corrupt;
            target_hit |= f == fi && cr.chunk == ci;
          }
        }
      }
      ++t.flip_runs;
      t.flip_quarantined += corrupt;
      t.flip_verified += corrupt == 1 && target_hit &&
                         partial_verified(partial, reference);
    }

    // -- torn-write repair ---------------------------------------------------
    {
      pipeline::MemorySink torn_store;
      pipeline::FaultSpec spec;
      spec.seed = seed;
      spec.torn_write_rate = 0.02;
      spec.max_faults = 1;
      pipeline::FaultInjectingSink torn_sink(torn_store, spec);
      bool torn = false;
      try {
        pipeline::ArchiveWriter torn_writer(torn_sink,
                                            {.recovery_preambles = true});
        sched.compress_to(torn_writer, corpus.specs);
        torn_writer.finish();
      } catch (const pipeline::ArchiveError&) {
        torn = true;
      }
      ++t.repair_runs;
      t.repair_torn += torn;
      const pipeline::MemorySource damaged(torn_store.bytes());
      pipeline::MemorySink repaired_sink;
      const pipeline::RepairReport rr =
          pipeline::repair_truncated(damaged, repaired_sink);
      t.repair_chunks_kept += rr.chunks_kept;
      t.repair_chunks_dropped += rr.chunks_dropped;
      // The repaired archive must be strictly valid: footer-first open,
      // every frame CRC verifies, and every chunk matches the reference.
      const pipeline::MemorySource repaired_src(repaired_sink.bytes());
      const pipeline::ArchiveReader repaired(repaired_src);
      repaired.verify();
      const pipeline::PartialBatchDecompress round =
          sched.decompress_partial(repaired);
      t.repair_verified +=
          round.report.complete() && partial_verified(round, reference);
    }
  }

  const bool all_ok = t.retry_identical == t.retry_runs &&
                      t.salvage_verified == t.salvage_runs &&
                      t.flip_verified == t.flip_runs &&
                      t.repair_verified == t.repair_runs;
  std::printf(
      "retry: %zu/%zu identical (%llu retries over %llu injected faults)\n",
      t.retry_identical, t.retry_runs,
      static_cast<unsigned long long>(t.io_retries),
      static_cast<unsigned long long>(t.read_faults_injected));
  std::printf(
      "salvage: %zu/%zu verified (chunks ok %zu, missing %zu, corrupt %zu; "
      "frames rejected %zu)\n",
      t.salvage_verified, t.salvage_runs, t.salvage_chunks_ok,
      t.salvage_chunks_missing, t.salvage_chunks_corrupt,
      t.salvage_frames_rejected);
  std::printf("bit-flip: %zu/%zu quarantined exactly (%zu chunks)\n",
              t.flip_verified, t.flip_runs, t.flip_quarantined);
  std::printf(
      "repair: %zu/%zu verified (%zu torn sessions; chunks kept %zu, "
      "dropped %zu)\n",
      t.repair_verified, t.repair_runs, t.repair_torn, t.repair_chunks_kept,
      t.repair_chunks_dropped);
  std::printf("all checks passed: %s\n", all_ok ? "yes" : "NO");

  if (emit_json) {
    std::FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"fault_injection\",\n"
        "  \"scale\": %.4f,\n"
        "  \"seed_base\": %zu,\n"
        "  \"seeds\": %zu,\n"
        "  \"archive_bytes\": %zu,\n"
        "  \"total_chunks\": %zu,\n"
        "  \"retry_runs\": %zu,\n"
        "  \"retry_identical\": %zu,\n"
        "  \"io_retries\": %llu,\n"
        "  \"read_faults_injected\": %llu,\n"
        "  \"salvage_runs\": %zu,\n"
        "  \"salvage_verified\": %zu,\n"
        "  \"salvage_chunks_ok\": %zu,\n"
        "  \"salvage_chunks_missing\": %zu,\n"
        "  \"salvage_chunks_corrupt\": %zu,\n"
        "  \"salvage_frames_rejected\": %zu,\n"
        "  \"bitflip_runs\": %zu,\n"
        "  \"bitflip_verified\": %zu,\n"
        "  \"bitflip_chunks_quarantined\": %zu,\n"
        "  \"repair_runs\": %zu,\n"
        "  \"repair_torn_sessions\": %zu,\n"
        "  \"repair_verified\": %zu,\n"
        "  \"repair_chunks_kept\": %zu,\n"
        "  \"repair_chunks_dropped\": %zu,\n"
        "  \"all_checks_passed\": %s\n"
        "}\n",
        scale, seed_base, seeds, archive.size(), total_chunks, t.retry_runs,
        t.retry_identical, static_cast<unsigned long long>(t.io_retries),
        static_cast<unsigned long long>(t.read_faults_injected),
        t.salvage_runs, t.salvage_verified, t.salvage_chunks_ok,
        t.salvage_chunks_missing, t.salvage_chunks_corrupt,
        t.salvage_frames_rejected, t.flip_runs, t.flip_verified,
        t.flip_quarantined, t.repair_runs, t.repair_torn, t.repair_verified,
        t.repair_chunks_kept, t.repair_chunks_dropped,
        all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seed_base = 1;
  std::size_t seeds = 5;
  bool emit_json = false;
  const char* json_path = "FAULT_injection.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed-base") == 0 && i + 1 < argc) {
      seed_base = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--seeds N] [--seed-base B] [--json [path]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (seeds == 0) seeds = 1;
  if (seed_base == 0) seed_base = 1;
  return run(seed_base, seeds, emit_json, json_path);
}
