// Ablation for the paper's §V-A3 remark: "datasets as small as 10 MB can
// exhibit speedups over the baseline cuSZ decoder". Sweeps truncated HACC
// sizes and reports the optimized gap-array speedup at each size.
#include <cstdio>
#include <vector>

#include "common.hpp"

using namespace ohd;

int main() {
  std::printf("Ablation (paper §V-A3): speedup vs dataset size (truncated "
              "HACC, rel eb 1e-3)\n\n");
  std::printf("%14s %16s %18s %9s\n", "floats (MiB)", "baseline (GB/s)",
              "opt. gap (GB/s)", "speedup");
  for (double scale : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const auto p = bench::prepare(data::make_hacc(scale));
    const auto base =
        bench::timed_decode(core::Method::CuszNaive, p.codes, p.alphabet);
    const auto opt = bench::timed_decode(core::Method::GapArrayOptimized,
                                         p.codes, p.alphabet);
    const double g_base = bench::gbps(p.quant_bytes(), base.total());
    const double g_opt = bench::gbps(p.quant_bytes(), opt.total());
    std::printf("%14.1f %16.1f %18.1f %8.2fx\n",
                p.dataset_bytes() / (1024.0 * 1024.0), g_base, g_opt,
                g_opt / g_base);
  }
  std::printf("\nPaper shape to compare against: the speedup persists down "
              "to small inputs, though fixed\nkernel-launch and tuning "
              "overheads eat into it as the dataset shrinks.\n");
  return 0;
}
