// Reproduces paper Table V: decoding throughput (GB/s, relative to the
// quantization-code size) of the five evaluated methods on the eight
// datasets, with per-method speedup over the cuSZ baseline and the
// average-speedup headline numbers (paper: 2.74x opt. self-sync, 3.64x opt.
// gap-array).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ohd;

int main() {
  std::printf("Table V reproduction: decoding throughputs of the five "
              "evaluated methods\n(simulated V100; GB/s relative to "
              "quantization-code bytes; rel eb 1e-3)\n\n");
  const auto suite = bench::prepare_suite();

  const std::vector<core::Method> methods = {
      core::Method::CuszNaive, core::Method::SelfSyncOriginal,
      core::Method::SelfSyncOptimized, core::Method::GapArrayOriginal8Bit,
      core::Method::GapArrayOptimized};

  util::Table table("Table V: decoding throughput (GB/s) and speedup");
  std::vector<std::string> columns;
  for (const auto& p : suite) columns.push_back(p.field.name);
  table.set_columns(columns);

  std::vector<std::string> sizes;
  for (const auto& p : suite) {
    sizes.push_back(util::fmt(util::mebibytes(p.dataset_bytes()), 1));
  }
  table.add_row("size in mebibyte", sizes);

  std::vector<double> baseline_gbps(suite.size(), 0.0);
  std::vector<std::vector<double>> speedups(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row_gbps, row_speedup;
    for (std::size_t d = 0; d < suite.size(); ++d) {
      const auto& p = suite[d];
      const auto phases =
          bench::timed_decode(methods[m], p.codes, p.alphabet);
      const std::uint64_t ref_bytes =
          methods[m] == core::Method::GapArrayOriginal8Bit
              ? p.codes.size()  // 8-bit codes, as in the paper
              : p.quant_bytes();
      const double g = bench::gbps(ref_bytes, phases.total());
      if (m == 0) baseline_gbps[d] = g;
      const double speedup = g / baseline_gbps[d];
      speedups[m].push_back(speedup);
      row_gbps.push_back(util::fmt(g, 1));
      row_speedup.push_back(util::fmt_speedup(speedup));
    }
    table.add_row(core::method_name(methods[m]) + " GB/s", row_gbps);
    table.add_row("  speedup", row_speedup);
  }
  table.print();

  std::printf("\nAverage speedup over baseline (paper: opt. self-sync 2.74x, "
              "opt. gap-array 3.64x):\n");
  for (std::size_t m = 1; m < methods.size(); ++m) {
    std::printf("  %-22s %.2fx\n", core::method_name(methods[m]).c_str(),
                util::mean(speedups[m]));
  }
  return 0;
}
