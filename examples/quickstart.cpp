// Quickstart: compress a scientific field with the cuSZ-style pipeline,
// decompress it with the paper's optimized gap-array Huffman decoder on the
// simulated V100, and verify the error bound.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"

int main() {
  using namespace ohd;

  // 1. A scientific field (synthetic HACC-like particle velocities).
  const data::Field field = data::make_hacc(/*scale=*/0.1);
  std::printf("dataset : %s, %zu floats (%.1f MiB)\n", field.name.c_str(),
              field.data.size(), field.bytes() / (1024.0 * 1024.0));

  // 2. Compress with a point-wise relative error bound of 1e-3 and the
  //    optimized gap-array Huffman stage.
  sz::CompressorConfig config;
  config.rel_error_bound = 1e-3;
  config.method = core::Method::GapArrayOptimized;
  const sz::CompressedBlob blob = sz::compress(field.data, field.dims, config);
  std::printf("compressed: %.2fx (%.1f MiB -> %.1f MiB), %zu outliers\n",
              blob.ratio(), blob.original_bytes() / (1024.0 * 1024.0),
              blob.compressed_bytes() / (1024.0 * 1024.0),
              blob.outliers.size());

  // 3. Decompress on the simulated V100 and inspect the phase timeline.
  cudasim::SimContext ctx;  // defaults to DeviceSpec::v100()
  const sz::DecompressionResult result = sz::decompress(ctx, blob);
  std::printf("decompression (simulated %s):\n", ctx.spec().name.c_str());
  std::printf("  huffman decode : %7.3f ms (%.1f GB/s vs quant codes)\n",
              result.huffman_seconds * 1e3,
              blob.quant_code_bytes() / 1e9 / result.huffman_seconds);
  std::printf("  reverse lorenzo: %7.3f ms\n",
              result.reverse_lorenzo_seconds * 1e3);
  std::printf("  total          : %7.3f ms (%.1f GB/s vs dataset)\n",
              result.total_seconds() * 1e3,
              blob.original_bytes() / 1e9 / result.total_seconds());

  // 4. Verify the error bound held.
  const sz::ErrorStats stats =
      sz::compute_error_stats(field.data, result.data);
  std::printf("max abs error  : %.3g (bound %.3g)  PSNR %.1f dB\n",
              stats.max_abs_error, blob.abs_error_bound, stats.psnr_db);
  return stats.max_abs_error <= blob.abs_error_bound * (1 + 1e-6) ? 0 : 1;
}
