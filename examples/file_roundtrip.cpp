// File round-trip: compress a field, serialize the blob to disk, read it back
// in a fresh "process" (new simulator context), decompress, and verify. This
// is the decoupled producer/consumer workflow the self-synchronization
// decoder exists for — the consumer needs nothing but the blob.
//
//   $ ./examples/file_roundtrip [path]    (default: /tmp/ohd_blob.bin)
#include <cstdio>
#include <fstream>
#include <vector>

#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"
#include "sz/serialize.hpp"

int main(int argc, char** argv) {
  using namespace ohd;
  const std::string path = argc > 1 ? argv[1] : "/tmp/ohd_blob.bin";

  // Producer side: compress with the self-sync layout (no encoder/decoder
  // coupling, so ANY consumer with a canonical-Huffman decoder can read it).
  const data::Field field = data::make_cesm(0.05);
  sz::CompressorConfig config;
  config.method = core::Method::SelfSyncOptimized;
  const auto blob = sz::compress(field.data, field.dims, config);
  {
    const auto bytes = sz::serialize_blob(blob);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu bytes to %s (ratio %.2fx)\n", bytes.size(),
                path.c_str(), blob.ratio());
  }

  // Consumer side: fresh context, read + decompress + verify.
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    bytes.resize(size);
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      std::fprintf(stderr, "failed to read %s\n", path.c_str());
      return 1;
    }
  }
  const auto parsed = sz::deserialize_blob(bytes);
  cudasim::SimContext ctx;
  const auto result = sz::decompress(ctx, parsed);
  const auto stats = sz::compute_error_stats(field.data, result.data);
  std::printf("read back %zu floats, decompressed in %.3f ms (simulated), "
              "max err %.3g (bound %.3g)\n",
              result.data.size(), result.total_seconds() * 1e3,
              stats.max_abs_error, parsed.abs_error_bound);
  return stats.max_abs_error <= parsed.abs_error_bound * (1 + 1e-6) ? 0 : 1;
}
