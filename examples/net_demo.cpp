// Wire-protocol quickstart: one CompressionService behind a loopback
// ServiceServer, two ServiceClients multiplexing requests over it —
// compress, upload + batch-decompress, random-access chunk reads, a cancel
// race, and a forced overload whose typed error frame carries the server's
// retry-after hint that compress_retrying then honors. See
// docs/wire_protocol.md for the frame layout and docs/service_api.md for
// the client quickstart.
//
//   ./example_net_demo
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"

using namespace ohd;

namespace {

std::vector<float> make_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.002 * static_cast<double>(i)) +
                              0.03 * rng.normal());
  }
  return v;
}

double max_abs_error(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return worst;
}

service::CompressJob make_job(const std::vector<float>& field) {
  service::CompressJob job;
  job.fields.push_back({"demo", field, sz::Dims::d1(field.size())});
  return job;
}

}  // namespace

int main() {
  const obs::ScopedTelemetry telemetry;

  // A deliberately small service: 2-deep queue so the overload demo can
  // fill it deterministically while paused.
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.dispatchers = 2;
  cfg.max_queue_depth = 2;
  service::CompressionService svc(cfg);

  // One ephemeral TCP loopback listener; endpoints() names the bound port.
  net::ServiceServer server(svc);
  const net::Endpoint& ep = server.endpoints().front();
  std::printf("server listening on %s\n", ep.describe().c_str());

  // ---- client A: compress, re-upload, decode, random access -------------
  net::ClientConfig acfg;
  acfg.endpoint = ep;
  acfg.rel_error_bound = 1e-3;
  acfg.chunk_elems = 4096;
  net::ServiceClient alice(acfg);

  const std::vector<float> field = make_field(40000, 42);
  const service::CompressResult compressed =
      alice.submit_compress(make_job(field)).get();
  std::printf("alice: compressed %zu floats into %zu archive bytes\n",
              field.size(), compressed.archive.size());

  const service::ArchiveHandle handle =
      alice.open_archive(compressed.archive);
  const net::DecompressBody decoded = alice.submit_decompress(handle).get();
  std::printf("alice: decompressed '%s' (%zu floats), max |err| %.3g\n",
              decoded.fields[0].name.c_str(), decoded.fields[0].data.size(),
              max_abs_error(field, decoded.fields[0].data));

  const std::vector<float> chunk = alice.submit_chunk(handle, 0, 3).get();
  std::printf("alice: chunk 3 of field 0: %zu floats\n", chunk.size());
  alice.close_archive(handle);

  // ---- client B: a cancel race -------------------------------------------
  net::ClientConfig bcfg;
  bcfg.endpoint = ep;
  bcfg.chunk_elems = acfg.chunk_elems;  // same session options as alice
  bcfg.retry.max_attempts = 6;
  bcfg.retry.base_delay = std::chrono::microseconds(500);
  // The retry-after demo below injects the backoff sleep so the honored
  // hint is visible, and un-pauses the service so the retry succeeds.
  std::atomic<bool> resumed{false};
  bcfg.sleep_fn = [&](std::chrono::nanoseconds d) {
    std::printf("bob: backing off %.1f ms (server retry-after hint)\n",
                static_cast<double>(d.count()) / 1e6);
    if (!resumed.exchange(true)) svc.resume();
    std::this_thread::sleep_for(d);
  };
  net::ServiceClient bob(bcfg);

  svc.pause();  // hold dispatch so the cancel deterministically wins
  auto doomed = bob.submit_compress(make_job(field));
  bob.cancel(doomed.id);
  try {
    doomed.get();
    std::printf("bob: cancel lost the race (request completed)\n");
  } catch (const service::RequestCancelled&) {
    std::printf("bob: request %llu cancelled over the wire\n",
                static_cast<unsigned long long>(doomed.id));
  }

  // ---- forced overload -> retry-after -> success -------------------------
  // Still paused: fill the 2-deep queue, then one more submit is rejected
  // with a typed Overloaded error frame carrying a retry_after_ns hint.
  auto fill1 = bob.submit_compress(make_job(field));
  auto fill2 = bob.submit_compress(make_job(field));
  const service::CompressResult after_retry =
      bob.compress_retrying(make_job(field));
  std::printf(
      "bob: overloaded submit converged after %llu retry (%zu archive "
      "bytes, bit-identical to alice's: %s)\n",
      static_cast<unsigned long long>(bob.stats().retries),
      after_retry.archive.size(),
      after_retry.archive == compressed.archive ? "yes" : "no");
  fill1.get();
  fill2.get();

  const net::ServerStats ss = server.stats();
  std::printf(
      "server: %llu connections, %llu frames in / %llu out, %llu error "
      "frames\n",
      static_cast<unsigned long long>(ss.connections_accepted),
      static_cast<unsigned long long>(ss.frames_in),
      static_cast<unsigned long long>(ss.frames_out),
      static_cast<unsigned long long>(ss.error_frames));

  server.shutdown();
  svc.shutdown();
  return 0;
}
