// Multi-field batch archive: compress three datasets with different dims,
// methods, and error bounds into one chunked container on a thread pool,
// ship it through a file, and read it back three ways — full parallel batch
// decompress, random access to a single chunk, and a range decode that only
// touches the covering chunks.
//
//   $ ./examples/batch_archive [path]    (default: /tmp/ohd_archive.bin)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/fields.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "sz/metrics.hpp"

int main(int argc, char** argv) {
  using namespace ohd;
  const std::string path = argc > 1 ? argv[1] : "/tmp/ohd_archive.bin";

  // Producer: three fields, three methods, three error bounds.
  const data::Field hacc = data::make_hacc(0.03);
  const data::Field cesm = data::make_cesm(0.03);
  const data::Field exaalt = data::make_exaalt(0.03);
  std::vector<pipeline::FieldSpec> specs(3);
  specs[0] = {hacc.name, hacc.data, hacc.dims, {}, 1u << 15, {}};
  specs[0].config.method = core::Method::GapArrayOptimized;
  specs[1] = {cesm.name, cesm.data, cesm.dims, {}, 1u << 15, {}};
  specs[1].config.method = core::Method::SelfSyncOptimized;
  specs[1].config.rel_error_bound = 1e-4;
  specs[2] = {exaalt.name, exaalt.data, exaalt.dims, {}, 1u << 15, {}};
  specs[2].config.method = core::Method::CuszNaive;
  specs[2].config.rel_error_bound = 5e-3;
  // Adaptive planning (container v2): each chunk gets the cheapest decoder
  // method for its local statistics, and chunks reference a field-level
  // shared codebook whenever that is byte-cheaper than a private one.
  for (auto& spec : specs) {
    spec.plan.auto_method = true;
    spec.plan.shared_codebook = true;
  }

  pipeline::ThreadPool pool(4);
  pipeline::BatchScheduler scheduler(pool);
  const pipeline::Container archive = scheduler.compress(specs);
  {
    const auto bytes = archive.serialize();
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::uint64_t raw = 0;
    for (const auto& s : specs) raw += s.data.size() * 4;
    std::printf("wrote %s: %zu bytes, %llu raw (%.2fx), %zu fields\n",
                path.c_str(), bytes.size(),
                static_cast<unsigned long long>(raw),
                static_cast<double>(raw) / static_cast<double>(bytes.size()),
                archive.fields().size());
  }

  // Consumer: read back and decode three ways.
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in) {
      std::fprintf(stderr, "failed to read %s\n", path.c_str());
      return 1;
    }
  }
  const pipeline::Container parsed = pipeline::Container::deserialize(bytes);
  parsed.verify();

  // 1. Full batch decompress on the pool, merged deterministically.
  const pipeline::BatchDecompressResult batch = scheduler.decompress(parsed);
  const std::vector<const data::Field*> originals = {&hacc, &cesm, &exaalt};
  bool within_bounds = true;
  for (std::size_t i = 0; i < batch.fields.size(); ++i) {
    const auto stats = sz::compute_error_stats(originals[i]->data,
                                               batch.fields[i].decode.data);
    const double bound = parsed.fields()[i].abs_error_bound;
    within_bounds = within_bounds && stats.max_abs_error <= bound * (1 + 1e-6);
    std::size_t shared_refs = 0;
    for (const auto& rec : parsed.fields()[i].chunks) {
      shared_refs += rec.codebook_ref == pipeline::CodebookRef::SharedField;
    }
    std::printf(
        "  %-8s %8zu elems in %zu chunks (%zu on the shared codebook), "
        "max err %.3g (bound %.3g)\n",
        batch.fields[i].name.c_str(), batch.fields[i].decode.data.size(),
        parsed.fields()[i].chunks.size(), shared_refs, stats.max_abs_error,
        bound);
  }
  std::printf("batch simulated decompress: %.3f ms total, %.3f ms on 4 "
              "simulated workers\n",
              batch.simulated_seconds * 1e3, batch.makespan(4) * 1e3);

  // 2. Random access: one chunk of CESM, nothing else parsed or decoded.
  const std::size_t cesm_idx = parsed.field_index(cesm.name);
  cudasim::SimContext chunk_ctx;
  const auto one = parsed.decode_chunk(chunk_ctx, cesm_idx, 1);
  std::printf("random access: chunk 1 of %s -> %zu elems, %.3f ms simulated\n",
              cesm.name.c_str(), one.data.size(), one.total_seconds() * 1e3);

  // 3. Range decode: a window of HACC spanning a chunk boundary.
  const std::size_t hacc_idx = parsed.field_index(hacc.name);
  const std::uint64_t lo = (1u << 15) - 1000, hi = (1u << 15) + 1000;
  cudasim::SimContext range_ctx;
  const auto window = parsed.decode_range(range_ctx, hacc_idx, lo, hi);
  bool window_ok = window.size() == hi - lo;
  for (std::uint64_t i = 0; i < window.size() && window_ok; ++i) {
    window_ok = window[i] == batch.fields[hacc_idx].decode.data[lo + i];
  }
  std::printf("range decode: %s[%llu, %llu) -> %zu elems, matches batch: %s\n",
              hacc.name.c_str(), static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi), window.size(),
              window_ok ? "yes" : "NO");

  return within_bounds && window_ok ? 0 : 1;
}
