// Multi-field batch archive over the STREAMING sessions: compress three
// datasets with different dims, methods, and error bounds straight to disk
// on a thread pool (frames hit the file as worker futures complete — no
// whole-archive memory image on the way out), then reopen the file
// footer-first and read it back three ways — full parallel batch decompress,
// random access to a single chunk, and a prefetching range decode — all
// without ever materializing the archive bytes: peak archive residency is
// the index plus at most one in-flight frame per worker.
//
//   $ ./examples/batch_archive [path]    (default: /tmp/ohd_archive.bin)
#include <cstdio>
#include <string>
#include <vector>

#include "data/fields.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/thread_pool.hpp"
#include "sz/metrics.hpp"

int main(int argc, char** argv) {
  using namespace ohd;
  const std::string path = argc > 1 ? argv[1] : "/tmp/ohd_archive.bin";

  // Producer: three fields, three methods, three error bounds.
  const data::Field hacc = data::make_hacc(0.03);
  const data::Field cesm = data::make_cesm(0.03);
  const data::Field exaalt = data::make_exaalt(0.03);
  std::vector<pipeline::FieldSpec> specs(3);
  specs[0] = {hacc.name, hacc.data, hacc.dims, {}, 1u << 15, {}};
  specs[0].config.method = core::Method::GapArrayOptimized;
  specs[1] = {cesm.name, cesm.data, cesm.dims, {}, 1u << 15, {}};
  specs[1].config.method = core::Method::SelfSyncOptimized;
  specs[1].config.rel_error_bound = 1e-4;
  specs[2] = {exaalt.name, exaalt.data, exaalt.dims, {}, 1u << 15, {}};
  specs[2].config.method = core::Method::CuszNaive;
  specs[2].config.rel_error_bound = 5e-3;
  // Adaptive planning (container v2 features, carried by the v3 framing):
  // each chunk gets the cheapest decoder method for its local statistics,
  // and chunks reference a field-level shared codebook whenever that is
  // byte-cheaper than a private one.
  for (auto& spec : specs) {
    spec.plan.auto_method = true;
    spec.plan.shared_codebook = true;
  }

  pipeline::ThreadPool pool(4);
  pipeline::BatchScheduler scheduler(pool);
  std::uint64_t archive_bytes = 0;
  {
    // Compress-to-disk session: begin_field/write_chunk stream each frame as
    // its future completes; finish() appends the deferred index and footer.
    pipeline::FileSink sink(path);
    pipeline::ArchiveWriter writer(sink);
    scheduler.compress_to(writer, specs);
    archive_bytes = writer.finish();
    std::uint64_t raw = 0;
    for (const auto& s : specs) raw += s.data.size() * 4;
    std::printf("wrote %s: %llu bytes, %llu raw (%.2fx), %zu fields\n",
                path.c_str(), static_cast<unsigned long long>(archive_bytes),
                static_cast<unsigned long long>(raw),
                static_cast<double>(raw) / static_cast<double>(archive_bytes),
                writer.fields().size());
  }

  // Consumer: footer-first reopen. Only the index becomes resident; frames
  // are fetched lazily, one read + CRC check per chunk access.
  const pipeline::FileSource source(path);
  const pipeline::ArchiveReader reader(source);
  reader.verify();
  std::printf("reopened: %llu of %llu bytes resident (index+footer), "
              "largest frame %llu B\n",
              static_cast<unsigned long long>(reader.resident_bytes()),
              static_cast<unsigned long long>(archive_bytes),
              static_cast<unsigned long long>(reader.max_frame_bytes()));

  // 1. Full batch decompress on the pool: each task fetches its own frame,
  //    so file IO overlaps decode and residency stays bounded.
  const pipeline::BatchDecompressResult batch = scheduler.decompress(reader);
  const std::vector<const data::Field*> originals = {&hacc, &cesm, &exaalt};
  bool within_bounds = true;
  for (std::size_t i = 0; i < batch.fields.size(); ++i) {
    const auto stats = sz::compute_error_stats(originals[i]->data,
                                               batch.fields[i].decode.data);
    const double bound = reader.fields()[i].abs_error_bound;
    within_bounds = within_bounds && stats.max_abs_error <= bound * (1 + 1e-6);
    std::size_t shared_refs = 0;
    for (const auto& rec : reader.fields()[i].chunks) {
      shared_refs += rec.codebook_ref == pipeline::CodebookRef::SharedField;
    }
    std::printf(
        "  %-8s %8zu elems in %zu chunks (%zu on the shared codebook), "
        "max err %.3g (bound %.3g)\n",
        batch.fields[i].name.c_str(), batch.fields[i].decode.data.size(),
        reader.fields()[i].chunks.size(), shared_refs, stats.max_abs_error,
        bound);
  }
  std::printf("batch simulated decompress: %.3f ms total, %.3f ms on 4 "
              "simulated workers\n",
              batch.simulated_seconds * 1e3, batch.makespan(4) * 1e3);
  const std::uint64_t peak =
      reader.resident_bytes() + reader.peak_frame_bytes();
  const bool bounded =
      reader.peak_frame_bytes() <= 4 * reader.max_frame_bytes();
  std::printf("peak archive residency: %llu B (%.1f%% of the file) => "
              "streaming bound %s\n",
              static_cast<unsigned long long>(peak),
              100.0 * static_cast<double>(peak) /
                  static_cast<double>(archive_bytes),
              bounded ? "held" : "VIOLATED");

  // 2. Random access: one chunk of CESM — one frame read, nothing else.
  const std::size_t cesm_idx = reader.field_index(cesm.name);
  cudasim::SimContext chunk_ctx;
  const auto one = reader.decode_chunk(chunk_ctx, cesm_idx, 1);
  std::printf("random access: chunk 1 of %s -> %zu elems, %.3f ms simulated\n",
              cesm.name.c_str(), one.data.size(), one.total_seconds() * 1e3);

  // 3. Prefetching range decode: a window of HACC spanning a chunk boundary;
  //    the scheduler fetches frame c+1 while frame c decodes on the pool.
  const std::size_t hacc_idx = reader.field_index(hacc.name);
  const std::uint64_t lo = (1u << 15) - 1000, hi = (1u << 15) + 1000;
  const auto window = scheduler.decode_range(reader, hacc_idx, lo, hi);
  bool window_ok = window.size() == hi - lo;
  for (std::uint64_t i = 0; i < window.size() && window_ok; ++i) {
    window_ok = window[i] == batch.fields[hacc_idx].decode.data[lo + i];
  }
  std::printf("range decode: %s[%llu, %llu) -> %zu elems, matches batch: %s\n",
              hacc.name.c_str(), static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi), window.size(),
              window_ok ? "yes" : "NO");

  return within_bounds && window_ok && bounded ? 0 : 1;
}
