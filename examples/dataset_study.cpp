// Architecture study: run the optimized gap-array decoder on a dataset under
// both the V100 model (the paper's GPU) and the A100 model (the paper's
// future-work target), and show how T_high and the tuner's buffer choices
// shift with the architecture.
//
//   $ ./examples/dataset_study [dataset]    (default: HACC)
#include <cstdio>
#include <string>

#include "core/config.hpp"
#include "core/gap_decoder.hpp"
#include "data/fields.hpp"
#include "huffman/encoder.hpp"
#include "sz/lorenzo.hpp"

int main(int argc, char** argv) {
  using namespace ohd;
  const std::string name = argc > 1 ? argv[1] : "HACC";
  const data::Field field = data::make_by_name(name, 0.1);

  float lo = field.data[0], hi = field.data[0];
  for (float v : field.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const auto q =
      sz::lorenzo_quantize(field.data, field.dims, 1e-3 * (hi - lo));
  const auto cb = huffman::Codebook::from_data(q.codes, q.alphabet_size());
  const auto enc = huffman::encode_gap(q.codes, cb);
  const std::uint64_t quant_bytes = q.codes.size() * 2;

  for (const auto& spec :
       {cudasim::DeviceSpec::v100(), cudasim::DeviceSpec::a100()}) {
    core::DecoderConfig config;
    const std::uint32_t t_high =
        core::compute_t_high(spec, config.threads_per_block);
    cudasim::SimContext ctx(spec);
    const auto result = core::decode_gap_array(ctx, enc, cb, config);
    std::printf("%s\n", spec.name.c_str());
    std::printf("  T_high                : %u\n", t_high);
    std::printf("  decode throughput     : %.1f GB/s (quant codes)\n",
                quant_bytes / 1e9 / result.phases.total());
    std::printf("  phase breakdown (ms)  : idx %.3f  tune %.3f  "
                "decode+write %.3f\n\n",
                result.phases.output_index_s * 1e3, result.phases.tune_s * 1e3,
                result.phases.decode_write_s * 1e3);
  }
  std::printf("Expected: the A100 model decodes faster (more SMs, more "
              "bandwidth) and its larger\nshared memory raises T_high, "
              "letting the tuner use bigger buffers before occupancy "
              "suffers.\n");
  return 0;
}
