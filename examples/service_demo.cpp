// Service quickstart: one CompressionService, three clients with different
// negotiated error bounds, mixed compress / batch-decompress / random-access
// traffic through futures, and the "service.*" telemetry snapshot at the
// end. See docs/service_api.md for the full surface.
//
//   ./example_service_demo
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/compression_service.hpp"
#include "util/rng.hpp"

using namespace ohd;

namespace {

std::vector<float> make_field(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(std::sin(0.002 * static_cast<double>(i)) +
                              0.03 * rng.normal());
  }
  return v;
}

double max_abs_error(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return worst;
}

}  // namespace

int main() {
  // Telemetry on for the whole run so the final snapshot carries the
  // "service.*" catalogue.
  const obs::ScopedTelemetry telemetry;

  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.dispatchers = 2;
  cfg.max_queue_depth = 32;
  service::CompressionService svc(cfg);

  // Three clients, each with its own negotiated error bound — the service
  // applies a client's options to every request it submits.
  const double bounds[] = {1e-2, 1e-3, 1e-4};
  constexpr std::size_t kElems = 40000;

  struct Session {
    service::ClientId id;
    service::ArchiveHandle archive;
    std::vector<float> input;
  };
  std::vector<Session> sessions;

  // Compress one field per client, concurrently (three futures in flight).
  std::vector<std::future<service::CompressResult>> compresses;
  for (int c = 0; c < 3; ++c) {
    service::ClientOptions opts;
    opts.rel_error_bound = bounds[c];
    opts.chunk_elems = 4096;
    Session s;
    s.id = svc.open_client(opts);
    s.input = make_field(kElems, 42 + static_cast<std::uint64_t>(c));
    service::CompressJob job;
    job.fields.push_back({"field", s.input, sz::Dims::d1(kElems)});
    compresses.push_back(svc.submit_compress(s.id, std::move(job)).future);
    sessions.push_back(std::move(s));
  }
  for (int c = 0; c < 3; ++c) {
    auto archive = compresses[c].get().archive;
    std::printf("client %llu: eb %.0e, archive %zu B (%.2fx)\n",
                static_cast<unsigned long long>(sessions[c].id), bounds[c],
                archive.size(),
                static_cast<double>(kElems * 4) /
                    static_cast<double>(archive.size()));
    sessions[c].archive = svc.open_archive(
        sessions[c].id,
        std::make_shared<pipeline::OwningMemorySource>(std::move(archive)));
  }

  // Mixed traffic: a full decompress, a random-access chunk, and an element
  // range per client, all in flight at once.
  std::vector<std::future<pipeline::BatchDecompressResult>> decodes;
  std::vector<std::future<std::vector<float>>> chunks;
  std::vector<std::future<std::vector<float>>> ranges;
  for (const Session& s : sessions) {
    decodes.push_back(svc.submit_decompress(s.id, s.archive).future);
    chunks.push_back(svc.submit_chunk(s.id, s.archive, 0, 3).future);
    ranges.push_back(svc.submit_range(s.id, s.archive, 0, 10000, 30000).future);
  }
  for (int c = 0; c < 3; ++c) {
    const auto full = decodes[c].get();
    const auto& values = full.fields.at(0).decode.data;
    const auto chunk = chunks[c].get();
    const auto range = ranges[c].get();
    const bool consistent =
        std::equal(chunk.begin(), chunk.end(), values.begin() + 3 * 4096) &&
        std::equal(range.begin(), range.end(), values.begin() + 10000);
    std::printf(
        "client %llu: decode %zu floats (max |err| %.2e), chunk 3 + range "
        "[10000,30000) %s\n",
        static_cast<unsigned long long>(sessions[c].id), values.size(),
        max_abs_error(sessions[c].input, values),
        consistent ? "match the full decode" : "DIVERGED");
  }

  const service::ServiceStats stats = svc.stats();
  std::printf(
      "\nstats: accepted %llu, completed %llu, failed %llu, rejected %llu, "
      "inflight peak %lld, %zu clients, %zu open readers\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected()),
      static_cast<long long>(stats.inflight_peak), stats.active_clients,
      stats.open_readers);

  svc.shutdown();
  std::printf("\nobs snapshot:\n%s\n",
              obs::registry().snapshot().to_json(2).c_str());
  return 0;
}
