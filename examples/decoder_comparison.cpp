// Decoder selection study (paper §V-C): compares all five decoding methods
// on one dataset and prints the flexibility/performance trade-off the paper
// discusses — gap arrays are fastest but couple encoder and decoder;
// self-synchronization works on plain Huffman streams from any encoder.
//
//   $ ./examples/decoder_comparison [dataset]    (default: CESM)
#include <cstdio>
#include <string>

#include "core/huffman_codec.hpp"
#include "data/fields.hpp"
#include "sz/lorenzo.hpp"

int main(int argc, char** argv) {
  using namespace ohd;
  const std::string name = argc > 1 ? argv[1] : "CESM";
  const data::Field field = data::make_by_name(name, 0.1);

  float lo = field.data[0], hi = field.data[0];
  for (float v : field.data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const auto q =
      sz::lorenzo_quantize(field.data, field.dims, 1e-3 * (hi - lo));
  std::printf("%s quantization codes: %zu symbols, %.2f%% outliers\n\n",
              name.c_str(), q.codes.size(), 100.0 * q.outlier_fraction());

  std::printf("%-22s %12s %12s %10s %s\n", "method", "ratio", "GB/s",
              "coupled?", "notes");
  for (core::Method m :
       {core::Method::CuszNaive, core::Method::SelfSyncOriginal,
        core::Method::SelfSyncOptimized, core::Method::GapArrayOriginal8Bit,
        core::Method::GapArrayOptimized}) {
    const auto enc = core::encode_for_method(m, q.codes, q.alphabet_size());
    cudasim::SimContext ctx;
    const auto result = core::decode(ctx, enc);
    const double ratio = static_cast<double>(enc.quant_code_bytes()) /
                         enc.compressed_bytes() *
                         (m == core::Method::GapArrayOriginal8Bit ? 2.0 : 1.0);
    const double gbps =
        enc.quant_code_bytes() / 1e9 / result.seconds();
    const bool coupled = m == core::Method::GapArrayOriginal8Bit ||
                         m == core::Method::GapArrayOptimized;
    const char* notes =
        m == core::Method::CuszNaive ? "coarse chunks, tree walk"
        : m == core::Method::SelfSyncOriginal ? "plain streams, scatter writes"
        : m == core::Method::SelfSyncOptimized
            ? "plain streams, staged writes"
        : m == core::Method::GapArrayOriginal8Bit ? "8-bit symbols only"
                                                  : "needs gap-aware encoder";
    std::printf("%-22s %12.2f %12.1f %10s %s\n",
                core::method_name(m).c_str(), ratio, gbps,
                coupled ? "yes" : "no", notes);
  }
  std::printf("\nGuidance (paper §V-C): choose gap arrays when the encoder "
              "can be re-engineered and raw\nthroughput matters; choose "
              "self-synchronization when streams come from arbitrary "
              "encoders.\n");
  return 0;
}
