// In-memory compression scenario (paper §I, RTM use case): a reverse-time-
// migration solver keeps wavefield snapshots compressed in GPU memory and
// decompresses each snapshot when the backward pass needs it. Decompression
// throughput is therefore on the critical path — exactly the workload the
// paper's decoders target.
//
//   $ ./examples/inmemory_rtm
#include <cstdio>
#include <vector>

#include "data/fields.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"

int main() {
  using namespace ohd;
  constexpr int kSnapshots = 6;

  std::printf("RTM in-memory compression: %d wavefield snapshots\n\n",
              kSnapshots);

  // Forward pass: compress each snapshot as it is produced.
  std::vector<data::Field> snapshots;
  std::vector<sz::CompressedBlob> stored;
  std::uint64_t raw_bytes = 0, kept_bytes = 0;
  for (int t = 0; t < kSnapshots; ++t) {
    snapshots.push_back(data::make_rtm(0.05, /*seed=*/1000 + t));
    sz::CompressorConfig config;
    config.rel_error_bound = 1e-3;
    config.method = core::Method::GapArrayOptimized;
    stored.push_back(
        sz::compress(snapshots.back().data, snapshots.back().dims, config));
    raw_bytes += stored.back().original_bytes();
    kept_bytes += stored.back().compressed_bytes();
  }
  std::printf("forward pass : kept %.1f MiB instead of %.1f MiB (%.2fx)\n",
              kept_bytes / (1024.0 * 1024.0), raw_bytes / (1024.0 * 1024.0),
              static_cast<double>(raw_bytes) / kept_bytes);

  // Backward pass: decompress snapshots in reverse order; the decoder's
  // simulated time is the in-memory access latency the solver pays.
  cudasim::SimContext ctx;
  double decode_seconds = 0.0;
  double worst_error = 0.0;
  for (int t = kSnapshots - 1; t >= 0; --t) {
    const auto result = sz::decompress(ctx, stored[t]);
    decode_seconds += result.total_seconds();
    const auto stats =
        sz::compute_error_stats(snapshots[t].data, result.data);
    worst_error = std::max(worst_error,
                           stats.max_abs_error / stored[t].abs_error_bound);
  }
  std::printf("backward pass: %.2f ms simulated decompression (%.1f GB/s "
              "aggregate)\n",
              decode_seconds * 1e3, raw_bytes / 1e9 / decode_seconds);
  std::printf("error check  : worst |err|/bound = %.3f (must be <= 1)\n",
              worst_error);
  return worst_error <= 1.0 + 1e-6 ? 0 : 1;
}
