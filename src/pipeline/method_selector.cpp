#include "pipeline/method_selector.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "huffman/decode_table.hpp"
#include "pipeline/selector_calibration.hpp"
#include "sz/serialize.hpp"

namespace ohd::pipeline {

namespace {

// Calibration-level constants of the analytic estimates, chosen to mirror
// how the simulated decoders spend their cycles (see the per-method charges
// in core/naive_decoder.cpp, core/selfsync_decoder.cpp, core/gap_decoder.cpp
// and the decode_one/decode_one_lut steps):
//  * the gap-array decoder walks its stream twice (count pass, then
//    decode+write from the exclusive-scanned output indices);
//  * the optimized self-sync decoder pays a third, speculative walk on
//    average before its synchronization points validate, plus a vote per
//    sync iteration;
//  * every decoder shares the outlier-scatter kernel, charged per record.
constexpr double kGapDecodePasses = 2.0;
// The optimized self-sync decoder's extra walk is SPECULATIVE: a
// subsequence re-decodes from an unaligned start until its synchronization
// point validates. Long runs of equal symbols mean fewer distinct codeword
// boundaries per subsequence, so validation lands after fewer re-decoded
// codewords — the speculative pass shrinks with run structure (one full
// extra pass at run length 1, decaying with its square root).
constexpr double kSelfSyncSpeculativePasses = 1.0;
constexpr double kSelfSyncVoteIters = 3.0;
constexpr std::uint32_t kOutlierScatterCycles = 4;
// Average alignment padding of one coarse cuSZ chunk (bits): chunks are
// padded to a 32-bit unit boundary, so 16 bits in expectation.
constexpr double kNaiveChunkPadBits = 16.0;

std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Expected complete codewords one multi-symbol probe retires: the K-bit
/// window holds ~K/b codewords of average length b, capped by the entry's
/// packing limit and never below one.
double multi_symbols_per_probe(double avg_code_bits) {
  const double per_window =
      static_cast<double>(huffman::DecodeTable::kDefaultIndexBits) /
      std::max(1.0, avg_code_bits);
  return std::clamp(per_window, 1.0,
                    static_cast<double>(huffman::DecodeTable::kMaxMultiSymbols));
}

/// Per-symbol decode cycles of the fine-grained families (self-sync and
/// gap-array share the warp-broadcast LUT rates).
double fine_symbol_cycles(const ohd::core::CostModel& c, bool lut,
                          bool multisym, double b, double ladder_bits) {
  if (!lut) return b * c.cycles_per_bit + c.cycles_per_symbol;
  if (multisym) {
    const double m = multi_symbols_per_probe(b);
    return (c.cycles_per_probe_multi +
            (m - 1.0) * c.cycles_per_extra_symbol_multi) /
               m +
           ladder_bits * c.cycles_per_bit;
  }
  return c.cycles_per_symbol_lut + ladder_bits * c.cycles_per_bit;
}

/// Per-symbol decode cycles of the naive coarse-grained decoder (serialized
/// table gathers; the multi-symbol batch amortizes the gather itself).
double naive_symbol_cycles(const ohd::core::CostModel& c, bool lut,
                           bool multisym, double b, double ladder_bits) {
  if (!lut) return b * c.cycles_per_bit_naive + c.cycles_per_symbol_naive;
  if (multisym) {
    const double m = multi_symbols_per_probe(b);
    return (c.cycles_per_probe_multi_naive +
            (m - 1.0) * c.cycles_per_extra_symbol_multi) /
               m +
           ladder_bits * c.cycles_per_bit_naive;
  }
  return c.cycles_per_symbol_lut_naive + ladder_bits * c.cycles_per_bit_naive;
}

}  // namespace

ChunkProbe probe_chunk(const sz::QuantizedField& q) {
  if (q.codes.empty()) {
    throw std::invalid_argument("cannot probe an empty chunk");
  }
  ChunkProbe p;
  p.num_symbols = q.codes.size();
  p.alphabet_size = q.alphabet_size();
  p.outlier_fraction = q.outlier_fraction();
  p.histogram = huffman::symbol_histogram(q.codes, p.alphabet_size);
  p.code_lengths = huffman::huffman_code_lengths(p.histogram);

  const double n = static_cast<double>(p.num_symbols);
  double entropy = 0.0;
  double code_bits = 0.0;
  for (std::size_t s = 0; s < p.histogram.size(); ++s) {
    if (p.histogram[s] == 0) continue;
    const double f = static_cast<double>(p.histogram[s]) / n;
    entropy -= f * std::log2(f);
    code_bits += static_cast<double>(p.histogram[s] * p.code_lengths[s]);
  }
  p.entropy_bits = entropy;
  p.avg_code_bits = code_bits / n;

  std::uint64_t runs = 1;
  for (std::size_t i = 1; i < q.codes.size(); ++i) {
    if (q.codes[i] != q.codes[i - 1]) ++runs;
  }
  p.mean_run_length = n / static_cast<double>(runs);
  return p;
}

std::span<const core::Method> MethodSelector::candidates() const {
  static constexpr core::Method kCandidates[] = {
      core::Method::GapArrayOptimized,
      core::Method::SelfSyncOptimized,
      core::Method::CuszNaive,
  };
  return kCandidates;
}

MethodEstimate MethodSelector::estimate(core::Method method,
                                        const ChunkProbe& probe) const {
  if (probe.num_symbols == 0) {
    throw std::invalid_argument("cannot estimate an empty chunk");
  }
  // Guards the calibration-slot indexing below against a future enumerator
  // added to core::Method without a matching kMethodSlots bump.
  const auto slot = static_cast<std::size_t>(method);
  if (slot >= kMethodSlots) {
    throw std::invalid_argument("method out of calibration range");
  }
  const core::CostModel& c = decoder_.cost;
  const double n = static_cast<double>(probe.num_symbols);
  const double b = std::max(1.0, probe.avg_code_bits);
  const double total_bits = n * b;
  const bool lut = decoder_.use_lut_decode;
  const bool multisym = lut && decoder_.use_multisym_lut;
  // Average ladder overspill past the flat LUT's index width; zero for the
  // common case of codes shorter than the table.
  const double ladder_bits =
      std::max(0.0, b - huffman::DecodeTable::kDefaultIndexBits);

  const std::uint64_t subseq_bits =
      static_cast<std::uint64_t>(decoder_.units_per_subseq) * 32;
  const std::uint64_t seq_bits = subseq_bits * decoder_.threads_per_block;

  MethodEstimate e;
  e.method = method;
  double threads = 1.0;
  double thread_cycles = 0.0;
  switch (method) {
    case core::Method::CuszNaive: {
      // One thread decodes one coarse chunk end to end: the per-probe cost is
      // the serialized-gather LUT rate (or the dependent tree walk), and the
      // kernel is critical-path bound whenever few chunks exist.
      const std::uint64_t coarse =
          div_ceil(probe.num_symbols, decoder_.chunk_symbols);
      const double per_symbol =
          naive_symbol_cycles(c, lut, multisym, b, ladder_bits);
      threads = static_cast<double>(coarse);
      thread_cycles =
          std::min<double>(n, decoder_.chunk_symbols) * per_symbol;
      const double padded_bits =
          total_bits + static_cast<double>(coarse) * kNaiveChunkPadBits;
      e.stored_bytes = div_ceil(static_cast<std::uint64_t>(padded_bits), 32) * 4 +
                       coarse * 8;  // unit-padded stream + chunk offsets
      break;
    }
    case core::Method::SelfSyncOriginal:
    case core::Method::SelfSyncOptimized: {
      const std::uint64_t subseqs =
          std::max<std::uint64_t>(1, div_ceil(static_cast<std::uint64_t>(total_bits),
                                              subseq_bits));
      double per_symbol = fine_symbol_cycles(c, lut, multisym, b, ladder_bits);
      const double sym_per_subseq = n / static_cast<double>(subseqs);
      const double passes =
          kGapDecodePasses +
          kSelfSyncSpeculativePasses /
              std::sqrt(std::max(1.0, probe.mean_run_length));
      if (method == core::Method::SelfSyncOriginal && multisym) {
        // The Original's decode+write pass keeps the single-symbol probe
        // (its per-codeword global-memory table fetches gain nothing from
        // the wider MultiEntry); only the sync passes batch.
        per_symbol =
            (per_symbol * (passes - 1.0) +
             fine_symbol_cycles(c, lut, /*multisym=*/false, b, ladder_bits)) /
            passes;
      }
      threads = static_cast<double>(subseqs);
      thread_cycles = sym_per_subseq * per_symbol * passes +
                      kSelfSyncVoteIters *
                          (method == core::Method::SelfSyncOptimized
                               ? c.all_sync_cycles
                               : c.sync_check_cycles * decoder_.threads_per_block);
      e.stored_bytes =
          div_ceil(static_cast<std::uint64_t>(total_bits), seq_bits) * seq_bits / 8;
      break;
    }
    case core::Method::GapArrayOriginal8Bit:
    case core::Method::GapArrayOptimized: {
      const std::uint64_t subseqs =
          std::max<std::uint64_t>(1, div_ceil(static_cast<std::uint64_t>(total_bits),
                                              subseq_bits));
      double per_symbol = fine_symbol_cycles(c, lut, multisym, b, ladder_bits);
      if (method == core::Method::GapArrayOriginal8Bit && multisym) {
        // As above: of the Original's two passes (count, decode+write), only
        // the count pass takes the multi-symbol batch.
        per_symbol =
            (per_symbol * (kGapDecodePasses - 1.0) +
             fine_symbol_cycles(c, lut, /*multisym=*/false, b, ladder_bits)) /
            kGapDecodePasses;
      }
      threads = static_cast<double>(subseqs);
      thread_cycles =
          n / static_cast<double>(subseqs) * per_symbol * kGapDecodePasses;
      e.stored_bytes =
          div_ceil(static_cast<std::uint64_t>(total_bits), seq_bits) * seq_bits / 8 +
          subseqs;  // sequence-padded stream + one gap byte per subsequence
      break;
    }
  }

  // Outlier scatter is method-independent but kept in the absolute numbers
  // so estimates stay comparable to simulated chunk costs.
  const double outlier_cycles =
      probe.outlier_fraction * n * kOutlierScatterCycles;

  const double warps = std::ceil(threads / spec_.warp_size);
  const double issue_rate =
      static_cast<double>(spec_.num_sms) * spec_.warp_schedulers_per_sm *
      spec_.clock_hz();
  const double throughput_s = (warps * thread_cycles + outlier_cycles) / issue_rate;
  const double critical_s = thread_cycles / spec_.clock_hz();
  // Fitted correction (identity unless calibrate() was called).
  e.decode_seconds =
      scale_[slot] *
          (std::max(throughput_s, critical_s) + spec_.launch_overhead_s) +
      offset_s_[slot];

  const std::uint64_t shipped =
      e.stored_bytes +
      static_cast<std::uint64_t>(probe.outlier_fraction * n) *
          sz::kOutlierEntryBytes +
      sz::kBlobHeaderBytes;
  e.transfer_seconds =
      static_cast<double>(shipped) / (spec_.pcie_bw_gbps * 1e9);
  return e;
}

std::vector<MethodEstimate> MethodSelector::rank(const ChunkProbe& probe) const {
  std::vector<MethodEstimate> out;
  for (core::Method m : candidates()) out.push_back(estimate(m, probe));
  const auto cost = [this](const MethodEstimate& e) {
    return objective_ == SelectionObjective::DecodeOnly ? e.decode_seconds
                                                        : e.total_seconds();
  };
  // Stable sort keeps the candidate order on exact ties, so the ranking is a
  // pure function of the probe.
  std::stable_sort(out.begin(), out.end(),
                   [&cost](const MethodEstimate& a, const MethodEstimate& b) {
                     return cost(a) < cost(b);
                   });
  return out;
}

core::Method MethodSelector::select(const ChunkProbe& probe) const {
  return rank(probe).front().method;
}

void MethodSelector::calibrate(std::span<const MethodCalibration> calibration) {
  for (const MethodCalibration& mc : calibration) {
    const auto slot = static_cast<std::size_t>(mc.method);
    if (slot >= kMethodSlots) {
      throw std::invalid_argument("calibration names an unknown method");
    }
    if (!(mc.scale > 0.0) || !std::isfinite(mc.scale) ||
        !std::isfinite(mc.offset_s)) {
      throw std::invalid_argument(
          "calibration scale must be positive and finite");
    }
    scale_[slot] = mc.scale;
    offset_s_[slot] = mc.offset_s;
  }
}

std::span<const MethodCalibration> default_calibration() {
  return kDefaultCalibration;
}

FieldPlan plan_field(std::span<const sz::QuantizedField> chunks,
                     core::Method default_method, const PlanOptions& options,
                     const MethodSelector& selector) {
  if (chunks.empty()) {
    throw std::invalid_argument("cannot plan a field with no chunks");
  }
  // Nothing adaptive requested: every chunk keeps the fixed method and its
  // private book, and no probe work is spent.
  if (!options.auto_method && !options.shared_codebook) {
    FieldPlan fixed;
    fixed.chunks.resize(chunks.size());
    for (ChunkPlan& cp : fixed.chunks) cp.method = default_method;
    return fixed;
  }
  std::vector<ChunkProbe> probes;
  probes.reserve(chunks.size());
  for (const sz::QuantizedField& q : chunks) probes.push_back(probe_chunk(q));
  return plan_from_probes(std::move(probes), default_method, options, selector);
}

FieldPlan plan_from_probes(std::vector<ChunkProbe> probes,
                           core::Method default_method,
                           const PlanOptions& options,
                           const MethodSelector& selector) {
  if (probes.empty()) {
    throw std::invalid_argument("cannot plan a field with no chunks");
  }
  // Calibrated pricing is applied to a local copy so the caller's selector
  // stays untouched (it may be shared across fields with different plans).
  std::optional<MethodSelector> calibrated;
  if (options.use_calibration) {
    calibrated.emplace(selector);
    calibrated->calibrate(default_calibration());
  }
  const MethodSelector& sel = calibrated ? *calibrated : selector;

  const std::size_t num_chunks = probes.size();
  FieldPlan plan;
  plan.chunks.resize(num_chunks);
  for (std::size_t i = 0; i < num_chunks; ++i) {
    plan.chunks[i].method =
        options.auto_method ? sel.select(probes[i]) : default_method;
  }
  // Probes are no longer needed as histograms after the shared decision, so
  // each chunk keeps its canonical lengths for the private-book encode.
  const auto keep_lengths = [&] {
    for (std::size_t i = 0; i < num_chunks; ++i) {
      plan.chunks[i].private_code_lengths = std::move(probes[i].code_lengths);
    }
  };

  // A shared book only ever pays off when several chunks can amortize it.
  if (!options.shared_codebook || num_chunks < 2) {
    keep_lengths();
    return plan;
  }

  std::vector<std::uint64_t> pooled(probes[0].histogram.size(), 0);
  for (const ChunkProbe& p : probes) {
    if (p.histogram.size() != pooled.size()) {
      throw std::invalid_argument(
          "chunks of one field disagree on alphabet size");
    }
    for (std::size_t s = 0; s < pooled.size(); ++s) pooled[s] += p.histogram[s];
  }
  const std::vector<std::uint8_t> shared_lengths =
      huffman::huffman_code_lengths(pooled);

  // Ratio-driven reference choice, priced in STORED frame bytes: a private
  // book costs its serialized bytes (u32 alphabet + one length byte per
  // symbol) inside every frame; the shared book costs each chunk only the
  // extra payload bits of coding against the pooled distribution. The
  // 8-byte codebook-section length prefix is written either way (length 0
  // for shared frames), so it cancels out of the comparison.
  bool any_shared = false;
  for (std::size_t i = 0; i < num_chunks; ++i) {
    const ChunkProbe& p = probes[i];
    ChunkPlan& cp = plan.chunks[i];
    // The 8-bit baseline trims codes to a private alphabet, so it can never
    // encode against the field's book (encode_with_codebook rejects it).
    if (cp.method == core::Method::GapArrayOriginal8Bit) continue;
    std::uint64_t private_bits = 0;
    std::uint64_t shared_bits = 0;
    for (std::size_t s = 0; s < p.histogram.size(); ++s) {
      private_bits += p.histogram[s] * p.code_lengths[s];
      shared_bits += p.histogram[s] * shared_lengths[s];
    }
    const std::uint64_t private_book_bytes = p.alphabet_size + 4;
    cp.est_private_bytes = div_ceil(private_bits, 8) + private_book_bytes;
    cp.est_shared_bytes = div_ceil(shared_bits, 8);
    cp.use_shared_codebook = cp.est_shared_bytes < cp.est_private_bytes;
    any_shared = any_shared || cp.use_shared_codebook;
  }
  if (any_shared) {
    plan.has_shared_codebook = true;
    plan.shared_codebook = huffman::Codebook::from_lengths(shared_lengths);
  }
  keep_lengths();
  return plan;
}

std::vector<std::uint8_t> encode_planned_chunk(sz::QuantizedField&& q,
                                               const ChunkPlan& plan,
                                               const sz::CompressorConfig& config,
                                               const huffman::Codebook* shared) {
  if (plan.use_shared_codebook) {
    if (shared == nullptr) {
      throw std::invalid_argument(
          "chunk plan references a shared codebook but none was provided");
    }
    return sz::serialize_blob(
        sz::encode_quantized(std::move(q), plan.method, config, *shared),
        /*embed_codebook=*/false);
  }
  // Private book: reuse the plan's canonical lengths (identical to what a
  // fresh histogram would yield, since both are deterministic) instead of
  // recomputing them; 8-bit streams re-trim, so they take the generic path.
  if (!plan.private_code_lengths.empty() &&
      plan.method != core::Method::GapArrayOriginal8Bit) {
    const huffman::Codebook book =
        huffman::Codebook::from_lengths(plan.private_code_lengths);
    return sz::serialize_blob(
        sz::encode_quantized(std::move(q), plan.method, config, book));
  }
  return sz::serialize_blob(
      sz::encode_quantized(std::move(q), plan.method, config));
}

}  // namespace ohd::pipeline
