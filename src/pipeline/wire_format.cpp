#include "pipeline/wire_format.hpp"

#include <cstring>
#include <string>
#include <unordered_set>

#include "sz/serialize.hpp"
#include "util/checksum.hpp"

namespace ohd::pipeline::wire {

core::Method parse_method_tag(std::uint8_t tag) {
  const auto method = static_cast<core::Method>(tag);
  switch (method) {
    case core::Method::CuszNaive:
    case core::Method::SelfSyncOriginal:
    case core::Method::SelfSyncOptimized:
    case core::Method::GapArrayOriginal8Bit:
    case core::Method::GapArrayOptimized:
      return method;
  }
  throw ContainerError("unknown method tag in container");
}

CodebookRef parse_codebook_ref(std::uint8_t tag) {
  switch (static_cast<CodebookRef>(tag)) {
    case CodebookRef::Private:
    case CodebookRef::SharedField:
      return static_cast<CodebookRef>(tag);
  }
  throw ContainerError("unknown codebook-ref tag in container");
}

void write_dims(util::ByteWriter& w, const sz::Dims& dims) {
  w.u32(dims.rank);
  for (std::size_t e : dims.extent) w.u64(e);
}

sz::Dims read_dims(util::ByteReader& r) {
  sz::Dims dims;
  dims.rank = r.u32();
  if (dims.rank < 1 || dims.rank > 3) {
    throw ContainerError("implausible rank in container");
  }
  for (std::size_t i = 0; i < dims.extent.size(); ++i) {
    dims.extent[i] = r.u64();
    if (dims.extent[i] == 0 || (i >= dims.rank && dims.extent[i] != 1)) {
      throw ContainerError("implausible extent in container");
    }
  }
  if (dims.count_overflows()) {
    throw ContainerError("extent product overflows in container");
  }
  return dims;
}

void check_coverage(const sz::Dims& field_dims,
                    std::span<const ChunkExtent> layout) {
  if (layout.empty()) {
    throw ContainerError("field has no chunks");
  }
  std::uint64_t next = 0;
  for (const ChunkExtent& e : layout) {
    if (e.elem_offset != next) {
      throw ContainerError("chunk element offsets are not contiguous");
    }
    if (e.dims.count() > field_dims.count() - next) {
      throw ContainerError("chunks do not cover the field");
    }
    next += e.dims.count();
  }
  if (next != field_dims.count()) {
    throw ContainerError("chunks do not cover the field");
  }
}

void write_archive_header(util::ByteWriter& w, std::uint8_t version,
                          std::uint8_t flags) {
  w.magic(kMagic);
  w.u8(version);
  w.u8(flags);
  w.u16(0);  // reserved
}

std::uint8_t check_archive_flags(std::uint8_t version, std::uint8_t flags) {
  if (version < 3 ? flags != 0 : (flags & ~kKnownFlags) != 0) {
    throw ContainerError("unknown archive header flags");
  }
  return flags;
}

std::uint64_t field_entry_bytes(const FieldEntry& f, std::uint8_t version) {
  std::uint64_t n = 8 + f.name.size();  // name record
  n += 4 + 24;                          // rank + extent[3]
  n += 8 + 4 + 1;                       // error bound, radius, method tag
  if (version >= 2) {
    n += 8;  // shared-codebook length prefix
    if (f.shared_codebook != nullptr) {
      // Codebook::serialize() is a u32 alphabet count plus one length byte
      // per symbol; the arithmetic (instead of serializing just to measure)
      // keeps serialized_size()/finish() allocation-free. Drift against the
      // real encoder is pinned by ArchiveIO.SerializedSizeIsExact.
      n += 4 + f.shared_codebook->alphabet_size() + 4;  // bytes + CRC
    }
  }
  n += 8;  // chunk count
  n += f.chunks.size() *
       (version == 1 ? kChunkRecordBytesV1 : kChunkRecordBytesV2);
  return n;
}

void write_field_header(util::ByteWriter& w, const FieldEntry& f,
                        std::uint8_t version) {
  w.u64(f.name.size());
  for (char ch : f.name) w.u8(static_cast<std::uint8_t>(ch));
  write_dims(w, f.dims);
  w.f64(f.abs_error_bound);
  w.u32(f.radius);
  w.u8(static_cast<std::uint8_t>(f.method));
  if (version >= 2) {
    if (f.shared_codebook != nullptr) {
      const auto cb_bytes = f.shared_codebook->serialize();
      w.bytes(cb_bytes);
      w.u32(util::crc32(cb_bytes));
    } else {
      w.u64(0);  // no shared codebook
    }
  }
}

void write_field_entry(util::ByteWriter& w, const FieldEntry& f,
                       std::uint8_t version) {
  write_field_header(w, f, version);
  w.u64(f.chunks.size());
  for (const ChunkRecord& rec : f.chunks) {
    w.u64(rec.payload_offset);
    w.u64(rec.payload_bytes);
    w.u64(rec.elem_offset);
    write_dims(w, rec.dims);
    w.u8(static_cast<std::uint8_t>(rec.method));
    if (version >= 2) {
      w.u8(static_cast<std::uint8_t>(rec.codebook_ref));
    }
    w.u32(rec.crc32);
  }
}

FieldEntry read_field_header(util::ByteReader& r, std::uint8_t version) {
  FieldEntry f;
  const std::uint64_t name_len = r.u64();
  if (name_len > r.remaining()) {
    throw ContainerError("field name exceeds blob size");
  }
  f.name.reserve(name_len);
  for (std::uint64_t i = 0; i < name_len; ++i) {
    f.name.push_back(static_cast<char>(r.u8()));
  }
  f.dims = read_dims(r);
  f.abs_error_bound = r.f64();
  if (!(f.abs_error_bound > 0.0)) {
    throw ContainerError("non-positive error bound in container");
  }
  f.radius = r.u32();
  if (f.radius == 0) {
    throw ContainerError("zero quantizer radius in container");
  }
  f.method = parse_method_tag(r.u8());
  if (version >= 2) {
    std::vector<std::uint8_t> cb_bytes;
    try {
      cb_bytes = r.array<std::uint8_t>();
    } catch (const std::invalid_argument& e) {
      throw ContainerError(e.what());
    }
    if (!cb_bytes.empty()) {
      if (util::crc32(cb_bytes) != r.u32()) {
        throw ContainerError("field '" + f.name +
                             "': shared codebook CRC-32 mismatch");
      }
      try {
        f.shared_codebook = std::make_shared<const huffman::Codebook>(
            huffman::Codebook::deserialize(cb_bytes));
      } catch (const std::invalid_argument& e) {
        throw ContainerError("field '" + f.name +
                             "': invalid shared codebook: " + e.what());
      }
    }
  }
  return f;
}

FieldEntry read_field_entry(util::ByteReader& r, std::uint8_t version) {
  const std::uint64_t chunk_record_bytes =
      version == 1 ? kChunkRecordBytesV1 : kChunkRecordBytesV2;
  FieldEntry f = read_field_header(r, version);
  const std::uint64_t chunk_count = r.u64();
  if (chunk_count == 0) {
    throw ContainerError("field has no chunks");
  }
  if (chunk_count > r.remaining() / chunk_record_bytes) {
    throw ContainerError("chunk count exceeds blob size");
  }
  f.chunks.reserve(chunk_count);
  std::uint64_t next_elem = 0;
  for (std::uint64_t ci = 0; ci < chunk_count; ++ci) {
    ChunkRecord rec;
    rec.payload_offset = r.u64();
    rec.payload_bytes = r.u64();
    rec.elem_offset = r.u64();
    rec.dims = read_dims(r);
    rec.method = parse_method_tag(r.u8());
    if (version >= 2) {
      rec.codebook_ref = parse_codebook_ref(r.u8());
      if (rec.codebook_ref == CodebookRef::SharedField &&
          f.shared_codebook == nullptr) {
        throw ContainerError(
            "field '" + f.name +
            "': chunk references a shared codebook the field does not carry");
      }
    }
    rec.crc32 = r.u32();
    if (rec.payload_bytes == 0) {
      throw ContainerError("empty chunk frame in container index");
    }
    if (rec.elem_offset != next_elem) {
      throw ContainerError("chunk element offsets are not contiguous");
    }
    // Guard the accumulation itself: per-chunk products are overflow-
    // checked, but their SUM could still wrap back onto the field count.
    if (rec.dims.count() > f.dims.count() - next_elem) {
      throw ContainerError("chunks do not cover the field");
    }
    next_elem += rec.dims.count();
    f.chunks.push_back(rec);
  }
  if (next_elem != f.dims.count()) {
    throw ContainerError("chunks do not cover the field");
  }
  return f;
}

sz::CompressedBlob parse_chunk_frame(const FieldEntry& field, std::size_t chunk,
                                     std::span<const std::uint8_t> frame) {
  const ChunkRecord& rec = field.chunks[chunk];
  if (util::crc32(frame) != rec.crc32) {
    throw ContainerError("field '" + field.name + "' chunk " +
                         std::to_string(chunk) +
                         ": CRC-32 mismatch (corrupted frame)");
  }
  const huffman::Codebook* shared =
      rec.codebook_ref == CodebookRef::SharedField ? field.shared_codebook.get()
                                                   : nullptr;
  sz::CompressedBlob blob = sz::deserialize_blob(frame, shared);
  if (blob.dims.count() != rec.dims.count()) {
    throw ContainerError("field '" + field.name + "' chunk " +
                         std::to_string(chunk) +
                         ": frame geometry disagrees with the index");
  }
  return blob;
}

namespace {

/// Serialized size of the v3 field-header record (the write_field_header
/// bytes). Mirrors the header half of field_entry_bytes.
std::uint64_t field_header_record_bytes(const FieldEntry& f) {
  std::uint64_t n = 8 + f.name.size();  // name record
  n += 4 + 24;                          // rank + extent[3]
  n += 8 + 4 + 1;                       // error bound, radius, method tag
  n += 8;                               // shared-codebook length prefix
  if (f.shared_codebook != nullptr) {
    n += 4 + f.shared_codebook->alphabet_size() + 4;  // bytes + CRC
  }
  return n;
}

}  // namespace

void write_chunk_preamble(util::ByteWriter& w, const ChunkPreamble& p) {
  const std::size_t start = w.size();
  w.magic(kChunkPreambleMagic);
  w.u32(p.field_ordinal);
  w.u32(p.chunk_ordinal);
  w.u64(p.elem_offset);
  write_dims(w, p.dims);
  w.u8(static_cast<std::uint8_t>(p.method));
  w.u8(static_cast<std::uint8_t>(p.codebook_ref));
  w.u64(p.frame_bytes);
  w.u32(p.frame_crc32);
  // Self-checksum over everything after the magic, so a scan never trusts a
  // record that is itself damaged.
  w.u32(util::crc32(w.bytes().subspan(start + 4)));
}

bool try_parse_chunk_preamble(std::span<const std::uint8_t> bytes,
                              ChunkPreamble& out) {
  if (bytes.size() < kChunkPreambleBytes) return false;
  if (std::memcmp(bytes.data(), kChunkPreambleMagic, 4) != 0) return false;
  const std::size_t body = kChunkPreambleBytes - 4 - 4;  // sans magic, CRC
  util::ByteReader crc_r(bytes.subspan(4 + body, 4));
  if (util::crc32(bytes.subspan(4, body)) != crc_r.u32()) return false;
  try {
    util::ByteReader r(bytes.subspan(4, body));
    ChunkPreamble p;
    p.field_ordinal = r.u32();
    p.chunk_ordinal = r.u32();
    p.elem_offset = r.u64();
    p.dims = read_dims(r);
    p.method = parse_method_tag(r.u8());
    p.codebook_ref = parse_codebook_ref(r.u8());
    p.frame_bytes = r.u64();
    p.frame_crc32 = r.u32();
    if (p.frame_bytes == 0) return false;
    out = p;
    return true;
  } catch (const std::invalid_argument&) {
    // A CRC-valid record with implausible contents is not a preamble we can
    // use; the scan resumes after it.
    return false;
  }
}

void write_field_preamble(util::ByteWriter& w, const FieldPreamble& p) {
  util::ByteWriter record;
  write_field_header(record, p.header, 3);
  const std::size_t start = w.size();
  w.magic(kFieldPreambleMagic);
  w.u32(p.field_ordinal);
  w.u32(static_cast<std::uint32_t>(record.size()));
  for (std::uint8_t b : record.bytes()) w.u8(b);
  w.u32(util::crc32(w.bytes().subspan(start + 4)));
}

std::uint64_t field_preamble_bytes(const FieldEntry& f) {
  return 4 + 4 + 4 + field_header_record_bytes(f) + 4;
}

bool try_parse_field_preamble(std::span<const std::uint8_t> bytes,
                              FieldPreamble& out, std::uint64_t& consumed) {
  if (bytes.size() < 16) return false;
  if (std::memcmp(bytes.data(), kFieldPreambleMagic, 4) != 0) return false;
  util::ByteReader head(bytes.subspan(4, 8));
  const std::uint32_t ordinal = head.u32();
  const std::uint32_t record_len = head.u32();
  if (record_len > kMaxFieldPreambleRecordBytes) return false;
  const std::uint64_t total = 4ull + 4 + 4 + record_len + 4;
  if (total > bytes.size()) return false;
  util::ByteReader crc_r(bytes.subspan(total - 4, 4));
  if (util::crc32(bytes.subspan(4, 8 + record_len)) != crc_r.u32()) {
    return false;
  }
  try {
    util::ByteReader r(bytes.subspan(12, record_len));
    FieldPreamble p;
    p.field_ordinal = ordinal;
    p.header = read_field_header(r, 3);
    if (!r.exhausted()) return false;
    out = std::move(p);
    consumed = total;
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

void write_footer(util::ByteWriter& w, const Footer& footer) {
  w.u64(footer.index_offset);
  w.u64(footer.index_bytes);
  w.u32(footer.index_crc32);
  w.u32(footer.field_count);
  w.u64(footer.payload_bytes);
  w.u8(3);   // version
  w.u8(0);   // reserved
  w.u8(0);
  w.u8(0);
  w.magic(kFooterMagic);
}

Footer read_footer(std::span<const std::uint8_t> tail,
                   std::uint64_t archive_bytes) {
  if (tail.size() != kFooterBytes) {
    throw ContainerError("truncated archive footer");
  }
  util::ByteReader r(tail);
  Footer footer;
  footer.index_offset = r.u64();
  footer.index_bytes = r.u64();
  footer.index_crc32 = r.u32();
  footer.field_count = r.u32();
  footer.payload_bytes = r.u64();
  if (r.u8() != 3) {
    throw ContainerError("archive footer version mismatch");
  }
  if (r.u8() != 0 || r.u8() != 0 || r.u8() != 0) {
    throw ContainerError("nonzero reserved bytes in archive footer");
  }
  try {
    r.expect_magic(kFooterMagic);
  } catch (const std::invalid_argument& e) {
    throw ContainerError(e.what());
  }
  if (footer.field_count > kMaxFieldCount) {
    throw ContainerError("implausible field count");
  }
  // Overflow-safe consistency: payload, index, and footer must tile the
  // archive exactly. Each field is bounded BEFORE entering a sum, so a
  // crafted footer cannot wrap u64 arithmetic into fake consistency (and
  // then drive out-of-bounds subspans in the in-memory parse path).
  const std::uint64_t non_payload = kHeaderBytes + kFooterBytes;
  if (archive_bytes < non_payload ||
      footer.payload_bytes > archive_bytes - non_payload ||
      footer.index_offset != kHeaderBytes + footer.payload_bytes ||
      footer.index_bytes !=
          archive_bytes - kFooterBytes - footer.index_offset) {
    throw ContainerError("archive footer disagrees with the archive size");
  }
  return footer;
}

std::vector<FieldEntry> read_index(std::span<const std::uint8_t> index,
                                   std::uint32_t field_count,
                                   std::uint32_t crc32,
                                   std::uint64_t payload_bytes) {
  if (util::crc32(index) != crc32) {
    throw ContainerError("archive index CRC-32 mismatch (corrupted index)");
  }
  util::ByteReader r(index);
  if (r.u32() != field_count) {
    throw ContainerError("archive index disagrees with the footer");
  }
  std::vector<FieldEntry> fields;
  fields.reserve(field_count);
  std::unordered_set<std::string> seen_names;
  for (std::uint32_t fi = 0; fi < field_count; ++fi) {
    FieldEntry f = read_field_entry(r, 3);
    if (!seen_names.insert(f.name).second) {
      throw ContainerError("duplicate field name '" + f.name +
                           "' in container");
    }
    for (const ChunkRecord& rec : f.chunks) {
      if (rec.payload_bytes > payload_bytes ||
          rec.payload_offset > payload_bytes - rec.payload_bytes) {
        throw ContainerError("chunk frame extends past the payload section");
      }
    }
    fields.push_back(std::move(f));
  }
  if (!r.exhausted()) {
    throw ContainerError("trailing bytes after the archive index");
  }
  return fields;
}

}  // namespace ohd::pipeline::wire
