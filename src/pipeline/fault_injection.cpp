#include "pipeline/fault_injection.hpp"

#include <string>
#include <thread>

#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

/// What one operation's deterministic draw decided.
struct Decision {
  enum class Kind { Clean, Transient, Partial } kind = Kind::Clean;
  std::uint64_t partial_bytes = 0;  // for Partial: prefix length delivered
  std::chrono::microseconds latency{0};
};

/// The draw is a pure function of (seed, op): replaying an operation
/// sequence reproduces its faults exactly, independent of threads or clock.
Decision draw(const FaultSpec& spec, std::uint64_t op, std::uint64_t n_bytes,
              double transient_rate, double partial_rate, bool capped) {
  util::Xoshiro256 rng(spec.seed ^ (op * 0x9e3779b97f4a7c15ull) ^
                       0xa5a5a5a55a5a5a5aull);
  Decision d;
  if (spec.max_latency.count() > 0) {
    d.latency = std::chrono::microseconds(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(spec.max_latency.count())));
  }
  if (capped) return d;
  const double u = rng.uniform();
  if (u < transient_rate) {
    d.kind = Decision::Kind::Transient;
  } else if (u < transient_rate + partial_rate) {
    d.kind = Decision::Kind::Partial;
    // A strict prefix: 0..n-1 bytes of the n requested.
    d.partial_bytes = n_bytes == 0 ? 0 : rng.bounded(n_bytes);
  }
  return d;
}

void sleep_latency(std::chrono::microseconds latency) {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

}  // namespace

void FaultInjectingSource::read_at(std::uint64_t offset,
                                   std::span<std::uint8_t> out) const {
  Decision d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t op = op_++;
    ++stats_.reads;
    d = draw(spec_, op, out.size(), spec_.transient_read_rate,
             spec_.short_read_rate, stats_.faults() >= spec_.max_faults);
    switch (d.kind) {
      case Decision::Kind::Transient:
        ++stats_.transient_read_errors;
        break;
      case Decision::Kind::Partial:
        ++stats_.short_reads;
        break;
      case Decision::Kind::Clean:
        break;
    }
    stats_.injected_latency_us += static_cast<std::uint64_t>(d.latency.count());
  }
  sleep_latency(d.latency);
  switch (d.kind) {
    case Decision::Kind::Transient:
      throw TransientIoError("injected transient read error at offset " +
                             std::to_string(offset));
    case Decision::Kind::Partial:
      // Fill a prefix, then fail: the caller's contract delivered nothing
      // usable, so the fault is retryable.
      inner_.read_at(offset, out.subspan(0, static_cast<std::size_t>(
                                                d.partial_bytes)));
      throw TransientIoError(
          "injected short read at offset " + std::to_string(offset) + " (" +
          std::to_string(d.partial_bytes) + " of " +
          std::to_string(out.size()) + " bytes)");
    case Decision::Kind::Clean:
      inner_.read_at(offset, out);
      return;
  }
}

void FaultInjectingSink::write(std::span<const std::uint8_t> bytes) {
  Decision d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t op = op_++;
    ++stats_.writes;
    d = draw(spec_, op, bytes.size(), spec_.transient_write_rate,
             spec_.torn_write_rate, stats_.faults() >= spec_.max_faults);
    switch (d.kind) {
      case Decision::Kind::Transient:
        ++stats_.transient_write_errors;
        break;
      case Decision::Kind::Partial:
        ++stats_.torn_writes;
        break;
      case Decision::Kind::Clean:
        break;
    }
    stats_.injected_latency_us += static_cast<std::uint64_t>(d.latency.count());
  }
  sleep_latency(d.latency);
  switch (d.kind) {
    case Decision::Kind::Transient:
      throw TransientIoError("injected transient write error (nothing "
                             "appended)");
    case Decision::Kind::Partial:
      // The crash model: a prefix landed, then the writer died. Permanent —
      // a retry would duplicate the prefix and corrupt the stream.
      inner_.write(bytes.subspan(0, static_cast<std::size_t>(d.partial_bytes)));
      throw ArchiveError("injected torn append (" +
                         std::to_string(d.partial_bytes) + " of " +
                         std::to_string(bytes.size()) + " bytes landed)");
    case Decision::Kind::Clean:
      inner_.write(bytes);
      return;
  }
}

}  // namespace ohd::pipeline
