#include "pipeline/fault_injection.hpp"

#include <string>
#include <thread>

#include "util/rng.hpp"

namespace ohd::pipeline {
namespace {

/// What one operation's deterministic draw decided.
struct Decision {
  enum class Kind { Clean, Transient, Partial } kind = Kind::Clean;
  std::uint64_t partial_bytes = 0;  // for Partial: prefix length delivered
  std::chrono::microseconds latency{0};
};

/// The draw is a pure function of (seed, op): replaying an operation
/// sequence reproduces its faults exactly, independent of threads or clock.
Decision draw(const FaultSpec& spec, std::uint64_t op, std::uint64_t n_bytes,
              double transient_rate, double partial_rate, bool capped) {
  util::Xoshiro256 rng(spec.seed ^ (op * 0x9e3779b97f4a7c15ull) ^
                       0xa5a5a5a55a5a5a5aull);
  Decision d;
  if (spec.max_latency.count() > 0) {
    d.latency = std::chrono::microseconds(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(spec.max_latency.count())));
  }
  if (capped) return d;
  const double u = rng.uniform();
  if (u < transient_rate) {
    d.kind = Decision::Kind::Transient;
  } else if (u < transient_rate + partial_rate) {
    d.kind = Decision::Kind::Partial;
    // A strict prefix: 0..n-1 bytes of the n requested.
    d.partial_bytes = n_bytes == 0 ? 0 : rng.bounded(n_bytes);
  }
  return d;
}

void sleep_latency(std::chrono::microseconds latency) {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

/// Process-registry aggregation of injected faults across all wrappers.
void mirror_fault(const char* name, std::uint64_t n = 1) {
  if (n != 0 && obs::enabled()) obs::registry().counter(name).add(n);
}

}  // namespace

FaultStats FaultInjectingSource::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultStats s;
  s.reads = reads_.value();
  s.transient_read_errors = transient_read_errors_.value();
  s.short_reads = short_reads_.value();
  s.injected_latency_us = injected_latency_us_.value();
  return s;
}

FaultStats FaultInjectingSink::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultStats s;
  s.writes = writes_.value();
  s.torn_writes = torn_writes_.value();
  s.transient_write_errors = transient_write_errors_.value();
  s.injected_latency_us = injected_latency_us_.value();
  return s;
}

void FaultInjectingSource::read_at(std::uint64_t offset,
                                   std::span<std::uint8_t> out) const {
  Decision d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t op = op_++;
    reads_.add(1);
    const std::uint64_t faults =
        transient_read_errors_.value() + short_reads_.value();
    d = draw(spec_, op, out.size(), spec_.transient_read_rate,
             spec_.short_read_rate, faults >= spec_.max_faults);
    switch (d.kind) {
      case Decision::Kind::Transient:
        transient_read_errors_.add(1);
        mirror_fault("fault.transient_read_errors");
        break;
      case Decision::Kind::Partial:
        short_reads_.add(1);
        mirror_fault("fault.short_reads");
        break;
      case Decision::Kind::Clean:
        break;
    }
    const auto latency_us = static_cast<std::uint64_t>(d.latency.count());
    injected_latency_us_.add(latency_us);
    mirror_fault("fault.injected_latency_us", latency_us);
  }
  sleep_latency(d.latency);
  switch (d.kind) {
    case Decision::Kind::Transient:
      throw TransientIoError("injected transient read error at offset " +
                             std::to_string(offset));
    case Decision::Kind::Partial:
      // Fill a prefix, then fail: the caller's contract delivered nothing
      // usable, so the fault is retryable.
      inner_.read_at(offset, out.subspan(0, static_cast<std::size_t>(
                                                d.partial_bytes)));
      throw TransientIoError(
          "injected short read at offset " + std::to_string(offset) + " (" +
          std::to_string(d.partial_bytes) + " of " +
          std::to_string(out.size()) + " bytes)");
    case Decision::Kind::Clean:
      inner_.read_at(offset, out);
      return;
  }
}

void FaultInjectingSink::write(std::span<const std::uint8_t> bytes) {
  Decision d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t op = op_++;
    writes_.add(1);
    const std::uint64_t faults =
        transient_write_errors_.value() + torn_writes_.value();
    d = draw(spec_, op, bytes.size(), spec_.transient_write_rate,
             spec_.torn_write_rate, faults >= spec_.max_faults);
    switch (d.kind) {
      case Decision::Kind::Transient:
        transient_write_errors_.add(1);
        mirror_fault("fault.transient_write_errors");
        break;
      case Decision::Kind::Partial:
        torn_writes_.add(1);
        mirror_fault("fault.torn_writes");
        break;
      case Decision::Kind::Clean:
        break;
    }
    const auto latency_us = static_cast<std::uint64_t>(d.latency.count());
    injected_latency_us_.add(latency_us);
    mirror_fault("fault.injected_latency_us", latency_us);
  }
  sleep_latency(d.latency);
  switch (d.kind) {
    case Decision::Kind::Transient:
      throw TransientIoError("injected transient write error (nothing "
                             "appended)");
    case Decision::Kind::Partial:
      // The crash model: a prefix landed, then the writer died. Permanent —
      // a retry would duplicate the prefix and corrupt the stream.
      inner_.write(bytes.subspan(0, static_cast<std::size_t>(d.partial_bytes)));
      throw ArchiveError("injected torn append (" +
                         std::to_string(d.partial_bytes) + " of " +
                         std::to_string(bytes.size()) + " bytes landed)");
    case Decision::Kind::Clean:
      inner_.write(bytes);
      return;
  }
}

}  // namespace ohd::pipeline
