// Streaming archive IO sessions — the public API of the pipeline layer.
//
// ArchiveWriter appends a version-3 "OHDC" archive to any ByteSink as an
// incremental session: open → begin_field(spec) → write_chunk(frame)... →
// end_field() → finish(). Chunk frames hit the sink the moment they exist —
// compression can emit frames as worker futures complete — and only the
// per-chunk index records (a few dozen bytes each) stay resident until
// finish() writes the deferred index and footer. Peak writer memory is
// therefore O(index), never O(archive).
//
// ArchiveReader opens a v3 archive from any ByteSource footer-first: the
// trailing 40-byte footer locates the index, the index is read and validated
// once, and every chunk frame is fetched lazily (one read_at + CRC check per
// access) — decoding never materializes the archive. Reads are thread-safe,
// so the batch scheduler overlaps frame IO with ThreadPool decode.
//
// The in-memory Container is a thin convenience over the same framing:
// Container::serialize() runs an ArchiveWriter over a MemorySink, and
// Container::deserialize() reads versions 1-3. See wire_format.hpp for the
// byte layout and tests/pipeline/archive_io_test.cpp for the round-trip and
// robustness properties.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pipeline/byte_stream.hpp"
#include "pipeline/container.hpp"

namespace ohd::pipeline {

/// Declares one field of a streaming write session before its chunk frames
/// arrive (the session-API analogue of batch.hpp's FieldSpec, which carries
/// the uncompressed floats as well).
struct ArchiveFieldSpec {
  std::string name;
  sz::Dims dims;
  double abs_error_bound = 0.0;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;  // field default
  /// Field-level shared codebook; frames whose ChunkMeta says SharedField
  /// must have been encoded against it and serialized without their book.
  std::shared_ptr<const huffman::Codebook> shared_codebook;
};

/// Incremental archive write session over a ByteSink. Not thread-safe: one
/// session, one producer (the batch scheduler serializes its deterministic
/// (field, chunk) collect order through it). Abandoning a session without
/// finish() leaves the sink holding a headerless torso no reader accepts.
class ArchiveWriter {
 public:
  /// Writes the 8-byte archive head immediately.
  explicit ArchiveWriter(ByteSink& sink);

  /// Opens a field. Validates the spec (positive error bound and radius,
  /// unique name) and throws ContainerError on violations.
  void begin_field(const ArchiveFieldSpec& spec);

  /// Appends one chunk frame (sz::serialize_blob bytes for `extent`) to the
  /// open field. Extents must arrive contiguously in flat element order.
  /// The two-argument form records the field's default method with a
  /// private codebook.
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame);
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame, const ChunkMeta& meta);

  /// Replay variant: records `crc32` instead of hashing `frame` — for
  /// producers replaying frames whose checksum is already on record
  /// (Container::serialize). Besides skipping a payload-sized CRC pass,
  /// this keeps in-memory corruption of the replayed bytes detectable
  /// downstream instead of re-stamping a fresh checksum over it.
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame, const ChunkMeta& meta,
                   std::uint32_t crc32);

  /// Closes the open field; throws ContainerError unless its chunks tile the
  /// declared dims exactly.
  void end_field();

  /// Compresses `data` chunk by chunk into the session (sequential; the
  /// parallel path is BatchScheduler::compress_to) — each frame is written
  /// as soon as it is encoded, so peak memory is O(chunk), not O(field).
  /// Exactly Container::add_field's semantics, including planning. Returns
  /// the field index.
  std::size_t add_field(const std::string& name, std::span<const float> data,
                        const sz::Dims& dims, const sz::CompressorConfig& config,
                        std::size_t chunk_elems, const PlanOptions& plan = {});

  /// Writes the deferred index and footer and flushes the sink; the session
  /// is complete and unusable afterwards. Returns the total archive bytes.
  std::uint64_t finish();

  bool finished() const { return finished_; }
  /// True between begin_field and end_field.
  bool field_open() const { return in_field_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Index records accumulated so far (the writer's only per-chunk state).
  const std::vector<FieldEntry>& fields() const { return fields_; }

 private:
  ByteSink& sink_;
  std::vector<FieldEntry> fields_;
  FieldEntry current_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t next_elem_ = 0;
  bool in_field_ = false;
  bool finished_ = false;
};

/// Random-access read session over a version-3 archive. Construction reads
/// ONLY the footer and index; every frame access is a lazy, CRC-checked
/// fetch. All decode entry points are const and thread-safe (the source
/// contract requires concurrent read_at), so chunks of one reader can be
/// decoded from many threads at once.
class ArchiveReader {
 public:
  /// Footer-first open: validates the head, footer, and index (structure,
  /// CRC, chunk coverage, frame bounds). Throws ContainerError on format
  /// violations — including versions 1/2, which are whole-buffer formats
  /// (use Container::deserialize for those) — and ArchiveError on IO
  /// failures.
  explicit ArchiveReader(const ByteSource& source);

  const std::vector<FieldEntry>& fields() const { return fields_; }

  /// Field index by name; throws ContainerError on unknown names.
  std::size_t field_index(const std::string& name) const;

  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Bytes this reader keeps resident after open: head + index + footer.
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  /// The largest frame in the index — with resident_bytes() and the worker
  /// count, the exact peak-memory budget of a streaming decompress.
  std::uint64_t max_frame_bytes() const { return max_frame_bytes_; }

  /// High-water mark of concurrently fetched frame bytes across all decode
  /// calls so far (the streaming-decompress residency tests pin this to
  /// workers * max_frame_bytes()).
  std::uint64_t peak_frame_bytes() const { return peak_frame_bytes_; }

  /// Fetches one chunk's frame bytes (one source read + CRC check).
  std::vector<std::uint8_t> read_frame(std::size_t field,
                                       std::size_t chunk) const;

  /// Fetches one chunk's frame WITHOUT the CRC check — for prefetching
  /// consumers whose decode path runs the frame through
  /// wire::parse_chunk_frame (which verifies the CRC) anyway, so the bytes
  /// are hashed once, on the decoding thread instead of the fetching one.
  /// Once returned the bytes are caller-owned; wrap them in a FrameResidency
  /// to keep peak_frame_bytes() honest while they stay resident.
  std::vector<std::uint8_t> read_frame_unverified(std::size_t field,
                                                  std::size_t chunk) const;

  /// Decodes ONE chunk — fetch, checksum, frame parse, decompression —
  /// without reading any other frame's bytes.
  sz::DecompressionResult decode_chunk(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      const core::DecoderConfig& decoder = {}) const;

  /// Fused variant: reconstructs the chunk's floats straight into `out`
  /// (sized to the chunk's element count), exactly like
  /// Container::decode_chunk_into.
  sz::DecompressionResult decode_chunk_into(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      std::span<float> out, const core::DecoderConfig& decoder = {}) const;

  /// Decodes a whole field chunk by chunk in chunk-id order, one resident
  /// frame at a time.
  FieldDecode decode_field(cudasim::SimContext& ctx, std::size_t field,
                           const core::DecoderConfig& decoder = {}) const;

  /// Decodes only the chunks overlapping [elem_begin, elem_end) and returns
  /// exactly that element range. (BatchScheduler::decode_range is the
  /// prefetching parallel variant.)
  std::vector<float> decode_range(cudasim::SimContext& ctx, std::size_t field,
                                  std::uint64_t elem_begin,
                                  std::uint64_t elem_end,
                                  const core::DecoderConfig& decoder = {}) const;

  /// Streams every frame once and verifies its CRC-32 without decoding;
  /// throws ContainerError naming the first corrupted field/chunk.
  void verify() const;

 private:
  friend class FrameResidency;
  const ChunkRecord& record(std::size_t field, std::size_t chunk) const;
  std::vector<std::uint8_t> fetch_frame(const ChunkRecord& rec) const;

  const ByteSource& source_;
  std::vector<FieldEntry> fields_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t max_frame_bytes_ = 0;
  mutable std::atomic<std::uint64_t> live_frame_bytes_{0};
  mutable std::atomic<std::uint64_t> peak_frame_bytes_{0};
};

/// RAII accounting of frame bytes held against a reader's residency gauge.
/// The decode entry points hold one internally for the duration of each
/// fetch+decode; prefetching consumers (BatchScheduler::decode_range) hold
/// one per in-flight frame, so peak_frame_bytes() observes every resident
/// frame wherever it lives — the streaming-memory tests assert against the
/// gauge instead of trusting call structure.
class FrameResidency {
 public:
  FrameResidency(const ArchiveReader& reader, std::uint64_t bytes);
  ~FrameResidency();
  FrameResidency(const FrameResidency&) = delete;
  FrameResidency& operator=(const FrameResidency&) = delete;

 private:
  const ArchiveReader& reader_;
  std::uint64_t bytes_;
};

/// Compresses one field chunk by chunk under a whole-field error bound and
/// hands each serialized frame to `on_frame` in chunk order — the single
/// encode sequence behind Container::add_field and ArchiveWriter::add_field.
/// `on_plan` fires once, after the error bound and any field plan (method
/// selection / shared codebook) are resolved but before the first frame.
void compress_field_frames(
    std::span<const float> data, const sz::Dims& dims,
    const sz::CompressorConfig& config, std::size_t chunk_elems,
    const PlanOptions& plan,
    const std::function<void(double abs_error_bound,
                             std::shared_ptr<const huffman::Codebook> shared)>&
        on_plan,
    const std::function<void(const ChunkExtent& extent,
                             std::vector<std::uint8_t> frame,
                             const ChunkMeta& meta)>& on_frame);

}  // namespace ohd::pipeline
