// Streaming archive IO sessions — the public API of the pipeline layer.
//
// ArchiveWriter appends a version-3 "OHDC" archive to any ByteSink as an
// incremental session: open → begin_field(spec) → write_chunk(frame)... →
// end_field() → finish(). Chunk frames hit the sink the moment they exist —
// compression can emit frames as worker futures complete — and only the
// per-chunk index records (a few dozen bytes each) stay resident until
// finish() writes the deferred index and footer. Peak writer memory is
// therefore O(index), never O(archive).
//
// ArchiveReader opens a v3 archive from any ByteSource footer-first: the
// trailing 40-byte footer locates the index, the index is read and validated
// once, and every chunk frame is fetched lazily (one read_at + CRC check per
// access) — decoding never materializes the archive. Reads are thread-safe,
// so the batch scheduler overlaps frame IO with ThreadPool decode.
//
// The in-memory Container is a thin convenience over the same framing:
// Container::serialize() runs an ArchiveWriter over a MemorySink, and
// Container::deserialize() reads versions 1-3. See wire_format.hpp for the
// byte layout and tests/pipeline/archive_io_test.cpp for the round-trip and
// robustness properties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/container.hpp"
#include "pipeline/recovery.hpp"

namespace ohd::pipeline {

/// Declares one field of a streaming write session before its chunk frames
/// arrive (the session-API analogue of batch.hpp's FieldSpec, which carries
/// the uncompressed floats as well).
struct ArchiveFieldSpec {
  std::string name;
  sz::Dims dims;
  double abs_error_bound = 0.0;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;  // field default
  /// Field-level shared codebook; frames whose ChunkMeta says SharedField
  /// must have been encoded against it and serialized without their book.
  std::shared_ptr<const huffman::Codebook> shared_codebook;
};

struct WriterOptions {
  /// Interleave CRC-guarded recovery preambles into the payload (header
  /// flags bit 0), so a truncated or torn archive can be salvaged without
  /// its deferred index (see pipeline/recovery.hpp). Off by default: the
  /// default output stays byte-identical to PR 5 archives, and the strict
  /// read path never touches preambles either way.
  bool recovery_preambles = false;
};

/// Incremental archive write session over a ByteSink. Not thread-safe: one
/// session, one producer (the batch scheduler serializes its deterministic
/// (field, chunk) collect order through it). Abandoning a session without
/// finish() leaves the sink holding a torso no strict reader accepts —
/// pipeline/recovery.hpp's repair_truncated() re-finalizes such torsos when
/// the session wrote recovery preambles.
class ArchiveWriter {
 public:
  /// Writes the 8-byte archive head immediately.
  explicit ArchiveWriter(ByteSink& sink, WriterOptions options = {});

  /// Opens a field. Validates the spec (positive error bound and radius,
  /// unique name) and throws ContainerError on violations.
  void begin_field(const ArchiveFieldSpec& spec);

  /// Appends one chunk frame (sz::serialize_blob bytes for `extent`) to the
  /// open field. Extents must arrive contiguously in flat element order.
  /// The two-argument form records the field's default method with a
  /// private codebook.
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame);
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame, const ChunkMeta& meta);

  /// Replay variant: records `crc32` instead of hashing `frame` — for
  /// producers replaying frames whose checksum is already on record
  /// (Container::serialize). Besides skipping a payload-sized CRC pass,
  /// this keeps in-memory corruption of the replayed bytes detectable
  /// downstream instead of re-stamping a fresh checksum over it.
  void write_chunk(const ChunkExtent& extent,
                   std::span<const std::uint8_t> frame, const ChunkMeta& meta,
                   std::uint32_t crc32);

  /// Closes the open field; throws ContainerError unless its chunks tile the
  /// declared dims exactly.
  void end_field();

  /// Compresses `data` chunk by chunk into the session (sequential; the
  /// parallel path is BatchScheduler::compress_to) — each frame is written
  /// as soon as it is encoded, so peak memory is O(chunk), not O(field).
  /// Exactly Container::add_field's semantics, including planning. Returns
  /// the field index.
  std::size_t add_field(const std::string& name, std::span<const float> data,
                        const sz::Dims& dims, const sz::CompressorConfig& config,
                        std::size_t chunk_elems, const PlanOptions& plan = {});

  /// Writes the deferred index and footer and COMMITS the sink (fsync for
  /// FileSink, atomic temp-file publish for AtomicFileSink); the session is
  /// complete and unusable afterwards. Returns the total archive bytes.
  std::uint64_t finish();

  bool finished() const { return finished_; }
  /// True between begin_field and end_field.
  bool field_open() const { return in_field_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Index records accumulated so far (the writer's only per-chunk state).
  const std::vector<FieldEntry>& fields() const { return fields_; }

 private:
  ByteSink& sink_;
  WriterOptions options_;
  std::vector<FieldEntry> fields_;
  FieldEntry current_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t next_elem_ = 0;
  bool in_field_ = false;
  bool finished_ = false;
};

struct ReaderOptions {
  /// Retry budget applied to every source read the reader issues (frame
  /// fetches, open-time footer/index reads). Default: one attempt,
  /// fail-fast — exactly the pre-retry behaviour.
  RetryPolicy retry;
};

/// Result of a degraded, hole-tolerant field decode: every chunk with an
/// intact frame is reconstructed into its slice of `values`; chunks that are
/// missing or fail their CRC/decode are zero-filled and reported. Bytes that
/// failed a checksum are never surfaced.
struct PartialFieldDecode {
  std::vector<float> values;  // field-sized (per the field header's dims)
  FieldReport report;
};

/// Random-access read session over a version-3 archive. Construction reads
/// ONLY the footer and index; every frame access is a lazy, CRC-checked
/// fetch. All decode entry points are const and thread-safe (the source
/// contract requires concurrent read_at), so chunks of one reader can be
/// decoded from many threads at once.
class ArchiveReader {
 public:
  /// Footer-first open: validates the head, footer, and index (structure,
  /// CRC, chunk coverage, frame bounds). Throws ContainerError on format
  /// violations — including versions 1/2, which are whole-buffer formats
  /// (use Container::deserialize for those) — and ArchiveError on IO
  /// failures. STRICT mode: any damage anywhere in the metadata is fatal.
  explicit ArchiveReader(const ByteSource& source, ReaderOptions options = {});

  /// Salvage open: never rejects a damaged archive. Uses the strict
  /// footer/index when intact, otherwise rebuilds a partial index from the
  /// payload's recovery preambles (pipeline/recovery.hpp). Fields may come
  /// back incomplete: decode_field/decode_range/verify throw on those (use
  /// decode_field_partial), and chunk indices are DENSE over the recovered
  /// chunks — chunk_ordinal() maps back to as-written ordinals. `report`,
  /// when non-null, receives the scan statistics.
  static ArchiveReader open_salvage(const ByteSource& source,
                                    SalvageReport* report = nullptr,
                                    ReaderOptions options = {});

  const std::vector<FieldEntry>& fields() const { return fields_; }

  /// True for readers produced by open_salvage.
  bool salvaged() const { return salvaged_; }

  /// False only for a salvaged field whose recovered chunks do not tile its
  /// declared dims.
  bool field_complete(std::size_t field) const;

  /// The as-written ordinal of a (possibly dense salvage) chunk index.
  std::size_t chunk_ordinal(std::size_t field, std::size_t chunk) const;

  /// Transient-read retries spent so far under ReaderOptions::retry.
  std::uint64_t io_retries() const { return io_retries_.value(); }

  /// Field index by name; throws ContainerError on unknown names.
  std::size_t field_index(const std::string& name) const;

  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Bytes this reader keeps resident after open: head + index + footer.
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  /// The largest frame in the index — with resident_bytes() and the worker
  /// count, the exact peak-memory budget of a streaming decompress.
  std::uint64_t max_frame_bytes() const { return max_frame_bytes_; }

  /// High-water mark of concurrently fetched frame bytes across all decode
  /// calls so far (the streaming-decompress residency tests pin this to
  /// workers * max_frame_bytes()).
  std::uint64_t peak_frame_bytes() const {
    return static_cast<std::uint64_t>(frame_bytes_.peak());
  }

  /// Fetches one chunk's frame bytes (one source read + CRC check).
  std::vector<std::uint8_t> read_frame(std::size_t field,
                                       std::size_t chunk) const;

  /// Fetches one chunk's frame WITHOUT the CRC check — for prefetching
  /// consumers whose decode path runs the frame through
  /// wire::parse_chunk_frame (which verifies the CRC) anyway, so the bytes
  /// are hashed once, on the decoding thread instead of the fetching one.
  /// Once returned the bytes are caller-owned; wrap them in a FrameResidency
  /// to keep peak_frame_bytes() honest while they stay resident.
  std::vector<std::uint8_t> read_frame_unverified(std::size_t field,
                                                  std::size_t chunk) const;

  /// Decodes ONE chunk — fetch, checksum, frame parse, decompression —
  /// without reading any other frame's bytes.
  sz::DecompressionResult decode_chunk(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      const core::DecoderConfig& decoder = {}) const;

  /// Fused variant: reconstructs the chunk's floats straight into `out`
  /// (sized to the chunk's element count), exactly like
  /// Container::decode_chunk_into.
  sz::DecompressionResult decode_chunk_into(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      std::span<float> out, const core::DecoderConfig& decoder = {}) const;

  /// Decodes a whole field chunk by chunk in chunk-id order, one resident
  /// frame at a time. Throws on a salvaged-incomplete field.
  FieldDecode decode_field(cudasim::SimContext& ctx, std::size_t field,
                           const core::DecoderConfig& decoder = {}) const;

  /// Degraded decode: reconstructs every chunk whose frame is intact,
  /// zero-fills and reports the rest (Missing holes for chunks the salvage
  /// never recovered, Corrupt for frames failing CRC or decode). Works on
  /// strict readers too — there it quarantines payload corruption the index
  /// did not protect against.
  PartialFieldDecode decode_field_partial(
      cudasim::SimContext& ctx, std::size_t field,
      const core::DecoderConfig& decoder = {}) const;

  /// Decodes only the chunks overlapping [elem_begin, elem_end) and returns
  /// exactly that element range. (BatchScheduler::decode_range is the
  /// prefetching parallel variant.)
  std::vector<float> decode_range(cudasim::SimContext& ctx, std::size_t field,
                                  std::uint64_t elem_begin,
                                  std::uint64_t elem_end,
                                  const core::DecoderConfig& decoder = {}) const;

  /// Streams every frame once and verifies its CRC-32 without decoding;
  /// throws ContainerError naming the first corrupted field/chunk (or the
  /// first salvaged-incomplete field).
  void verify() const;

 private:
  friend class FrameResidency;
  struct SalvageTag {};
  /// Adopts a salvage scan's rebuilt partial index. Private: reached via
  /// open_salvage, which runs the scan first. (A constructor so the factory
  /// can return a prvalue — the residency atomics make the reader
  /// non-movable.)
  ArchiveReader(SalvageTag, const ByteSource& source, SalvageResult salvage,
                ReaderOptions options);

  const ChunkRecord& record(std::size_t field, std::size_t chunk) const;
  std::vector<std::uint8_t> fetch_frame(const ChunkRecord& rec) const;
  /// All source traffic funnels through here: retries TransientIoError
  /// within options_.retry, counting attempts into io_retries_.
  void read_at_retried(std::uint64_t offset, std::span<std::uint8_t> out) const;
  void require_complete(std::size_t field) const;

  const ByteSource& source_;
  ReaderOptions options_;
  std::vector<FieldEntry> fields_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t max_frame_bytes_ = 0;
  bool salvaged_ = false;
  /// Salvage only: per field, the as-written ordinal of each dense chunk
  /// index, and whether the recovered chunks tile the field.
  std::vector<std::vector<std::uint32_t>> salvage_ordinals_;
  std::vector<bool> salvage_complete_;
  /// Per-reader telemetry instruments (obs/metrics.hpp): always-on so the
  /// io_retries()/peak_frame_bytes() accessors keep their exact pre-obs
  /// semantics; the process registry additionally aggregates across readers
  /// under "reader.*" when obs::enabled().
  mutable obs::Counter io_retries_;
  mutable obs::Gauge frame_bytes_;  // current + peak resident frame bytes
};

/// RAII accounting of frame bytes held against a reader's residency gauge.
/// The decode entry points hold one internally for the duration of each
/// fetch+decode; prefetching consumers (BatchScheduler::decode_range) hold
/// one per in-flight frame, so peak_frame_bytes() observes every resident
/// frame wherever it lives — the streaming-memory tests assert against the
/// gauge instead of trusting call structure.
class FrameResidency {
 public:
  FrameResidency(const ArchiveReader& reader, std::uint64_t bytes);
  ~FrameResidency();
  FrameResidency(const FrameResidency&) = delete;
  FrameResidency& operator=(const FrameResidency&) = delete;

 private:
  const ArchiveReader& reader_;
  std::uint64_t bytes_;
  /// True when the registry gauge was incremented too — the decrement is
  /// keyed off this, not off a re-read of the enable flag, so a mid-flight
  /// flag flip can never unbalance "reader.frame_bytes".
  bool mirrored_ = false;
};

/// Compresses one field chunk by chunk under a whole-field error bound and
/// hands each serialized frame to `on_frame` in chunk order — the single
/// encode sequence behind Container::add_field and ArchiveWriter::add_field.
/// `on_plan` fires once, after the error bound and any field plan (method
/// selection / shared codebook) are resolved but before the first frame.
void compress_field_frames(
    std::span<const float> data, const sz::Dims& dims,
    const sz::CompressorConfig& config, std::size_t chunk_elems,
    const PlanOptions& plan,
    const std::function<void(double abs_error_bound,
                             std::shared_ptr<const huffman::Codebook> shared)>&
        on_plan,
    const std::function<void(const ChunkExtent& extent,
                             std::vector<std::uint8_t> frame,
                             const ChunkMeta& meta)>& on_frame);

}  // namespace ohd::pipeline
