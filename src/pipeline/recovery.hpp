// Salvage and repair of damaged "OHDC" v3 archives.
//
// The v3 format's deferred index is its single point of failure: every frame
// byte range and CRC lives in the tail, so a truncated or torn archive loses
// the map to payload bytes that are still perfectly intact. Archives written
// with WriterOptions::recovery_preambles carry self-delimiting, CRC-guarded
// preambles inside the payload (wire_format.hpp); salvage_scan re-derives a
// partial index from them by re-synchronizing on the preamble magics — the
// same self-sync idea the paper's decoder uses inside a damaged bitstream —
// and trusts a frame only after BOTH its preamble CRC and its frame CRC
// pass. Nothing that failed a checksum is ever surfaced.
//
// Outcomes are first-class, not exceptions: a DecodeReport carries per-chunk
// status (Ok / Missing / Corrupt) so callers can contain damage to a
// reported hole instead of discarding a field. repair_truncated() rewrites a
// damaged archive's salvageable prefix as a fresh, strictly valid archive —
// the recovery path for a writer that died before finish().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/byte_stream.hpp"
#include "pipeline/container.hpp"

namespace ohd::pipeline {

/// Outcome of one chunk in a partial decode or salvage.
enum class ChunkStatus : std::uint8_t {
  Ok = 0,       // frame CRC passed and the chunk decoded
  Missing = 1,  // no intact frame exists (truncated away or index lost)
  Corrupt = 2,  // a frame exists but failed its CRC or decode
};

/// One chunk's (or one contiguous hole's) entry in a field report.
struct ChunkReport {
  /// Chunk ordinal as written. For a Missing entry spanning several
  /// consecutive lost ordinals this is the first of them.
  std::size_t chunk = 0;
  ChunkStatus status = ChunkStatus::Ok;
  /// Element range of the field this entry covers (count 0 when the hole
  /// runs to an unknown end — the tail of a truncated field).
  std::uint64_t elem_offset = 0;
  std::uint64_t elem_count = 0;
  std::string detail;  // human-readable cause for non-Ok entries
};

struct FieldReport {
  std::string name;
  std::uint64_t elems_total = 0;  // field element count per its header
  std::uint64_t elems_ok = 0;     // elements backed by an Ok chunk
  std::vector<ChunkReport> chunks;

  std::size_t ok_count() const {
    std::size_t n = 0;
    for (const ChunkReport& c : chunks) n += c.status == ChunkStatus::Ok;
    return n;
  }
  bool complete() const {
    return elems_ok == elems_total && ok_count() == chunks.size();
  }
};

/// Per-chunk outcome of a (possibly degraded) decode across fields.
struct DecodeReport {
  std::vector<FieldReport> fields;

  bool complete() const {
    for (const FieldReport& f : fields) {
      if (!f.complete()) return false;
    }
    return true;
  }
  std::size_t chunks_ok() const {
    std::size_t n = 0;
    for (const FieldReport& f : fields) n += f.ok_count();
    return n;
  }
  std::size_t chunks_reported() const {
    std::size_t n = 0;
    for (const FieldReport& f : fields) n += f.chunks.size();
    return n;
  }
};

/// What a salvage pass saw and kept — the artifact the fault-injection CI
/// job uploads.
struct SalvageReport {
  bool header_valid = false;       // 8-byte head parsed (v3, known flags)
  bool preambles_present = false;  // header flags carried recovery preambles
  bool used_index = false;         // footer+index were intact; no scan needed
  std::uint64_t scanned_bytes = 0;
  std::uint64_t resync_skipped_bytes = 0;  // garbage walked over byte-by-byte
  std::size_t frames_recovered = 0;  // preamble CRC ok AND frame CRC ok
  std::size_t frames_rejected = 0;   // preamble CRC ok but frame bad/truncated
  std::size_t fields_recovered = 0;
  std::vector<std::string> notes;  // anomalies worth a human's attention
};

/// One recovered chunk: its ordinal as written plus a fully populated index
/// record (payload offset re-derived from where the scan found the frame).
struct SalvagedChunk {
  std::uint32_t ordinal = 0;
  ChunkRecord record;
};

struct SalvagedField {
  std::uint32_t ordinal = 0;
  /// Field header from the preamble (or the intact index); chunk list empty.
  FieldEntry header;
  /// Recovered chunks, sorted by ordinal; gaps are lost chunks.
  std::vector<SalvagedChunk> chunks;
  /// True when the recovered chunks tile the declared dims completely.
  bool complete = false;
};

struct SalvageResult {
  std::vector<SalvagedField> fields;  // sorted by field ordinal
  SalvageReport report;
};

/// Rebuilds as much of an archive's index as the bytes allow. Strategy:
/// parse the strict footer+index first (an archive that is merely
/// payload-corrupt keeps its full index; decode quarantines the bad chunks
/// later); if the tail is damaged, scan the payload for recovery preambles
/// and admit exactly the frames whose preamble AND frame CRCs pass. Never
/// throws on damage — damage shows up as absent chunks and report notes; IO
/// errors other than "short" transients still propagate as ArchiveError.
SalvageResult salvage_scan(const ByteSource& source,
                           const RetryPolicy& retry = {});

struct RepairReport {
  std::size_t fields_kept = 0;
  std::size_t fields_dropped = 0;  // nothing salvageable (no contiguous prefix)
  std::size_t chunks_kept = 0;
  std::size_t chunks_dropped = 0;  // recovered but after a hole, or truncated
  std::uint64_t output_bytes = 0;  // size of the re-finalized archive
};

/// Re-finalizes a damaged archive into `out` as a fresh, strictly valid v3
/// archive (with recovery preambles), keeping every complete frame that
/// still forms a contiguous prefix of its field: a field cut mid-stream is
/// re-declared with its slowest axis truncated to the covered slabs (chunks
/// are whole slabs by construction, see chunk_layout). Chunks recovered
/// AFTER a hole cannot be represented in a strict index and are dropped —
/// use ArchiveReader::open_salvage to reach those. Frames are replayed
/// byte-for-byte under their recovered CRCs, and the sink is committed by
/// the writer's finish() (pair with AtomicFileSink for a crash-consistent
/// repair).
RepairReport repair_truncated(const ByteSource& damaged, ByteSink& out,
                              const RetryPolicy& retry = {});

}  // namespace ohd::pipeline
