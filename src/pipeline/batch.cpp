#include "pipeline/batch.hpp"

#include <algorithm>
#include <future>

#include "cudasim/exec.hpp"
#include "sz/serialize.hpp"

namespace ohd::pipeline {

double BatchDecompressResult::makespan(std::size_t workers) const {
  if (workers == 0) workers = 1;
  std::vector<double> busy(workers, 0.0);
  for (double s : chunk_seconds) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < busy.size(); ++i) {
      if (busy[i] < busy[w]) w = i;
    }
    busy[w] += s;
  }
  return *std::max_element(busy.begin(), busy.end());
}

namespace {

/// Blocks until every still-pending future in `futures` has run (get()
/// invalidates futures, so only un-collected ones are waited). Exception
/// unwinding must never leave the scope of a fan-out while tasks still hold
/// references into it.
template <typename T>
void wait_all(std::vector<std::future<T>>& futures) noexcept {
  for (auto& fut : futures) {
    if (fut.valid()) fut.wait();
  }
}

}  // namespace

Container BatchScheduler::compress(std::span<const FieldSpec> specs) const {
  struct FieldPlan {
    double abs_eb = 0.0;
    std::vector<ChunkExtent> layout;
    std::vector<std::future<std::vector<std::uint8_t>>> frames;
  };

  // Phase 1: validate EVERY spec before any task is submitted — once the
  // fan-out starts, the only exceptions left are ones thrown by the chunk
  // tasks themselves.
  std::vector<FieldPlan> plans(specs.size());
  for (std::size_t fi = 0; fi < specs.size(); ++fi) {
    const FieldSpec& spec = specs[fi];
    if (spec.data.size() != spec.dims.count()) {
      throw ContainerError("field '" + spec.name +
                           "': data size does not match dimensions");
    }
    if (spec.config.method == core::Method::GapArrayOriginal8Bit) {
      throw ContainerError(
          "the 8-bit gap-array method is decode-only and cannot reconstruct "
          "float fields; pick a multi-byte method for container fields");
    }
    if (spec.config.radius == 0) {
      throw ContainerError("field '" + spec.name + "': zero quantizer radius");
    }
    for (std::size_t fj = 0; fj < fi; ++fj) {
      if (specs[fj].name == spec.name) {
        throw ContainerError("duplicate field name '" + spec.name + "'");
      }
    }
    plans[fi].abs_eb =
        sz::resolve_error_bound(spec.data, spec.config.rel_error_bound);
    plans[fi].layout = chunk_layout(spec.dims, spec.chunk_elems);
  }

  // Phase 2: fan out ALL chunk tasks (field-major), so chunks of different
  // fields overlap in the pool; phase 3: collect in deterministic (field,
  // chunk) order. On ANY failure — submit or collect — wait out the
  // remaining tasks before unwinding destroys plans/specs.
  Container container;
  try {
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldPlan& plan = plans[fi];
      plan.frames.reserve(plan.layout.size());
      for (const ChunkExtent& extent : plan.layout) {
        plan.frames.push_back(pool_.submit([&spec, &plan, extent] {
          const auto blob = sz::compress_with_abs_bound(
              spec.data.subspan(extent.elem_offset, extent.dims.count()),
              extent.dims, plan.abs_eb, spec.config);
          return sz::serialize_blob(blob);
        }));
      }
    }
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      FieldPlan& plan = plans[fi];
      std::vector<std::vector<std::uint8_t>> frames;
      frames.reserve(plan.frames.size());
      for (auto& fut : plan.frames) frames.push_back(fut.get());
      container.add_field_frames(specs[fi].name, specs[fi].dims, plan.abs_eb,
                                 specs[fi].config.radius,
                                 specs[fi].config.method, plan.layout, frames);
    }
  } catch (...) {
    for (FieldPlan& plan : plans) wait_all(plan.frames);
    throw;
  }
  return container;
}

BatchDecompressResult BatchScheduler::decompress(
    const Container& container, const core::DecoderConfig& decoder) const {
  // Fan out, then collect in deterministic (field, chunk) order via the
  // same chunk-merge path the sequential decode_field uses. On any failure
  // — a submit throw or a CRC mismatch surfacing through get() — wait out
  // the remaining tasks before unwinding: they still reference `container`
  // and `decoder`.
  std::vector<std::vector<std::future<sz::DecompressionResult>>> futures(
      container.fields().size());
  BatchDecompressResult out;
  out.fields.resize(container.fields().size());
  try {
    for (std::size_t fi = 0; fi < container.fields().size(); ++fi) {
      const std::size_t n_chunks = container.fields()[fi].chunks.size();
      futures[fi].reserve(n_chunks);
      for (std::size_t ci = 0; ci < n_chunks; ++ci) {
        futures[fi].push_back(pool_.submit([&container, &decoder, fi, ci] {
          cudasim::SimContext ctx;
          return container.decode_chunk(ctx, fi, ci, decoder);
        }));
      }
    }
    for (std::size_t fi = 0; fi < container.fields().size(); ++fi) {
      const FieldEntry& entry = container.fields()[fi];
      FieldResult& field = out.fields[fi];
      field.name = entry.name;
      field.decode.data.resize(entry.dims.count());
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        field.decode.absorb(futures[fi][ci].get(),
                            entry.chunks[ci].elem_offset);
      }
      out.phases += field.decode.huffman_phases;
      out.simulated_seconds += field.decode.simulated_seconds;
      out.chunk_seconds.insert(out.chunk_seconds.end(),
                               field.decode.chunk_seconds.begin(),
                               field.decode.chunk_seconds.end());
    }
  } catch (...) {
    for (auto& field_futures : futures) wait_all(field_futures);
    throw;
  }
  return out;
}

std::vector<core::DecodeResult> BatchScheduler::decode(
    std::span<const core::EncodedStream> streams,
    const core::DecoderConfig& decoder) const {
  std::vector<std::future<core::DecodeResult>> futures;
  futures.reserve(streams.size());
  std::vector<core::DecodeResult> out;
  out.reserve(streams.size());
  try {
    for (const core::EncodedStream& stream : streams) {
      futures.push_back(pool_.submit([&stream, &decoder] {
        cudasim::SimContext ctx;
        return core::decode(ctx, stream, decoder);
      }));
    }
    for (auto& fut : futures) out.push_back(fut.get());
  } catch (...) {
    wait_all(futures);
    throw;
  }
  return out;
}

}  // namespace ohd::pipeline
