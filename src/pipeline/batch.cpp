#include "pipeline/batch.hpp"

#include <algorithm>
#include <future>
#include <memory>

#include "cudasim/exec.hpp"
#include "obs/trace.hpp"
#include "pipeline/wire_format.hpp"
#include "sz/serialize.hpp"

namespace ohd::pipeline {

double BatchDecompressResult::makespan(std::size_t workers) const {
  if (workers == 0) workers = 1;
  std::vector<double> busy(workers, 0.0);
  for (double s : chunk_seconds) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < busy.size(); ++i) {
      if (busy[i] < busy[w]) w = i;
    }
    busy[w] += s;
  }
  return *std::max_element(busy.begin(), busy.end());
}

namespace {

// Scheduler-wide aggregates; per-chunk task latencies record from worker
// threads, phase spans from the collecting thread. Only touched behind
// obs::enabled().
struct BatchMetrics {
  obs::LatencyHistogram& quantize_ns;
  obs::LatencyHistogram& encode_ns;
  obs::LatencyHistogram& decode_ns;
  obs::Counter& chunks_encoded;
  obs::Counter& chunks_decoded;
};

BatchMetrics& batch_metrics() {
  static BatchMetrics m{obs::registry().histogram("batch.quantize_ns"),
                        obs::registry().histogram("batch.encode_ns"),
                        obs::registry().histogram("batch.decode_ns"),
                        obs::registry().counter("batch.chunks_encoded"),
                        obs::registry().counter("batch.chunks_decoded")};
  return m;
}

/// Per-field chunk-count counters are registered by field name at fan-out
/// time (dynamic names are exactly what the registry's get-or-create is
/// for); `suffix` distinguishes the write and decode directions.
void count_field_chunks(const std::string& field, const char* suffix,
                        std::uint64_t chunks) {
  obs::registry().counter("batch.field." + field + suffix).add(chunks);
}

/// Blocks until every still-pending future in `futures` has run (get()
/// invalidates futures, so only un-collected ones are waited). Exception
/// unwinding must never leave the scope of a fan-out while tasks still hold
/// references into it.
template <typename T>
void wait_all(std::vector<std::future<T>>& futures) noexcept {
  for (auto& fut : futures) {
    if (fut.valid()) fut.wait();
  }
}

/// The shared decompress fan-out: works identically over an in-memory
/// Container and a streaming ArchiveReader because both expose fields() and
/// the fused decode_chunk_into. With a reader, each task's frame fetch (IO)
/// overlaps other tasks' decode work.
template <typename Archive>
BatchDecompressResult decompress_archive(ThreadPool& pool,
                                         const Archive& archive,
                                         const core::DecoderConfig& decoder,
                                         const CancelToken& cancel = {}) {
  // Fan out, then collect in deterministic (field, chunk) order via the
  // same chunk-merge path the sequential decode_field uses. Every field
  // buffer is allocated BEFORE the fan-out and each task reconstructs its
  // chunk straight into its (disjoint) slice via the fused decode-write
  // path, so floats are written once, in place, by whichever worker decodes
  // the chunk — bit-identical for any worker count, with no per-chunk float
  // vector or merge copy. On any failure — a submit throw or a CRC mismatch
  // surfacing through get() — wait out the remaining tasks before
  // unwinding: they still reference `archive`, `decoder`, and the output
  // buffers.
  const obs::ScopedOp batch_op("batch.decompress");
  std::vector<std::vector<std::future<sz::DecompressionResult>>> futures(
      archive.fields().size());
  BatchDecompressResult out;
  out.fields.resize(archive.fields().size());
  for (std::size_t fi = 0; fi < archive.fields().size(); ++fi) {
    out.fields[fi].name = archive.fields()[fi].name;
    out.fields[fi].decode.data.resize(archive.fields()[fi].dims.count());
  }
  try {
    for (std::size_t fi = 0; fi < archive.fields().size(); ++fi) {
      // Task-boundary cancellation: stop fanning out new chunk tasks, and
      // every already-submitted task re-checks at entry, so a cancel lands
      // between chunks — never inside one.
      cancel.throw_if_cancelled();
      const FieldEntry& entry = archive.fields()[fi];
      if (obs::enabled()) {
        batch_metrics().chunks_decoded.add(entry.chunks.size());
        count_field_chunks(entry.name, ".chunks_decoded",
                           entry.chunks.size());
      }
      futures[fi].reserve(entry.chunks.size());
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        const std::span<float> dest(
            out.fields[fi].decode.data.data() + entry.chunks[ci].elem_offset,
            entry.chunks[ci].dims.count());
        futures[fi].push_back(
            pool.submit([&archive, &decoder, &cancel, fi, ci, dest] {
              cancel.throw_if_cancelled();
              // Fetch + decode + reconstruct of one chunk: the reader's own
              // "reader.frame_fetch" span nests under this one.
              const obs::ScopedOp op(
                  "batch.decode",
                  obs::enabled() ? &batch_metrics().decode_ns : nullptr);
              cudasim::SimContext ctx;
              return archive.decode_chunk_into(ctx, fi, ci, dest, decoder);
            }));
      }
    }
    for (std::size_t fi = 0; fi < archive.fields().size(); ++fi) {
      const FieldEntry& entry = archive.fields()[fi];
      FieldResult& field = out.fields[fi];
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        field.decode.absorb_timings(futures[fi][ci].get());
      }
      out.phases += field.decode.huffman_phases;
      out.simulated_seconds += field.decode.simulated_seconds;
      out.chunk_seconds.insert(out.chunk_seconds.end(),
                               field.decode.chunk_seconds.begin(),
                               field.decode.chunk_seconds.end());
    }
  } catch (...) {
    for (auto& field_futures : futures) wait_all(field_futures);
    throw;
  }
  if (obs::enabled()) {
    obs::absorb_phase_timings(obs::registry(), out.phases);
  }
  return out;
}

}  // namespace

void BatchScheduler::compress_to(ArchiveWriter& writer,
                                 std::span<const FieldSpec> specs,
                                 const CancelToken& cancel) const {
  // A planned field's quantize tasks also PROBE their chunk (histogram +
  // canonical lengths + statistics) in the pool, so only the cheap pooled
  // work of plan_from_probes stays on the collecting thread.
  struct ProbedChunk {
    sz::QuantizedField q;
    ChunkProbe probe;
  };
  struct FieldState {
    double abs_eb = 0.0;
    std::vector<ChunkExtent> layout;
    bool planned = false;  // two-fan-out path (auto method / shared codebook)
    // Fused path: one task per chunk produces the frame directly. Planned
    // path: quantize+probe futures feed plan_from_probes, then encode
    // futures.
    std::vector<std::future<std::vector<std::uint8_t>>> frames;
    std::vector<std::future<ProbedChunk>> quants;
    std::vector<sz::QuantizedField> quantized;  // collected, then moved out
    FieldPlan plan;
    std::shared_ptr<const huffman::Codebook> shared;
    std::vector<ChunkMeta> meta;
  };

  // Phase 1: validate EVERY spec — and the writer's session state — before
  // any task is submitted: once the fan-out starts, the only exceptions left
  // are ones thrown by the chunk tasks themselves. (The writer re-validates
  // as frames stream in, but by then failing would abandon a half-written
  // session after compressing the whole corpus.)
  if (writer.finished()) {
    throw ContainerError("compress_to on a finished archive session");
  }
  if (writer.field_open()) {
    throw ContainerError("compress_to with an unclosed field session");
  }
  std::vector<FieldState> states(specs.size());
  for (std::size_t fi = 0; fi < specs.size(); ++fi) {
    const FieldSpec& spec = specs[fi];
    if (spec.data.size() != spec.dims.count()) {
      throw ContainerError("field '" + spec.name +
                           "': data size does not match dimensions");
    }
    if (spec.config.method == core::Method::GapArrayOriginal8Bit) {
      throw ContainerError(
          "the 8-bit gap-array method is decode-only and cannot reconstruct "
          "float fields; pick a multi-byte method for container fields");
    }
    if (spec.config.radius == 0) {
      throw ContainerError("field '" + spec.name + "': zero quantizer radius");
    }
    for (const FieldEntry& written : writer.fields()) {
      if (written.name == spec.name) {
        throw ContainerError("duplicate field name '" + spec.name + "'");
      }
    }
    for (std::size_t fj = 0; fj < fi; ++fj) {
      if (specs[fj].name == spec.name) {
        throw ContainerError("duplicate field name '" + spec.name + "'");
      }
    }
    states[fi].abs_eb =
        sz::resolve_error_bound(spec.data, spec.config.rel_error_bound);
    states[fi].layout = chunk_layout(spec.dims, spec.chunk_elems);
    states[fi].planned =
        spec.plan.auto_method || spec.plan.shared_codebook;
  }

  // Phase 2: fan out ALL chunk tasks (field-major), so chunks of different
  // fields overlap in the pool. Planned fields fan out QUANTIZE tasks; their
  // plan is computed on this thread once the field's quantized chunks are
  // all in (deterministic — a pure function of the field), and the encode
  // tasks fan out immediately after, overlapping with other fields' work.
  // Phase 3: stream frames into the writer in deterministic (field, chunk)
  // order as their futures complete — the sink sees the bytes while later
  // chunks are still compressing, and nothing accumulates beyond the frame
  // currently being handed over. On ANY failure — submit or collect — wait
  // out the remaining tasks before unwinding destroys states/specs.
  const obs::ScopedOp batch_op("batch.compress");
  try {
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldState& state = states[fi];
      // Task-boundary cancellation, mirrored from decompress_archive: stop
      // fanning out new chunk tasks, and every submitted task re-checks at
      // entry so cancels land between chunks.
      cancel.throw_if_cancelled();
      if (state.planned) {
        state.quants.reserve(state.layout.size());
        for (const ChunkExtent& extent : state.layout) {
          state.quants.push_back(pool_.submit([&spec, &state, &cancel, extent] {
            cancel.throw_if_cancelled();
            const obs::ScopedOp op(
                "batch.quantize",
                obs::enabled() ? &batch_metrics().quantize_ns : nullptr);
            ProbedChunk out;
            out.q = sz::quantize_with_abs_bound(
                spec.data.subspan(extent.elem_offset, extent.dims.count()),
                extent.dims, state.abs_eb, spec.config);
            out.probe = probe_chunk(out.q);
            return out;
          }));
        }
      } else {
        state.frames.reserve(state.layout.size());
        for (const ChunkExtent& extent : state.layout) {
          state.frames.push_back(pool_.submit([&spec, &state, &cancel, extent] {
            cancel.throw_if_cancelled();
            // Fused path: quantize + encode in one task, charged as encode.
            const obs::ScopedOp op(
                "batch.encode",
                obs::enabled() ? &batch_metrics().encode_ns : nullptr);
            const auto blob = sz::compress_with_abs_bound(
                spec.data.subspan(extent.elem_offset, extent.dims.count()),
                extent.dims, state.abs_eb, spec.config);
            return sz::serialize_blob(blob);
          }));
        }
      }
    }
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldState& state = states[fi];
      if (!state.planned) continue;
      // Covers collecting the field's quantize futures plus the pooled plan
      // itself — the stretch where the collecting thread gates the fan-out.
      const obs::ScopedOp plan_op("batch.plan");
      state.quantized.reserve(state.quants.size());
      std::vector<ChunkProbe> probes;
      probes.reserve(state.quants.size());
      for (auto& fut : state.quants) {
        ProbedChunk chunk = fut.get();
        state.quantized.push_back(std::move(chunk.q));
        probes.push_back(std::move(chunk.probe));
      }
      const MethodSelector selector(spec.config.decoder);
      state.plan = plan_from_probes(std::move(probes), spec.config.method,
                                    spec.plan, selector);
      if (state.plan.has_shared_codebook) {
        state.shared = std::make_shared<const huffman::Codebook>(
            std::move(state.plan.shared_codebook));
      }
      state.meta.reserve(state.layout.size());
      state.frames.reserve(state.layout.size());
      for (std::size_t ci = 0; ci < state.layout.size(); ++ci) {
        cancel.throw_if_cancelled();
        const ChunkPlan& cp = state.plan.chunks[ci];
        state.meta.push_back({cp.method, cp.use_shared_codebook
                                             ? CodebookRef::SharedField
                                             : CodebookRef::Private});
        state.frames.push_back(pool_.submit([&spec, &state, &cancel, ci] {
          cancel.throw_if_cancelled();
          const obs::ScopedOp op(
              "batch.encode",
              obs::enabled() ? &batch_metrics().encode_ns : nullptr);
          return encode_planned_chunk(std::move(state.quantized[ci]),
                                      state.plan.chunks[ci], spec.config,
                                      state.shared.get());
        }));
      }
    }
    const obs::ScopedOp write_op("batch.write");
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldState& state = states[fi];
      ArchiveFieldSpec field_spec;
      field_spec.name = spec.name;
      field_spec.dims = spec.dims;
      field_spec.abs_error_bound = state.abs_eb;
      field_spec.radius = spec.config.radius;
      field_spec.method = spec.config.method;
      field_spec.shared_codebook = state.shared;
      writer.begin_field(field_spec);
      for (std::size_t ci = 0; ci < state.frames.size(); ++ci) {
        // Between streamed chunks: a cancelled compress abandons the writer
        // session mid-stream (documented in the header), after waiting out
        // the still-running tasks in the catch below.
        cancel.throw_if_cancelled();
        const std::vector<std::uint8_t> frame = state.frames[ci].get();
        writer.write_chunk(state.layout[ci], frame,
                           state.meta.empty()
                               ? ChunkMeta{spec.config.method,
                                           CodebookRef::Private}
                               : state.meta[ci]);
      }
      writer.end_field();
      if (obs::enabled()) {
        batch_metrics().chunks_encoded.add(state.frames.size());
        count_field_chunks(spec.name, ".chunks", state.frames.size());
      }
    }
  } catch (...) {
    for (FieldState& state : states) {
      wait_all(state.quants);
      wait_all(state.frames);
    }
    throw;
  }
}

Container BatchScheduler::compress(std::span<const FieldSpec> specs) const {
  MemorySink sink;
  ArchiveWriter writer(sink);
  compress_to(writer, specs);
  // Adopt the session's index records and payload directly instead of
  // finishing an image and re-parsing bytes this process just produced and
  // validated on write: one archive copy, and the CRCs recorded at write
  // time stay authoritative. (The sink holds header + payload; the index
  // and footer were never needed.)
  std::vector<std::uint8_t> payload = sink.take();
  payload.erase(payload.begin(),
                payload.begin() +
                    static_cast<std::ptrdiff_t>(wire::kHeaderBytes));
  return Container::adopt(writer.fields(), std::move(payload));
}

BatchDecompressResult BatchScheduler::decompress(
    const Container& container, const core::DecoderConfig& decoder) const {
  return decompress_archive(pool_, container, decoder);
}

BatchDecompressResult BatchScheduler::decompress(
    const ArchiveReader& reader, const core::DecoderConfig& decoder,
    const CancelToken& cancel) const {
  // Strict mode: refuse salvaged readers with holes up front, before any
  // task runs — the shared fan-out would otherwise decode the recovered
  // chunks and silently leave the holes zero-filled.
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    if (!reader.field_complete(fi)) {
      throw ContainerError("field '" + reader.fields()[fi].name +
                           "' was salvaged incomplete; use decompress_partial");
    }
  }
  return decompress_archive(pool_, reader, decoder, cancel);
}

PartialBatchDecompress BatchScheduler::decompress_partial(
    const ArchiveReader& reader, const core::DecoderConfig& decoder) const {
  // Same pre-allocated fan-out shape as decompress_archive, but collection
  // quarantines per chunk: a future surfacing a CRC/parse/retry-exhaustion
  // failure marks its chunk Corrupt and re-zeroes its slice instead of
  // aborting the batch, and salvage holes become Missing entries. The
  // report is assembled on the collecting thread in (field, chunk) order,
  // so it — like the floats and timings — is identical for any worker
  // count.
  PartialBatchDecompress out;
  BatchDecompressResult& res = out.result;
  std::vector<std::vector<std::future<sz::DecompressionResult>>> futures(
      reader.fields().size());
  res.fields.resize(reader.fields().size());
  for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
    res.fields[fi].name = reader.fields()[fi].name;
    res.fields[fi].decode.data.assign(reader.fields()[fi].dims.count(), 0.0f);
  }
  try {
    for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
      const FieldEntry& entry = reader.fields()[fi];
      futures[fi].reserve(entry.chunks.size());
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        const std::span<float> dest(
            res.fields[fi].decode.data.data() + entry.chunks[ci].elem_offset,
            entry.chunks[ci].dims.count());
        futures[fi].push_back(pool_.submit([&reader, &decoder, fi, ci, dest] {
          const obs::ScopedOp op(
              "batch.decode",
              obs::enabled() ? &batch_metrics().decode_ns : nullptr);
          cudasim::SimContext ctx;
          return reader.decode_chunk_into(ctx, fi, ci, dest, decoder);
        }));
      }
    }
    for (std::size_t fi = 0; fi < reader.fields().size(); ++fi) {
      const FieldEntry& entry = reader.fields()[fi];
      FieldResult& field = res.fields[fi];
      FieldReport fr;
      fr.name = entry.name;
      fr.elems_total = entry.dims.count();
      std::uint64_t next_elem = 0;
      std::size_t next_ordinal = 0;
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        const ChunkRecord& rec = entry.chunks[ci];
        const std::size_t ordinal = reader.chunk_ordinal(fi, ci);
        if (rec.elem_offset > next_elem) {
          ChunkReport hole;
          hole.chunk = next_ordinal;
          hole.status = ChunkStatus::Missing;
          hole.elem_offset = next_elem;
          hole.elem_count = rec.elem_offset - next_elem;
          hole.detail = "chunks " + std::to_string(next_ordinal) + ".." +
                        std::to_string(ordinal - 1) + " were not recovered";
          fr.chunks.push_back(std::move(hole));
        }
        ChunkReport cr;
        cr.chunk = ordinal;
        cr.elem_offset = rec.elem_offset;
        cr.elem_count = rec.dims.count();
        try {
          field.decode.absorb_timings(futures[fi][ci].get());
          cr.status = ChunkStatus::Ok;
          fr.elems_ok += cr.elem_count;
        } catch (const std::invalid_argument& e) {
          // The task may have written a partial decode into its slice
          // before failing; never surface bytes that failed verification.
          cr.status = ChunkStatus::Corrupt;
          cr.detail = e.what();
          const std::span<float> dest(
              field.decode.data.data() + rec.elem_offset, rec.dims.count());
          std::fill(dest.begin(), dest.end(), 0.0f);
        }
        fr.chunks.push_back(std::move(cr));
        next_elem = rec.elem_offset + rec.dims.count();
        next_ordinal = ordinal + 1;
      }
      if (next_elem < entry.dims.count()) {
        ChunkReport hole;
        hole.chunk = next_ordinal;
        hole.status = ChunkStatus::Missing;
        hole.elem_offset = next_elem;
        hole.elem_count = entry.dims.count() - next_elem;
        hole.detail = "field tail truncated away";
        fr.chunks.push_back(std::move(hole));
      }
      out.report.fields.push_back(std::move(fr));
      res.phases += field.decode.huffman_phases;
      res.simulated_seconds += field.decode.simulated_seconds;
      res.chunk_seconds.insert(res.chunk_seconds.end(),
                               field.decode.chunk_seconds.begin(),
                               field.decode.chunk_seconds.end());
    }
  } catch (...) {
    for (auto& field_futures : futures) wait_all(field_futures);
    throw;
  }
  return out;
}

std::vector<float> BatchScheduler::decode_range(
    const ArchiveReader& reader, std::size_t field, std::uint64_t elem_begin,
    std::uint64_t elem_end, const core::DecoderConfig& decoder,
    const CancelToken& cancel) const {
  const std::vector<FieldEntry>& fields = reader.fields();
  if (field >= fields.size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = fields[field];
  if (elem_begin > elem_end || elem_end > f.dims.count()) {
    throw ContainerError("element range out of bounds");
  }
  const obs::ScopedOp range_op("batch.decode_range");
  std::vector<float> out(elem_end - elem_begin);

  // One entry per overlapping chunk, in chunk order. Interior chunks decode
  // straight into their slice of `out` (fused write); boundary chunks decode
  // to a task-local vector whose window is copied during the ordered merge.
  struct Window {
    std::size_t chunk = 0;
    std::uint64_t lo = 0;  // absolute element range to copy (boundary only)
    std::uint64_t hi = 0;
    bool interior = false;
  };
  // A prefetched frame keeps a residency lease for its whole in-flight
  // lifetime, so the reader's peak_frame_bytes() gauge observes this path
  // exactly like the decompress fan-out. The frame is fetched UNVERIFIED:
  // the decode task's parse_chunk_frame checks the CRC, so the bytes are
  // hashed once, on the pool, keeping the calling thread IO-bound.
  struct Prefetched {
    Prefetched(const ArchiveReader& r, std::vector<std::uint8_t> b)
        : lease(r, b.size()), bytes(std::move(b)) {}
    FrameResidency lease;
    std::vector<std::uint8_t> bytes;
  };
  // Backpressure: at most `window` frames in flight — the prefetch runs
  // ahead of decode by a bounded margin, so a range spanning many chunks
  // stays at O(window * frame), never O(range).
  const std::size_t window = std::max<std::size_t>(2, 2 * pool_.size());
  std::vector<Window> windows;
  std::vector<std::future<std::vector<float>>> futures;
  // Reserve up front: a push_back reallocation throwing AFTER submit would
  // orphan an enqueued task that still writes through `dest` into `out`
  // (the same reason decompress_archive reserves before its fan-out).
  windows.reserve(f.chunks.size());
  futures.reserve(f.chunks.size());
  std::size_t collected = 0;
  const auto collect_one = [&] {
    const std::vector<float> floats = futures[collected].get();
    const Window& w = windows[collected];
    ++collected;
    if (w.interior) return;
    const std::uint64_t chunk_begin = f.chunks[w.chunk].elem_offset;
    std::copy(floats.begin() + static_cast<std::ptrdiff_t>(w.lo - chunk_begin),
              floats.begin() + static_cast<std::ptrdiff_t>(w.hi - chunk_begin),
              out.begin() + static_cast<std::ptrdiff_t>(w.lo - elem_begin));
  };
  try {
    for (std::size_t c = 0; c < f.chunks.size(); ++c) {
      const ChunkRecord& rec = f.chunks[c];
      const std::uint64_t chunk_begin = rec.elem_offset;
      const std::uint64_t chunk_end = chunk_begin + rec.dims.count();
      if (chunk_end <= elem_begin || chunk_begin >= elem_end) continue;
      // Between prefetch steps: stop fetching further frames once cancelled;
      // decode tasks for frames already in flight re-check at entry.
      cancel.throw_if_cancelled();
      while (futures.size() - collected >= window) collect_one();
      // Prefetch: the frame's IO happens here, on the calling thread, while
      // the decode tasks of previously fetched chunks run on the pool.
      auto frame = std::make_shared<const Prefetched>(
          reader, reader.read_frame_unverified(field, c));
      Window w;
      w.chunk = c;
      w.lo = std::max(chunk_begin, elem_begin);
      w.hi = std::min(chunk_end, elem_end);
      w.interior = chunk_begin >= elem_begin && chunk_end <= elem_end;
      if (w.interior) {
        const std::span<float> dest(out.data() + (chunk_begin - elem_begin),
                                    rec.dims.count());
        futures.push_back(
            pool_.submit([&f, c, frame, dest, &decoder, &cancel]() mutable {
              cancel.throw_if_cancelled();
              cudasim::SimContext ctx;
              const sz::CompressedBlob blob =
                  wire::parse_chunk_frame(f, c, frame->bytes);
              // The blob owns its data: drop the frame (and its residency
              // lease) before the decode, and before the future can become
              // ready.
              frame.reset();
              sz::decompress_into(ctx, blob, dest, decoder);
              return std::vector<float>();
            }));
      } else {
        futures.push_back(
            pool_.submit([&f, c, frame, &decoder, &cancel]() mutable {
              cancel.throw_if_cancelled();
              cudasim::SimContext ctx;
              const sz::CompressedBlob blob =
                  wire::parse_chunk_frame(f, c, frame->bytes);
              frame.reset();
              sz::DecompressionResult r = sz::decompress(ctx, blob, decoder);
              return std::move(r.data);
            }));
      }
      windows.push_back(w);
    }
    while (collected < windows.size()) collect_one();
  } catch (...) {
    wait_all(futures);
    throw;
  }
  return out;
}

std::vector<core::DecodeResult> BatchScheduler::decode(
    std::span<const core::EncodedStream> streams,
    const core::DecoderConfig& decoder) const {
  std::vector<std::future<core::DecodeResult>> futures;
  futures.reserve(streams.size());
  std::vector<core::DecodeResult> out;
  out.reserve(streams.size());
  try {
    for (const core::EncodedStream& stream : streams) {
      futures.push_back(pool_.submit([&stream, &decoder] {
        cudasim::SimContext ctx;
        return core::decode(ctx, stream, decoder);
      }));
    }
    for (auto& fut : futures) out.push_back(fut.get());
  } catch (...) {
    wait_all(futures);
    throw;
  }
  return out;
}

}  // namespace ohd::pipeline
