#include "pipeline/batch.hpp"

#include <algorithm>
#include <future>
#include <memory>

#include "cudasim/exec.hpp"
#include "sz/serialize.hpp"

namespace ohd::pipeline {

double BatchDecompressResult::makespan(std::size_t workers) const {
  if (workers == 0) workers = 1;
  std::vector<double> busy(workers, 0.0);
  for (double s : chunk_seconds) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < busy.size(); ++i) {
      if (busy[i] < busy[w]) w = i;
    }
    busy[w] += s;
  }
  return *std::max_element(busy.begin(), busy.end());
}

namespace {

/// Blocks until every still-pending future in `futures` has run (get()
/// invalidates futures, so only un-collected ones are waited). Exception
/// unwinding must never leave the scope of a fan-out while tasks still hold
/// references into it.
template <typename T>
void wait_all(std::vector<std::future<T>>& futures) noexcept {
  for (auto& fut : futures) {
    if (fut.valid()) fut.wait();
  }
}

}  // namespace

Container BatchScheduler::compress(std::span<const FieldSpec> specs) const {
  // A planned field's quantize tasks also PROBE their chunk (histogram +
  // canonical lengths + statistics) in the pool, so only the cheap pooled
  // work of plan_from_probes stays on the collecting thread.
  struct ProbedChunk {
    sz::QuantizedField q;
    ChunkProbe probe;
  };
  struct FieldState {
    double abs_eb = 0.0;
    std::vector<ChunkExtent> layout;
    bool planned = false;  // two-fan-out path (auto method / shared codebook)
    // Fused path: one task per chunk produces the frame directly. Planned
    // path: quantize+probe futures feed plan_from_probes, then encode
    // futures.
    std::vector<std::future<std::vector<std::uint8_t>>> frames;
    std::vector<std::future<ProbedChunk>> quants;
    std::vector<sz::QuantizedField> quantized;  // collected, then moved out
    FieldPlan plan;
    std::shared_ptr<const huffman::Codebook> shared;
    std::vector<ChunkMeta> meta;
  };

  // Phase 1: validate EVERY spec before any task is submitted — once the
  // fan-out starts, the only exceptions left are ones thrown by the chunk
  // tasks themselves.
  std::vector<FieldState> states(specs.size());
  for (std::size_t fi = 0; fi < specs.size(); ++fi) {
    const FieldSpec& spec = specs[fi];
    if (spec.data.size() != spec.dims.count()) {
      throw ContainerError("field '" + spec.name +
                           "': data size does not match dimensions");
    }
    if (spec.config.method == core::Method::GapArrayOriginal8Bit) {
      throw ContainerError(
          "the 8-bit gap-array method is decode-only and cannot reconstruct "
          "float fields; pick a multi-byte method for container fields");
    }
    if (spec.config.radius == 0) {
      throw ContainerError("field '" + spec.name + "': zero quantizer radius");
    }
    for (std::size_t fj = 0; fj < fi; ++fj) {
      if (specs[fj].name == spec.name) {
        throw ContainerError("duplicate field name '" + spec.name + "'");
      }
    }
    states[fi].abs_eb =
        sz::resolve_error_bound(spec.data, spec.config.rel_error_bound);
    states[fi].layout = chunk_layout(spec.dims, spec.chunk_elems);
    states[fi].planned =
        spec.plan.auto_method || spec.plan.shared_codebook;
  }

  // Phase 2: fan out ALL chunk tasks (field-major), so chunks of different
  // fields overlap in the pool. Planned fields fan out QUANTIZE tasks; their
  // plan is computed on this thread once the field's quantized chunks are
  // all in (deterministic — a pure function of the field), and the encode
  // tasks fan out immediately after, overlapping with other fields' work.
  // Phase 3: collect frames in deterministic (field, chunk) order. On ANY
  // failure — submit or collect — wait out the remaining tasks before
  // unwinding destroys states/specs.
  Container container;
  try {
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldState& state = states[fi];
      if (state.planned) {
        state.quants.reserve(state.layout.size());
        for (const ChunkExtent& extent : state.layout) {
          state.quants.push_back(pool_.submit([&spec, &state, extent] {
            ProbedChunk out;
            out.q = sz::quantize_with_abs_bound(
                spec.data.subspan(extent.elem_offset, extent.dims.count()),
                extent.dims, state.abs_eb, spec.config);
            out.probe = probe_chunk(out.q);
            return out;
          }));
        }
      } else {
        state.frames.reserve(state.layout.size());
        for (const ChunkExtent& extent : state.layout) {
          state.frames.push_back(pool_.submit([&spec, &state, extent] {
            const auto blob = sz::compress_with_abs_bound(
                spec.data.subspan(extent.elem_offset, extent.dims.count()),
                extent.dims, state.abs_eb, spec.config);
            return sz::serialize_blob(blob);
          }));
        }
      }
    }
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      const FieldSpec& spec = specs[fi];
      FieldState& state = states[fi];
      if (!state.planned) continue;
      state.quantized.reserve(state.quants.size());
      std::vector<ChunkProbe> probes;
      probes.reserve(state.quants.size());
      for (auto& fut : state.quants) {
        ProbedChunk chunk = fut.get();
        state.quantized.push_back(std::move(chunk.q));
        probes.push_back(std::move(chunk.probe));
      }
      const MethodSelector selector(spec.config.decoder);
      state.plan = plan_from_probes(std::move(probes), spec.config.method,
                                    spec.plan, selector);
      if (state.plan.has_shared_codebook) {
        state.shared = std::make_shared<const huffman::Codebook>(
            std::move(state.plan.shared_codebook));
      }
      state.meta.reserve(state.layout.size());
      state.frames.reserve(state.layout.size());
      for (std::size_t ci = 0; ci < state.layout.size(); ++ci) {
        const ChunkPlan& cp = state.plan.chunks[ci];
        state.meta.push_back({cp.method, cp.use_shared_codebook
                                             ? CodebookRef::SharedField
                                             : CodebookRef::Private});
        state.frames.push_back(pool_.submit([&spec, &state, ci] {
          return encode_planned_chunk(std::move(state.quantized[ci]),
                                      state.plan.chunks[ci], spec.config,
                                      state.shared.get());
        }));
      }
    }
    for (std::size_t fi = 0; fi < specs.size(); ++fi) {
      FieldState& state = states[fi];
      std::vector<std::vector<std::uint8_t>> frames;
      frames.reserve(state.frames.size());
      for (auto& fut : state.frames) frames.push_back(fut.get());
      container.add_field_frames(specs[fi].name, specs[fi].dims, state.abs_eb,
                                 specs[fi].config.radius,
                                 specs[fi].config.method, state.shared,
                                 state.layout, frames, state.meta);
    }
  } catch (...) {
    for (FieldState& state : states) {
      wait_all(state.quants);
      wait_all(state.frames);
    }
    throw;
  }
  return container;
}

BatchDecompressResult BatchScheduler::decompress(
    const Container& container, const core::DecoderConfig& decoder) const {
  // Fan out, then collect in deterministic (field, chunk) order via the
  // same chunk-merge path the sequential decode_field uses. Every field
  // buffer is allocated BEFORE the fan-out and each task reconstructs its
  // chunk straight into its (disjoint) slice via the fused decode-write
  // path, so floats are written once, in place, by whichever worker decodes
  // the chunk — bit-identical for any worker count, with no per-chunk float
  // vector or merge copy. On any failure — a submit throw or a CRC mismatch
  // surfacing through get() — wait out the remaining tasks before
  // unwinding: they still reference `container`, `decoder`, and the output
  // buffers.
  std::vector<std::vector<std::future<sz::DecompressionResult>>> futures(
      container.fields().size());
  BatchDecompressResult out;
  out.fields.resize(container.fields().size());
  for (std::size_t fi = 0; fi < container.fields().size(); ++fi) {
    out.fields[fi].name = container.fields()[fi].name;
    out.fields[fi].decode.data.resize(container.fields()[fi].dims.count());
  }
  try {
    for (std::size_t fi = 0; fi < container.fields().size(); ++fi) {
      const FieldEntry& entry = container.fields()[fi];
      futures[fi].reserve(entry.chunks.size());
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        const std::span<float> dest(
            out.fields[fi].decode.data.data() + entry.chunks[ci].elem_offset,
            entry.chunks[ci].dims.count());
        futures[fi].push_back(
            pool_.submit([&container, &decoder, fi, ci, dest] {
              cudasim::SimContext ctx;
              return container.decode_chunk_into(ctx, fi, ci, dest, decoder);
            }));
      }
    }
    for (std::size_t fi = 0; fi < container.fields().size(); ++fi) {
      const FieldEntry& entry = container.fields()[fi];
      FieldResult& field = out.fields[fi];
      for (std::size_t ci = 0; ci < entry.chunks.size(); ++ci) {
        field.decode.absorb_timings(futures[fi][ci].get());
      }
      out.phases += field.decode.huffman_phases;
      out.simulated_seconds += field.decode.simulated_seconds;
      out.chunk_seconds.insert(out.chunk_seconds.end(),
                               field.decode.chunk_seconds.begin(),
                               field.decode.chunk_seconds.end());
    }
  } catch (...) {
    for (auto& field_futures : futures) wait_all(field_futures);
    throw;
  }
  return out;
}

std::vector<core::DecodeResult> BatchScheduler::decode(
    std::span<const core::EncodedStream> streams,
    const core::DecoderConfig& decoder) const {
  std::vector<std::future<core::DecodeResult>> futures;
  futures.reserve(streams.size());
  std::vector<core::DecodeResult> out;
  out.reserve(streams.size());
  try {
    for (const core::EncodedStream& stream : streams) {
      futures.push_back(pool_.submit([&stream, &decoder] {
        cudasim::SimContext ctx;
        return core::decode(ctx, stream, decoder);
      }));
    }
    for (auto& fut : futures) out.push_back(fut.get());
  } catch (...) {
    wait_all(futures);
    throw;
  }
  return out;
}

}  // namespace ohd::pipeline
