// Chunked multi-field container ("OHDC"): a versioned archive of compressed
// float fields, each split into fixed-size chunks compressed independently
// through the sz pipeline (one absolute error bound per field). A per-chunk
// index — payload offset/length, element offset, chunk dims, method tag,
// CRC-32 — makes every chunk a self-contained frame: any single chunk can be
// checksum-verified and decoded without touching the rest of the archive,
// which is what the batch pipeline parallelizes over and what range decode
// uses for partial reads.
//
// Since version 3 the Container is a thin in-memory convenience over the
// STREAMING archive sessions (pipeline/archive_io.hpp): serialize() runs an
// ArchiveWriter over a MemorySink and emits the v3 footer-indexed framing
// documented in pipeline/wire_format.hpp (payload first, deferred index +
// footer), deserialize() reads versions 1-3, and serialize_v1()/
// serialize_v2() keep writing the head-indexed legacy images for interop.
// All three versions share the same per-field index sections (wire_format).
//
// Byte layout, versions 1 and 2 (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "OHDC"
//   4       1     version (= 2)
//   5       1     flags (= 0, reserved)
//   6       2     reserved (= 0)
//   8       4     field count (u32)
//   then, per field:
//           8+n   name (u64 length + bytes)
//           4     rank (u32, 1..3)
//           24    extent[3] (u64 x, y, z; unused extents = 1)
//           8     absolute error bound (f64, > 0)
//           4     quantizer radius (u32)
//           1     method tag (u8, core::Method; the field default)
//           8+n   shared codebook (u64 byte length + Codebook::serialize
//                 bytes; length 0 = the field has no shared codebook)
//           [4]   CRC-32 of the shared-codebook bytes (present iff length>0)
//           8     chunk count (u64, >= 1)
//     then, per chunk:
//           8     payload offset (u64, into the payload section)
//           8     payload length (u64, > 0)
//           8     element offset (u64, into the field's flat element order)
//           4     rank (u32)
//           24    extent[3] (u64)
//           1     method tag (u8)
//           1     codebook ref (u8: 0 = private book embedded in the frame,
//                 1 = the field's shared codebook; the frame then omits its
//                 codebook bytes)
//           4     CRC-32 of the frame bytes (u32)
//   tail:   8+n   payload section (u64 length + concatenated frames, each
//                 frame = sz::serialize_blob bytes)
//
// Version 1 (the PR 2 format) is the same layout WITHOUT the per-field
// shared-codebook section and the per-chunk codebook-ref byte. Version 3
// moves the payload to the FRONT and the index to a footer-located section
// at the END (see wire_format.hpp) so writers can stream frames without
// knowing the archive's eventual shape.
//
// tests/pipeline/container_test.cpp pins the v1/v2 table with byte-offset
// tampering tests and tests/pipeline/archive_io_test.cpp fuzzes the v3
// framing; bump kContainerVersion when changing the current layout.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/huffman_codec.hpp"
#include "cudasim/exec.hpp"
#include "pipeline/method_selector.hpp"
#include "sz/compressor.hpp"

namespace ohd::pipeline {

inline constexpr std::uint8_t kContainerVersion = 3;

/// Parse/validation failure of a container or one of its chunk frames.
/// Derives from std::invalid_argument so callers can handle it uniformly
/// with the other deserializers' errors.
class ContainerError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Where a chunk's Huffman codebook lives.
enum class CodebookRef : std::uint8_t {
  Private = 0,      // embedded in the chunk's frame (v1 behaviour)
  SharedField = 1,  // the field's shared codebook; the frame omits its book
};

struct ChunkRecord {
  std::uint64_t payload_offset = 0;  // into the payload section
  std::uint64_t payload_bytes = 0;
  std::uint64_t elem_offset = 0;     // into the field's flat element order
  sz::Dims dims;                     // chunk geometry (slab of the field)
  core::Method method = core::Method::GapArrayOptimized;
  CodebookRef codebook_ref = CodebookRef::Private;
  std::uint32_t crc32 = 0;           // over the frame bytes
};

struct FieldEntry {
  std::string name;
  sz::Dims dims;
  double abs_error_bound = 0.0;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;  // field default
  /// Field-level codebook shared by chunks whose record says SharedField;
  /// null when the field has none. Shared so decode tasks can reference it
  /// without copying the table per chunk.
  std::shared_ptr<const huffman::Codebook> shared_codebook;
  std::vector<ChunkRecord> chunks;
};

/// Per-chunk encoding facts the parallel build path must declare when its
/// frames were produced under a field plan (method selection and/or shared
/// codebooks).
struct ChunkMeta {
  core::Method method = core::Method::GapArrayOptimized;
  CodebookRef codebook_ref = CodebookRef::Private;
};

struct ChunkExtent {
  std::uint64_t elem_offset = 0;
  sz::Dims dims;
};

/// Splits `dims` into chunks of whole slabs of the slowest axis, each chunk
/// totalling about `target_chunk_elems` elements (at least one slab, so a
/// chunk of a 2-D/3-D field keeps the field's rank and Lorenzo predictor;
/// slabs are contiguous in the x-fastest element order, so every chunk is a
/// contiguous span of the flat field).
std::vector<ChunkExtent> chunk_layout(const sz::Dims& dims,
                                      std::size_t target_chunk_elems);

/// Decoded field plus simulated timings aggregated in chunk-id order (the
/// order that makes multi-threaded and sequential runs bit-identical).
struct FieldDecode {
  std::vector<float> data;
  core::PhaseTimings huffman_phases;
  double huffman_seconds = 0.0;
  double reverse_lorenzo_seconds = 0.0;
  double outlier_scatter_seconds = 0.0;
  double simulated_seconds = 0.0;     // sum over chunks, chunk-id order
  std::vector<double> chunk_seconds;  // per-chunk simulated cost

  /// Merges one decoded chunk's timings. The chunk's floats are not copied
  /// here: both decode_field and the batch scheduler reconstruct each chunk
  /// straight into its slice of `data` via decode_chunk_into before
  /// merging. Call in chunk-id order to keep runs bit-identical.
  void absorb_timings(const sz::DecompressionResult& chunk);
};

class BatchScheduler;

/// Decodes a whole field chunk by chunk in chunk-id order (the order that
/// makes runs bit-identical), reconstructing each chunk in place into its
/// slice of the field buffer — the shared walk of Container::decode_field
/// and ArchiveReader::decode_field. `Archive` exposes fields() and the
/// fused decode_chunk_into.
template <typename Archive>
FieldDecode decode_field_chunks(const Archive& archive,
                                cudasim::SimContext& ctx, std::size_t field,
                                const core::DecoderConfig& decoder) {
  if (field >= archive.fields().size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = archive.fields()[field];
  FieldDecode out;
  out.data.resize(f.dims.count());
  out.chunk_seconds.reserve(f.chunks.size());
  for (std::size_t c = 0; c < f.chunks.size(); ++c) {
    const std::span<float> dest(out.data.data() + f.chunks[c].elem_offset,
                                f.chunks[c].dims.count());
    out.absorb_timings(
        archive.decode_chunk_into(ctx, field, c, dest, decoder));
  }
  return out;
}

/// Decodes only the chunks overlapping [elem_begin, elem_end) and returns
/// exactly that element range — the shared walk of Container::decode_range
/// and ArchiveReader::decode_range. (BatchScheduler::decode_range is the
/// prefetching parallel variant.)
template <typename Archive>
std::vector<float> decode_range_chunks(const Archive& archive,
                                       cudasim::SimContext& ctx,
                                       std::size_t field,
                                       std::uint64_t elem_begin,
                                       std::uint64_t elem_end,
                                       const core::DecoderConfig& decoder) {
  if (field >= archive.fields().size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = archive.fields()[field];
  if (elem_begin > elem_end || elem_end > f.dims.count()) {
    throw ContainerError("element range out of bounds");
  }
  std::vector<float> out(elem_end - elem_begin);
  for (std::size_t c = 0; c < f.chunks.size(); ++c) {
    const ChunkRecord& rec = f.chunks[c];
    const std::uint64_t chunk_begin = rec.elem_offset;
    const std::uint64_t chunk_end = chunk_begin + rec.dims.count();
    if (chunk_end <= elem_begin || chunk_begin >= elem_end) continue;
    const sz::DecompressionResult r =
        archive.decode_chunk(ctx, field, c, decoder);
    const std::uint64_t lo = std::max(chunk_begin, elem_begin);
    const std::uint64_t hi = std::min(chunk_end, elem_end);
    std::copy(r.data.begin() + static_cast<std::ptrdiff_t>(lo - chunk_begin),
              r.data.begin() + static_cast<std::ptrdiff_t>(hi - chunk_begin),
              out.begin() + static_cast<std::ptrdiff_t>(lo - elem_begin));
  }
  return out;
}

class Container {
 public:
  /// Compresses `data` chunk by chunk (sequentially; BatchScheduler::compress
  /// is the parallel path) and appends the field. One absolute error bound is
  /// resolved from the WHOLE field's range, so chunking does not change the
  /// error guarantee. `plan` enables adaptive per-chunk method selection
  /// and/or a field-level shared codebook. Returns the field index.
  std::size_t add_field(const std::string& name, std::span<const float> data,
                        const sz::Dims& dims, const sz::CompressorConfig& config,
                        std::size_t chunk_elems, const PlanOptions& plan = {});

  /// Appends a field from pre-compressed chunk frames (the parallel build
  /// path): `frames[i]` must be sz::serialize_blob() bytes for `layout[i]`,
  /// every frame self-contained and encoded with `method`.
  std::size_t add_field_frames(const std::string& name, const sz::Dims& dims,
                               double abs_error_bound, std::uint32_t radius,
                               core::Method method,
                               std::span<const ChunkExtent> layout,
                               const std::vector<std::vector<std::uint8_t>>& frames);

  /// Planned variant: `meta[i]` declares each frame's method and codebook
  /// reference; frames marked SharedField must have been encoded against
  /// `shared_codebook` (required non-null in that case) and serialized
  /// without their codebook bytes.
  std::size_t add_field_frames(const std::string& name, const sz::Dims& dims,
                               double abs_error_bound, std::uint32_t radius,
                               core::Method default_method,
                               std::shared_ptr<const huffman::Codebook> shared_codebook,
                               std::span<const ChunkExtent> layout,
                               const std::vector<std::vector<std::uint8_t>>& frames,
                               std::span<const ChunkMeta> meta);

  const std::vector<FieldEntry>& fields() const { return fields_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// Field index by name; throws ContainerError on unknown names.
  std::size_t field_index(const std::string& name) const;

  /// The serialized frame of one chunk (a view into the payload section).
  std::span<const std::uint8_t> frame_bytes(std::size_t field,
                                            std::size_t chunk) const;

  /// Decodes ONE chunk — checksum verification, frame parse, decompression —
  /// without reading any other frame's bytes.
  sz::DecompressionResult decode_chunk(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      const core::DecoderConfig& decoder = {}) const;

  /// Fused variant: reconstructs the chunk's floats straight into `out`
  /// (sized to the CHUNK's element count — typically a subspan of the field
  /// buffer at the chunk's elem_offset) via sz::decompress_into; the
  /// returned result carries timings only. This is the write path
  /// decode_field and the batch scheduler use, so a chunk's floats are
  /// written once, in place, with no per-chunk vector or merge copy.
  sz::DecompressionResult decode_chunk_into(
      cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
      std::span<float> out, const core::DecoderConfig& decoder = {}) const;

  /// Decodes a whole field chunk by chunk in chunk-id order.
  FieldDecode decode_field(cudasim::SimContext& ctx, std::size_t field,
                           const core::DecoderConfig& decoder = {}) const;

  /// Decodes only the chunks overlapping [elem_begin, elem_end) and returns
  /// exactly that element range of the field.
  std::vector<float> decode_range(cudasim::SimContext& ctx, std::size_t field,
                                  std::uint64_t elem_begin,
                                  std::uint64_t elem_end,
                                  const core::DecoderConfig& decoder = {}) const;

  /// Verifies every frame's CRC-32 without decoding; throws ContainerError
  /// naming the first corrupted field/chunk. (Shared-codebook CRCs are
  /// checked eagerly by deserialize(), which is the only path that can see
  /// corrupted codebook bytes.)
  void verify() const;

  /// Serializes in the current (version 3, footer-indexed) format — a thin
  /// wrapper over ArchiveWriter + MemorySink, preallocated to
  /// serialized_size().
  std::vector<std::uint8_t> serialize() const;

  /// Exact byte size of serialize()'s output, computed from the index alone
  /// — serialize() preallocates with it, and a streaming writer can reserve
  /// index/footer space from the same arithmetic.
  std::uint64_t serialized_size() const;

  /// Serializes in the version 1 (PR 2) format for consumers that predate
  /// shared codebooks. Throws ContainerError if any field carries a shared
  /// codebook or any chunk references one — those archives have no v1
  /// representation.
  std::vector<std::uint8_t> serialize_v1() const;

  /// Serializes in the version 2 (PR 3) head-indexed format for consumers
  /// that predate the streaming (v3) framing.
  std::vector<std::uint8_t> serialize_v2() const;

  /// Parses and validates a serialized container (index structure, chunk
  /// coverage, frame bounds, shared-codebook integrity); reads versions 1,
  /// 2, and 3. Frame checksums are verified lazily on access.
  static Container deserialize(std::span<const std::uint8_t> bytes);

 private:
  friend class BatchScheduler;
  /// Adopts a write session's index records and payload verbatim, with no
  /// image or re-parse — the one-archive-copy bridge BatchScheduler::compress
  /// uses for bytes this process just produced and validated on write.
  static Container adopt(std::vector<FieldEntry> fields,
                         std::vector<std::uint8_t> payload);

  const ChunkRecord& record(std::size_t field, std::size_t chunk) const;
  std::vector<std::uint8_t> write_container(std::uint8_t version) const;

  std::vector<FieldEntry> fields_;
  std::vector<std::uint8_t> payload_;  // concatenated chunk frames
};

}  // namespace ohd::pipeline
