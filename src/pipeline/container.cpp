#include "pipeline/container.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "sz/serialize.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace ohd::pipeline {

namespace {

constexpr char kMagic[4] = {'O', 'H', 'D', 'C'};

// Fixed wire sizes of one chunk record per container version, used to bound
// untrusted chunk counts before looping (see the layout table in
// container.hpp). Version 2 adds the codebook-ref byte.
constexpr std::uint64_t kChunkRecordBytesV1 = 8 + 8 + 8 + 4 + 24 + 1 + 4;
constexpr std::uint64_t kChunkRecordBytesV2 = kChunkRecordBytesV1 + 1;

CodebookRef parse_codebook_ref(std::uint8_t tag) {
  switch (static_cast<CodebookRef>(tag)) {
    case CodebookRef::Private:
    case CodebookRef::SharedField:
      return static_cast<CodebookRef>(tag);
  }
  throw ContainerError("unknown codebook-ref tag in container");
}

core::Method parse_method_tag(std::uint8_t tag) {
  const auto method = static_cast<core::Method>(tag);
  switch (method) {
    case core::Method::CuszNaive:
    case core::Method::SelfSyncOriginal:
    case core::Method::SelfSyncOptimized:
    case core::Method::GapArrayOriginal8Bit:
    case core::Method::GapArrayOptimized:
      return method;
  }
  throw ContainerError("unknown method tag in container");
}

void write_dims(util::ByteWriter& w, const sz::Dims& dims) {
  w.u32(dims.rank);
  for (std::size_t e : dims.extent) w.u64(e);
}

sz::Dims read_dims(util::ByteReader& r) {
  sz::Dims dims;
  dims.rank = r.u32();
  if (dims.rank < 1 || dims.rank > 3) {
    throw ContainerError("implausible rank in container");
  }
  for (std::size_t i = 0; i < dims.extent.size(); ++i) {
    dims.extent[i] = r.u64();
    if (dims.extent[i] == 0 || (i >= dims.rank && dims.extent[i] != 1)) {
      throw ContainerError("implausible extent in container");
    }
  }
  if (dims.count_overflows()) {
    throw ContainerError("extent product overflows in container");
  }
  return dims;
}

/// Chunk extents must tile the field contiguously in flat element order.
void check_coverage(const sz::Dims& field_dims,
                    std::span<const ChunkExtent> layout) {
  if (layout.empty()) {
    throw ContainerError("field has no chunks");
  }
  std::uint64_t next = 0;
  for (const ChunkExtent& e : layout) {
    if (e.elem_offset != next) {
      throw ContainerError("chunk element offsets are not contiguous");
    }
    if (e.dims.count() > field_dims.count() - next) {
      throw ContainerError("chunks do not cover the field");
    }
    next += e.dims.count();
  }
  if (next != field_dims.count()) {
    throw ContainerError("chunks do not cover the field");
  }
}

}  // namespace

void FieldDecode::absorb_timings(const sz::DecompressionResult& chunk) {
  huffman_phases += chunk.huffman_phases;
  huffman_seconds += chunk.huffman_seconds;
  reverse_lorenzo_seconds += chunk.reverse_lorenzo_seconds;
  outlier_scatter_seconds += chunk.outlier_scatter_seconds;
  simulated_seconds += chunk.total_seconds();
  chunk_seconds.push_back(chunk.total_seconds());
}

std::vector<ChunkExtent> chunk_layout(const sz::Dims& dims,
                                      std::size_t target_chunk_elems) {
  if (dims.count() == 0) {
    throw ContainerError("cannot chunk an empty field");
  }
  if (target_chunk_elems == 0) {
    throw ContainerError("chunk size must be positive");
  }
  const std::size_t slowest = dims.rank - 1;
  const std::size_t n_slabs = dims.extent[slowest];
  const std::size_t slab_elems = dims.count() / n_slabs;
  const std::size_t slabs_per_chunk =
      std::max<std::size_t>(1, target_chunk_elems / slab_elems);

  std::vector<ChunkExtent> out;
  out.reserve((n_slabs + slabs_per_chunk - 1) / slabs_per_chunk);
  for (std::size_t s = 0; s < n_slabs; s += slabs_per_chunk) {
    ChunkExtent e;
    e.elem_offset = s * slab_elems;
    e.dims = dims;
    e.dims.extent[slowest] = std::min(slabs_per_chunk, n_slabs - s);
    out.push_back(e);
  }
  return out;
}

std::size_t Container::add_field(const std::string& name,
                                 std::span<const float> data,
                                 const sz::Dims& dims,
                                 const sz::CompressorConfig& config,
                                 std::size_t chunk_elems,
                                 const PlanOptions& plan) {
  if (data.size() != dims.count()) {
    throw ContainerError("field data size does not match dimensions");
  }
  if (config.method == core::Method::GapArrayOriginal8Bit) {
    throw ContainerError(
        "the 8-bit gap-array method is decode-only and cannot reconstruct "
        "float fields; pick a multi-byte method for container fields");
  }
  if (config.radius == 0) {
    throw ContainerError("zero quantizer radius");
  }
  const double abs_eb = sz::resolve_error_bound(data, config.rel_error_bound);
  const auto layout = chunk_layout(dims, chunk_elems);

  // Nothing adaptive requested: stream chunk-at-a-time (O(chunk) peak
  // memory), exactly as before planning existed.
  if (!plan.auto_method && !plan.shared_codebook) {
    std::vector<std::vector<std::uint8_t>> frames;
    frames.reserve(layout.size());
    for (const ChunkExtent& e : layout) {
      const auto blob = sz::compress_with_abs_bound(
          data.subspan(e.elem_offset, e.dims.count()), e.dims, abs_eb, config);
      frames.push_back(sz::serialize_blob(blob));
    }
    return add_field_frames(name, dims, abs_eb, config.radius, config.method,
                            layout, frames);
  }

  // Planned path: quantize every chunk first, so the planner can see the
  // whole field (pooled histograms for the shared book, per-chunk probes
  // for method selection) before any encoding commits.
  std::vector<sz::QuantizedField> quantized;
  quantized.reserve(layout.size());
  for (const ChunkExtent& e : layout) {
    quantized.push_back(sz::quantize_with_abs_bound(
        data.subspan(e.elem_offset, e.dims.count()), e.dims, abs_eb, config));
  }
  const MethodSelector selector(config.decoder);
  FieldPlan field_plan =
      plan_field(quantized, config.method, plan, selector);

  std::shared_ptr<const huffman::Codebook> shared;
  if (field_plan.has_shared_codebook) {
    shared = std::make_shared<const huffman::Codebook>(
        std::move(field_plan.shared_codebook));
  }
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<ChunkMeta> meta;
  frames.reserve(layout.size());
  meta.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    const ChunkPlan& cp = field_plan.chunks[i];
    frames.push_back(encode_planned_chunk(std::move(quantized[i]), cp, config,
                                          shared.get()));
    meta.push_back({cp.method, cp.use_shared_codebook
                                   ? CodebookRef::SharedField
                                   : CodebookRef::Private});
  }
  return add_field_frames(name, dims, abs_eb, config.radius, config.method,
                          std::move(shared), layout, frames, meta);
}

std::size_t Container::add_field_frames(
    const std::string& name, const sz::Dims& dims, double abs_error_bound,
    std::uint32_t radius, core::Method method,
    std::span<const ChunkExtent> layout,
    const std::vector<std::vector<std::uint8_t>>& frames) {
  return add_field_frames(name, dims, abs_error_bound, radius, method,
                          nullptr, layout, frames, {});
}

std::size_t Container::add_field_frames(
    const std::string& name, const sz::Dims& dims, double abs_error_bound,
    std::uint32_t radius, core::Method default_method,
    std::shared_ptr<const huffman::Codebook> shared_codebook,
    std::span<const ChunkExtent> layout,
    const std::vector<std::vector<std::uint8_t>>& frames,
    std::span<const ChunkMeta> meta) {
  if (!(abs_error_bound > 0.0)) {
    throw ContainerError("non-positive error bound");
  }
  if (radius == 0) {
    throw ContainerError("zero quantizer radius");
  }
  if (frames.size() != layout.size()) {
    throw ContainerError("frame count does not match chunk layout");
  }
  if (!meta.empty() && meta.size() != layout.size()) {
    throw ContainerError("chunk meta count does not match chunk layout");
  }
  check_coverage(dims, layout);
  for (const FieldEntry& f : fields_) {
    if (f.name == name) {
      throw ContainerError("duplicate field name '" + name + "'");
    }
  }

  FieldEntry field;
  field.name = name;
  field.dims = dims;
  field.abs_error_bound = abs_error_bound;
  field.radius = radius;
  field.method = default_method;
  field.shared_codebook = std::move(shared_codebook);
  field.chunks.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    if (frames[i].empty()) {
      throw ContainerError("empty chunk frame");
    }
    ChunkRecord rec;
    rec.payload_offset = payload_.size();
    rec.payload_bytes = frames[i].size();
    rec.elem_offset = layout[i].elem_offset;
    rec.dims = layout[i].dims;
    rec.method = meta.empty() ? default_method : meta[i].method;
    rec.codebook_ref =
        meta.empty() ? CodebookRef::Private : meta[i].codebook_ref;
    if (rec.codebook_ref == CodebookRef::SharedField &&
        field.shared_codebook == nullptr) {
      throw ContainerError(
          "chunk references a shared codebook but the field has none");
    }
    rec.crc32 = util::crc32(frames[i]);
    payload_.insert(payload_.end(), frames[i].begin(), frames[i].end());
    field.chunks.push_back(rec);
  }
  fields_.push_back(std::move(field));
  return fields_.size() - 1;
}

std::size_t Container::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  throw ContainerError("no field named '" + name + "' in container");
}

const ChunkRecord& Container::record(std::size_t field,
                                     std::size_t chunk) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  if (chunk >= fields_[field].chunks.size()) {
    throw ContainerError("chunk index out of range");
  }
  return fields_[field].chunks[chunk];
}

std::span<const std::uint8_t> Container::frame_bytes(std::size_t field,
                                                     std::size_t chunk) const {
  const ChunkRecord& rec = record(field, chunk);
  return std::span<const std::uint8_t>(payload_.data() + rec.payload_offset,
                                       rec.payload_bytes);
}

namespace {

/// Checksum + parse + geometry validation shared by the chunk decoders.
sz::CompressedBlob parse_chunk_blob(const FieldEntry& field,
                                    const ChunkRecord& rec,
                                    std::span<const std::uint8_t> frame,
                                    std::size_t chunk) {
  if (util::crc32(frame) != rec.crc32) {
    throw ContainerError("field '" + field.name + "' chunk " +
                         std::to_string(chunk) +
                         ": CRC-32 mismatch (corrupted frame)");
  }
  const huffman::Codebook* shared =
      rec.codebook_ref == CodebookRef::SharedField
          ? field.shared_codebook.get()
          : nullptr;
  sz::CompressedBlob blob = sz::deserialize_blob(frame, shared);
  if (blob.dims.count() != rec.dims.count()) {
    throw ContainerError("field '" + field.name + "' chunk " +
                         std::to_string(chunk) +
                         ": frame geometry disagrees with the index");
  }
  return blob;
}

}  // namespace

sz::DecompressionResult Container::decode_chunk(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    const core::DecoderConfig& decoder) const {
  const ChunkRecord& rec = record(field, chunk);
  const sz::CompressedBlob blob = parse_chunk_blob(
      fields_[field], rec, frame_bytes(field, chunk), chunk);
  return sz::decompress(ctx, blob, decoder);
}

sz::DecompressionResult Container::decode_chunk_into(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    std::span<float> out, const core::DecoderConfig& decoder) const {
  const ChunkRecord& rec = record(field, chunk);
  const sz::CompressedBlob blob = parse_chunk_blob(
      fields_[field], rec, frame_bytes(field, chunk), chunk);
  return sz::decompress_into(ctx, blob, out, decoder);
}

FieldDecode Container::decode_field(cudasim::SimContext& ctx,
                                    std::size_t field,
                                    const core::DecoderConfig& decoder) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = fields_[field];
  FieldDecode out;
  out.data.resize(f.dims.count());
  out.chunk_seconds.reserve(f.chunks.size());
  for (std::size_t c = 0; c < f.chunks.size(); ++c) {
    // Fused write: each chunk reconstructs straight into its slice of the
    // field buffer.
    const std::span<float> dest(out.data.data() + f.chunks[c].elem_offset,
                                f.chunks[c].dims.count());
    out.absorb_timings(decode_chunk_into(ctx, field, c, dest, decoder));
  }
  return out;
}

std::vector<float> Container::decode_range(
    cudasim::SimContext& ctx, std::size_t field, std::uint64_t elem_begin,
    std::uint64_t elem_end, const core::DecoderConfig& decoder) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = fields_[field];
  if (elem_begin > elem_end || elem_end > f.dims.count()) {
    throw ContainerError("element range out of bounds");
  }
  std::vector<float> out(elem_end - elem_begin);
  for (std::size_t c = 0; c < f.chunks.size(); ++c) {
    const ChunkRecord& rec = f.chunks[c];
    const std::uint64_t chunk_begin = rec.elem_offset;
    const std::uint64_t chunk_end = chunk_begin + rec.dims.count();
    if (chunk_end <= elem_begin || chunk_begin >= elem_end) continue;
    const sz::DecompressionResult r = decode_chunk(ctx, field, c, decoder);
    const std::uint64_t lo = std::max(chunk_begin, elem_begin);
    const std::uint64_t hi = std::min(chunk_end, elem_end);
    std::copy(r.data.begin() + (lo - chunk_begin),
              r.data.begin() + (hi - chunk_begin),
              out.begin() + (lo - elem_begin));
  }
  return out;
}

void Container::verify() const {
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    for (std::size_t c = 0; c < fields_[f].chunks.size(); ++c) {
      if (util::crc32(frame_bytes(f, c)) != fields_[f].chunks[c].crc32) {
        throw ContainerError("field '" + fields_[f].name + "' chunk " +
                             std::to_string(c) +
                             ": CRC-32 mismatch (corrupted frame)");
      }
    }
  }
}

/// One writer for both wire versions, so the layouts cannot drift apart:
/// version 2 adds only the per-field shared-codebook record and the
/// per-chunk codebook-ref byte.
std::vector<std::uint8_t> Container::write_container(std::uint8_t version) const {
  util::ByteWriter w;
  w.magic(kMagic);
  w.u8(version);
  w.u8(0);   // flags
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(fields_.size()));
  for (const FieldEntry& f : fields_) {
    w.u64(f.name.size());
    for (char ch : f.name) w.u8(static_cast<std::uint8_t>(ch));
    write_dims(w, f.dims);
    w.f64(f.abs_error_bound);
    w.u32(f.radius);
    w.u8(static_cast<std::uint8_t>(f.method));
    if (version >= 2) {
      if (f.shared_codebook != nullptr) {
        const auto cb_bytes = f.shared_codebook->serialize();
        w.bytes(cb_bytes);
        w.u32(util::crc32(cb_bytes));
      } else {
        w.u64(0);  // no shared codebook
      }
    }
    w.u64(f.chunks.size());
    for (const ChunkRecord& rec : f.chunks) {
      w.u64(rec.payload_offset);
      w.u64(rec.payload_bytes);
      w.u64(rec.elem_offset);
      write_dims(w, rec.dims);
      w.u8(static_cast<std::uint8_t>(rec.method));
      if (version >= 2) {
        w.u8(static_cast<std::uint8_t>(rec.codebook_ref));
      }
      w.u32(rec.crc32);
    }
  }
  w.bytes(payload_);
  return w.take();
}

std::vector<std::uint8_t> Container::serialize() const {
  return write_container(kContainerVersion);
}

std::vector<std::uint8_t> Container::serialize_v1() const {
  for (const FieldEntry& f : fields_) {
    if (f.shared_codebook != nullptr) {
      throw ContainerError("field '" + f.name +
                           "' carries a shared codebook, which the v1 format "
                           "cannot represent");
    }
    for (const ChunkRecord& rec : f.chunks) {
      if (rec.codebook_ref != CodebookRef::Private) {
        throw ContainerError("field '" + f.name +
                             "' has shared-codebook chunks, which the v1 "
                             "format cannot represent");
      }
    }
  }
  return write_container(1);
}

Container Container::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  try {
    r.expect_magic(kMagic);
  } catch (const std::invalid_argument& e) {
    throw ContainerError(e.what());
  }
  const std::uint8_t version = r.u8();
  if (version != 1 && version != kContainerVersion) {
    throw ContainerError("unsupported container version");
  }
  if (r.u8() != 0 || r.u16() != 0) {
    throw ContainerError("nonzero reserved container bytes");
  }
  const std::uint64_t chunk_record_bytes =
      version == 1 ? kChunkRecordBytesV1 : kChunkRecordBytesV2;
  const std::uint32_t field_count = r.u32();
  if (field_count > (1u << 20)) {
    throw ContainerError("implausible field count");
  }

  Container c;
  c.fields_.reserve(field_count);
  std::unordered_set<std::string> seen_names;
  for (std::uint32_t fi = 0; fi < field_count; ++fi) {
    FieldEntry f;
    const std::uint64_t name_len = r.u64();
    if (name_len > r.remaining()) {
      throw ContainerError("field name exceeds blob size");
    }
    f.name.reserve(name_len);
    for (std::uint64_t i = 0; i < name_len; ++i) {
      f.name.push_back(static_cast<char>(r.u8()));
    }
    f.dims = read_dims(r);
    f.abs_error_bound = r.f64();
    if (!(f.abs_error_bound > 0.0)) {
      throw ContainerError("non-positive error bound in container");
    }
    f.radius = r.u32();
    if (f.radius == 0) {
      throw ContainerError("zero quantizer radius in container");
    }
    f.method = parse_method_tag(r.u8());
    if (version >= 2) {
      std::vector<std::uint8_t> cb_bytes;
      try {
        cb_bytes = r.array<std::uint8_t>();
      } catch (const std::invalid_argument& e) {
        throw ContainerError(e.what());
      }
      if (!cb_bytes.empty()) {
        if (util::crc32(cb_bytes) != r.u32()) {
          throw ContainerError("field '" + f.name +
                               "': shared codebook CRC-32 mismatch");
        }
        try {
          f.shared_codebook = std::make_shared<const huffman::Codebook>(
              huffman::Codebook::deserialize(cb_bytes));
        } catch (const std::invalid_argument& e) {
          throw ContainerError("field '" + f.name +
                               "': invalid shared codebook: " + e.what());
        }
      }
    }
    const std::uint64_t chunk_count = r.u64();
    if (chunk_count == 0) {
      throw ContainerError("field has no chunks");
    }
    if (chunk_count > r.remaining() / chunk_record_bytes) {
      throw ContainerError("chunk count exceeds blob size");
    }
    f.chunks.reserve(chunk_count);
    std::uint64_t next_elem = 0;
    for (std::uint64_t ci = 0; ci < chunk_count; ++ci) {
      ChunkRecord rec;
      rec.payload_offset = r.u64();
      rec.payload_bytes = r.u64();
      rec.elem_offset = r.u64();
      rec.dims = read_dims(r);
      rec.method = parse_method_tag(r.u8());
      if (version >= 2) {
        rec.codebook_ref = parse_codebook_ref(r.u8());
        if (rec.codebook_ref == CodebookRef::SharedField &&
            f.shared_codebook == nullptr) {
          throw ContainerError(
              "field '" + f.name +
              "': chunk references a shared codebook the field does not carry");
        }
      }
      rec.crc32 = r.u32();
      if (rec.payload_bytes == 0) {
        throw ContainerError("empty chunk frame in container index");
      }
      if (rec.elem_offset != next_elem) {
        throw ContainerError("chunk element offsets are not contiguous");
      }
      // Guard the accumulation itself: per-chunk products are overflow-
      // checked, but their SUM could still wrap back onto the field count.
      if (rec.dims.count() > f.dims.count() - next_elem) {
        throw ContainerError("chunks do not cover the field");
      }
      next_elem += rec.dims.count();
      f.chunks.push_back(rec);
    }
    if (next_elem != f.dims.count()) {
      throw ContainerError("chunks do not cover the field");
    }
    if (!seen_names.insert(f.name).second) {
      throw ContainerError("duplicate field name '" + f.name +
                           "' in container");
    }
    c.fields_.push_back(std::move(f));
  }

  try {
    c.payload_ = r.array<std::uint8_t>();
  } catch (const std::invalid_argument& e) {
    throw ContainerError(e.what());
  }
  if (!r.exhausted()) {
    throw ContainerError("trailing bytes after container payload");
  }
  for (const FieldEntry& f : c.fields_) {
    for (const ChunkRecord& rec : f.chunks) {
      if (rec.payload_bytes > c.payload_.size() ||
          rec.payload_offset > c.payload_.size() - rec.payload_bytes) {
        throw ContainerError("chunk frame extends past the payload section");
      }
    }
  }
  return c;
}

}  // namespace ohd::pipeline
