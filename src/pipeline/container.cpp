#include "pipeline/container.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "pipeline/archive_io.hpp"
#include "pipeline/wire_format.hpp"
#include "sz/serialize.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace ohd::pipeline {

void FieldDecode::absorb_timings(const sz::DecompressionResult& chunk) {
  huffman_phases += chunk.huffman_phases;
  huffman_seconds += chunk.huffman_seconds;
  reverse_lorenzo_seconds += chunk.reverse_lorenzo_seconds;
  outlier_scatter_seconds += chunk.outlier_scatter_seconds;
  simulated_seconds += chunk.total_seconds();
  chunk_seconds.push_back(chunk.total_seconds());
}

std::vector<ChunkExtent> chunk_layout(const sz::Dims& dims,
                                      std::size_t target_chunk_elems) {
  if (dims.count() == 0) {
    throw ContainerError("cannot chunk an empty field");
  }
  if (target_chunk_elems == 0) {
    throw ContainerError("chunk size must be positive");
  }
  const std::size_t slowest = dims.rank - 1;
  const std::size_t n_slabs = dims.extent[slowest];
  const std::size_t slab_elems = dims.count() / n_slabs;
  const std::size_t slabs_per_chunk =
      std::max<std::size_t>(1, target_chunk_elems / slab_elems);

  std::vector<ChunkExtent> out;
  out.reserve((n_slabs + slabs_per_chunk - 1) / slabs_per_chunk);
  for (std::size_t s = 0; s < n_slabs; s += slabs_per_chunk) {
    ChunkExtent e;
    e.elem_offset = s * slab_elems;
    e.dims = dims;
    e.dims.extent[slowest] = std::min(slabs_per_chunk, n_slabs - s);
    out.push_back(e);
  }
  return out;
}

std::size_t Container::add_field(const std::string& name,
                                 std::span<const float> data,
                                 const sz::Dims& dims,
                                 const sz::CompressorConfig& config,
                                 std::size_t chunk_elems,
                                 const PlanOptions& plan) {
  // The shared encode sequence of the streaming sessions, collected into
  // in-memory frames and appended through the common validation path.
  double abs_eb = 0.0;
  std::shared_ptr<const huffman::Codebook> shared;
  std::vector<ChunkExtent> layout;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<ChunkMeta> meta;
  compress_field_frames(
      data, dims, config, chunk_elems, plan,
      [&](double eb, std::shared_ptr<const huffman::Codebook> book) {
        abs_eb = eb;
        shared = std::move(book);
      },
      [&](const ChunkExtent& extent, std::vector<std::uint8_t> frame,
          const ChunkMeta& m) {
        layout.push_back(extent);
        frames.push_back(std::move(frame));
        meta.push_back(m);
      });
  return add_field_frames(name, dims, abs_eb, config.radius, config.method,
                          std::move(shared), layout, frames, meta);
}

std::size_t Container::add_field_frames(
    const std::string& name, const sz::Dims& dims, double abs_error_bound,
    std::uint32_t radius, core::Method method,
    std::span<const ChunkExtent> layout,
    const std::vector<std::vector<std::uint8_t>>& frames) {
  return add_field_frames(name, dims, abs_error_bound, radius, method,
                          nullptr, layout, frames, {});
}

std::size_t Container::add_field_frames(
    const std::string& name, const sz::Dims& dims, double abs_error_bound,
    std::uint32_t radius, core::Method default_method,
    std::shared_ptr<const huffman::Codebook> shared_codebook,
    std::span<const ChunkExtent> layout,
    const std::vector<std::vector<std::uint8_t>>& frames,
    std::span<const ChunkMeta> meta) {
  if (!(abs_error_bound > 0.0)) {
    throw ContainerError("non-positive error bound");
  }
  if (radius == 0) {
    throw ContainerError("zero quantizer radius");
  }
  if (frames.size() != layout.size()) {
    throw ContainerError("frame count does not match chunk layout");
  }
  if (!meta.empty() && meta.size() != layout.size()) {
    throw ContainerError("chunk meta count does not match chunk layout");
  }
  wire::check_coverage(dims, layout);
  for (const FieldEntry& f : fields_) {
    if (f.name == name) {
      throw ContainerError("duplicate field name '" + name + "'");
    }
  }

  FieldEntry field;
  field.name = name;
  field.dims = dims;
  field.abs_error_bound = abs_error_bound;
  field.radius = radius;
  field.method = default_method;
  field.shared_codebook = std::move(shared_codebook);
  field.chunks.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    if (frames[i].empty()) {
      throw ContainerError("empty chunk frame");
    }
    ChunkRecord rec;
    rec.payload_offset = payload_.size();
    rec.payload_bytes = frames[i].size();
    rec.elem_offset = layout[i].elem_offset;
    rec.dims = layout[i].dims;
    rec.method = meta.empty() ? default_method : meta[i].method;
    rec.codebook_ref =
        meta.empty() ? CodebookRef::Private : meta[i].codebook_ref;
    if (rec.codebook_ref == CodebookRef::SharedField &&
        field.shared_codebook == nullptr) {
      throw ContainerError(
          "chunk references a shared codebook but the field has none");
    }
    rec.crc32 = util::crc32(frames[i]);
    payload_.insert(payload_.end(), frames[i].begin(), frames[i].end());
    field.chunks.push_back(rec);
  }
  fields_.push_back(std::move(field));
  return fields_.size() - 1;
}

Container Container::adopt(std::vector<FieldEntry> fields,
                           std::vector<std::uint8_t> payload) {
  Container c;
  c.fields_ = std::move(fields);
  c.payload_ = std::move(payload);
  return c;
}

std::size_t Container::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  throw ContainerError("no field named '" + name + "' in container");
}

const ChunkRecord& Container::record(std::size_t field,
                                     std::size_t chunk) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  if (chunk >= fields_[field].chunks.size()) {
    throw ContainerError("chunk index out of range");
  }
  return fields_[field].chunks[chunk];
}

std::span<const std::uint8_t> Container::frame_bytes(std::size_t field,
                                                     std::size_t chunk) const {
  const ChunkRecord& rec = record(field, chunk);
  return std::span<const std::uint8_t>(payload_.data() + rec.payload_offset,
                                       rec.payload_bytes);
}

sz::DecompressionResult Container::decode_chunk(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    const core::DecoderConfig& decoder) const {
  record(field, chunk);
  const sz::CompressedBlob blob = wire::parse_chunk_frame(
      fields_[field], chunk, frame_bytes(field, chunk));
  return sz::decompress(ctx, blob, decoder);
}

sz::DecompressionResult Container::decode_chunk_into(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    std::span<float> out, const core::DecoderConfig& decoder) const {
  record(field, chunk);
  const sz::CompressedBlob blob = wire::parse_chunk_frame(
      fields_[field], chunk, frame_bytes(field, chunk));
  return sz::decompress_into(ctx, blob, out, decoder);
}

FieldDecode Container::decode_field(cudasim::SimContext& ctx,
                                    std::size_t field,
                                    const core::DecoderConfig& decoder) const {
  return decode_field_chunks(*this, ctx, field, decoder);
}

std::vector<float> Container::decode_range(
    cudasim::SimContext& ctx, std::size_t field, std::uint64_t elem_begin,
    std::uint64_t elem_end, const core::DecoderConfig& decoder) const {
  return decode_range_chunks(*this, ctx, field, elem_begin, elem_end, decoder);
}

void Container::verify() const {
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    for (std::size_t c = 0; c < fields_[f].chunks.size(); ++c) {
      if (util::crc32(frame_bytes(f, c)) != fields_[f].chunks[c].crc32) {
        throw ContainerError("field '" + fields_[f].name + "' chunk " +
                             std::to_string(c) +
                             ": CRC-32 mismatch (corrupted frame)");
      }
    }
  }
}

/// One writer for both legacy wire versions, so the layouts cannot drift
/// apart: version 2 adds only the per-field shared-codebook record and the
/// per-chunk codebook-ref byte.
std::vector<std::uint8_t> Container::write_container(std::uint8_t version) const {
  util::ByteWriter w;
  std::uint64_t size = wire::kHeaderBytes + 4 + 8 + payload_.size();
  for (const FieldEntry& f : fields_) {
    size += wire::field_entry_bytes(f, version);
  }
  w.reserve(size);
  wire::write_archive_header(w, version);
  w.u32(static_cast<std::uint32_t>(fields_.size()));
  for (const FieldEntry& f : fields_) {
    wire::write_field_entry(w, f, version);
  }
  w.bytes(payload_);
  return w.take();
}

std::vector<std::uint8_t> Container::serialize() const {
  // The v3 image is the streaming session's output verbatim: replaying the
  // index through an ArchiveWriter guarantees the in-memory convenience
  // path can never diverge from what a file-backed writer produces.
  MemorySink sink;
  sink.reserve(serialized_size());
  ArchiveWriter writer(sink);
  for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
    const FieldEntry& f = fields_[fi];
    ArchiveFieldSpec spec;
    spec.name = f.name;
    spec.dims = f.dims;
    spec.abs_error_bound = f.abs_error_bound;
    spec.radius = f.radius;
    spec.method = f.method;
    spec.shared_codebook = f.shared_codebook;
    writer.begin_field(spec);
    for (std::size_t ci = 0; ci < f.chunks.size(); ++ci) {
      const ChunkRecord& rec = f.chunks[ci];
      writer.write_chunk(ChunkExtent{rec.elem_offset, rec.dims},
                         frame_bytes(fi, ci),
                         ChunkMeta{rec.method, rec.codebook_ref}, rec.crc32);
    }
    writer.end_field();
  }
  writer.finish();
  return sink.take();
}

std::uint64_t Container::serialized_size() const {
  std::uint64_t n = wire::kHeaderBytes + payload_.size() + 4 /*field count*/ +
                    wire::kFooterBytes;
  for (const FieldEntry& f : fields_) {
    n += wire::field_entry_bytes(f, kContainerVersion);
  }
  return n;
}

std::vector<std::uint8_t> Container::serialize_v1() const {
  for (const FieldEntry& f : fields_) {
    if (f.shared_codebook != nullptr) {
      throw ContainerError("field '" + f.name +
                           "' carries a shared codebook, which the v1 format "
                           "cannot represent");
    }
    for (const ChunkRecord& rec : f.chunks) {
      if (rec.codebook_ref != CodebookRef::Private) {
        throw ContainerError("field '" + f.name +
                             "' has shared-codebook chunks, which the v1 "
                             "format cannot represent");
      }
    }
  }
  return write_container(1);
}

std::vector<std::uint8_t> Container::serialize_v2() const {
  return write_container(2);
}

Container Container::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  try {
    r.expect_magic(wire::kMagic);
  } catch (const std::invalid_argument& e) {
    throw ContainerError(e.what());
  }
  const std::uint8_t version = r.u8();
  if (version != 1 && version != 2 && version != kContainerVersion) {
    throw ContainerError("unsupported container version");
  }
  const std::uint8_t flags = r.u8();
  if (r.u16() != 0) {
    throw ContainerError("nonzero reserved container bytes");
  }
  wire::check_archive_flags(version, flags);

  Container c;
  if (version == kContainerVersion) {
    // Footer-indexed (v3): payload first, index + footer at the end — the
    // same parse path ArchiveReader uses, over a memory image.
    if (bytes.size() < wire::kHeaderBytes + wire::kFooterBytes) {
      throw ContainerError("archive too small to hold a header and footer");
    }
    const wire::Footer footer = wire::read_footer(
        bytes.subspan(bytes.size() - wire::kFooterBytes), bytes.size());
    c.fields_ = wire::read_index(
        bytes.subspan(footer.index_offset, footer.index_bytes),
        footer.field_count, footer.index_crc32, footer.payload_bytes);
    c.payload_.assign(bytes.begin() + wire::kHeaderBytes,
                      bytes.begin() + wire::kHeaderBytes +
                          static_cast<std::ptrdiff_t>(footer.payload_bytes));
    return c;
  }

  const std::uint32_t field_count = r.u32();
  if (field_count > wire::kMaxFieldCount) {
    throw ContainerError("implausible field count");
  }
  c.fields_.reserve(field_count);
  std::unordered_set<std::string> seen_names;
  for (std::uint32_t fi = 0; fi < field_count; ++fi) {
    FieldEntry f = wire::read_field_entry(r, version);
    if (!seen_names.insert(f.name).second) {
      throw ContainerError("duplicate field name '" + f.name +
                           "' in container");
    }
    c.fields_.push_back(std::move(f));
  }

  try {
    c.payload_ = r.array<std::uint8_t>();
  } catch (const std::invalid_argument& e) {
    throw ContainerError(e.what());
  }
  if (!r.exhausted()) {
    throw ContainerError("trailing bytes after container payload");
  }
  for (const FieldEntry& f : c.fields_) {
    for (const ChunkRecord& rec : f.chunks) {
      if (rec.payload_bytes > c.payload_.size() ||
          rec.payload_offset > c.payload_.size() - rec.payload_bytes) {
        throw ContainerError("chunk frame extends past the payload section");
      }
    }
  }
  return c;
}

}  // namespace ohd::pipeline
