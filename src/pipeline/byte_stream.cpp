#include "pipeline/byte_stream.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"

namespace ohd::pipeline {
namespace {

// Aggregates across all file sinks; per-sink counts stay on the sink's own
// instrument (FileSink::flush_retries()). Only touched behind obs::enabled().
struct SinkMetrics {
  obs::Counter& flush_retries;
  obs::LatencyHistogram& flush_ns;
};

SinkMetrics& sink_metrics() {
  static SinkMetrics m{obs::registry().counter("sink.flush_retries"),
                       obs::registry().histogram("sink.flush_ns")};
  return m;
}

/// "<what> '<path>' failed: <strerror>" with the errno captured at the
/// failure site, so disk-full vs permission vs stale-handle failures are
/// distinguishable from the exception message alone.
std::string errno_detail(const char* what, const std::string& path, int err) {
  std::string msg = std::string(what) + " '" + path + "' failed";
  if (err != 0) {
    msg += ": ";
    msg += std::strerror(err);
  }
  return msg;
}

/// fsync the file at `path` via a scratch descriptor. Used for durability
/// barriers after stdio-level flushes and for parent-directory syncs after
/// rename; throws with errno detail on failure.
void fsync_path(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw ArchiveError(errno_detail("open for fsync of", path, errno));
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    throw ArchiveError(errno_detail("fsync of", path, err));
  }
  ::close(fd);
}

/// Directory component of `path` ("" if none).
std::string parent_dir(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return std::string();
  if (slash == 0) return std::string("/");
  return path.substr(0, slash);
}

}  // namespace

void MemorySource::read_at(std::uint64_t offset,
                           std::span<std::uint8_t> out) const {
  if (out.empty()) return;
  if (offset > bytes_.size() || out.size() > bytes_.size() - offset) {
    throw ArchiveError("read past the end of the archive bytes");
  }
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
}

FileSink::FileSink(const std::string& path, RetryPolicy flush_retry)
    : path_(path), flush_retry_(flush_retry) {
  errno = 0;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw ArchiveError(errno_detail("open for writing of", path, errno));
  }
}

FileSink::~FileSink() {
  // Best-effort close; errors here have no caller to reach. Paths that care
  // about buffered-write failures must call close()/commit() explicitly.
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  if (file_ == nullptr) {
    throw ArchiveError("write to closed sink for '" + path_ + "'");
  }
  errno = 0;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw ArchiveError(errno_detail("write to", path_, errno));
  }
  written_ += bytes.size();
}

void FileSink::flush() {
  if (file_ == nullptr) return;  // already closed: nothing buffered
  const obs::ScopedOp op(
      "sink.flush", obs::enabled() ? &sink_metrics().flush_ns : nullptr);
  with_retry(
      flush_retry_,
      [&] {
        errno = 0;
        if (std::fflush(file_) != 0) {
          int err = errno;
          // EINTR/EAGAIN leave the stream usable and nothing is lost from
          // stdio's buffer on fflush failure, so a retry may succeed.
          if (err == EINTR || err == EAGAIN) {
            throw TransientIoError(errno_detail("flush of", path_, err));
          }
          throw ArchiveError(errno_detail("flush of", path_, err));
        }
      },
      [&] {
        flush_retries_.add(1);
        if (obs::enabled()) sink_metrics().flush_retries.add(1);
      });
}

void FileSink::close() {
  if (file_ == nullptr) return;
  std::FILE* f = file_;
  file_ = nullptr;  // never double-close, even if fclose reports failure
  errno = 0;
  if (std::fclose(f) != 0) {
    throw ArchiveError(errno_detail("close of", path_, errno));
  }
}

void FileSink::commit() {
  flush();
  fsync_path(sync_path());
  close();
}

AtomicFileSink::AtomicFileSink(const std::string& path, RetryPolicy flush_retry)
    : FileSink(path + ".tmp", flush_retry), final_path_(path) {}

AtomicFileSink::~AtomicFileSink() {
  if (!committed_) {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    std::remove(path_.c_str());  // abandon: leave nothing behind
  }
}

void AtomicFileSink::commit() {
  if (committed_) return;
  FileSink::commit();  // flush + fsync(temp) + checked close
  errno = 0;
  if (std::rename(path_.c_str(), final_path_.c_str()) != 0) {
    throw ArchiveError(errno_detail("rename to", final_path_, errno));
  }
  committed_ = true;
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = parent_dir(final_path_);
  fsync_path(dir.empty() ? std::string(".") : dir);
}

FileSource::FileSource(const std::string& path) : path_(path) {
  errno = 0;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw ArchiveError(errno_detail("open for reading of", path, errno));
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    int err = errno;
    std::fclose(file_);
    file_ = nullptr;
    throw ArchiveError(errno_detail("seek to end of", path, err));
  }
  long end = std::ftell(file_);
  if (end < 0) {
    int err = errno;
    std::fclose(file_);
    file_ = nullptr;
    throw ArchiveError(errno_detail("size query of", path, err));
  }
  size_ = static_cast<std::uint64_t>(end);
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSource::read_at(std::uint64_t offset,
                         std::span<std::uint8_t> out) const {
  if (out.empty()) return;
  if (offset > size_ || out.size() > size_ - offset) {
    throw ArchiveError("read past the end of '" + path_ + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  errno = 0;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw ArchiveError(errno_detail("seek in", path_, errno));
  }
  errno = 0;
  std::size_t got = std::fread(out.data(), 1, out.size(), file_);
  if (got != out.size()) {
    int err = errno;
    std::clearerr(file_);  // keep the stream usable for later reads
    // A short read inside the known file size is an external interference
    // (concurrent truncation, transient media error): nothing was delivered
    // to the caller's contract, so a retry is legitimate.
    throw TransientIoError(errno_detail("short read from", path_, err));
  }
}

BoundedRingSink::BoundedRingSink(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) {
    throw ArchiveError("ring sink capacity must be positive");
  }
}

void BoundedRingSink::write(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > ring_.size() - buffered_) {
    throw ArchiveError(
        "ring sink overflow: " + std::to_string(buffered_ + bytes.size()) +
        " buffered bytes exceed the " + std::to_string(ring_.size()) +
        "-byte capacity (the producer is not streaming)");
  }
  std::size_t tail = (head_ + buffered_) % ring_.size();
  for (std::uint8_t b : bytes) {
    ring_[tail] = b;
    tail = tail + 1 == ring_.size() ? 0 : tail + 1;
  }
  buffered_ += bytes.size();
  written_ += bytes.size();
  peak_ = std::max(peak_, buffered_);
}

std::vector<std::uint8_t> BoundedRingSink::drain() {
  std::vector<std::uint8_t> out;
  out.reserve(buffered_);
  while (buffered_ > 0) {
    out.push_back(ring_[head_]);
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    --buffered_;
  }
  head_ = 0;
  return out;
}

void TrackingSource::read_at(std::uint64_t offset,
                             std::span<std::uint8_t> out) const {
  inner_.read_at(offset, out);
  std::lock_guard<std::mutex> lock(mutex_);
  ++reads_;
  bytes_read_ += out.size();
  max_read_ = std::max<std::uint64_t>(max_read_, out.size());
}

FdSink::FdSink(int fd, bool owns) : fd_(fd), owns_(owns) {
  if (fd_ < 0) {
    throw ArchiveError("FdSink: invalid file descriptor");
  }
  int type = 0;
  socklen_t len = sizeof(type);
  socket_ = ::getsockopt(fd_, SOL_SOCKET, SO_TYPE, &type, &len) == 0;
}

FdSink::~FdSink() {
  if (owns_ && fd_ >= 0) (void)::close(fd_);
}

void FdSink::write(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        socket_ ? ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL)
                : ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      written_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // A partially accepted buffer is a torn append: not retryable, exactly
    // like the FaultInjectingSink crash model.
    throw ArchiveError(errno_detail(
        sent == 0 ? "fd write" : "fd write (torn append)",
        "fd " + std::to_string(fd_), errno));
  }
}

FdSource::FdSource(int fd, bool owns) : fd_(fd), owns_(owns) {
  if (fd_ < 0) {
    throw ArchiveError("FdSource: invalid file descriptor");
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    const int err = errno;
    if (owns_) (void)::close(fd_);
    fd_ = -1;
    throw ArchiveError(errno_detail("fd size probe (lseek)",
                                    "fd " + std::to_string(fd), err));
  }
  size_ = static_cast<std::uint64_t>(end);
}

FdSource::~FdSource() {
  if (owns_ && fd_ >= 0) (void)::close(fd_);
}

void FdSource::read_at(std::uint64_t offset,
                       std::span<std::uint8_t> out) const {
  if (offset + out.size() > size_) {
    throw ArchiveError("fd read past end: offset " + std::to_string(offset) +
                       " + " + std::to_string(out.size()) + " > size " +
                       std::to_string(size_));
  }
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + got));
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // The file shrank under us: nothing usable was delivered for this
      // call's contract, and a retry may see a stable file again.
      throw TransientIoError("fd read: unexpected EOF at offset " +
                             std::to_string(offset + got));
    }
    throw ArchiveError(errno_detail("fd read (pread)",
                                    "fd " + std::to_string(fd_), errno));
  }
}

}  // namespace ohd::pipeline
