#include "pipeline/byte_stream.hpp"

#include <algorithm>
#include <cstring>

namespace ohd::pipeline {

void MemorySource::read_at(std::uint64_t offset,
                           std::span<std::uint8_t> out) const {
  if (out.empty()) return;
  if (offset > bytes_.size() || out.size() > bytes_.size() - offset) {
    throw ArchiveError("read past the end of the archive bytes");
  }
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
}

FileSink::FileSink(const std::string& path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw ArchiveError("cannot open '" + path + "' for writing");
  }
}

void FileSink::write(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) {
    throw ArchiveError("write to '" + path_ + "' failed");
  }
  written_ += bytes.size();
}

void FileSink::flush() {
  out_.flush();
  if (!out_) {
    throw ArchiveError("flush of '" + path_ + "' failed");
  }
}

FileSource::FileSource(const std::string& path)
    : path_(path), in_(path, std::ios::binary | std::ios::ate) {
  if (!in_) {
    throw ArchiveError("cannot open '" + path + "' for reading");
  }
  size_ = static_cast<std::uint64_t>(in_.tellg());
}

void FileSource::read_at(std::uint64_t offset,
                         std::span<std::uint8_t> out) const {
  if (out.empty()) return;
  if (offset > size_ || out.size() > size_ - offset) {
    throw ArchiveError("read past the end of '" + path_ + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  in_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(out.size()));
  if (!in_ || static_cast<std::uint64_t>(in_.gcount()) != out.size()) {
    throw ArchiveError("short read from '" + path_ + "'");
  }
}

BoundedRingSink::BoundedRingSink(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) {
    throw ArchiveError("ring sink capacity must be positive");
  }
}

void BoundedRingSink::write(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > ring_.size() - buffered_) {
    throw ArchiveError(
        "ring sink overflow: " + std::to_string(buffered_ + bytes.size()) +
        " buffered bytes exceed the " + std::to_string(ring_.size()) +
        "-byte capacity (the producer is not streaming)");
  }
  std::size_t tail = (head_ + buffered_) % ring_.size();
  for (std::uint8_t b : bytes) {
    ring_[tail] = b;
    tail = tail + 1 == ring_.size() ? 0 : tail + 1;
  }
  buffered_ += bytes.size();
  written_ += bytes.size();
  peak_ = std::max(peak_, buffered_);
}

std::vector<std::uint8_t> BoundedRingSink::drain() {
  std::vector<std::uint8_t> out;
  out.reserve(buffered_);
  while (buffered_ > 0) {
    out.push_back(ring_[head_]);
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    --buffered_;
  }
  head_ = 0;
  return out;
}

void TrackingSource::read_at(std::uint64_t offset,
                             std::span<std::uint8_t> out) const {
  inner_.read_at(offset, out);
  std::lock_guard<std::mutex> lock(mutex_);
  ++reads_;
  bytes_read_ += out.size();
  max_read_ = std::max<std::uint64_t>(max_read_, out.size());
}

}  // namespace ohd::pipeline
