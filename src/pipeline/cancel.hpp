// Cooperative cancellation primitive shared by the batch pipeline and the
// service layer above it. A CancelToken is a cheap copyable handle to one
// shared flag; work that wants to be cancellable polls it at its natural
// task boundaries (chunk fan-out submission, task entry, prefetch steps) and
// aborts by throwing OperationCancelled. Cancellation is COOPERATIVE: a task
// that is already past its last check runs to completion, and results of an
// uncancelled run are bit-identical to a run without any token — the checks
// observe, never mutate.
//
// A default-constructed token is inert: it holds no flag, cancelled() is
// always false, and request_cancel() is a no-op. That keeps every existing
// call site zero-cost until a caller opts in with CancelToken::make().
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace ohd::pipeline {

/// Thrown by cancellable pipeline work when its token was cancelled. Derives
/// std::runtime_error (not std::invalid_argument like the format errors):
/// cancellation describes the CALLER's intent, not malformed input.
class OperationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  /// Inert token: never cancelled, request_cancel() is a no-op.
  CancelToken() = default;

  /// A live token backed by one shared flag; copies share the flag.
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Sets the shared flag (idempotent, thread-safe). Inert tokens ignore it.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True for tokens created by make() (i.e. cancellable at all).
  bool valid() const { return flag_ != nullptr; }

  /// The boundary check cancellable work calls: throws OperationCancelled
  /// once the flag is set.
  void throw_if_cancelled() const {
    if (cancelled()) {
      throw OperationCancelled("operation cancelled by its CancelToken");
    }
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ohd::pipeline
