// BatchScheduler: runs compress/decompress of many chunks and fields
// concurrently on a ThreadPool, with every merge ordered by chunk id so a run
// with N workers is bit-identical — floats, aggregated PhaseTimings, and the
// merged simulated timeline — to the sequential run. Each chunk task owns a
// fresh cudasim::SimContext, so simulated timings are a pure function of the
// chunk, never of scheduling.
//
// Two notions of parallelism live here, deliberately separate:
//  * the ThreadPool parallelizes the HOST-side functional simulation (real
//    wall-clock speedup on multicore machines);
//  * makespan() list-schedules the per-chunk SIMULATED costs onto N virtual
//    GPU workers (greedy, chunk-id order, earliest-available worker, lowest
//    id on ties) — the deterministic, machine-independent batch-throughput
//    number bench/pipeline_throughput.cpp sweeps.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/decode_result.hpp"
#include "core/huffman_codec.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "sz/compressor.hpp"

namespace ohd::pipeline {

/// One field of a corpus to be compressed into a container.
struct FieldSpec {
  std::string name;
  std::span<const float> data;
  sz::Dims dims;
  sz::CompressorConfig config;
  std::size_t chunk_elems = std::size_t{1} << 16;
  /// Adaptive planning: per-chunk method selection and/or a field-level
  /// shared codebook. With both off the scheduler takes the fused
  /// quantize+encode fast path; with either on, compression runs in two
  /// fan-outs (quantize all chunks, plan the field on the collecting thread,
  /// then encode all chunks) so the plan can see the whole field first.
  PlanOptions plan;
};

struct FieldResult {
  std::string name;
  FieldDecode decode;  // floats + timings merged in chunk-id order
};

struct BatchDecompressResult {
  std::vector<FieldResult> fields;
  core::PhaseTimings phases;          // summed field-major, chunk-id order
  double simulated_seconds = 0.0;     // sum over all chunks
  std::vector<double> chunk_seconds;  // per chunk, global chunk-id order

  /// Simulated batch makespan on `workers` virtual GPUs (greedy list
  /// schedule over chunk_seconds in chunk-id order).
  double makespan(std::size_t workers) const;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(ThreadPool& pool) : pool_(pool) {}

  /// Compresses every chunk of every field concurrently and assembles the
  /// container in (field, chunk) order — byte-identical output for any
  /// worker count.
  Container compress(std::span<const FieldSpec> specs) const;

  /// Decompresses every chunk of every field concurrently; per-field floats
  /// and all timing aggregates are merged in chunk-id order.
  BatchDecompressResult decompress(const Container& container,
                                   const core::DecoderConfig& decoder = {}) const;

  /// Decode-only batch over raw encoded streams (covers the decode-only
  /// 8-bit gap-array method too); results in stream order.
  std::vector<core::DecodeResult> decode(
      std::span<const core::EncodedStream> streams,
      const core::DecoderConfig& decoder = {}) const;

 private:
  ThreadPool& pool_;
};

}  // namespace ohd::pipeline
