// BatchScheduler: runs compress/decompress of many chunks and fields
// concurrently on a ThreadPool, with every merge ordered by chunk id so a run
// with N workers is bit-identical — floats, aggregated PhaseTimings, and the
// merged simulated timeline — to the sequential run. Each chunk task owns a
// fresh cudasim::SimContext, so simulated timings are a pure function of the
// chunk, never of scheduling.
//
// Both directions are built on the streaming archive sessions
// (pipeline/archive_io.hpp): compress_to emits frames into an ArchiveWriter
// as their futures complete, and decompress(ArchiveReader&) fetches frames
// lazily from the reader's ByteSource inside the decode tasks — compression
// and decompression overlap IO with compute instead of serializing behind a
// whole-archive memory image.
//
// Two notions of parallelism live here, deliberately separate:
//  * the ThreadPool parallelizes the HOST-side functional simulation (real
//    wall-clock speedup on multicore machines);
//  * makespan() list-schedules the per-chunk SIMULATED costs onto N virtual
//    GPU workers (greedy, chunk-id order, earliest-available worker, lowest
//    id on ties) — the deterministic, machine-independent batch-throughput
//    number bench/pipeline_throughput.cpp sweeps.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/decode_result.hpp"
#include "core/huffman_codec.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/cancel.hpp"
#include "pipeline/container.hpp"
#include "pipeline/thread_pool.hpp"
#include "sz/compressor.hpp"

namespace ohd::pipeline {

/// One field of a corpus to be compressed into a container.
struct FieldSpec {
  std::string name;
  std::span<const float> data;
  sz::Dims dims;
  sz::CompressorConfig config;
  std::size_t chunk_elems = std::size_t{1} << 16;
  /// Adaptive planning: per-chunk method selection and/or a field-level
  /// shared codebook. With both off the scheduler takes the fused
  /// quantize+encode fast path; with either on, compression runs in two
  /// fan-outs (quantize all chunks, plan the field on the collecting thread,
  /// then encode all chunks) so the plan can see the whole field first.
  PlanOptions plan;
};

struct FieldResult {
  std::string name;
  FieldDecode decode;  // floats + timings merged in chunk-id order
};

struct BatchDecompressResult {
  std::vector<FieldResult> fields;
  core::PhaseTimings phases;          // summed field-major, chunk-id order
  double simulated_seconds = 0.0;     // sum over all chunks
  std::vector<double> chunk_seconds;  // per chunk, global chunk-id order

  /// Simulated batch makespan on `workers` virtual GPUs (greedy list
  /// schedule over chunk_seconds in chunk-id order).
  double makespan(std::size_t workers) const;
};

/// Result of the degraded (quarantining) batch decompress: the decoded
/// fields with damaged chunk ranges zero-filled, plus the per-chunk
/// DecodeReport saying exactly which element ranges are trustworthy.
struct PartialBatchDecompress {
  BatchDecompressResult result;
  DecodeReport report;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(ThreadPool& pool) : pool_(pool) {}

  // Cancellation: the entry points taking a CancelToken poll it cooperatively
  // at task boundaries — before submitting each chunk task, at every task's
  // entry, and between streamed/prefetched chunks on the collecting thread —
  // and abort by throwing OperationCancelled once it fires. In-flight chunk
  // tasks are always waited out before the throw unwinds (the same
  // exception-safety discipline every fan-out here already follows), and an
  // UNCANCELLED run is bit-identical to a run without a token. A cancelled
  // compress_to abandons its writer session mid-stream; callers stream into
  // disposable sinks (MemorySink) or discard the file.

  /// Compresses every chunk of every field concurrently and STREAMS the
  /// archive into `writer` — each frame is handed to the sink the moment its
  /// future completes in deterministic (field, chunk) order, overlapping the
  /// IO of finished chunks with the compression of later ones. Byte-identical
  /// output for any worker count. The caller finishes the session (the
  /// writer stays open so more fields can follow).
  void compress_to(ArchiveWriter& writer, std::span<const FieldSpec> specs,
                   const CancelToken& cancel = {}) const;

  /// In-memory convenience over compress_to: runs the same streaming session
  /// into a MemorySink and reopens it as a Container — byte-identical
  /// archives for any worker count.
  Container compress(std::span<const FieldSpec> specs) const;

  /// Decompresses every chunk of every field concurrently; per-field floats
  /// and all timing aggregates are merged in chunk-id order.
  BatchDecompressResult decompress(const Container& container,
                                   const core::DecoderConfig& decoder = {}) const;

  /// Streaming variant: every chunk task lazily fetches its frame from the
  /// reader's ByteSource and decodes it into its slice of the preallocated
  /// field buffer, so frame IO overlaps decode across workers and peak
  /// archive residency stays at reader.resident_bytes() plus at most one
  /// in-flight frame per worker — the archive bytes are never materialized.
  /// STRICT (the default mode): throws on the first corrupted frame and on
  /// salvaged readers holding incomplete fields — degraded decode is the
  /// explicit opt-in below.
  BatchDecompressResult decompress(const ArchiveReader& reader,
                                   const core::DecoderConfig& decoder = {},
                                   const CancelToken& cancel = {}) const;

  /// Degraded (opt-in) decompress: same parallel fan-out, but damage is
  /// contained per chunk instead of aborting the batch — a chunk whose frame
  /// is missing (salvaged hole) or fails CRC/decode is zero-filled and
  /// reported, never surfaced. Timings aggregate over the Ok chunks only,
  /// merged in chunk-id order (bit-identical for any worker count).
  PartialBatchDecompress decompress_partial(
      const ArchiveReader& reader,
      const core::DecoderConfig& decoder = {}) const;

  /// Prefetching async range decode: the calling thread fetches the frames
  /// of the chunks overlapping [elem_begin, elem_end) in chunk order (IO)
  /// while decode tasks for already-fetched frames run on the pool, so the
  /// fetch of chunk c+1 overlaps the decode of chunk c. Results merge in
  /// chunk order — bit-identical to ArchiveReader::decode_range.
  std::vector<float> decode_range(const ArchiveReader& reader,
                                  std::size_t field, std::uint64_t elem_begin,
                                  std::uint64_t elem_end,
                                  const core::DecoderConfig& decoder = {},
                                  const CancelToken& cancel = {}) const;

  /// Decode-only batch over raw encoded streams (covers the decode-only
  /// 8-bit gap-array method too); results in stream order.
  std::vector<core::DecodeResult> decode(
      std::span<const core::EncodedStream> streams,
      const core::DecoderConfig& decoder = {}) const;

 private:
  ThreadPool& pool_;
};

}  // namespace ohd::pipeline
