// Shared wire code of the "OHDC" archive family: one writer/parser for the
// per-field index sections used by all three container versions, plus the
// version-3 footer. Keeping this in one place is what stops the in-memory
// Container (v1/v2 head-indexed images, v3 via the writer) and the streaming
// ArchiveWriter/ArchiveReader sessions (v3 footer-indexed files) from
// drifting apart — they serialize and validate the exact same field/chunk
// records.
//
// Version 3 byte layout (all integers little-endian):
//
//   offset        size  field
//   0             4     magic "OHDC"
//   4             1     version (= 3)
//   5             1     flags (= 0, reserved)
//   6             2     reserved (= 0)
//   8             n     payload: concatenated chunk frames, appended in
//                       (field, chunk) order as they are produced; chunk
//                       records address it with offsets relative to byte 8
//   8+n           i     index: u32 field count, then one field section per
//                       field — identical bytes to the v2 field sections
//                       (see write_field_entry)
//   8+n+i         40    footer:
//                         u64 index offset (= 8 + n)
//                         u64 index bytes  (= i)
//                         u32 CRC-32 of the index bytes
//                         u32 field count  (= the index's count)
//                         u64 payload bytes (= n)
//                         u8  version (= 3), u8[3] reserved (= 0)
//                         4   magic "OHDF"
//
// The index and footer come LAST so a writer can emit chunk frames the
// moment they exist — nothing before the finish() call depends on knowing
// the archive's eventual shape — while a reader opens footer-first: read the
// trailing 40 bytes, then exactly the index, then individual frames on
// demand. tests/pipeline/archive_io_test.cpp fuzzes this layout.
//
// Recovery preambles (flags bit 0, opt-in via WriterOptions): the deferred
// index is a single point of failure — if the tail of the archive is lost,
// every frame CRC and every byte offset is lost with it, and the payload's
// chunk frames (sz blobs) carry no checksum of their own. With the flag set
// the writer interleaves small self-delimiting records into the payload:
//
//   field preamble (before a field's first frame):
//     4   magic "OHFP"
//     4   u32 field ordinal
//     4   u32 record length L
//     L   field header record: the field-entry bytes up to but excluding the
//         chunk records (name, dims, error bound, radius, method, shared
//         codebook + CRC)
//     4   CRC-32 of the 8 + L bytes after the magic
//
//   chunk preamble (before every frame), fixed kChunkPreambleBytes:
//     4   magic "OHCP"
//     4   u32 field ordinal          4   u32 chunk ordinal
//     8   u64 element offset        28   dims (u32 rank + 3 x u64 extent)
//     1   u8 method tag              1   u8 codebook-ref tag
//     8   u64 frame bytes            4   u32 frame CRC-32
//     4   CRC-32 of the 58 bytes after the magic
//
// Chunk records keep addressing the FRAME (the preamble precedes it), so the
// strict read path never touches preambles — zero happy-path read overhead.
// A salvage scan (pipeline/recovery.hpp) re-synchronizes on the magics, the
// same self-sync idea the paper's decoder uses inside a bitstream, and
// trusts a preamble only after its own CRC passes, then a frame only after
// the frame CRC recorded in that preamble passes.
#pragma once

#include <cstdint>
#include <span>

#include "pipeline/container.hpp"
#include "util/bytes.hpp"

namespace ohd::pipeline::wire {

inline constexpr char kMagic[4] = {'O', 'H', 'D', 'C'};
inline constexpr char kFooterMagic[4] = {'O', 'H', 'D', 'F'};
inline constexpr std::uint64_t kHeaderBytes = 8;
inline constexpr std::uint64_t kFooterBytes = 40;
inline constexpr std::uint32_t kMaxFieldCount = 1u << 20;

/// Header flags bit 0: the payload carries recovery preambles.
inline constexpr std::uint8_t kFlagRecoveryPreambles = 0x01;
inline constexpr std::uint8_t kKnownFlags = kFlagRecoveryPreambles;

inline constexpr char kFieldPreambleMagic[4] = {'O', 'H', 'F', 'P'};
inline constexpr char kChunkPreambleMagic[4] = {'O', 'H', 'C', 'P'};
inline constexpr std::uint64_t kChunkPreambleBytes = 66;
/// Upper bound on a field preamble's header record, so a garbage length
/// field in a damaged archive cannot drive a huge read during salvage.
inline constexpr std::uint32_t kMaxFieldPreambleRecordBytes = 1u << 20;

// Fixed wire sizes of one chunk record per container version, used to bound
// untrusted chunk counts before looping. Version 2 added the codebook-ref
// byte; version 3 keeps the v2 record.
inline constexpr std::uint64_t kChunkRecordBytesV1 = 8 + 8 + 8 + 4 + 24 + 1 + 4;
inline constexpr std::uint64_t kChunkRecordBytesV2 = kChunkRecordBytesV1 + 1;

core::Method parse_method_tag(std::uint8_t tag);
CodebookRef parse_codebook_ref(std::uint8_t tag);

void write_dims(util::ByteWriter& w, const sz::Dims& dims);
sz::Dims read_dims(util::ByteReader& r);

/// Chunk extents must tile the field contiguously in flat element order.
void check_coverage(const sz::Dims& field_dims,
                    std::span<const ChunkExtent> layout);

/// The 8-byte archive head shared by every version: magic, version, flags,
/// reserved. Flags are only meaningful for version 3.
void write_archive_header(util::ByteWriter& w, std::uint8_t version,
                          std::uint8_t flags = 0);

/// Validates the flags byte of a parsed v3 head: unknown bits are a format
/// error (older versions must carry 0).
std::uint8_t check_archive_flags(std::uint8_t version, std::uint8_t flags);

/// Exact serialized size of one field's index section for `version`.
std::uint64_t field_entry_bytes(const FieldEntry& f, std::uint8_t version);

/// One field's index section: name, geometry, error bound, radius, default
/// method, the shared-codebook record (+CRC, version >= 2 only), chunk count,
/// chunk records. Identical bytes for versions 2 and 3.
void write_field_entry(util::ByteWriter& w, const FieldEntry& f,
                       std::uint8_t version);

/// Parses and validates one field's index section: plausible geometry,
/// positive error bound and radius, known method/codebook-ref tags, shared
/// codebook CRC + parse, contiguous chunk coverage. Frame byte ranges are
/// validated by the caller, who knows the payload extent.
FieldEntry read_field_entry(util::ByteReader& r, std::uint8_t version);

/// The field-header prefix of a field entry (everything before the chunk
/// records): name, geometry, error bound, radius, default method, shared
/// codebook. Shared verbatim by the index sections and the field preambles,
/// so a salvaged field parses with the exact same validation as an indexed
/// one.
void write_field_header(util::ByteWriter& w, const FieldEntry& f,
                        std::uint8_t version);

/// Parses a field header; the returned entry has an empty chunk list.
FieldEntry read_field_header(util::ByteReader& r, std::uint8_t version);

/// One chunk's recovery preamble: enough to re-derive its index record (bar
/// the payload offset, which the scanner knows from where it found it).
struct ChunkPreamble {
  std::uint32_t field_ordinal = 0;
  std::uint32_t chunk_ordinal = 0;
  std::uint64_t elem_offset = 0;
  sz::Dims dims;
  core::Method method = core::Method::CuszNaive;
  CodebookRef codebook_ref = CodebookRef::Private;
  std::uint64_t frame_bytes = 0;
  std::uint32_t frame_crc32 = 0;
};

void write_chunk_preamble(util::ByteWriter& w, const ChunkPreamble& p);

/// Validates magic + CRC + record plausibility of the kChunkPreambleBytes at
/// the head of `bytes`; returns false (never throws) on any mismatch so a
/// salvage scan can probe arbitrary offsets.
bool try_parse_chunk_preamble(std::span<const std::uint8_t> bytes,
                              ChunkPreamble& out);

/// A field's recovery preamble: its ordinal plus the full field header.
struct FieldPreamble {
  std::uint32_t field_ordinal = 0;
  FieldEntry header;  // chunk list empty
};

void write_field_preamble(util::ByteWriter& w, const FieldPreamble& p);

/// Exact serialized size of a field preamble (for payload accounting).
std::uint64_t field_preamble_bytes(const FieldEntry& f);

/// Validates the field preamble at the head of `bytes`; on success sets
/// `consumed` to its total serialized size. Returns false (never throws) on
/// any mismatch.
bool try_parse_field_preamble(std::span<const std::uint8_t> bytes,
                              FieldPreamble& out, std::uint64_t& consumed);

/// Checksum + parse + geometry validation of one chunk's frame bytes — the
/// single decode gate shared by Container and ArchiveReader.
sz::CompressedBlob parse_chunk_frame(const FieldEntry& field, std::size_t chunk,
                                     std::span<const std::uint8_t> frame);

struct Footer {
  std::uint64_t index_offset = 0;
  std::uint64_t index_bytes = 0;
  std::uint32_t index_crc32 = 0;
  std::uint32_t field_count = 0;
  std::uint64_t payload_bytes = 0;
};

void write_footer(util::ByteWriter& w, const Footer& footer);

/// Parses the trailing kFooterBytes of a v3 archive and validates its
/// internal consistency against `archive_bytes` (the total archive size).
Footer read_footer(std::span<const std::uint8_t> tail,
                   std::uint64_t archive_bytes);

/// Parses and validates a v3 index section (field count + field entries +
/// per-chunk payload bounds against `payload_bytes`). `crc32` is the
/// footer's index checksum, verified first.
std::vector<FieldEntry> read_index(std::span<const std::uint8_t> index,
                                   std::uint32_t field_count,
                                   std::uint32_t crc32,
                                   std::uint64_t payload_bytes);

}  // namespace ohd::pipeline::wire
