#include "pipeline/archive_io.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "pipeline/method_selector.hpp"
#include "pipeline/wire_format.hpp"
#include "sz/serialize.hpp"
#include "util/checksum.hpp"

namespace ohd::pipeline {

namespace {

// Process-wide aggregates across all reader/writer sessions (the per-reader
// accessors live on the reader's own instruments). Handles resolved once;
// recording is raw-atomic. Only touched behind obs::enabled().
struct ReaderMetrics {
  obs::Counter& io_retries;
  obs::Counter& bytes_read;
  obs::Counter& crc_checks;
  obs::Gauge& frame_bytes;
  obs::LatencyHistogram& frame_fetch_ns;
};

ReaderMetrics& reader_metrics() {
  static ReaderMetrics m{obs::registry().counter("reader.io_retries"),
                         obs::registry().counter("reader.bytes_read"),
                         obs::registry().counter("reader.crc_checks"),
                         obs::registry().gauge("reader.frame_bytes"),
                         obs::registry().histogram("reader.frame_fetch_ns")};
  return m;
}

struct WriterMetrics {
  obs::Counter& bytes_written;
  obs::Counter& chunks;
};

WriterMetrics& writer_metrics() {
  static WriterMetrics m{obs::registry().counter("writer.bytes_written"),
                         obs::registry().counter("writer.chunks")};
  return m;
}

}  // namespace

ArchiveWriter::ArchiveWriter(ByteSink& sink, WriterOptions options)
    : sink_(sink), options_(options) {
  util::ByteWriter w;
  wire::write_archive_header(
      w, kContainerVersion,
      options_.recovery_preambles ? wire::kFlagRecoveryPreambles : 0);
  const auto head = w.take();
  sink_.write(head);
}

void ArchiveWriter::begin_field(const ArchiveFieldSpec& spec) {
  if (finished_) {
    throw ContainerError("begin_field on a finished archive session");
  }
  if (in_field_) {
    throw ContainerError("begin_field before the previous field ended");
  }
  if (!(spec.abs_error_bound > 0.0)) {
    throw ContainerError("non-positive error bound");
  }
  if (spec.radius == 0) {
    throw ContainerError("zero quantizer radius");
  }
  for (const FieldEntry& f : fields_) {
    if (f.name == spec.name) {
      throw ContainerError("duplicate field name '" + spec.name + "'");
    }
  }
  current_ = FieldEntry{};
  current_.name = spec.name;
  current_.dims = spec.dims;
  current_.abs_error_bound = spec.abs_error_bound;
  current_.radius = spec.radius;
  current_.method = spec.method;
  current_.shared_codebook = spec.shared_codebook;
  next_elem_ = 0;
  in_field_ = true;
  if (options_.recovery_preambles) {
    // The field header rides in the payload ahead of the first frame, so a
    // salvage scan can re-derive the index entry's fixed half without the
    // deferred index.
    wire::FieldPreamble p;
    p.field_ordinal = static_cast<std::uint32_t>(fields_.size());
    p.header = current_;
    util::ByteWriter w;
    wire::write_field_preamble(w, p);
    sink_.write(w.bytes());
    payload_bytes_ += w.size();
  }
}

void ArchiveWriter::write_chunk(const ChunkExtent& extent,
                                std::span<const std::uint8_t> frame) {
  // current_ is default-constructed outside a field session, and the
  // delegate throws in that case anyway.
  write_chunk(extent, frame, ChunkMeta{current_.method, CodebookRef::Private});
}

void ArchiveWriter::write_chunk(const ChunkExtent& extent,
                                std::span<const std::uint8_t> frame,
                                const ChunkMeta& meta) {
  write_chunk(extent, frame, meta, util::crc32(frame));
}

void ArchiveWriter::write_chunk(const ChunkExtent& extent,
                                std::span<const std::uint8_t> frame,
                                const ChunkMeta& meta, std::uint32_t crc32) {
  if (!in_field_) {
    throw ContainerError("write_chunk outside a begin_field session");
  }
  if (frame.empty()) {
    throw ContainerError("empty chunk frame");
  }
  if (extent.elem_offset != next_elem_) {
    throw ContainerError("chunk element offsets are not contiguous");
  }
  if (extent.dims.count() > current_.dims.count() - next_elem_) {
    throw ContainerError("chunks do not cover the field");
  }
  if (meta.codebook_ref == CodebookRef::SharedField &&
      current_.shared_codebook == nullptr) {
    throw ContainerError(
        "chunk references a shared codebook but the field has none");
  }
  if (options_.recovery_preambles) {
    wire::ChunkPreamble p;
    p.field_ordinal = static_cast<std::uint32_t>(fields_.size());
    p.chunk_ordinal = static_cast<std::uint32_t>(current_.chunks.size());
    p.elem_offset = extent.elem_offset;
    p.dims = extent.dims;
    p.method = meta.method;
    p.codebook_ref = meta.codebook_ref;
    p.frame_bytes = frame.size();
    p.frame_crc32 = crc32;
    util::ByteWriter w;
    wire::write_chunk_preamble(w, p);
    sink_.write(w.bytes());
    payload_bytes_ += w.size();
  }
  // The index record addresses the FRAME, past any preamble, so the strict
  // read path is identical with and without recovery preambles.
  ChunkRecord rec;
  rec.payload_offset = payload_bytes_;
  rec.payload_bytes = frame.size();
  rec.elem_offset = extent.elem_offset;
  rec.dims = extent.dims;
  rec.method = meta.method;
  rec.codebook_ref = meta.codebook_ref;
  rec.crc32 = crc32;
  // The frame goes straight to the sink; only the index record stays.
  sink_.write(frame);
  payload_bytes_ += frame.size();
  next_elem_ += extent.dims.count();
  current_.chunks.push_back(rec);
  if (obs::enabled()) {
    WriterMetrics& m = writer_metrics();
    m.bytes_written.add(frame.size());
    m.chunks.add(1);
  }
}

void ArchiveWriter::end_field() {
  if (!in_field_) {
    throw ContainerError("end_field without begin_field");
  }
  if (current_.chunks.empty()) {
    throw ContainerError("field has no chunks");
  }
  if (next_elem_ != current_.dims.count()) {
    throw ContainerError("chunks do not cover the field");
  }
  fields_.push_back(std::move(current_));
  current_ = FieldEntry{};
  in_field_ = false;
}

std::size_t ArchiveWriter::add_field(const std::string& name,
                                     std::span<const float> data,
                                     const sz::Dims& dims,
                                     const sz::CompressorConfig& config,
                                     std::size_t chunk_elems,
                                     const PlanOptions& plan) {
  compress_field_frames(
      data, dims, config, chunk_elems, plan,
      [&](double abs_eb, std::shared_ptr<const huffman::Codebook> shared) {
        ArchiveFieldSpec spec;
        spec.name = name;
        spec.dims = dims;
        spec.abs_error_bound = abs_eb;
        spec.radius = config.radius;
        spec.method = config.method;
        spec.shared_codebook = std::move(shared);
        begin_field(spec);
      },
      [&](const ChunkExtent& extent, std::vector<std::uint8_t> frame,
          const ChunkMeta& meta) { write_chunk(extent, frame, meta); });
  end_field();
  return fields_.size() - 1;
}

std::uint64_t ArchiveWriter::finish() {
  if (finished_) {
    throw ContainerError("finish on a finished archive session");
  }
  if (in_field_) {
    throw ContainerError("finish with an unclosed field session");
  }
  std::uint64_t index_size = 4;  // field count
  for (const FieldEntry& f : fields_) {
    index_size += wire::field_entry_bytes(f, kContainerVersion);
  }
  // Index and footer share one buffer reserved to the exact tail size, so
  // the deferred metadata reaches the sink in a single write.
  util::ByteWriter w;
  w.reserve(index_size + wire::kFooterBytes);
  w.u32(static_cast<std::uint32_t>(fields_.size()));
  for (const FieldEntry& f : fields_) {
    wire::write_field_entry(w, f, kContainerVersion);
  }

  wire::Footer footer;
  footer.index_offset = wire::kHeaderBytes + payload_bytes_;
  footer.index_bytes = w.size();
  footer.index_crc32 = util::crc32(w.bytes());
  footer.field_count = static_cast<std::uint32_t>(fields_.size());
  footer.payload_bytes = payload_bytes_;
  wire::write_footer(w, footer);

  const obs::ScopedOp op("writer.finish");
  sink_.write(w.bytes());
  // commit(), not flush(): the archive is only "written" once it is durable
  // (FileSink fsyncs; AtomicFileSink publishes its temp file atomically).
  sink_.commit();
  finished_ = true;
  if (obs::enabled()) writer_metrics().bytes_written.add(w.size());
  return wire::kHeaderBytes + payload_bytes_ + w.size();
}

FrameResidency::FrameResidency(const ArchiveReader& reader,
                               std::uint64_t bytes)
    : reader_(reader), bytes_(bytes) {
  reader_.frame_bytes_.add(static_cast<std::int64_t>(bytes_));
  if (obs::enabled()) {
    mirrored_ = true;
    reader_metrics().frame_bytes.add(static_cast<std::int64_t>(bytes_));
  }
}

FrameResidency::~FrameResidency() {
  reader_.frame_bytes_.sub(static_cast<std::int64_t>(bytes_));
  if (mirrored_) {
    reader_metrics().frame_bytes.sub(static_cast<std::int64_t>(bytes_));
  }
}

ArchiveReader::ArchiveReader(const ByteSource& source, ReaderOptions options)
    : source_(source), options_(options) {
  const std::uint64_t total = source_.size();
  if (total < wire::kHeaderBytes + wire::kFooterBytes) {
    throw ContainerError("archive too small to hold a header and footer");
  }
  std::uint8_t head[wire::kHeaderBytes];
  read_at_retried(0, head);
  if (std::memcmp(head, wire::kMagic, 4) != 0) {
    throw ContainerError("bad magic, expected OHDC");
  }
  const std::uint8_t version = head[4];
  if (version == 1 || version == 2) {
    throw ContainerError(
        "version " + std::to_string(version) +
        " archives are head-indexed whole-buffer images; read them with "
        "Container::deserialize");
  }
  if (version != kContainerVersion) {
    throw ContainerError("unsupported container version");
  }
  if (head[6] != 0 || head[7] != 0) {
    throw ContainerError("nonzero reserved container bytes");
  }
  wire::check_archive_flags(version, head[5]);

  std::uint8_t tail[wire::kFooterBytes];
  read_at_retried(total - wire::kFooterBytes, tail);
  const wire::Footer footer = wire::read_footer(tail, total);

  std::vector<std::uint8_t> index(footer.index_bytes);
  read_at_retried(footer.index_offset, index);
  fields_ = wire::read_index(index, footer.field_count, footer.index_crc32,
                             footer.payload_bytes);
  payload_bytes_ = footer.payload_bytes;
  resident_bytes_ =
      wire::kHeaderBytes + footer.index_bytes + wire::kFooterBytes;
  for (const FieldEntry& f : fields_) {
    for (const ChunkRecord& rec : f.chunks) {
      max_frame_bytes_ = std::max(max_frame_bytes_, rec.payload_bytes);
    }
  }
}

ArchiveReader::ArchiveReader(SalvageTag, const ByteSource& source,
                             SalvageResult salvage, ReaderOptions options)
    : source_(source), options_(options), salvaged_(true) {
  fields_.reserve(salvage.fields.size());
  for (SalvagedField& sf : salvage.fields) {
    FieldEntry f = std::move(sf.header);
    f.chunks.clear();
    std::vector<std::uint32_t> ordinals;
    f.chunks.reserve(sf.chunks.size());
    ordinals.reserve(sf.chunks.size());
    for (const SalvagedChunk& c : sf.chunks) {
      f.chunks.push_back(c.record);
      ordinals.push_back(c.ordinal);
      max_frame_bytes_ = std::max(max_frame_bytes_, c.record.payload_bytes);
      payload_bytes_ = std::max(
          payload_bytes_, c.record.payload_offset + c.record.payload_bytes);
    }
    fields_.push_back(std::move(f));
    salvage_ordinals_.push_back(std::move(ordinals));
    salvage_complete_.push_back(sf.complete);
  }
  resident_bytes_ = wire::kHeaderBytes;
}

ArchiveReader ArchiveReader::open_salvage(const ByteSource& source,
                                          SalvageReport* report,
                                          ReaderOptions options) {
  SalvageResult salvage = salvage_scan(source, options.retry);
  if (report != nullptr) {
    *report = salvage.report;
  }
  return ArchiveReader(SalvageTag{}, source, std::move(salvage), options);
}

void ArchiveReader::read_at_retried(std::uint64_t offset,
                                    std::span<std::uint8_t> out) const {
  with_retry(
      options_.retry, [&] { source_.read_at(offset, out); },
      [&] {
        io_retries_.add(1);
        if (obs::enabled()) reader_metrics().io_retries.add(1);
      });
  if (obs::enabled()) reader_metrics().bytes_read.add(out.size());
}

bool ArchiveReader::field_complete(std::size_t field) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  return !salvaged_ || salvage_complete_[field];
}

std::size_t ArchiveReader::chunk_ordinal(std::size_t field,
                                         std::size_t chunk) const {
  record(field, chunk);  // bounds checks
  return salvaged_ ? salvage_ordinals_[field][chunk] : chunk;
}

void ArchiveReader::require_complete(std::size_t field) const {
  if (!field_complete(field)) {
    throw ContainerError(
        "field '" + fields_[field].name +
        "' was salvaged incomplete; use decode_field_partial");
  }
}

std::size_t ArchiveReader::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  throw ContainerError("no field named '" + name + "' in container");
}

const ChunkRecord& ArchiveReader::record(std::size_t field,
                                         std::size_t chunk) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  if (chunk >= fields_[field].chunks.size()) {
    throw ContainerError("chunk index out of range");
  }
  return fields_[field].chunks[chunk];
}

std::vector<std::uint8_t> ArchiveReader::fetch_frame(
    const ChunkRecord& rec) const {
  const obs::ScopedOp op(
      "reader.frame_fetch",
      obs::enabled() ? &reader_metrics().frame_fetch_ns : nullptr);
  std::vector<std::uint8_t> frame(rec.payload_bytes);
  read_at_retried(wire::kHeaderBytes + rec.payload_offset, frame);
  return frame;
}

std::vector<std::uint8_t> ArchiveReader::read_frame(std::size_t field,
                                                    std::size_t chunk) const {
  const ChunkRecord& rec = record(field, chunk);
  const FrameResidency lease(*this, rec.payload_bytes);
  std::vector<std::uint8_t> frame = fetch_frame(rec);
  if (obs::enabled()) reader_metrics().crc_checks.add(1);
  if (util::crc32(frame) != rec.crc32) {
    throw ContainerError("field '" + fields_[field].name + "' chunk " +
                         std::to_string(chunk) +
                         ": CRC-32 mismatch (corrupted frame)");
  }
  return frame;
}

std::vector<std::uint8_t> ArchiveReader::read_frame_unverified(
    std::size_t field, std::size_t chunk) const {
  const ChunkRecord& rec = record(field, chunk);
  const FrameResidency lease(*this, rec.payload_bytes);
  return fetch_frame(rec);
}

sz::DecompressionResult ArchiveReader::decode_chunk(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    const core::DecoderConfig& decoder) const {
  const ChunkRecord& rec = record(field, chunk);
  const FrameResidency lease(*this, rec.payload_bytes);
  const std::vector<std::uint8_t> frame = fetch_frame(rec);
  if (obs::enabled()) reader_metrics().crc_checks.add(1);
  const sz::CompressedBlob blob =
      wire::parse_chunk_frame(fields_[field], chunk, frame);
  return sz::decompress(ctx, blob, decoder);
}

sz::DecompressionResult ArchiveReader::decode_chunk_into(
    cudasim::SimContext& ctx, std::size_t field, std::size_t chunk,
    std::span<float> out, const core::DecoderConfig& decoder) const {
  const ChunkRecord& rec = record(field, chunk);
  const FrameResidency lease(*this, rec.payload_bytes);
  const std::vector<std::uint8_t> frame = fetch_frame(rec);
  if (obs::enabled()) reader_metrics().crc_checks.add(1);
  const sz::CompressedBlob blob =
      wire::parse_chunk_frame(fields_[field], chunk, frame);
  return sz::decompress_into(ctx, blob, out, decoder);
}

FieldDecode ArchiveReader::decode_field(
    cudasim::SimContext& ctx, std::size_t field,
    const core::DecoderConfig& decoder) const {
  require_complete(field);
  return decode_field_chunks(*this, ctx, field, decoder);
}

PartialFieldDecode ArchiveReader::decode_field_partial(
    cudasim::SimContext& ctx, std::size_t field,
    const core::DecoderConfig& decoder) const {
  if (field >= fields_.size()) {
    throw ContainerError("field index out of range");
  }
  const FieldEntry& f = fields_[field];
  PartialFieldDecode out;
  out.values.assign(f.dims.count(), 0.0f);
  out.report.name = f.name;
  out.report.elems_total = f.dims.count();
  std::uint64_t next_elem = 0;
  std::size_t next_ordinal = 0;
  for (std::size_t c = 0; c < f.chunks.size(); ++c) {
    const ChunkRecord& rec = f.chunks[c];
    const std::size_t ordinal = chunk_ordinal(field, c);
    if (rec.elem_offset > next_elem) {
      // Chunks the salvage never recovered: a known element hole whose
      // as-written ordinals are the gap in the recovered sequence.
      ChunkReport hole;
      hole.chunk = next_ordinal;
      hole.status = ChunkStatus::Missing;
      hole.elem_offset = next_elem;
      hole.elem_count = rec.elem_offset - next_elem;
      hole.detail = "chunks " + std::to_string(next_ordinal) + ".." +
                    std::to_string(ordinal - 1) + " were not recovered";
      out.report.chunks.push_back(std::move(hole));
    }
    ChunkReport cr;
    cr.chunk = ordinal;
    cr.elem_offset = rec.elem_offset;
    cr.elem_count = rec.dims.count();
    const std::span<float> dest(out.values.data() + rec.elem_offset,
                                rec.dims.count());
    try {
      decode_chunk_into(ctx, field, c, dest, decoder);
      cr.status = ChunkStatus::Ok;
      out.report.elems_ok += cr.elem_count;
    } catch (const std::invalid_argument& e) {
      // CRC mismatch, frame parse failure, or an exhausted retry budget:
      // contain it to this chunk. The slice may hold a partial decode —
      // never surface bytes that failed verification.
      cr.status = ChunkStatus::Corrupt;
      cr.detail = e.what();
      std::fill(dest.begin(), dest.end(), 0.0f);
    }
    out.report.chunks.push_back(std::move(cr));
    next_elem = rec.elem_offset + rec.dims.count();
    next_ordinal = ordinal + 1;
  }
  if (next_elem < f.dims.count()) {
    ChunkReport hole;
    hole.chunk = next_ordinal;
    hole.status = ChunkStatus::Missing;
    hole.elem_offset = next_elem;
    hole.elem_count = f.dims.count() - next_elem;
    hole.detail = "field tail truncated away";
    out.report.chunks.push_back(std::move(hole));
  }
  return out;
}

std::vector<float> ArchiveReader::decode_range(
    cudasim::SimContext& ctx, std::size_t field, std::uint64_t elem_begin,
    std::uint64_t elem_end, const core::DecoderConfig& decoder) const {
  require_complete(field);
  return decode_range_chunks(*this, ctx, field, elem_begin, elem_end, decoder);
}

void ArchiveReader::verify() const {
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    require_complete(f);
    for (std::size_t c = 0; c < fields_[f].chunks.size(); ++c) {
      const ChunkRecord& rec = fields_[f].chunks[c];
      const FrameResidency lease(*this, rec.payload_bytes);
      if (obs::enabled()) reader_metrics().crc_checks.add(1);
      if (util::crc32(fetch_frame(rec)) != rec.crc32) {
        throw ContainerError("field '" + fields_[f].name + "' chunk " +
                             std::to_string(c) +
                             ": CRC-32 mismatch (corrupted frame)");
      }
    }
  }
}

void compress_field_frames(
    std::span<const float> data, const sz::Dims& dims,
    const sz::CompressorConfig& config, std::size_t chunk_elems,
    const PlanOptions& plan,
    const std::function<void(double, std::shared_ptr<const huffman::Codebook>)>&
        on_plan,
    const std::function<void(const ChunkExtent&, std::vector<std::uint8_t>,
                             const ChunkMeta&)>& on_frame) {
  if (data.size() != dims.count()) {
    throw ContainerError("field data size does not match dimensions");
  }
  if (config.method == core::Method::GapArrayOriginal8Bit) {
    throw ContainerError(
        "the 8-bit gap-array method is decode-only and cannot reconstruct "
        "float fields; pick a multi-byte method for container fields");
  }
  if (config.radius == 0) {
    throw ContainerError("zero quantizer radius");
  }
  const double abs_eb = sz::resolve_error_bound(data, config.rel_error_bound);
  const auto layout = chunk_layout(dims, chunk_elems);

  // Nothing adaptive requested: stream chunk-at-a-time (O(chunk) peak
  // memory), exactly as before planning existed.
  if (!plan.auto_method && !plan.shared_codebook) {
    on_plan(abs_eb, nullptr);
    for (const ChunkExtent& e : layout) {
      const auto blob = sz::compress_with_abs_bound(
          data.subspan(e.elem_offset, e.dims.count()), e.dims, abs_eb, config);
      on_frame(e, sz::serialize_blob(blob),
               ChunkMeta{config.method, CodebookRef::Private});
    }
    return;
  }

  // Planned path: quantize every chunk first, so the planner can see the
  // whole field (pooled histograms for the shared book, per-chunk probes
  // for method selection) before any encoding commits.
  std::vector<sz::QuantizedField> quantized;
  quantized.reserve(layout.size());
  for (const ChunkExtent& e : layout) {
    quantized.push_back(sz::quantize_with_abs_bound(
        data.subspan(e.elem_offset, e.dims.count()), e.dims, abs_eb, config));
  }
  const MethodSelector selector(config.decoder);
  FieldPlan field_plan = plan_field(quantized, config.method, plan, selector);

  std::shared_ptr<const huffman::Codebook> shared;
  if (field_plan.has_shared_codebook) {
    shared = std::make_shared<const huffman::Codebook>(
        std::move(field_plan.shared_codebook));
  }
  on_plan(abs_eb, shared);
  for (std::size_t i = 0; i < layout.size(); ++i) {
    const ChunkPlan& cp = field_plan.chunks[i];
    on_frame(layout[i],
             encode_planned_chunk(std::move(quantized[i]), cp, config,
                                  shared.get()),
             ChunkMeta{cp.method, cp.use_shared_codebook
                                      ? CodebookRef::SharedField
                                      : CodebookRef::Private});
  }
}

}  // namespace ohd::pipeline
