#include "pipeline/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "pipeline/archive_io.hpp"
#include "pipeline/wire_format.hpp"
#include "util/checksum.hpp"

namespace ohd::pipeline {
namespace {

/// Sliding read window over a source region, so the byte-by-byte resync scan
/// does not issue one read_at per probed offset. Spans are valid until the
/// next view() call.
class ScanWindow {
 public:
  ScanWindow(const ByteSource& src, const RetryPolicy& retry,
             std::uint64_t end)
      : src_(src), retry_(retry), end_(end) {}

  /// Bytes [pos, min(pos + want, end)); reloads the window when the request
  /// falls outside the cached range.
  std::span<const std::uint8_t> view(std::uint64_t pos, std::uint64_t want) {
    const std::uint64_t n = std::min(want, end_ - pos);
    if (pos < begin_ || pos + n > begin_ + buf_.size()) {
      const std::uint64_t len =
          std::min(std::max<std::uint64_t>(n, kWindowBytes), end_ - pos);
      buf_.resize(len);
      with_retry(retry_, [&] { src_.read_at(pos, buf_); });
      begin_ = pos;
    }
    return std::span<const std::uint8_t>(buf_).subspan(
        static_cast<std::size_t>(pos - begin_), static_cast<std::size_t>(n));
  }

 private:
  // Must exceed the largest record probed in place (a max-size field
  // preamble), so a probe never thrashes the window.
  static constexpr std::uint64_t kWindowBytes =
      4 * (std::uint64_t{wire::kMaxFieldPreambleRecordBytes} + 16);

  const ByteSource& src_;
  const RetryPolicy& retry_;
  std::uint64_t end_;
  std::uint64_t begin_ = 0;
  std::vector<std::uint8_t> buf_;
};

std::vector<std::uint8_t> read_range(const ByteSource& src,
                                     const RetryPolicy& retry,
                                     std::uint64_t offset, std::uint64_t n) {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
  with_retry(retry, [&] { src.read_at(offset, bytes); });
  return bytes;
}

/// Strict footer-first parse; any format violation means "tail unusable".
std::vector<FieldEntry> try_strict_index(const ByteSource& src,
                                         const RetryPolicy& retry,
                                         std::uint64_t total) {
  const auto tail =
      read_range(src, retry, total - wire::kFooterBytes, wire::kFooterBytes);
  const wire::Footer footer = wire::read_footer(tail, total);
  const auto index =
      read_range(src, retry, footer.index_offset, footer.index_bytes);
  return wire::read_index(index, footer.field_count, footer.index_crc32,
                          footer.payload_bytes);
}

/// Marks the recovered chunk set of one field complete when the ordinals run
/// 0..n-1 and their extents tile the declared dims contiguously.
bool chunks_complete(const SalvagedField& f) {
  std::uint64_t next_elem = 0;
  for (std::size_t i = 0; i < f.chunks.size(); ++i) {
    if (f.chunks[i].ordinal != i) return false;
    if (f.chunks[i].record.elem_offset != next_elem) return false;
    next_elem += f.chunks[i].record.dims.count();
  }
  return !f.chunks.empty() && next_elem == f.header.dims.count();
}

}  // namespace

SalvageResult salvage_scan(const ByteSource& source, const RetryPolicy& retry) {
  SalvageResult out;
  SalvageReport& rep = out.report;
  const std::uint64_t total = source.size();
  if (total < wire::kHeaderBytes) {
    rep.notes.push_back("archive smaller than its 8-byte header");
    return out;
  }

  const auto head = read_range(source, retry, 0, wire::kHeaderBytes);
  std::uint8_t flags = 0;
  if (std::memcmp(head.data(), wire::kMagic, 4) == 0 && head[4] == 3 &&
      head[6] == 0 && head[7] == 0) {
    try {
      flags = wire::check_archive_flags(head[4], head[5]);
      rep.header_valid = true;
    } catch (const ContainerError&) {
    }
  }
  if (!rep.header_valid) {
    rep.notes.push_back("archive header damaged; scanning anyway");
  }
  rep.preambles_present =
      rep.header_valid && (flags & wire::kFlagRecoveryPreambles) != 0;

  // First choice: the strict tail. An archive that is merely payload-corrupt
  // keeps its complete index; quarantine then happens chunk by chunk at
  // decode time against the indexed CRCs.
  if (rep.header_valid && total >= wire::kHeaderBytes + wire::kFooterBytes) {
    try {
      std::vector<FieldEntry> fields = try_strict_index(source, retry, total);
      rep.used_index = true;
      rep.fields_recovered = fields.size();
      for (std::size_t fi = 0; fi < fields.size(); ++fi) {
        SalvagedField sf;
        sf.ordinal = static_cast<std::uint32_t>(fi);
        sf.header = fields[fi];
        for (std::size_t ci = 0; ci < fields[fi].chunks.size(); ++ci) {
          sf.chunks.push_back({static_cast<std::uint32_t>(ci),
                               fields[fi].chunks[ci]});
          ++rep.frames_recovered;
        }
        sf.header.chunks.clear();
        sf.complete = true;
        out.fields.push_back(std::move(sf));
      }
      return out;
    } catch (const std::invalid_argument&) {
      // Tail damaged — fall through to the payload scan.
    }
  }

  if (rep.header_valid && !rep.preambles_present) {
    rep.notes.push_back(
        "index unusable and the archive carries no recovery preambles; "
        "nothing to salvage");
    return out;
  }

  // Self-synchronizing payload scan: walk forward hunting for preamble
  // magics, trust a record only after its own CRC, then a frame only after
  // the frame CRC the preamble vouches for. A frame that fails its CRC is
  // skipped by its trusted length (quarantine); unrecognizable bytes are
  // walked over one at a time until the stream re-synchronizes.
  std::map<std::uint32_t, FieldEntry> headers;
  std::map<std::uint32_t, std::map<std::uint32_t, ChunkRecord>> recovered;
  ScanWindow win(source, retry, total);
  std::uint64_t pos = wire::kHeaderBytes;
  rep.scanned_bytes = total - wire::kHeaderBytes;
  while (pos + 4 <= total) {
    const auto magic = win.view(pos, 4);
    if (std::memcmp(magic.data(), wire::kChunkPreambleMagic, 4) == 0) {
      wire::ChunkPreamble p;
      if (wire::try_parse_chunk_preamble(
              win.view(pos, wire::kChunkPreambleBytes), p)) {
        const std::uint64_t frame_pos = pos + wire::kChunkPreambleBytes;
        if (p.frame_bytes > total - frame_pos) {
          ++rep.frames_rejected;
          rep.notes.push_back(
              "field " + std::to_string(p.field_ordinal) + " chunk " +
              std::to_string(p.chunk_ordinal) +
              ": frame truncated by the end of the archive");
          break;  // nothing complete can follow a frame that overruns the end
        }
        const auto frame = read_range(source, retry, frame_pos, p.frame_bytes);
        if (util::crc32(frame) == p.frame_crc32) {
          ChunkRecord rec;
          rec.payload_offset = frame_pos - wire::kHeaderBytes;
          rec.payload_bytes = p.frame_bytes;
          rec.elem_offset = p.elem_offset;
          rec.dims = p.dims;
          rec.method = p.method;
          rec.codebook_ref = p.codebook_ref;
          rec.crc32 = p.frame_crc32;
          if (!recovered[p.field_ordinal].emplace(p.chunk_ordinal, rec)
                   .second) {
            rep.notes.push_back("field " + std::to_string(p.field_ordinal) +
                                " chunk " + std::to_string(p.chunk_ordinal) +
                                ": duplicate preamble; kept the first");
          } else {
            ++rep.frames_recovered;
          }
        } else {
          ++rep.frames_rejected;
          rep.notes.push_back("field " + std::to_string(p.field_ordinal) +
                              " chunk " + std::to_string(p.chunk_ordinal) +
                              ": frame CRC-32 mismatch; quarantined");
        }
        // The preamble's own CRC vouches for frame_bytes, so the skip is
        // trusted even when the frame content is not.
        pos = frame_pos + p.frame_bytes;
        continue;
      }
    } else if (std::memcmp(magic.data(), wire::kFieldPreambleMagic, 4) == 0) {
      wire::FieldPreamble fp;
      std::uint64_t consumed = 0;
      if (wire::try_parse_field_preamble(
              win.view(pos, 16ull + wire::kMaxFieldPreambleRecordBytes), fp,
              consumed)) {
        if (!headers.emplace(fp.field_ordinal, std::move(fp.header)).second) {
          rep.notes.push_back("field " + std::to_string(fp.field_ordinal) +
                              ": duplicate field preamble; kept the first");
        }
        pos += consumed;
        continue;
      }
    }
    ++pos;
    ++rep.resync_skipped_bytes;
  }

  // Assemble per-field results: a chunk is only usable when its field header
  // survived (error bound, radius, shared codebook live there) and its
  // geometry fits the declared field.
  for (auto& [ordinal, header] : headers) {
    SalvagedField sf;
    sf.ordinal = ordinal;
    sf.header = std::move(header);
    auto it = recovered.find(ordinal);
    if (it != recovered.end()) {
      for (auto& [chunk_ord, rec] : it->second) {
        if (rec.dims.count() > sf.header.dims.count() ||
            rec.elem_offset >
                sf.header.dims.count() - rec.dims.count()) {
          rep.notes.push_back("field " + std::to_string(ordinal) + " chunk " +
                              std::to_string(chunk_ord) +
                              ": extent outside the declared field; dropped");
          continue;
        }
        if (rec.codebook_ref == CodebookRef::SharedField &&
            sf.header.shared_codebook == nullptr) {
          rep.notes.push_back(
              "field " + std::to_string(ordinal) + " chunk " +
              std::to_string(chunk_ord) +
              ": references a shared codebook the field header lacks; "
              "dropped");
          continue;
        }
        sf.chunks.push_back({chunk_ord, rec});
      }
      recovered.erase(it);
    }
    sf.complete = chunks_complete(sf);
    out.fields.push_back(std::move(sf));
    ++rep.fields_recovered;
  }
  for (const auto& [ordinal, chunks] : recovered) {
    rep.notes.push_back(std::to_string(chunks.size()) +
                        " intact frame(s) for field ordinal " +
                        std::to_string(ordinal) +
                        " lost their field header; dropped");
  }
  return out;
}

RepairReport repair_truncated(const ByteSource& damaged, ByteSink& out,
                              const RetryPolicy& retry) {
  SalvageResult sr = salvage_scan(damaged, retry);
  RepairReport rep;
  WriterOptions opts;
  opts.recovery_preambles = true;
  ArchiveWriter writer(out, opts);
  for (SalvagedField& sf : sr.fields) {
    // A strict index can only describe a field whose chunks tile it from
    // element 0 with no gaps: keep the contiguous prefix.
    std::size_t keep = 0;
    std::uint64_t covered = 0;
    while (keep < sf.chunks.size() && sf.chunks[keep].ordinal == keep &&
           sf.chunks[keep].record.elem_offset == covered) {
      covered += sf.chunks[keep].record.dims.count();
      ++keep;
    }
    // chunk_layout chunks are whole slabs of the slowest axis, so `covered`
    // divides into slabs exactly; a foreign layout that does not align gets
    // trimmed back to the last whole slab.
    const std::size_t slowest = sf.header.dims.rank - 1;
    const std::uint64_t slab =
        sf.header.dims.count() / sf.header.dims.extent[slowest];
    while (keep > 0 && covered % slab != 0) {
      --keep;
      covered -= sf.chunks[keep].record.dims.count();
    }
    rep.chunks_dropped += sf.chunks.size() - keep;
    if (keep == 0) {
      ++rep.fields_dropped;
      continue;
    }
    sz::Dims dims = sf.header.dims;
    dims.extent[slowest] = covered / slab;
    ArchiveFieldSpec spec;
    spec.name = sf.header.name;
    spec.dims = dims;
    spec.abs_error_bound = sf.header.abs_error_bound;
    spec.radius = sf.header.radius;
    spec.method = sf.header.method;
    spec.shared_codebook = sf.header.shared_codebook;
    try {
      writer.begin_field(spec);
    } catch (const ContainerError&) {
      // e.g. a duplicate field name from colliding salvaged headers — skip
      // the later claimant rather than abort the repair.
      ++rep.fields_dropped;
      rep.chunks_dropped += keep;
      continue;
    }
    for (std::size_t i = 0; i < keep; ++i) {
      const ChunkRecord& rec = sf.chunks[i].record;
      const auto frame =
          read_range(damaged, retry, wire::kHeaderBytes + rec.payload_offset,
                     rec.payload_bytes);
      writer.write_chunk(ChunkExtent{rec.elem_offset, rec.dims}, frame,
                         ChunkMeta{rec.method, rec.codebook_ref}, rec.crc32);
    }
    writer.end_field();
    ++rep.fields_kept;
    rep.chunks_kept += keep;
  }
  rep.output_bytes = writer.finish();
  return rep;
}

}  // namespace ohd::pipeline
