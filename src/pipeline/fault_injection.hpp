// Deterministic fault injection over the ByteSource/ByteSink contracts.
//
// FaultInjectingSource/FaultInjectingSink wrap a real source/sink and
// perturb its operations according to a SEEDED schedule: transient read
// errors, short reads, torn (partial) appends, transient write errors, and
// injected latency. The schedule is a pure function of (seed, operation
// index) — replaying the same operation sequence against the same spec
// reproduces the same faults bit-for-bit, which is what lets the CI
// fault-injection matrix and the retry/salvage tests assert exact outcomes
// instead of probabilistic ones.
//
// Fault semantics follow the byte_stream failure model:
//  * transient read error / short read — nothing observable was delivered;
//    thrown as TransientIoError, so RetryPolicy may retry it.
//  * torn append — a PREFIX of the bytes reached the inner sink before the
//    failure; thrown as plain ArchiveError because retrying a half-applied
//    write would corrupt the stream. This is the crash model the
//    crash-consistency tests drive (AtomicFileSink, repair_truncated).
//  * transient write error — nothing was appended; TransientIoError.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>

#include "obs/metrics.hpp"
#include "pipeline/byte_stream.hpp"

namespace ohd::pipeline {

/// Seeded, deterministic fault schedule. Rates are per-operation
/// probabilities in [0, 1]; the draw for operation i depends only on
/// (seed, i), never on wall clock or thread interleaving.
struct FaultSpec {
  std::uint64_t seed = 1;

  /// P(read_at throws TransientIoError before touching the inner source).
  double transient_read_rate = 0.0;
  /// P(read_at fills only a prefix, then throws TransientIoError).
  double short_read_rate = 0.0;
  /// P(write appends only a prefix to the inner sink, then throws
  /// ArchiveError) — the torn-append crash model, not retryable.
  double torn_write_rate = 0.0;
  /// P(write throws TransientIoError with nothing appended).
  double transient_write_rate = 0.0;
  /// When nonzero, every operation sleeps a deterministic uniform duration
  /// in [0, max_latency] (latency is not a fault; it does not count against
  /// max_faults).
  std::chrono::microseconds max_latency{0};

  /// Hard cap on injected faults; once spent the wrapper is transparent.
  /// Keeps bounded-retry tests convergent (e.g. "exactly 3 transient
  /// errors, then success").
  std::size_t max_faults = std::numeric_limits<std::size_t>::max();
};

struct FaultStats {
  std::uint64_t reads = 0;   // read_at calls observed
  std::uint64_t writes = 0;  // write calls observed
  std::uint64_t transient_read_errors = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t transient_write_errors = 0;
  std::uint64_t injected_latency_us = 0;

  std::uint64_t faults() const {
    return transient_read_errors + short_reads + torn_writes +
           transient_write_errors;
  }
};

/// Thread-safe (the source contract requires concurrent read_at): the
/// operation counter and the fault draw live behind a mutex, the inner read
/// runs outside it. Counts are held on obs instruments — stats() assembles
/// the FaultStats view, and injected faults additionally aggregate into the
/// process registry under "fault.*" when obs::enabled() — but every
/// increment still happens under the mutex, so the schedule (which depends
/// on the fault count via max_faults) stays deterministic.
class FaultInjectingSource : public ByteSource {
 public:
  FaultInjectingSource(const ByteSource& inner, FaultSpec spec)
      : inner_(inner), spec_(spec) {}

  std::uint64_t size() const override { return inner_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

  FaultStats stats() const;

 private:
  const ByteSource& inner_;
  FaultSpec spec_;
  mutable std::mutex mutex_;
  mutable std::uint64_t op_ = 0;
  mutable obs::Counter reads_;
  mutable obs::Counter transient_read_errors_;
  mutable obs::Counter short_reads_;
  mutable obs::Counter injected_latency_us_;
};

class FaultInjectingSink : public ByteSink {
 public:
  FaultInjectingSink(ByteSink& inner, FaultSpec spec)
      : inner_(inner), spec_(spec) {}

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return inner_.position(); }
  void flush() override { inner_.flush(); }
  void commit() override { inner_.commit(); }

  FaultStats stats() const;

 private:
  ByteSink& inner_;
  FaultSpec spec_;
  mutable std::mutex mutex_;
  std::uint64_t op_ = 0;
  obs::Counter writes_;
  obs::Counter torn_writes_;
  obs::Counter transient_write_errors_;
  obs::Counter injected_latency_us_;
};

}  // namespace ohd::pipeline
