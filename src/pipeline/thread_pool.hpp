// Fixed-size, futures-based worker pool for the batch pipeline. Deliberately
// work-stealing-free: one FIFO queue, N workers, tasks start in submission
// order. Determinism of batch results does not depend on scheduling at all —
// BatchScheduler merges by chunk id, never by completion order — so the pool
// stays as simple as possible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace ohd::pipeline {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks still run to completion, then workers
  /// join. Futures obtained from submit() stay valid through destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns its future; the future rethrows any exception
  /// the task threw.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    // std::function requires copyable targets, so the move-only
    // packaged_task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  /// Queue entry. enqueue_ns is nonzero only when telemetry was enabled at
  /// submit time; the dequeue side keys every metric update off it, so an
  /// enable-flag flip mid-flight can never unbalance the queue-depth gauge.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace ohd::pipeline
