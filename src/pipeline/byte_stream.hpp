// Byte sinks and sources: the IO boundary of the streaming archive sessions
// (pipeline/archive_io.hpp). An ArchiveWriter appends to a ByteSink and never
// rewinds; an ArchiveReader random-accesses a ByteSource (footer-first open,
// lazy per-chunk frame fetches). Implementations here cover the three
// deployment shapes — resident memory, files, and a bounded staging ring for
// tests that must prove a producer streams instead of accumulating — plus a
// read-traffic tracker for laziness assertions.
//
// Failure model (see README "Failure model & recovery"):
//  * ArchiveError — permanent IO or contract violation; retrying is useless.
//  * TransientIoError — the operation failed but left no partial effect the
//    caller can observe (a failed read filled nothing usable, a failed write
//    appended nothing); retrying MAY succeed. RetryPolicy + with_retry bound
//    that retrying with exponential backoff and deterministic jitter.
//  * commit() — the durability point of a sink. FileSink fsyncs; an
//    AtomicFileSink publishes its temp file under the final name only here,
//    so a crash before commit leaves no (possibly torn) archive at the
//    destination path. ArchiveWriter::finish() calls commit().
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ohd::pipeline {

/// IO failure or truncated/overrun access on a sink or source. Derives from
/// std::invalid_argument so archive consumers can handle it uniformly with
/// the format errors (ContainerError): a short read from a truncated archive
/// IS invalid input.
class ArchiveError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// An IO failure that left no partial effect behind and may succeed when
/// retried (EINTR-shaped errors, injected faults, a flaky network source).
/// Anything that already consumed bytes irreversibly — a torn append — must
/// throw plain ArchiveError instead: retrying a half-applied write would
/// corrupt the stream.
class TransientIoError : public ArchiveError {
 public:
  using ArchiveError::ArchiveError;
};

/// Bounded retry budget with exponential backoff and deterministic jitter.
/// Default-constructed the policy is "no retries" (one attempt), so every
/// existing call site keeps its fail-fast behaviour until a policy is opted
/// in. Applied to ArchiveReader source reads and FileSink flushes; only
/// TransientIoError is retried.
struct RetryPolicy {
  std::size_t max_attempts = 1;  // total attempts; 1 = fail on first error
  std::chrono::microseconds base_delay{0};
  double backoff_multiplier = 2.0;
  /// Fraction of the delay randomized around its nominal value (0 = none).
  double jitter = 0.1;
  /// Seed of the jitter stream — deterministic per (seed, attempt), so a
  /// replayed schedule sleeps identically.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

  bool enabled() const { return max_attempts > 1; }

  /// Backoff before retry number `retry` (1-based): base * multiplier^(retry-1),
  /// jittered deterministically.
  std::chrono::microseconds delay_before(std::size_t retry) const {
    double us = static_cast<double>(base_delay.count());
    for (std::size_t i = 1; i < retry; ++i) us *= backoff_multiplier;
    if (jitter > 0.0 && us > 0.0) {
      util::Xoshiro256 rng(jitter_seed ^ (0xd1b54a32d192ed03ull * retry));
      us *= 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    }
    return std::chrono::microseconds(static_cast<std::int64_t>(us));
  }
};

/// Runs `fn`, retrying on TransientIoError within the policy's attempt
/// budget (sleeping the backoff between attempts); rethrows the last
/// transient error once the budget is spent. Permanent errors propagate
/// immediately. `on_retry`, if provided, fires before each re-attempt —
/// callers use it to count retries.
template <typename Fn, typename OnRetry>
auto with_retry(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry)
    -> decltype(fn()) {
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientIoError&) {
      if (attempt >= policy.max_attempts) throw;
      const auto delay = policy.delay_before(attempt);
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      on_retry();
    }
  }
}

template <typename Fn>
auto with_retry(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  return with_retry(policy, std::forward<Fn>(fn), [] {});
}

/// Append-only byte consumer. Writers never seek: the archive format defers
/// its index and footer to the end precisely so a sink can be a socket, a
/// pipe, or an O_APPEND file.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Appends `bytes`; throws ArchiveError on IO failure (TransientIoError
  /// when nothing was appended and a retry may succeed).
  virtual void write(std::span<const std::uint8_t> bytes) = 0;

  /// Total bytes written so far.
  virtual std::uint64_t position() const = 0;

  /// Pushes buffered bytes to the backing store (no-op by default).
  virtual void flush() {}

  /// Makes everything written so far durable and, for staged sinks
  /// (AtomicFileSink), publishes it. Defaults to flush(). Called by
  /// ArchiveWriter::finish(); a sink may be unusable afterwards.
  virtual void commit() { flush(); }
};

/// Random-access byte producer. `read_at` must be safe to call from multiple
/// threads concurrently — the batch scheduler fetches chunk frames from
/// worker threads so IO overlaps decode.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  virtual std::uint64_t size() const = 0;

  /// Fills `out` with the bytes at [offset, offset + out.size()); throws
  /// ArchiveError if the range extends past the end or the read fails
  /// (TransientIoError when a retry may succeed).
  virtual void read_at(std::uint64_t offset,
                       std::span<std::uint8_t> out) const = 0;
};

/// Sink over an owned, growing vector — the in-memory convenience path
/// (Container::serialize builds on it).
class MemorySink : public ByteSink {
 public:
  void write(std::span<const std::uint8_t> bytes) override {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  std::uint64_t position() const override { return buf_.size(); }

  /// Preallocates when the final archive size is known up front
  /// (Container::serialized_size()).
  void reserve(std::size_t n) { buf_.reserve(n); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Source over caller-owned bytes (kept alive by the caller).
class MemorySource : public ByteSource {
 public:
  explicit MemorySource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t size() const override { return bytes_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

 private:
  std::span<const std::uint8_t> bytes_;
};

/// Source that OWNS its bytes — for handing a finished in-memory archive to
/// a long-lived consumer (a service client's open ArchiveReader) without the
/// caller keeping the vector alive. Neither copyable nor movable: readers
/// borrow the source by reference, so its address must be stable; share it
/// behind a shared_ptr instead.
class OwningMemorySource : public ByteSource {
 public:
  explicit OwningMemorySource(std::vector<std::uint8_t> bytes)
      : buf_(std::move(bytes)), view_(buf_) {}
  OwningMemorySource(const OwningMemorySource&) = delete;
  OwningMemorySource& operator=(const OwningMemorySource&) = delete;

  std::uint64_t size() const override { return buf_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override {
    view_.read_at(offset, out);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  MemorySource view_;  // bounds-checked read_at over buf_
};

/// Sink over a freshly created (truncated) file. Errors carry errno detail;
/// close()/commit() check the fclose result instead of ignoring it (a
/// buffered write can fail as late as close on a full disk). flush() retries
/// transient failures under `flush_retry`; commit() additionally fsyncs.
class FileSink : public ByteSink {
 public:
  explicit FileSink(const std::string& path, RetryPolicy flush_retry = {});
  ~FileSink() override;

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return written_; }
  void flush() override;

  /// flush + fsync + checked close: everything written is durable on return.
  void commit() override;

  /// Checked fclose; throws ArchiveError (with errno detail) if the close
  /// itself fails, which is the last chance buffered-write errors surface.
  void close();

  bool closed() const { return file_ == nullptr; }
  std::uint64_t flush_retries() const { return flush_retries_.value(); }

 protected:
  /// Target of the durability fsync in commit() — the temp path for
  /// AtomicFileSink, the final path here.
  virtual const std::string& sync_path() const { return path_; }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
  RetryPolicy flush_retry_;
  /// Always-on per-sink instrument behind flush_retries(); the process
  /// registry additionally aggregates "sink.flush_retries" when enabled.
  obs::Counter flush_retries_;
};

/// Crash-consistent file sink: writes go to `<path>.tmp`; commit() flushes,
/// fsyncs, closes, and atomically renames onto `path` (then fsyncs the
/// parent directory so the rename itself is durable). Destruction without
/// commit removes the temp file — an abandoned or failed session never
/// leaves a torn archive at the destination.
class AtomicFileSink : public FileSink {
 public:
  explicit AtomicFileSink(const std::string& path,
                          RetryPolicy flush_retry = {});
  ~AtomicFileSink() override;

  /// flush + fsync + close + rename(temp, final) + directory fsync. The
  /// archive appears at the final path all-or-nothing.
  void commit() override;

  bool committed() const { return committed_; }
  const std::string& temp_path() const { return path_; }
  const std::string& final_path() const { return final_path_; }

 protected:
  const std::string& sync_path() const override { return path_; }

 private:
  std::string final_path_;
  bool committed_ = false;
};

/// Source over an existing file; read_at serializes seek+read behind a mutex
/// so concurrent chunk fetches are safe. Errors carry errno detail.
class FileSource : public ByteSource {
 public:
  explicit FileSource(const std::string& path);
  ~FileSource() override;

  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t size_ = 0;
};

/// Append-only sink over an open file descriptor — the socket-backed ByteSink
/// the archive format was designed to allow ("a sink can be a socket, a pipe,
/// or an O_APPEND file"). write() loops until every byte is accepted, retries
/// EINTR internally, and suppresses SIGPIPE on sockets (MSG_NOSIGNAL), so a
/// dead peer surfaces as ArchiveError instead of killing the process. The fd
/// is borrowed by default; owns=true closes it on destruction.
class FdSink : public ByteSink {
 public:
  explicit FdSink(int fd, bool owns = false);
  ~FdSink() override;
  FdSink(const FdSink&) = delete;
  FdSink& operator=(const FdSink&) = delete;

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return written_; }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  bool owns_ = false;
  bool socket_ = false;  // detected once: sockets need send(MSG_NOSIGNAL)
  std::uint64_t written_ = 0;
};

/// Random-access source over a pread-capable descriptor (a regular file, NOT
/// a socket). pread carries its own offset, so concurrent read_at calls need
/// no seek+read mutex — unlike FileSource, reads scale with cores. The fd is
/// borrowed by default; owns=true closes it on destruction.
class FdSource : public ByteSource {
 public:
  explicit FdSource(int fd, bool owns = false);
  ~FdSource() override;
  FdSource(const FdSource&) = delete;
  FdSource& operator=(const FdSource&) = delete;

  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

 private:
  int fd_ = -1;
  bool owns_ = false;
  std::uint64_t size_ = 0;
};

/// Test sink: a fixed-capacity FIFO ring. write() throws ArchiveError the
/// moment the UNDRAINED bytes would exceed the capacity, so a test that
/// drains between writes proves its producer streams with bounded staging
/// memory instead of accumulating the whole archive; peak_buffered() is the
/// high-water mark actually reached.
class BoundedRingSink : public ByteSink {
 public:
  explicit BoundedRingSink(std::size_t capacity);

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return written_; }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t buffered() const { return buffered_; }
  std::size_t peak_buffered() const { return peak_; }

  /// Removes and returns the buffered bytes in write order.
  std::vector<std::uint8_t> drain();

 private:
  std::vector<std::uint8_t> ring_;  // fixed storage, wrap-around addressing
  std::size_t head_ = 0;            // index of the oldest buffered byte
  std::size_t buffered_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t written_ = 0;
};

/// Test wrapper: counts the read traffic a consumer generates against an
/// inner source, so laziness is assertable ("opening the archive read only
/// the footer and index; decoding one chunk added exactly its frame").
class TrackingSource : public ByteSource {
 public:
  explicit TrackingSource(const ByteSource& inner) : inner_(inner) {}

  std::uint64_t size() const override { return inner_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t max_read_bytes() const { return max_read_; }

 private:
  const ByteSource& inner_;
  mutable std::mutex mutex_;
  mutable std::uint64_t reads_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
  mutable std::uint64_t max_read_ = 0;
};

}  // namespace ohd::pipeline
