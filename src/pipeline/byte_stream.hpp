// Byte sinks and sources: the IO boundary of the streaming archive sessions
// (pipeline/archive_io.hpp). An ArchiveWriter appends to a ByteSink and never
// rewinds; an ArchiveReader random-accesses a ByteSource (footer-first open,
// lazy per-chunk frame fetches). Implementations here cover the three
// deployment shapes — resident memory, files, and a bounded staging ring for
// tests that must prove a producer streams instead of accumulating — plus a
// read-traffic tracker for laziness assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ohd::pipeline {

/// IO failure or truncated/overrun access on a sink or source. Derives from
/// std::invalid_argument so archive consumers can handle it uniformly with
/// the format errors (ContainerError): a short read from a truncated archive
/// IS invalid input.
class ArchiveError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Append-only byte consumer. Writers never seek: the archive format defers
/// its index and footer to the end precisely so a sink can be a socket, a
/// pipe, or an O_APPEND file.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Appends `bytes`; throws ArchiveError on IO failure.
  virtual void write(std::span<const std::uint8_t> bytes) = 0;

  /// Total bytes written so far.
  virtual std::uint64_t position() const = 0;

  /// Pushes buffered bytes to the backing store (no-op by default).
  virtual void flush() {}
};

/// Random-access byte producer. `read_at` must be safe to call from multiple
/// threads concurrently — the batch scheduler fetches chunk frames from
/// worker threads so IO overlaps decode.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  virtual std::uint64_t size() const = 0;

  /// Fills `out` with the bytes at [offset, offset + out.size()); throws
  /// ArchiveError if the range extends past the end or the read fails.
  virtual void read_at(std::uint64_t offset,
                       std::span<std::uint8_t> out) const = 0;
};

/// Sink over an owned, growing vector — the in-memory convenience path
/// (Container::serialize builds on it).
class MemorySink : public ByteSink {
 public:
  void write(std::span<const std::uint8_t> bytes) override {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  std::uint64_t position() const override { return buf_.size(); }

  /// Preallocates when the final archive size is known up front
  /// (Container::serialized_size()).
  void reserve(std::size_t n) { buf_.reserve(n); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Source over caller-owned bytes (kept alive by the caller).
class MemorySource : public ByteSource {
 public:
  explicit MemorySource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t size() const override { return bytes_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

 private:
  std::span<const std::uint8_t> bytes_;
};

/// Sink over a freshly created (truncated) file.
class FileSink : public ByteSink {
 public:
  explicit FileSink(const std::string& path);

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return written_; }
  void flush() override;

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t written_ = 0;
};

/// Source over an existing file; read_at serializes seek+read behind a mutex
/// so concurrent chunk fetches are safe.
class FileSource : public ByteSource {
 public:
  explicit FileSource(const std::string& path);

  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

 private:
  std::string path_;
  mutable std::mutex mutex_;
  mutable std::ifstream in_;
  std::uint64_t size_ = 0;
};

/// Test sink: a fixed-capacity FIFO ring. write() throws ArchiveError the
/// moment the UNDRAINED bytes would exceed the capacity, so a test that
/// drains between writes proves its producer streams with bounded staging
/// memory instead of accumulating the whole archive; peak_buffered() is the
/// high-water mark actually reached.
class BoundedRingSink : public ByteSink {
 public:
  explicit BoundedRingSink(std::size_t capacity);

  void write(std::span<const std::uint8_t> bytes) override;
  std::uint64_t position() const override { return written_; }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t buffered() const { return buffered_; }
  std::size_t peak_buffered() const { return peak_; }

  /// Removes and returns the buffered bytes in write order.
  std::vector<std::uint8_t> drain();

 private:
  std::vector<std::uint8_t> ring_;  // fixed storage, wrap-around addressing
  std::size_t head_ = 0;            // index of the oldest buffered byte
  std::size_t buffered_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t written_ = 0;
};

/// Test wrapper: counts the read traffic a consumer generates against an
/// inner source, so laziness is assertable ("opening the archive read only
/// the footer and index; decoding one chunk added exactly its frame").
class TrackingSource : public ByteSource {
 public:
  explicit TrackingSource(const ByteSource& inner) : inner_(inner) {}

  std::uint64_t size() const override { return inner_.size(); }
  void read_at(std::uint64_t offset,
               std::span<std::uint8_t> out) const override;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t max_read_bytes() const { return max_read_; }

 private:
  const ByteSource& inner_;
  mutable std::mutex mutex_;
  mutable std::uint64_t reads_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
  mutable std::uint64_t max_read_ = 0;
};

}  // namespace ohd::pipeline
