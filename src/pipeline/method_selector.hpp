// Adaptive per-chunk compression planning: probe a chunk's local
// compressibility (quant-code entropy, outlier density, run structure), then
// pick the cheapest decoder method for it from an analytic cost model built
// on the same core::CostModel cycle charges the simulated decoders pay, plus
// the DeviceSpec transfer model for the bytes each encoding ships.
//
// The model deliberately mirrors the two-term shape of cudasim::PerfModel:
// a machine-wide throughput term (total warp cycles over the issue rate) and
// a serial critical-path term (one thread's dependent chain), whichever is
// larger, plus launch overhead and a PCIe transfer term for the encoded
// payload + sidecar. That reproduces the paper's cost cliffs — the naive
// cuSZ decoder is critical-path-bound (one thread per coarse chunk), the
// self-sync decoder pays speculative overdecode + vote cycles, the gap-array
// decoder pays its sidecar bytes instead — without running a simulation per
// candidate.
//
// plan_field() extends the per-chunk choice with field-level SHARED
// codebooks: one canonical Huffman book over the field's pooled quant
// histogram, which each chunk references instead of carrying a private book
// whenever that is byte-cheaper (a ratio-driven choice; chunks whose local
// histogram diverges keep a private book).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/huffman_codec.hpp"
#include "cudasim/device_spec.hpp"
#include "huffman/codebook.hpp"
#include "sz/compressor.hpp"
#include "sz/lorenzo.hpp"

namespace ohd::pipeline {

/// Local compressibility statistics of one quantized chunk, the selector's
/// input. All fields are deterministic functions of the chunk.
struct ChunkProbe {
  std::uint64_t num_symbols = 0;
  std::uint32_t alphabet_size = 0;
  double entropy_bits = 0.0;     // Shannon entropy of the quant codes
  double avg_code_bits = 0.0;    // expected bits/symbol under the chunk's
                                 // own canonical Huffman code
  double outlier_fraction = 0.0; // exact-value records per element
  double mean_run_length = 1.0;  // consecutive equal quant codes
  std::vector<std::uint64_t> histogram;    // quant-code frequencies
  std::vector<std::uint8_t> code_lengths;  // private canonical lengths
};

ChunkProbe probe_chunk(const sz::QuantizedField& q);

/// Predicted cost of decoding one chunk with one method.
struct MethodEstimate {
  core::Method method = core::Method::GapArrayOptimized;
  double decode_seconds = 0.0;     // simulated kernel time (two-term model)
  std::uint64_t stored_bytes = 0;  // encoded payload + sidecar (no codebook)
  double transfer_seconds = 0.0;   // stored_bytes over the PCIe model

  double total_seconds() const { return decode_seconds + transfer_seconds; }
};

/// What "cheapest" means for a chunk:
///  * DecodePlusTransfer — decode time plus shipping the encoded bytes over
///    PCIe (the paper's Figure 5 scenario; the default, since an archive's
///    chunks are stored and moved). This is where the families genuinely
///    trade places: the self-sync stream carries no sidecar, the gap array
///    pays one byte per subsequence for exact start offsets, the naive
///    layout pads per coarse chunk instead of per sequence.
///  * DecodeOnly — device-resident data (Figure 4); the optimized gap-array
///    decoder dominates here, as in the paper's Table V.
enum class SelectionObjective {
  DecodePlusTransfer,
  DecodeOnly,
};

/// Regression-fitted correction of one method's analytic decode estimate
/// against MEASURED simulated chunk costs:
///   decode_seconds = scale * analytic + offset_s.
/// Produced by scripts/calibrate_selector.py from `bench_micro_kernels
/// --calibrate` output; the committed fit is default_calibration().
struct MethodCalibration {
  core::Method method = core::Method::GapArrayOptimized;
  double scale = 1.0;
  double offset_s = 0.0;
};

/// The committed calibration (src/pipeline/selector_calibration.hpp),
/// regression-fitted over the calibration corpus with the current CostModel
/// defaults. Apply with MethodSelector::calibrate(); selectors start
/// uncalibrated (identity) so rankings stay a pure function of the probe
/// unless the caller opts in.
std::span<const MethodCalibration> default_calibration();

/// Ranks the float-capable decoder families for a chunk. Candidates are the
/// best member of each family evaluated in the paper (naive cuSZ, optimized
/// self-sync, optimized gap-array); the Original variants exist for A/B
/// benchmarks, not for archive planning.
class MethodSelector {
 public:
  explicit MethodSelector(
      core::DecoderConfig decoder = {},
      cudasim::DeviceSpec spec = cudasim::DeviceSpec::v100(),
      SelectionObjective objective = SelectionObjective::DecodePlusTransfer)
      : decoder_(decoder), spec_(std::move(spec)), objective_(objective) {}

  std::span<const core::Method> candidates() const;

  MethodEstimate estimate(core::Method method, const ChunkProbe& probe) const;

  /// All candidate estimates, cheapest total_seconds() first; ties broken by
  /// candidate order, so the ranking is fully deterministic.
  std::vector<MethodEstimate> rank(const ChunkProbe& probe) const;

  /// The cheapest method for this chunk.
  core::Method select(const ChunkProbe& probe) const;

  /// Installs fitted per-method corrections (scale must be positive and
  /// finite; throws std::invalid_argument otherwise). Estimates for methods
  /// without an entry keep the identity correction.
  void calibrate(std::span<const MethodCalibration> calibration);

  const core::DecoderConfig& decoder() const { return decoder_; }
  const cudasim::DeviceSpec& device() const { return spec_; }
  SelectionObjective objective() const { return objective_; }

 private:
  static constexpr std::size_t kMethodSlots = 5;  // |core::Method|

  core::DecoderConfig decoder_;
  cudasim::DeviceSpec spec_;
  SelectionObjective objective_ = SelectionObjective::DecodePlusTransfer;
  std::array<double, kMethodSlots> scale_{1.0, 1.0, 1.0, 1.0, 1.0};
  std::array<double, kMethodSlots> offset_s_{0.0, 0.0, 0.0, 0.0, 0.0};
};

/// Field-level planning knobs (FieldSpec::plan / Container::add_field).
struct PlanOptions {
  bool auto_method = false;     // per-chunk method selection
  bool shared_codebook = false; // field-level codebook, ratio-driven refs
  /// Prices auto_method rankings through the committed regression fit
  /// (default_calibration()) instead of the raw analytic estimates. OFF by
  /// default: method choice stays a pure function of the probe and the
  /// analytic model (the pricing tests pin those rankings), and the fitted
  /// corrections opt in per field once enough trajectory runs confirm their
  /// stability on the target machine.
  bool use_calibration = false;
};

/// The planner's decision for one chunk.
struct ChunkPlan {
  core::Method method = core::Method::GapArrayOptimized;
  bool use_shared_codebook = false;
  // Estimated stored bytes of the chunk's Huffman stream under each codebook
  // choice (payload + codebook framing), the inputs of the ratio decision.
  std::uint64_t est_private_bytes = 0;
  std::uint64_t est_shared_bytes = 0;
  /// The probe's canonical code lengths (moved out of the probe by
  /// plan_field), so encoding a private-book chunk can rebuild its codebook
  /// without repeating the histogram + Huffman pass.
  std::vector<std::uint8_t> private_code_lengths;
};

struct FieldPlan {
  std::vector<ChunkPlan> chunks;
  bool has_shared_codebook = false;
  huffman::Codebook shared_codebook;  // valid iff has_shared_codebook
};

/// Plans one field from its quantized chunks: per-chunk method (selector or
/// the fixed `default_method`), plus the shared-codebook decision when
/// enabled — the shared book is built over the POOLED histogram of all
/// chunks, and each chunk references it only when that is strictly
/// byte-cheaper than carrying its private book. A field whose every chunk
/// prefers its private book gets no shared-codebook record at all.
FieldPlan plan_field(std::span<const sz::QuantizedField> chunks,
                     core::Method default_method, const PlanOptions& options,
                     const MethodSelector& selector);

/// Same planning from probes the caller computed elsewhere (the parallel
/// build path runs probe_chunk inside each quantize task, so only the cheap
/// pooled-histogram work stays on the collecting thread). Probes are
/// consumed: each chunk's code lengths move into its ChunkPlan.
FieldPlan plan_from_probes(std::vector<ChunkProbe> probes,
                           core::Method default_method,
                           const PlanOptions& options,
                           const MethodSelector& selector);

/// Encodes one planned chunk into its serialized frame — the single encode
/// sequence shared by the sequential (Container::add_field) and parallel
/// (BatchScheduler::compress) build paths. Shared-book chunks encode against
/// `shared` (required non-null) and omit their codebook bytes; private-book
/// chunks rebuild their codebook from the plan's cached lengths when
/// available.
std::vector<std::uint8_t> encode_planned_chunk(sz::QuantizedField&& q,
                                               const ChunkPlan& plan,
                                               const sz::CompressorConfig& config,
                                               const huffman::Codebook* shared);

}  // namespace ohd::pipeline
