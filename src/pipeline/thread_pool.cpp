#include "pipeline/thread_pool.hpp"

namespace ohd::pipeline {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace ohd::pipeline
