#include "pipeline/thread_pool.hpp"

#include "obs/metrics.hpp"

namespace ohd::pipeline {

namespace {

// Instrument handles resolved once: registration is mutex-serialized but the
// references stay valid for the process lifetime (obs::registry() is never
// torn down), so the hot path records through raw atomics.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::LatencyHistogram& task_wait_ns;
  obs::LatencyHistogram& task_run_ns;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{obs::registry().gauge("pool.queue_depth"),
                       obs::registry().histogram("pool.task_wait_ns"),
                       obs::registry().histogram("pool.task_run_ns")};
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  Task task{std::move(fn), 0};
  if (obs::enabled()) {
    task.enqueue_ns = obs::now_ns();
    pool_metrics().queue_depth.add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (task.enqueue_ns != 0) pool_metrics().queue_depth.sub(1);
      throw std::runtime_error("submit() on a stopping ThreadPool");
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueue_ns != 0) {
      PoolMetrics& m = pool_metrics();
      m.queue_depth.sub(1);
      const std::uint64_t start_ns = obs::now_ns();
      m.task_wait_ns.record(start_ns - task.enqueue_ns);
      task.fn();  // packaged_task captures exceptions into the future
      m.task_run_ns.record(obs::now_ns() - start_ns);
    } else {
      task.fn();
    }
  }
}

}  // namespace ohd::pipeline
