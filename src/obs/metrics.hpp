// Telemetry metrics: the one registry every layer of the archive stack
// reports into (pipeline/thread_pool, pipeline/batch, pipeline/archive_io,
// pipeline/byte_stream, pipeline/fault_injection), replacing the ad-hoc
// per-component atomics that preceded it.
//
// Three lock-free instrument kinds, registered by stable dotted names
// ("reader.frame_fetch_ns", "pool.queue_depth", ...; the full catalogue is in
// README "Observability"):
//  * Counter          — monotone u64 total.
//  * Gauge            — current value plus a CAS-maxed peak (the
//                       ArchiveReader frame-residency gauge generalized).
//  * LatencyHistogram — fixed power-of-two ns buckets with p50/p95/p99/max
//                       snapshots; recording is two relaxed fetch_adds plus
//                       one CAS-max, so worker threads never contend on a
//                       lock.
// Instruments themselves are UNCONDITIONAL (plain atomics — components that
// need always-on per-object accessors, like ArchiveReader::peak_frame_bytes,
// embed them directly). The process-wide enable flag gates the EXPENSIVE
// parts at the call sites: clock reads, registry mirroring, and trace spans
// all hide behind enabled(), so a disabled build path costs one relaxed load
// and a predictable branch per operation.
//
// MetricsRegistry::snapshot() freezes every instrument into a Snapshot whose
// to_json() is the uniform telemetry block the bench drivers (and the future
// service layer) emit. Registration takes a mutex; instrument handles are
// stable for the registry's lifetime, so hot paths resolve names once and
// record through raw pointers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/phase_timings.hpp"

namespace ohd::obs {

/// Process-wide telemetry gate. Defaults to off (or on when the process
/// started with OHD_TELEMETRY=1); instruments embedded in components keep
/// counting regardless, but clock reads, registry mirrors, and spans are
/// skipped while disabled.
bool enabled();
void set_enabled(bool on);

/// Monotonic nanoseconds (steady clock) — the time base of every histogram
/// sample and trace span.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotone total. Lock-free; safe to hammer from any number of threads.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Current value plus high-water mark. add() with a positive delta CAS-maxes
/// the peak, so the peak observes every instantaneous maximum even under
/// concurrent add/sub — the exact discipline ArchiveReader's
/// peak_frame_bytes_ used before it moved here.
class Gauge {
 public:
  void add(std::int64_t n) {
    const std::int64_t now = value_.fetch_add(n, std::memory_order_relaxed) + n;
    if (n > 0) {
      std::int64_t peak = peak_.load(std::memory_order_relaxed);
      while (now > peak &&
             !peak_.compare_exchange_weak(peak, now,
                                          std::memory_order_relaxed)) {
      }
    }
  }
  void sub(std::int64_t n) { add(-n); }
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (v > peak &&
           !peak_.compare_exchange_weak(peak, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket latency histogram over nanoseconds. Bucket i holds samples
/// whose bit width is i — i.e. bucket 0 is {0}, bucket i (i >= 1) is
/// [2^(i-1), 2^i) — so quantile() is exact to within one power of two:
/// true_quantile <= quantile(q) < 2 * true_quantile for nonzero samples.
/// That resolution is plenty for latency SLOs and costs no per-sample
/// allocation or lock.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Inclusive upper bound of the bucket holding the q-quantile sample
  /// (q in [0, 1]; 0 with no samples). Monotone in q.
  std::uint64_t quantile(double q) const;

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

struct CounterSnap {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnap {
  std::string name;
  std::int64_t value = 0;
  std::int64_t peak = 0;
};

struct HistogramSnap {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Frozen registry state, sorted by name per kind — the exportable report.
/// to_json() emits the schema documented in README "Observability":
///   { "counters": {name: u64, ...},
///     "gauges": {name: {"value": i64, "peak": i64}, ...},
///     "histograms": {name: {"count","sum_ns","max_ns",
///                           "p50_ns","p95_ns","p99_ns"}, ...} }
struct Snapshot {
  std::vector<CounterSnap> counters;
  std::vector<GaugeSnap> gauges;
  std::vector<HistogramSnap> histograms;

  /// Lookup helpers (nullptr when the name was never registered).
  const CounterSnap* counter(std::string_view name) const;
  const GaugeSnap* gauge(std::string_view name) const;
  const HistogramSnap* histogram(std::string_view name) const;

  /// Deterministic (sorted) JSON; every line is prefixed with `indent`
  /// spaces so the block can be embedded inside a larger document.
  std::string to_json(int indent = 0) const;
};

/// Thread-safe name -> instrument store. Get-or-create registration is
/// mutex-serialized; the returned references stay valid (and lock-free to
/// record into) for the registry's lifetime, including across reset().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  Snapshot snapshot() const;

  /// Zeroes every instrument; handles stay registered and valid. Tests use
  /// this (via ScopedTelemetry) to isolate runs on the process registry.
  void reset();

 private:
  struct Impl;
  Impl* impl();  // lazily built so a never-touched registry costs nothing
  mutable std::atomic<Impl*> impl_{nullptr};
};

/// The process-wide registry every instrumented component reports into.
MetricsRegistry& registry();

/// Bridges core::PhaseTimings into `reg`: each phase row becomes
/// "decode.phase.<name>_ns" (counter, nanoseconds), so the decoder families'
/// aggregated simulated timings appear in snapshots without rewriting them.
void absorb_phase_timings(MetricsRegistry& reg, const core::PhaseTimings& t);

}  // namespace ohd::obs
