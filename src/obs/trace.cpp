#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace ohd::obs {

namespace {

/// Per-thread stack of open span ids — how nesting (parent linkage) is
/// derived. Thread-local rather than per-recorder: spans strictly nest via
/// ScopedOp RAII, so the stack is balanced even if the installed recorder
/// changes between operations.
thread_local std::vector<std::int64_t> t_open_spans;

std::atomic<TraceRecorder*> g_tracer{nullptr};

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

struct TraceRecorder::Impl {
  mutable std::mutex mutex;
  std::vector<Span> spans;
  std::unordered_map<std::thread::id, int> thread_index;
  std::atomic<std::int64_t> next_id{0};
};

TraceRecorder::~TraceRecorder() {
  delete impl_.load(std::memory_order_acquire);
}

TraceRecorder::Impl* TraceRecorder::impl() const {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(p, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the race
  return p;
}

TraceRecorder::ActiveSpan TraceRecorder::begin_at(std::string_view name,
                                                  std::uint64_t start_ns) {
  Impl* p = impl();
  ActiveSpan s;
  s.id = p->next_id.fetch_add(1, std::memory_order_relaxed);
  s.parent_id = t_open_spans.empty() ? -1 : t_open_spans.back();
  s.start_ns = start_ns;
  s.name.assign(name);
  t_open_spans.push_back(s.id);
  return s;
}

void TraceRecorder::end_at(ActiveSpan&& span, std::uint64_t end_ns) {
  if (!t_open_spans.empty() && t_open_spans.back() == span.id) {
    t_open_spans.pop_back();
  }
  Impl* p = impl();
  Span done;
  done.name = std::move(span.name);
  done.id = span.id;
  done.parent_id = span.parent_id;
  done.start_ns = span.start_ns;
  done.duration_ns = end_ns >= span.start_ns ? end_ns - span.start_ns : 0;
  std::lock_guard<std::mutex> lock(p->mutex);
  const auto [it, inserted] = p->thread_index.emplace(
      std::this_thread::get_id(), static_cast<int>(p->thread_index.size()));
  done.thread_index = it->second;
  p->spans.push_back(std::move(done));
}

std::vector<Span> TraceRecorder::spans() const {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p == nullptr) return {};
  std::lock_guard<std::mutex> lock(p->mutex);
  return p->spans;
}

void TraceRecorder::clear() {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(p->mutex);
  p->spans.clear();
  p->thread_index.clear();
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<Span> all = spans();
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    // Equal starts: parent before child so viewers nest them correctly.
    if (a.duration_ns != b.duration_ns) return a.duration_ns > b.duration_ns;
    return a.id < b.id;
  });
  std::uint64_t t0 = all.empty() ? 0 : all.front().start_ns;
  std::string out = "{\"traceEvents\": [";
  char buf[160];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Span& s = all[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    append_escaped(out, s.name);
    // trace_event ts/dur are microseconds; keep ns precision in the
    // fraction so short spans do not collapse to zero width.
    std::snprintf(buf, sizeof buf,
                  "\", \"ph\": \"X\", \"ts\": %" PRIu64 ".%03u, \"dur\": %"
                  PRIu64 ".%03u, \"pid\": 1, \"tid\": %d, ",
                  (s.start_ns - t0) / 1000,
                  static_cast<unsigned>((s.start_ns - t0) % 1000),
                  s.duration_ns / 1000,
                  static_cast<unsigned>(s.duration_ns % 1000),
                  s.thread_index);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\"args\": {\"id\": %lld, \"parent\": %lld}}",
                  static_cast<long long>(s.id),
                  static_cast<long long>(s.parent_id));
    out += buf;
  }
  out += all.empty() ? "]}" : "\n]}";
  return out;
}

std::string TraceRecorder::sorted_text() const {
  const std::vector<Span> all = spans();
  std::unordered_map<std::int64_t, const Span*> by_id;
  by_id.reserve(all.size());
  for (const Span& s : all) by_id.emplace(s.id, &s);
  std::map<std::string, std::size_t> path_counts;
  for (const Span& s : all) {
    // Build "root/parent/.../name" by walking the parent chain.
    std::vector<std::string_view> chain;
    const Span* cur = &s;
    while (cur != nullptr) {
      chain.push_back(cur->name);
      const auto it = cur->parent_id >= 0 ? by_id.find(cur->parent_id)
                                          : by_id.end();
      cur = it == by_id.end() ? nullptr : it->second;
    }
    std::string path;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) path += '/';
      path += *it;
    }
    ++path_counts[path];
  }
  std::string out;
  for (const auto& [path, count] : path_counts) {
    out += path;
    out += " x";
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

TraceRecorder* tracer() { return g_tracer.load(std::memory_order_acquire); }

void set_tracer(TraceRecorder* recorder) {
  g_tracer.store(recorder, std::memory_order_release);
}

}  // namespace ohd::obs
