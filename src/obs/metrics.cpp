#include "obs/metrics.hpp"

#include <bit>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace ohd::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  // Initialized once, thread-safely, from the environment so headless runs
  // (benches under CI, the fault matrix) can switch telemetry on without a
  // code path: OHD_TELEMETRY=1.
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("OHD_TELEMETRY");
    return env != nullptr && env[0] == '1';
  }()};
  return flag;
}

/// JSON string escaping for metric names (names are code literals, but a
/// registry is open to any caller — never emit malformed JSON).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void LatencyHistogram::record(std::uint64_t ns) {
  const std::size_t bucket = std::bit_width(ns);  // 0 for ns == 0
  buckets_[bucket >= kBuckets ? kBuckets - 1 : bucket].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t max = max_.load(std::memory_order_relaxed);
  while (ns > max &&
         !max_.compare_exchange_weak(max, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based (nearest-rank definition).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Inclusive upper bound of bucket i: 0, then 2^i - 1.
      if (i == 0) return 0;
      if (i >= 64) return ~std::uint64_t{0};
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return max();  // concurrent recording raced count past the buckets
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  std::mutex mutex;
  // Node-based maps: instrument addresses are stable across later inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms;
};

MetricsRegistry::~MetricsRegistry() {
  delete impl_.load(std::memory_order_acquire);
}

MetricsRegistry::Impl* MetricsRegistry::impl() {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(p, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the race; p now holds the winner
  return p;
}

template <typename Map>
static auto& get_or_create(std::mutex& mutex, Map& map,
                           std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl* p = impl();
  return get_or_create(p->mutex, p->counters, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl* p = impl();
  return get_or_create(p->mutex, p->gauges, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  Impl* p = impl();
  return get_or_create(p->mutex, p->histograms, name);
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p == nullptr) return snap;
  std::lock_guard<std::mutex> lock(p->mutex);
  snap.counters.reserve(p->counters.size());
  for (const auto& [name, c] : p->counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(p->gauges.size());
  for (const auto& [name, g] : p->gauges) {
    snap.gauges.push_back({name, g->value(), g->peak()});
  }
  snap.histograms.reserve(p->histograms.size());
  for (const auto& [name, h] : p->histograms) {
    HistogramSnap hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum_ns = h->sum();
    hs.max_ns = h->max();
    hs.p50_ns = h->quantile(0.50);
    hs.p95_ns = h->quantile(0.95);
    hs.p99_ns = h->quantile(0.99);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(p->mutex);
  for (auto& [name, c] : p->counters) c->reset();
  for (auto& [name, g] : p->gauges) g->reset();
  for (auto& [name, h] : p->histograms) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed:
  // instrument handles are cached in function-local statics across the
  // pipeline, and tearing the registry down during static destruction would
  // turn those into dangling pointers for any late-running thread.
  return *reg;
}

const CounterSnap* Snapshot::counter(std::string_view name) const {
  for (const CounterSnap& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnap* Snapshot::gauge(std::string_view name) const {
  for (const GaugeSnap& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnap* Snapshot::histogram(std::string_view name) const {
  for (const HistogramSnap& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  std::string out;
  auto num = [](std::uint64_t v) { return std::to_string(v); };
  out += "{\n";
  out += pad + "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    ";
    append_json_string(out, counters[i].name);
    out += ": " + num(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    ";
    append_json_string(out, gauges[i].name);
    out += ": {\"value\": " + std::to_string(gauges[i].value) +
           ", \"peak\": " + std::to_string(gauges[i].peak) + "}";
  }
  out += gauges.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnap& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += pad + "    ";
    append_json_string(out, h.name);
    out += ": {\"count\": " + num(h.count) + ", \"sum_ns\": " + num(h.sum_ns) +
           ", \"max_ns\": " + num(h.max_ns) + ", \"p50_ns\": " + num(h.p50_ns) +
           ", \"p95_ns\": " + num(h.p95_ns) + ", \"p99_ns\": " + num(h.p99_ns) +
           "}";
  }
  out += histograms.empty() ? "}\n" : "\n" + pad + "  }\n";
  out += pad + "}";
  return out;
}

void absorb_phase_timings(MetricsRegistry& reg, const core::PhaseTimings& t) {
  t.for_each_phase([&reg](const char* name, double seconds) {
    if (seconds <= 0.0) return;
    reg.counter(std::string("decode.phase.") + name + "_ns")
        .add(static_cast<std::uint64_t>(seconds * 1e9));
  });
}

}  // namespace ohd::obs
