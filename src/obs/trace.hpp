// Pipeline tracing: per-operation spans (name, thread, start/duration ns,
// parent op) recorded by an installable TraceRecorder and exported either as
// Chrome trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev)
// or as a deterministic sorted text form for tests.
//
// Recording follows the same gating discipline as obs/metrics.hpp: nothing is
// recorded unless obs::enabled() AND a recorder is installed via
// set_tracer(), so the disabled path is one relaxed load and a branch.
// Span nesting is tracked per thread (a thread-local stack), which matches
// how the pipeline actually nests work: BatchScheduler phases nest on the
// calling thread, while each ThreadPool task is a fresh root span on its
// worker thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ohd::obs {

/// One completed operation.
struct Span {
  std::string name;
  std::int64_t id = -1;
  std::int64_t parent_id = -1;  ///< -1 for a thread-root span
  int thread_index = 0;         ///< dense per-recorder index, not an OS tid
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Collects spans from any number of threads. begin/end are cheap (begin is
/// an atomic id draw plus a thread-local push; end takes the mutex once to
/// append); exporters snapshot under the same mutex.
class TraceRecorder {
 public:
  /// In-flight span handle, held by ScopedOp between begin and end.
  struct ActiveSpan {
    std::int64_t id = -1;
    std::int64_t parent_id = -1;
    std::uint64_t start_ns = 0;
    std::string name;
  };

  /// Opens a span starting at `start_ns` (caller supplies the clock read so
  /// one now_ns() feeds both the span and any latency histogram).
  ActiveSpan begin_at(std::string_view name, std::uint64_t start_ns);

  /// Closes `span` at `end_ns` and appends it to the trace.
  void end_at(ActiveSpan&& span, std::uint64_t end_ns);

  /// Snapshot of all completed spans, in completion order.
  std::vector<Span> spans() const;

  void clear();

  /// Chrome trace_event JSON: one complete ("ph":"X") event per span, ts/dur
  /// in microseconds relative to the earliest span start, sorted by ts so
  /// timestamps are monotone. Loadable in chrome://tracing and Perfetto.
  std::string chrome_trace_json() const;

  /// Deterministic text form for tests: spans aggregated by their full
  /// parent path (names joined with '/'), one "path xCOUNT" line per path,
  /// sorted lexicographically. No timestamps or thread ids, so the output is
  /// identical across runs and worker counts for a deterministic pipeline.
  std::string sorted_text() const;

 private:
  struct Impl;
  Impl* impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};

 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();
};

/// Process-wide recorder slot (nullptr when tracing is off). The recorder is
/// borrowed, not owned: the caller keeps it alive while installed.
TraceRecorder* tracer();
void set_tracer(TraceRecorder* recorder);

/// RAII measurement of one operation: a single clock-read pair feeds an
/// optional LatencyHistogram and, when a recorder is installed, a trace
/// span. Costs nothing beyond the enabled() check while telemetry is off.
class ScopedOp {
 public:
  explicit ScopedOp(std::string_view name,
                    LatencyHistogram* histogram = nullptr) {
    if (!enabled()) return;
    armed_ = true;
    histogram_ = histogram;
    start_ns_ = now_ns();
    recorder_ = tracer();
    if (recorder_ != nullptr) {
      span_ = recorder_->begin_at(name, start_ns_);
    }
  }

  ~ScopedOp() {
    if (!armed_) return;
    const std::uint64_t end_ns = now_ns();
    if (histogram_ != nullptr) histogram_->record(end_ns - start_ns_);
    if (recorder_ != nullptr) recorder_->end_at(std::move(span_), end_ns);
  }

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  bool armed_ = false;
  LatencyHistogram* histogram_ = nullptr;
  TraceRecorder* recorder_ = nullptr;
  TraceRecorder::ActiveSpan span_;
  std::uint64_t start_ns_ = 0;
};

/// Test/bench harness: enables telemetry, resets the process registry, and
/// (optionally) installs a recorder for the scope's lifetime, restoring the
/// previous enable flag and tracer — and re-resetting the registry — on
/// exit, so runs are isolated from each other.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(TraceRecorder* recorder = nullptr)
      : prev_enabled_(enabled()), prev_tracer_(tracer()) {
    registry().reset();
    set_tracer(recorder);
    set_enabled(true);
  }

  ~ScopedTelemetry() {
    set_enabled(prev_enabled_);
    set_tracer(prev_tracer_);
    registry().reset();
  }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool prev_enabled_;
  TraceRecorder* prev_tracer_;
};

}  // namespace ohd::obs
