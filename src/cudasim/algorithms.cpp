#include "cudasim/algorithms.hpp"

#include <algorithm>
#include <numeric>

namespace ohd::cudasim {

namespace {

// Charges a simple streaming kernel over n elements of `element_bytes` each,
// reading `reads` times and writing `writes` times, with `cycles_per_elem`
// compute. Used to model the cost of library primitives whose internals we
// do not simulate lane-by-lane.
void charge_streaming_kernel(SimContext& ctx, const std::string& name,
                             std::uint64_t n, std::uint32_t element_bytes,
                             std::uint32_t reads, std::uint32_t writes,
                             std::uint32_t cycles_per_elem) {
  constexpr std::uint32_t kBlockDim = 256;
  const std::uint32_t grid = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (n + kBlockDim - 1) / kBlockDim));
  // Dummy contiguous address ranges: perfectly coalesced streaming access.
  const std::uint64_t in_base = ctx.reserve_address(n * element_bytes);
  const std::uint64_t out_base = ctx.reserve_address(n * element_bytes);
  ctx.launch(name, {grid, kBlockDim, 0}, [&](BlockCtx& blk) {
    blk.for_each_thread([&](ThreadCtx& t) {
      const std::uint64_t gid = blk.global_tid(t);
      if (gid >= n) return;
      for (std::uint32_t r = 0; r < reads; ++r) {
        t.global_read(in_base + gid * element_bytes, element_bytes);
      }
      for (std::uint32_t w = 0; w < writes; ++w) {
        t.global_write(out_base + gid * element_bytes, element_bytes);
      }
      t.charge(cycles_per_elem);
    });
  });
}

}  // namespace

std::vector<std::uint64_t> device_exclusive_prefix_sum(
    SimContext& ctx, std::span<const std::uint32_t> in,
    const std::string& kernel_name) {
  std::vector<std::uint64_t> out(in.size() + 1, 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  out[in.size()] = acc;
  // Work-efficient device scan: ~2 passes over the data.
  charge_streaming_kernel(ctx, kernel_name, in.size(), sizeof(std::uint32_t),
                          /*reads=*/1, /*writes=*/1, /*cycles_per_elem=*/4);
  return out;
}

std::vector<std::uint32_t> device_histogram(SimContext& ctx,
                                            std::span<const std::uint32_t> keys,
                                            std::uint32_t num_bins,
                                            const std::string& kernel_name) {
  std::vector<std::uint32_t> bins(num_bins, 0);
  for (std::uint32_t k : keys) {
    if (k < num_bins) ++bins[k];
  }
  // Shared-memory privatised histogram: one read per key plus a small
  // per-block merge; atomics charged as extra cycles.
  charge_streaming_kernel(ctx, kernel_name, keys.size(),
                          sizeof(std::uint32_t), /*reads=*/1, /*writes=*/0,
                          /*cycles_per_elem=*/6);
  return bins;
}

void device_radix_sort_pairs(SimContext& ctx, std::vector<std::uint32_t>& keys,
                             std::vector<std::uint32_t>& values,
                             std::uint32_t key_bits,
                             const std::string& kernel_name) {
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return keys[a] < keys[b];
  });
  std::vector<std::uint32_t> sorted_keys(keys.size());
  std::vector<std::uint32_t> sorted_values(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_keys[i] = keys[order[i]];
    sorted_values[i] = values[order[i]];
  }
  keys = std::move(sorted_keys);
  values = std::move(sorted_values);

  // CUB radix-sorts 8 bits per pass; each pass streams keys+values twice
  // (rank + scatter).
  const std::uint32_t passes = std::max(1u, (key_bits + 7) / 8);
  for (std::uint32_t p = 0; p < passes; ++p) {
    charge_streaming_kernel(ctx, kernel_name, keys.size(),
                            2 * sizeof(std::uint32_t), /*reads=*/2,
                            /*writes=*/1, /*cycles_per_elem=*/8);
  }
}

}  // namespace ohd::cudasim
