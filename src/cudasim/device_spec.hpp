// Architectural parameters of the simulated GPU. The performance model in
// perf_model.hpp converts recorded kernel events into time using these
// numbers. DeviceSpec::v100() is calibrated against the paper's evaluation
// platform (NVIDIA Tesla V100-SXM2-32GB on PSC Bridges-2); see EXPERIMENTS.md
// for the calibration notes.
#pragma once

#include <cstdint>
#include <string>

namespace ohd::cudasim {

struct DeviceSpec {
  std::string name;

  // Compute organisation.
  std::uint32_t num_sms = 80;
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t max_blocks_per_sm = 32;
  std::uint32_t warp_schedulers_per_sm = 4;  // warp-instructions issued per clock
  double clock_ghz = 1.53;

  // Shared memory.
  std::uint32_t shmem_per_sm_bytes = 96 * 1024;
  std::uint32_t max_shmem_per_block_bytes = 96 * 1024;

  // Global memory system.
  double global_bw_gbps = 900.0;       // peak HBM2 bandwidth
  std::uint32_t transaction_bytes = 32; // minimum global transaction (sector)
  std::uint32_t mem_issue_cycles = 1;   // per-transaction issue cost on the LSU

  // Latency hiding: achieved fraction of peak ramps linearly from
  // latency_hide_base (a single resident warp still makes progress through
  // pipelining) up to 1.0 at warps_for_full_throughput resident warps/SM.
  std::uint32_t warps_for_full_throughput = 28;
  double latency_hide_base = 0.45;

  // Wide-scatter store-stall model, used by the ORIGINAL decoders'
  // one-symbol-per-store write path (core/decode_write_direct). When a
  // warp's 32 simultaneous stores spread over a window wider than the
  // store-combining reach, each store serializes against the store queue and
  // pays (a ramp toward) exposed DRAM latency. The ramp is linear in the
  // warp's output footprint from scatter_window_lo_bytes (no stall) to
  // scatter_window_hi_bytes (full stall). Calibrated against the paper's
  // Table II decode+write throughputs: this is what collapses the original
  // decoders as the compression ratio grows (adjacent threads' output
  // regions drift apart), i.e. the paper's Figure 2, while the baseline's
  // few-threads write trickle never builds that pressure (paper §V-B1).
  std::uint32_t scatter_window_lo_bytes = 2048;
  std::uint32_t scatter_window_hi_bytes = 8192;
  std::uint32_t scatter_penalty_cycles = 220;

  // Host link (used only for Figure 5's host-to-device transfer model).
  double pcie_bw_gbps = 12.0;

  // Fixed cost of launching one kernel (driver + scheduling), seconds.
  double launch_overhead_s = 3.0e-6;

  /// The paper's evaluation GPU.
  static DeviceSpec v100();
  /// The paper's future-work target (used by tests to check the model reacts
  /// to architecture parameters, and by the `dataset_study` example).
  static DeviceSpec a100();

  std::uint32_t threads_per_warp() const { return warp_size; }
  double clock_hz() const { return clock_ghz * 1e9; }
};

}  // namespace ohd::cudasim
