// Analytical performance model: converts the architectural events recorded
// while a kernel executes functionally (see exec.hpp) into simulated time on
// the configured DeviceSpec.
//
// Model summary
// -------------
// Within a warp, a phase (the code between two block barriers) costs the
// MAXIMUM of its lanes' compute cycles — this is SIMT lockstep and is what
// makes one long-running lane stall its whole warp (paper §IV-A). Within a
// block, a phase costs the maximum over its warps, because a barrier releases
// only when the slowest warp arrives. A block's cycle count is the sum of its
// phase costs.
//
// Grid-level time combines two terms:
//   * a throughput term: total warp-cycles (idle warps waiting at barriers
//     still occupy scheduler slots, so a block contributes
//     block_cycles x warps_per_block) divided by the machine-wide issue rate,
//     derated by an occupancy-dependent latency-hiding factor;
//   * a critical-path term: the most expensive single block cannot finish
//     faster than its own cycle count.
// plus a memory term: coalesced 32-byte transactions are accumulated per warp
// "instruction slot" (the k-th access of every lane in a warp is considered
// simultaneous), and total transacted bytes are divided by the effective
// bandwidth. Kernel time = max(compute, memory) + launch overhead.
//
// Occupancy is derived from threads/block and shared memory/block exactly as
// on real hardware; it feeds the latency-hiding derate. This is the mechanism
// that reproduces the paper's Figure 3 hump and the T_high threshold of §IV-C.
#pragma once

#include <cstdint>
#include <string>

#include "cudasim/device_spec.hpp"

namespace ohd::cudasim {

/// Raw event counts accumulated over one kernel launch.
struct KernelStats {
  // Sum over blocks of (sum over phases of max-over-warps warp cycles).
  std::uint64_t critical_block_cycles_max = 0;  // max over blocks
  std::uint64_t block_cycles_sum = 0;           // sum over blocks
  // Total warp-cycles charged for scheduling purposes (block cycles x warps
  // in the block, summed over blocks).
  std::uint64_t scheduled_warp_cycles = 0;
  // Coalesced global memory transactions (32B sectors) and the bytes they
  // move.
  std::uint64_t global_transactions = 0;
  std::uint64_t global_bytes_useful = 0;  // bytes the program asked for
  // Shared memory accesses (counted, currently uncosted beyond issue cycles
  // charged by the recorder).
  std::uint64_t shared_accesses = 0;
  std::uint64_t barriers = 0;

  std::uint32_t grid_dim = 0;
  std::uint32_t block_dim = 0;
  std::uint32_t shmem_per_block = 0;

  void merge(const KernelStats& other);
};

/// Occupancy for a launch configuration.
struct Occupancy {
  std::uint32_t blocks_per_sm = 0;
  std::uint32_t resident_warps_per_sm = 0;
  double fraction = 0.0;  // resident threads / max threads per SM
};

Occupancy occupancy_for(const DeviceSpec& spec, std::uint32_t block_dim,
                        std::uint32_t shmem_per_block);

/// Result of timing one kernel.
struct KernelTiming {
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  /// Machine-wide shared-resource time (issue slots + DRAM): this is the part
  /// that ADDS UP when kernels run concurrently on separate streams.
  double saturated_seconds = 0.0;
  /// Serial critical path (slowest single block): this part OVERLAPS across
  /// concurrent kernels.
  double critical_seconds = 0.0;
  Occupancy occupancy;
};

class PerfModel {
public:
  explicit PerfModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  KernelTiming time_kernel(const KernelStats& stats) const;

  /// Time to copy `bytes` across PCIe (Figure 5's host-to-device model).
  double host_to_device_seconds(std::uint64_t bytes) const;

private:
  DeviceSpec spec_;
};

}  // namespace ohd::cudasim
