#include "cudasim/device_spec.hpp"

namespace ohd::cudasim {

DeviceSpec DeviceSpec::v100() {
  DeviceSpec s;
  s.name = "Tesla V100-SXM2-32GB";
  s.num_sms = 80;
  s.warp_size = 32;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.warp_schedulers_per_sm = 4;
  s.clock_ghz = 1.53;
  // Default shared-memory carveout (64 KiB of the 128 KiB unified L1): this
  // is the configuration under which the paper derives T_high = 8 (16 KiB
  // per block at 25% occupancy with 128-thread blocks).
  s.shmem_per_sm_bytes = 64 * 1024;
  s.max_shmem_per_block_bytes = 64 * 1024;
  s.global_bw_gbps = 900.0;
  s.transaction_bytes = 32;
  s.mem_issue_cycles = 1;
  s.warps_for_full_throughput = 28;
  s.latency_hide_base = 0.45;
  s.pcie_bw_gbps = 12.0;
  s.launch_overhead_s = 3.0e-6;
  return s;
}

DeviceSpec DeviceSpec::a100() {
  DeviceSpec s;
  s.name = "A100-SXM4-40GB";
  s.num_sms = 108;
  s.warp_size = 32;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.warp_schedulers_per_sm = 4;
  s.clock_ghz = 1.41;
  s.shmem_per_sm_bytes = 164 * 1024;
  s.max_shmem_per_block_bytes = 164 * 1024;
  s.global_bw_gbps = 1555.0;
  s.transaction_bytes = 32;
  s.mem_issue_cycles = 1;
  s.warps_for_full_throughput = 28;
  s.latency_hide_base = 0.45;
  s.pcie_bw_gbps = 24.0;
  s.launch_overhead_s = 3.0e-6;
  return s;
}

}  // namespace ohd::cudasim
