#include "cudasim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace ohd::cudasim {

void KernelStats::merge(const KernelStats& other) {
  critical_block_cycles_max =
      std::max(critical_block_cycles_max, other.critical_block_cycles_max);
  block_cycles_sum += other.block_cycles_sum;
  scheduled_warp_cycles += other.scheduled_warp_cycles;
  global_transactions += other.global_transactions;
  global_bytes_useful += other.global_bytes_useful;
  shared_accesses += other.shared_accesses;
  barriers += other.barriers;
}

Occupancy occupancy_for(const DeviceSpec& spec, std::uint32_t block_dim,
                        std::uint32_t shmem_per_block) {
  Occupancy occ;
  if (block_dim == 0) return occ;
  const std::uint32_t by_threads = spec.max_threads_per_sm / block_dim;
  const std::uint32_t by_shmem =
      shmem_per_block == 0
          ? spec.max_blocks_per_sm
          : spec.shmem_per_sm_bytes / std::max(shmem_per_block, 1u);
  occ.blocks_per_sm =
      std::min({by_threads, by_shmem, spec.max_blocks_per_sm});
  const std::uint32_t warps_per_block =
      (block_dim + spec.warp_size - 1) / spec.warp_size;
  occ.resident_warps_per_sm = occ.blocks_per_sm * warps_per_block;
  occ.fraction = static_cast<double>(occ.blocks_per_sm * block_dim) /
                 static_cast<double>(spec.max_threads_per_sm);
  return occ;
}

KernelTiming PerfModel::time_kernel(const KernelStats& stats) const {
  KernelTiming t;
  t.occupancy = occupancy_for(spec_, stats.block_dim, stats.shmem_per_block);
  if (stats.grid_dim == 0 || stats.block_dim == 0) {
    t.seconds = spec_.launch_overhead_s;
    return t;
  }

  // Latency hiding: with fewer resident warps than warps_for_full_throughput
  // per SM, both issue throughput and achieved memory bandwidth degrade —
  // but pipelining keeps even a single warp at latency_hide_base of peak.
  const double resident =
      std::max<std::uint32_t>(1, t.occupancy.resident_warps_per_sm);
  const double hide_eff = std::min(
      1.0, spec_.latency_hide_base +
               (1.0 - spec_.latency_hide_base) * resident /
                   static_cast<double>(spec_.warps_for_full_throughput));

  // Throughput term: machine-wide warp-instruction issue rate.
  const double issue_rate = static_cast<double>(spec_.num_sms) *
                            spec_.warp_schedulers_per_sm * spec_.clock_hz();
  const double throughput_s =
      static_cast<double>(stats.scheduled_warp_cycles) /
      (issue_rate * hide_eff);

  // Critical path: the slowest block cannot finish faster than its own
  // serial cycle count. When the block has more warps than the SM has
  // schedulers, issue contention stretches it proportionally.
  const std::uint32_t warps_per_block =
      (stats.block_dim + spec_.warp_size - 1) / spec_.warp_size;
  const double contention = std::max(
      1.0, static_cast<double>(warps_per_block) /
               spec_.warp_schedulers_per_sm);
  const double critical_s =
      static_cast<double>(stats.critical_block_cycles_max) * contention /
      spec_.clock_hz();

  t.compute_seconds = std::max(throughput_s, critical_s);

  // Memory term: transacted bytes over effective bandwidth.
  const double bytes_moved = static_cast<double>(stats.global_transactions) *
                             spec_.transaction_bytes;
  t.memory_seconds = bytes_moved / (spec_.global_bw_gbps * 1e9 * hide_eff);

  t.saturated_seconds = std::max(throughput_s, t.memory_seconds);
  t.critical_seconds = critical_s;
  t.seconds = std::max(t.saturated_seconds, t.critical_seconds) +
              spec_.launch_overhead_s;
  return t;
}

double PerfModel::host_to_device_seconds(std::uint64_t bytes) const {
  // Fixed DMA setup cost plus bandwidth-limited transfer.
  return 10e-6 + static_cast<double>(bytes) / (spec_.pcie_bw_gbps * 1e9);
}

}  // namespace ohd::cudasim
