// Device-wide primitives standing in for the CUB routines the paper uses:
// DeviceHistogram (the Gomez-Luna variant used by cuSZ), DeviceScan, and
// DeviceRadixSort::SortPairs. Each executes functionally on the host and
// charges a simulated kernel with the primitive's characteristic cost so the
// "tune shared mem" phase of Table II is timed realistically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cudasim/exec.hpp"

namespace ohd::cudasim {

/// Exclusive prefix sum of `in`, returning a vector one element LONGER than
/// the input: result[i] = sum of in[0..i), result[n] = total. This matches
/// how the decoders use output-index arrays (they need the end sentinel).
std::vector<std::uint64_t> device_exclusive_prefix_sum(
    SimContext& ctx, std::span<const std::uint32_t> in,
    const std::string& kernel_name = "prefix_sum");

/// Histogram of `keys` into `num_bins` bins; keys must be < num_bins.
std::vector<std::uint32_t> device_histogram(
    SimContext& ctx, std::span<const std::uint32_t> keys,
    std::uint32_t num_bins, const std::string& kernel_name = "histogram");

/// Key-value radix sort (ascending, stable), CUB DeviceRadixSort::SortPairs
/// stand-in. `key_bits` bounds the number of radix passes charged.
void device_radix_sort_pairs(SimContext& ctx, std::vector<std::uint32_t>& keys,
                             std::vector<std::uint32_t>& values,
                             std::uint32_t key_bits = 32,
                             const std::string& kernel_name = "radix_sort");

}  // namespace ohd::cudasim
