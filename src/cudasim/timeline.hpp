// Accumulates simulated time per named phase of a (de)compression pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ohd::cudasim {

class Timeline {
public:
  void add(const std::string& name, double seconds);
  void clear();

  /// Total simulated seconds across all entries.
  double total() const { return total_; }

  /// Sum of entries whose name starts with `prefix`.
  double total_with_prefix(const std::string& prefix) const;

  /// All entries in insertion order.
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

private:
  std::vector<std::pair<std::string, double>> entries_;
  double total_ = 0.0;
};

}  // namespace ohd::cudasim
