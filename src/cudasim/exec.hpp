// Functional execution of CUDA-style kernels on the host, with architectural
// event recording.
//
// Kernels are written *phase-structured*: the body receives a BlockCtx and
// calls for_each_thread(...) once per barrier-delimited phase. Because the
// host executes lanes of a phase sequentially, __syncthreads() semantics
// between consecutive for_each_thread calls hold trivially, while per-lane
// work inside one call is recorded with SIMT cost semantics (a warp's phase
// cost is the max over its lanes).
//
// Example (a kernel with two phases separated by a barrier):
//
//   ctx.launch("scale", {grid, block, shmem}, [&](cudasim::BlockCtx& blk) {
//     auto* buf = blk.shared_as<float>();
//     blk.for_each_thread([&](cudasim::ThreadCtx& t) {   // phase 1
//       buf[t.tid()] = in[blk.global_tid(t)];
//       t.global_read(in.addr_of(blk.global_tid(t)), 4);
//       t.charge(4);
//     });
//     blk.for_each_thread([&](cudasim::ThreadCtx& t) {   // phase 2
//       out[blk.global_tid(t)] = 2.f * buf[t.tid()];
//       t.global_write(out.addr_of(blk.global_tid(t)), 4);
//       t.charge(4);
//     });
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cudasim/device_spec.hpp"
#include "cudasim/perf_model.hpp"
#include "cudasim/timeline.hpp"

namespace ohd::cudasim {

struct LaunchConfig {
  std::uint32_t grid_dim = 1;
  std::uint32_t block_dim = 1;
  std::uint32_t shmem_bytes = 0;
};

namespace detail {

/// Unique 32-byte segments touched by one warp-wide access slot. Inline
/// storage: a warp has at most warp_size lanes, each touching at most two
/// segments for the small scalar accesses our kernels perform.
class SegmentSet {
public:
  void insert(std::uint64_t segment) {
    min_seg_ = count_ == 0 ? segment : (segment < min_seg_ ? segment : min_seg_);
    max_seg_ = count_ == 0 ? segment : (segment > max_seg_ ? segment : max_seg_);
    for (std::uint32_t i = 0; i < count_ && i < kCapacity; ++i) {
      if (segments_[i] == segment) return;
    }
    if (count_ < kCapacity) segments_[count_] = segment;
    ++count_;  // distinct count saturates at capacity precision
  }
  std::uint32_t distinct() const { return count_; }
  bool contains(std::uint64_t segment) const {
    for (std::uint32_t i = 0; i < count_ && i < kCapacity; ++i) {
      if (segments_[i] == segment) return true;
    }
    return false;
  }
  /// Byte span of the slot's accesses (sector-granular).
  std::uint64_t span_bytes() const {
    return count_ == 0 ? 0 : (max_seg_ - min_seg_ + 1) * 32;
  }
  void clear() { count_ = 0; }

private:
  static constexpr std::uint32_t kCapacity = 64;
  std::uint64_t segments_[kCapacity];
  std::uint64_t min_seg_ = 0;
  std::uint64_t max_seg_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace detail

class BlockCtx;

/// Per-lane handle given to kernel thread functions.
class ThreadCtx {
public:
  std::uint32_t tid() const { return tid_; }
  std::uint32_t lane() const { return tid_ % warp_size_; }
  std::uint32_t warp() const { return tid_ / warp_size_; }

  /// Charge compute cycles to this lane in the current phase.
  void charge(std::uint64_t cycles) { cycles_ += cycles; }

  /// Record a global-memory read/write of `bytes` at byte address `addr`.
  /// The k-th access of each lane in a warp is treated as simultaneous for
  /// coalescing purposes. Reads hitting a sector this warp already touched
  /// in the current phase are L1 hits; stores are write-through (V100
  /// semantics) and always cost a sector transaction.
  void global_read(std::uint64_t addr, std::uint32_t bytes) {
    global_access(addr, bytes, /*is_write=*/false);
  }
  void global_write(std::uint64_t addr, std::uint32_t bytes) {
    global_access(addr, bytes, /*is_write=*/true);
  }

  /// Record a shared-memory access (counted; banked conflicts not modelled).
  void shared_access(std::uint32_t count = 1);

private:
  friend class BlockCtx;
  explicit ThreadCtx(BlockCtx& block) : block_(block) {}
  void global_access(std::uint64_t addr, std::uint32_t bytes, bool is_write);

  BlockCtx& block_;
  std::uint32_t tid_ = 0;
  std::uint32_t warp_size_ = 32;
  std::uint64_t cycles_ = 0;
  std::uint32_t slot_counter_ = 0;
};

/// One block's execution context: shared-memory arena plus event recorder.
class BlockCtx {
public:
  BlockCtx(const DeviceSpec& spec, LaunchConfig cfg, std::uint32_t block_idx);

  std::uint32_t block_idx() const { return block_idx_; }
  std::uint32_t block_dim() const { return cfg_.block_dim; }
  std::uint32_t grid_dim() const { return cfg_.grid_dim; }
  std::uint32_t shared_size() const { return cfg_.shmem_bytes; }

  std::byte* shared() { return shared_.data(); }
  template <typename T>
  T* shared_as() {
    return reinterpret_cast<T*>(shared_.data());
  }

  /// Global thread id for a lane of this block.
  std::uint64_t global_tid(const ThreadCtx& t) const {
    return static_cast<std::uint64_t>(block_idx_) * cfg_.block_dim + t.tid();
  }

  /// Execute one barrier-delimited phase: `f` runs once per thread, in tid
  /// order; SIMT cost semantics are applied per warp.
  void for_each_thread(const std::function<void(ThreadCtx&)>& f);

  /// Charge cycles uniformly to every lane of the block without running user
  /// code (used for fixed-cost steps such as a barrier's own latency).
  void charge_all(std::uint64_t cycles);

  /// Event totals accumulated so far for this block.
  const KernelStats& stats() const { return stats_; }

private:
  friend class ThreadCtx;
  void flush_warp(std::uint64_t max_lane_cycles);

  const DeviceSpec& spec_;
  LaunchConfig cfg_;
  std::uint32_t block_idx_;
  std::vector<std::byte> shared_;

  // Recording state for the phase currently executing.
  std::vector<detail::SegmentSet> slots_;
  std::unordered_set<std::uint64_t> warp_sectors_;  // L1 reuse within a warp
  std::uint32_t slots_used_ = 0;
  std::uint64_t phase_warp_max_cycles_ = 0;  // max over finished warps
  std::uint64_t block_cycles_ = 0;           // sum over finished phases
  KernelStats stats_;
};

using BlockKernel = std::function<void(BlockCtx&)>;

/// Result of a simulated launch.
struct KernelResult {
  KernelTiming timing;
  KernelStats stats;
};

/// Owns the device spec, the performance model, the simulated timeline, and
/// the device address space used for coalescing analysis.
class SimContext {
public:
  explicit SimContext(DeviceSpec spec = DeviceSpec::v100());

  const DeviceSpec& spec() const { return model_.spec(); }
  const PerfModel& model() const { return model_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// Run `body` once per block, record events, convert them to simulated
  /// time, append that time to the timeline under `name`, and return it.
  KernelResult launch(const std::string& name, LaunchConfig cfg,
                      const BlockKernel& body);

  /// Same as launch() but the timing is NOT appended to the timeline; used
  /// by components that model concurrent streams themselves (Algorithm 2
  /// launches up to T_high+1 kernels on independent streams).
  KernelResult launch_untimed(const std::string& name, LaunchConfig cfg,
                              const BlockKernel& body);

  /// Reserve a device address range of `bytes` for a buffer; returns the base
  /// address. Addresses only feed the coalescing model.
  std::uint64_t reserve_address(std::uint64_t bytes);

  /// Simulated host-to-device transfer; appends to the timeline.
  double host_to_device(std::uint64_t bytes, const std::string& name = "h2d");

private:
  KernelResult run(LaunchConfig cfg, const BlockKernel& body);

  PerfModel model_;
  Timeline timeline_;
  std::uint64_t next_address_ = 1 << 12;
};

}  // namespace ohd::cudasim
