// Typed "device" storage. Data lives in host memory (the simulator executes
// kernels functionally), but every buffer occupies a distinct simulated
// address range so that the coalescing model can group warp accesses into
// 32-byte transactions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cudasim/exec.hpp"

namespace ohd::cudasim {

template <typename T>
class DeviceBuffer {
public:
  DeviceBuffer() = default;

  DeviceBuffer(SimContext& ctx, std::size_t count)
      : data_(count), base_(ctx.reserve_address(count * sizeof(T))) {}

  DeviceBuffer(SimContext& ctx, std::span<const T> host)
      : data_(host.begin(), host.end()),
        base_(ctx.reserve_address(host.size() * sizeof(T))) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  /// Simulated byte address of element i (feeds the coalescing model).
  std::uint64_t addr_of(std::size_t i) const { return base_ + i * sizeof(T); }

  std::uint64_t size_bytes() const { return data_.size() * sizeof(T); }

  /// Move the contents out (ends the buffer's life as device storage).
  std::vector<T> take() { return std::move(data_); }

private:
  std::vector<T> data_;
  std::uint64_t base_ = 0;
};

}  // namespace ohd::cudasim
